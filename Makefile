# Developer entry points. PYTHONPATH is injected per target so the
# editable layout (src/ + benchmarks/ at the repo root) just works.

PY ?= python
PP := PYTHONPATH=src:.$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test test-slow test-all lint bench-fleet sweep example-fleet example-faults examples doctest

## tier-1: the fast suite (slow-marked fleet stress tests are skipped)
test:
	$(PP) $(PY) -m pytest -x -q

## only the @pytest.mark.slow tests (fleet stress, 2x throughput bar)
test-slow:
	$(PP) $(PY) -m pytest -q -m slow

## everything, slow tests included
test-all:
	$(PP) $(PY) -m pytest -q --runslow

## ruff lint (same invocation as CI); skips gracefully when ruff is absent
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks examples; \
	elif $(PY) -m ruff --version >/dev/null 2>&1; then \
		$(PY) -m ruff check src tests benchmarks examples; \
	else \
		echo "ruff not installed (pip install ruff); skipping lint"; \
	fi

## regenerate BENCH_fleet.json (scenarios/sec vs sequential baseline)
bench-fleet:
	$(PP) $(PY) -m pytest benchmarks/bench_fleet_throughput.py --benchmark-only -q -s

## the acceptance-criteria grid: 2 problems x 2 delays x 2 policies x 3 seeds
sweep:
	$(PP) $(PY) -m repro sweep --seeds 3 --max-iterations 3000

## runnable fleet-API walkthrough
example-fleet:
	$(PP) $(PY) examples/fleet_sweep.py

## runnable fault-injection walkthrough (convergence vs fault intensity)
example-faults:
	$(PP) $(PY) examples/fault_sweep.py

## executable docs: the package-docstring Quickstart + repro.api doctests
doctest:
	$(PP) $(PY) -m pytest --doctest-modules src/repro/__init__.py src/repro/api/__init__.py -q

## examples smoke pass (the fast subset; CI tier-1 runs this)
examples:
	$(PP) $(PY) examples/quickstart.py
	$(PP) $(PY) examples/fleet_sweep.py
	$(PP) $(PY) examples/fault_sweep.py
	rm -rf /tmp/repro-study-example
	$(PP) $(PY) -m repro study run examples/study.toml --out /tmp/repro-study-example
	$(PP) $(PY) -m repro study report examples/study.toml --out /tmp/repro-study-example
