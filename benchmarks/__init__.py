"""Benchmark harness package (one module per experiment in DESIGN.md)."""
