"""Shared helpers for the benchmark/experiment harness.

Every benchmark regenerates one row of the experiment index in
DESIGN.md.  Measurements are printed *and* persisted under
``benchmarks/results/`` so the paper-vs-measured comparison in
EXPERIMENTS.md can be refreshed from the artifacts regardless of
pytest's output capture.

The multi-seed helpers route through the fleet runner
(:mod:`repro.runtime.fleet`): any benchmark can hand a
:class:`~repro.scenarios.spec.ScenarioGrid` (or a spec list) to
:func:`fleet_run` and report per-group medians instead of single-seed
point estimates — the statistically honest form of every claim in the
paper.
"""

from __future__ import annotations

import pathlib
from typing import Any, Sequence

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    """Print an experiment report and persist it to results/<name>.txt."""
    RESULTS_DIR.mkdir(exist_ok=True)
    banner = f"\n===== {name} =====\n"
    print(banner + text)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def fleet_run(grid_or_specs: Any, *, executor: str = "auto", max_workers: int | None = None):
    """Run a scenario grid (or spec list) through the fleet runner.

    Accepts a :class:`~repro.scenarios.spec.ScenarioGrid` or any
    iterable of :class:`~repro.scenarios.spec.ScenarioSpec`; returns
    the :class:`~repro.runtime.fleet.FleetResult`.
    """
    from repro.runtime.fleet import run_fleet
    from repro.scenarios.spec import ScenarioGrid

    specs = grid_or_specs.expand() if isinstance(grid_or_specs, ScenarioGrid) else grid_or_specs
    return run_fleet(specs, executor=executor, max_workers=max_workers)


def fleet_median_table(
    grid_or_specs: Any,
    *,
    group_by: Sequence[str],
    metrics: Sequence[str] = ("iterations", "converged", "final_residual"),
    executor: str = "auto",
    title: str | None = None,
) -> tuple[Any, str]:
    """Run a grid and render its per-group multi-seed median table.

    Returns ``(fleet_result, table_text)`` so benchmarks can both
    report the text via :func:`emit` and inspect the numbers.
    """
    from repro.analysis.fleet import render_fleet_table

    fleet = fleet_run(grid_or_specs, executor=executor)
    return fleet, render_fleet_table(fleet, group_by=group_by, metrics=metrics, title=title)
