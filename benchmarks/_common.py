"""Shared helpers for the benchmark/experiment harness.

Every benchmark regenerates one row of the experiment index in
DESIGN.md.  Measurements are printed *and* persisted under
``benchmarks/results/`` so the paper-vs-measured comparison in
EXPERIMENTS.md can be refreshed from the artifacts regardless of
pytest's output capture.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    """Print an experiment report and persist it to results/<name>.txt."""
    RESULTS_DIR.mkdir(exist_ok=True)
    banner = f"\n===== {name} =====\n"
    print(banner + text)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
