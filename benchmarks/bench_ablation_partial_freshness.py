"""ABLATION-PARTIALS — how fresh must partial updates be to pay off?

The flexible engine's :class:`InterpolatedPartials` exposes two knobs:
``partial_prob`` (how often an exchanged value is a partial rather
than the labelled iterate) and ``theta_range`` (how far toward fresh
data the partial has advanced).  This ablation sweeps both on a fixed
lasso/delay configuration.  Expected shape: iterations decrease
monotonically in freshness ``theta`` and in ``partial_prob`` — partial
updates are strictly informative under contraction — while the
constraint-(3) violation rate stays negligible.
"""

from __future__ import annotations

import numpy as np

from benchmarks._common import emit, once
from repro.analysis.reporting import render_table
from repro.core.flexible import FlexibleIterationEngine, InterpolatedPartials
from repro.delays.bounded import UniformRandomDelay
from repro.operators.prox_gradient import ProxGradientOperator
from repro.problems import make_lasso, make_regression
from repro.steering.policies import PermutationSweeps

TOL = 1e-9


def run_case(op, n, partial_prob, theta):
    engine = FlexibleIterationEngine(
        op,
        PermutationSweeps(n, seed=2),
        UniformRandomDelay(n, 8, seed=3),
        InterpolatedPartials(partial_prob=partial_prob, theta_range=(theta, theta), seed=4),
    )
    return engine.run(np.zeros(n), max_iterations=200_000, tol=TOL)


def run_sweep():
    data = make_regression(80, 12, sparsity=0.4, seed=1)
    prob = make_lasso(data, l1=0.05, l2=0.15)
    op = ProxGradientOperator(prob, prob.smooth.max_step())
    n = prob.dim
    rows = []
    for partial_prob in (0.0, 0.5, 1.0):
        for theta in (0.25, 0.5, 0.75, 1.0):
            if partial_prob == 0.0 and theta != 0.25:
                continue  # theta irrelevant without partials
            res = run_case(op, n, partial_prob, theta)
            viol_rate = res.constraint_violations / max(res.constraint_checks, 1)
            rows.append(
                [
                    f"{partial_prob:.1f}",
                    f"{theta:.2f}" if partial_prob > 0 else "-",
                    res.converged,
                    res.iterations,
                    f"{100 * viol_rate:.2f}%",
                ]
            )
    return rows


def test_ablation_partial_freshness(benchmark):
    rows = once(benchmark, run_sweep)
    table = render_table(
        ["partial_prob", "theta (freshness)", "converged", "iterations", "(3) violations"],
        rows,
        title=f"partial-update freshness ablation (delay bound 8, tol {TOL})",
    )
    emit("ablation_partial_freshness", table)

    assert all(r[2] for r in rows)
    # more partials with full freshness beats no partials
    none = next(int(r[3]) for r in rows if r[0] == "0.0")
    full = next(int(r[3]) for r in rows if r[0] == "1.0" and r[1] == "1.00")
    assert full < none
    # within always-partial, fresher is no worse (monotone trend, 10% slack)
    thetas = [(float(r[1]), int(r[3])) for r in rows if r[0] == "1.0"]
    thetas.sort()
    for (t1, i1), (t2, i2) in zip(thetas, thetas[1:]):
        assert i2 <= i1 * 1.1, (t1, i1, t2, i2)
    # the audit stays clean
    assert all(float(r[4].rstrip("%")) < 5.0 for r in rows)
