"""ABLATION-STEERING — how the choice of S_j affects convergence.

Definition 1's steering set "accounts for all possible steering
policies".  This ablation fixes the operator and delay model and sweeps
the policy: total updates (Jacobi), cyclic, shuffled sweeps, random
subsets of varying density and a heavily skewed weighted policy.
Measured in *component updates* (the work unit), so policies of
different per-iteration width are comparable.  Expected: every policy
converges (condition (c) is guaranteed by construction); skewed
policies pay for starving components; comparable work for the
balanced ones.
"""

from __future__ import annotations

import numpy as np

from benchmarks._common import emit, once
from repro.analysis.reporting import render_table
from repro.core.async_iteration import AsyncIterationEngine
from repro.core.macro import macro_sequence
from repro.delays.bounded import UniformRandomDelay
from repro.problems import make_jacobi_instance
from repro.steering.policies import (
    AllComponents,
    BlockCyclic,
    CyclicSingle,
    PermutationSweeps,
    RandomSubset,
    WeightedRandom,
)

TOL = 1e-10
N = 12


def run_sweep():
    op = make_jacobi_instance(N, dominance=0.35, seed=1)
    skew = np.ones(N)
    skew[: N // 2] = 10.0  # first half updated 10x as often
    policies = [
        ("all components (Jacobi)", AllComponents(N)),
        ("cyclic single (Gauss-Seidel)", CyclicSingle(N)),
        ("shuffled sweeps", PermutationSweeps(N, seed=2)),
        ("block cyclic (3)", BlockCyclic(N, 3)),
        ("random subset p=0.25", RandomSubset(N, 0.25, seed=3)),
        ("random subset p=0.75", RandomSubset(N, 0.75, seed=4)),
        ("weighted 10:1 skew", WeightedRandom(skew, seed=5)),
    ]
    rows = []
    for name, pol in policies:
        engine = AsyncIterationEngine(op, pol, UniformRandomDelay(N, 4, seed=6))
        res = engine.run(np.zeros(N), max_iterations=300_000, tol=TOL)
        work = int(res.trace.update_counts().sum())
        ms = macro_sequence(res.trace)
        rows.append([name, res.converged, res.iterations, work, ms.count])
    return rows


def test_ablation_steering(benchmark):
    rows = once(benchmark, run_sweep)
    table = render_table(
        ["steering policy", "converged", "iterations", "component updates", "macro-iters"],
        rows,
        title=f"steering ablation on a q=0.65 contraction (tol {TOL}, delays U(0..4))",
    )
    emit("ablation_steering", table)

    assert all(r[1] for r in rows)
    by_name = {r[0]: r for r in rows}
    balanced = [
        by_name["cyclic single (Gauss-Seidel)"][3],
        by_name["shuffled sweeps"][3],
        by_name["block cyclic (3)"][3],
    ]
    # balanced single/block policies do comparable work (within 2x)
    assert max(balanced) < 2.5 * min(balanced)
    # the skewed policy wastes work on over-updated components
    assert by_name["weighted 10:1 skew"][3] > min(balanced)
