"""ABLATION-STEP — the step-size range of Theorem 1.

Theorem 1 admits any fixed step ``gamma in (0, 2/(mu+L)]`` with modulus
``rho = gamma*mu``.  This ablation sweeps gamma across and beyond the
admissible range on a strongly convex lasso: iterations-to-tolerance
must improve monotonically up to ``gamma_max = 2/(mu+L)`` (where
``1 - gamma*mu`` is minimal over the admissible range) and the
iteration must still converge slightly beyond it (the Euclidean factor
``|1-gamma*L|`` takes over) until it finally diverges — locating the
crossover the theory predicts.
"""

from __future__ import annotations

import numpy as np

from benchmarks._common import emit, once
from repro.analysis.reporting import render_table
from repro.core.flexible import FlexibleIterationEngine, InterpolatedPartials
from repro.delays.bounded import UniformRandomDelay
from repro.operators.gradient import gradient_contraction_factor
from repro.operators.prox_gradient import ProxGradientOperator
from repro.problems import make_lasso, make_regression
from repro.steering.policies import PermutationSweeps

TOL = 1e-9


def run_sweep():
    data = make_regression(80, 12, sparsity=0.4, seed=1)
    prob = make_lasso(data, l1=0.05, l2=0.2)
    mu, L = prob.smooth.mu, prob.smooth.lipschitz
    gmax = prob.smooth.max_step()
    rows = []
    for frac in (0.1, 0.25, 0.5, 0.75, 1.0, 1.2, 1.6):
        gamma = frac * gmax
        op = ProxGradientOperator(prob, gamma, strict_step=False)
        engine = FlexibleIterationEngine(
            op,
            PermutationSweeps(prob.dim, seed=2),
            UniformRandomDelay(prob.dim, 3, seed=3),
            InterpolatedPartials(seed=4),
        )
        res = engine.run(np.zeros(prob.dim), max_iterations=150_000, tol=TOL)
        q = gradient_contraction_factor(gamma, mu, L)
        rows.append(
            [
                f"{frac:.2f} * gamma_max",
                f"{gamma:.4f}",
                f"{q:.4f}",
                res.converged,
                res.iterations if res.converged else "-",
            ]
        )
    return rows, mu, L


def test_ablation_step_size(benchmark):
    rows, mu, L = once(benchmark, run_sweep)
    table = render_table(
        ["step", "gamma", "contraction factor", "converged", "iterations to tol"],
        rows,
        title=f"step-size ablation (mu={mu:.3f}, L={L:.3f}, gamma_max=2/(mu+L))",
    )
    emit("ablation_step_size", table)

    by_frac = {r[0]: r for r in rows}
    # admissible range: monotone improvement toward gamma_max
    iters = [int(by_frac[f"{f:.2f} * gamma_max"][4]) for f in (0.1, 0.25, 0.5, 1.0)]
    assert iters == sorted(iters, reverse=True)
    # slightly beyond the bound still contracts (|1-gamma L| < 1) ...
    assert by_frac["1.20 * gamma_max"][3]
    # ... far beyond it does not reach tolerance
    assert float(by_frac["1.60 * gamma_max"][2]) >= 1.0
