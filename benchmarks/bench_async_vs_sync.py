"""ASYNC-SYNC — the paper's central efficiency claims, in simulated time.

Section II: asynchronous iterations (i) remove synchronization waits,
(ii) overlap communication with computation, and (iii) cope naturally
with load imbalance.  We compare, on the same problem and machine
models, a synchronous barrier method (round time = max over processors
of phase time, plus latency) against the asynchronous simulator,
sweeping worker heterogeneity.  The async advantage must grow with
imbalance — the shape of the experimental results in the works the
paper surveys ([7], [10], [26]).

The sweep also exposes the honest boundary of the claim: with
*extremely* heavy-tailed phase times (Pareto alpha < 1.5) and
overwrite-style relaxation updates, a straggler's completion writes a
value computed from enormously stale data and async loses — see
EXPERIMENTS.md.
"""

from __future__ import annotations

import numpy as np

from benchmarks._common import emit, once
from repro.analysis.rates import time_to_tolerance
from repro.analysis.reporting import render_table
from repro.operators.linear import jacobi_operator
from repro.problems.linear_system import tridiagonal_system
from repro.runtime.simulator import (
    ChannelSpec,
    ConstantTime,
    DistributedSimulator,
    ExponentialTime,
    ParetoTime,
    ProcessorSpec,
    UniformTime,
)
from repro.solvers.synchronous import jacobi_solve

TOL = 1e-8
LATENCY = 0.05
N_PROCS = 8


def make_operator():
    # Positive-coupling tridiagonal system: spectral radius ~ 0.87, so
    # both methods need O(100) sweeps and staleness effects amortize.
    M, c = tridiagonal_system(16, off_diag=-1.0, diag=2.3, seed=1)
    return jacobi_operator(M, c)


def sync_simulated_time(op, duration_models, seed):
    """Synchronous distributed Jacobi: one barrier per sweep."""
    rng = np.random.default_rng(seed)
    res = jacobi_solve(op, np.zeros(op.dim), tol=TOL)
    total = 0.0
    for sweep in range(1, res.iterations + 1):
        total += max(m.sample(sweep, rng) for m in duration_models) + LATENCY
    return total, res.iterations


def async_simulated_time(op, duration_models, seed):
    procs = [
        ProcessorSpec(components=(2 * i, 2 * i + 1), compute_time=m)
        for i, m in enumerate(duration_models)
    ]
    sim = DistributedSimulator(
        op, procs, channels=ChannelSpec(latency=ConstantTime(LATENCY)), seed=seed
    )
    res = sim.run(np.zeros(op.dim), max_iterations=500_000, tol=TOL, residual_every=10)
    assert res.converged
    t = time_to_tolerance(res.trace.residuals, res.trace.times, TOL)
    return (t if t is not None else res.final_time), res.trace.n_iterations


def run_async_vs_sync():
    op = make_operator()
    scenarios = [
        ("homogeneous", [UniformTime(0.9, 1.1) for _ in range(N_PROCS)]),
        (
            "strong imbalance (1x..8x)",
            [UniformTime(0.5 * s, 1.0 * s) for s in np.geomspace(1.0, 8.0, N_PROCS)],
        ),
        (
            "random jitter (exp)",
            [ExponentialTime(2.0, offset=0.3) for _ in range(N_PROCS)],
        ),
        ("moderate heavy tail (Pareto 2.0)", [ParetoTime(2.0, 0.5) for _ in range(N_PROCS)]),
        ("extreme heavy tail (Pareto 1.5)", [ParetoTime(1.5, 0.5) for _ in range(N_PROCS)]),
    ]
    rows = []
    for name, models in scenarios:
        t_sync, sweeps = sync_simulated_time(op, models, seed=2)
        t_async, iters = async_simulated_time(op, models, seed=3)
        rows.append((name, sweeps, t_sync, iters, t_async, t_sync / t_async))
    return rows


def test_async_vs_sync(benchmark):
    rows = once(benchmark, run_async_vs_sync)
    table = render_table(
        [
            "machine",
            "sync sweeps",
            "sync time",
            "async updates",
            "async time",
            "async speedup",
        ],
        [list(r) for r in rows],
        title=f"time to residual < {TOL} (simulated, {N_PROCS} processors, 16 components)",
    )
    emit("async_vs_sync", table)

    by_name = {r[0]: r for r in rows}
    # paper claim: async wins under load imbalance and random jitter
    assert by_name["strong imbalance (1x..8x)"][5] > 1.3
    assert by_name["random jitter (exp)"][5] > 1.3
    assert by_name["moderate heavy tail (Pareto 2.0)"][5] > 1.0
    # the advantage grows with heterogeneity
    assert by_name["strong imbalance (1x..8x)"][5] > by_name["homogeneous"][5]
