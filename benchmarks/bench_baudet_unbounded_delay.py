"""BAUDET — the paper's unbounded-delay example, measured.

Section II: processor P1 updates x_1 every time unit while P2's k-th
updating phase takes k units.  The paper computes that the delay in
x_2 grows as sqrt(j) and ``l_2(j) = j - sqrt(j) -> infinity``,
satisfying condition (b) without any uniform bound.  We run exactly
that machine and fit the realized delay-growth exponent.
"""

from __future__ import annotations

import numpy as np

from benchmarks._common import emit, once
from repro.analysis.reporting import render_table
from repro.problems import make_jacobi_instance
from repro.runtime.simulator import (
    ChannelSpec,
    ConstantTime,
    DistributedSimulator,
    LinearGrowthTime,
    ProcessorSpec,
)


def run_baudet():
    op = make_jacobi_instance(2, dominance=0.5, seed=1)
    procs = [
        ProcessorSpec(components=(0,), compute_time=ConstantTime(1.0)),
        ProcessorSpec(components=(1,), compute_time=LinearGrowthTime(1.0)),
    ]
    sim = DistributedSimulator(
        op, procs, channels=ChannelSpec(latency=ConstantTime(1e-6)), seed=2
    )
    return sim.run(np.zeros(2), max_iterations=8000, tol=0.0)


def test_baudet_unbounded_delay(benchmark):
    res = once(benchmark, run_baudet)

    delays = res.trace.delays()
    J = res.trace.n_iterations
    # realized staleness of x_2 at P1's updates, sampled on a j-grid
    checkpoints = [100, 500, 1000, 2000, 4000, J]
    rows = []
    for j in checkpoints:
        d = int(delays[: j, 1].max())
        rows.append([j, d, f"{d / np.sqrt(2 * j):.3f}", j - 1 - d])
    table = render_table(
        ["iterations j", "max delay d_2", "d_2 / sqrt(2 j)", "min label l_2"],
        rows,
        title="Baudet example: delay of x_2 grows as sqrt(j), labels diverge",
    )

    # fit growth exponent: log d ~ alpha log j
    js = np.arange(1, J + 1)
    d2 = delays[:, 1].astype(float)
    mask = d2 > 0
    coef = np.polyfit(np.log(js[mask]), np.log(d2[mask]), 1)
    alpha = float(coef[0])
    text = table + f"\n\nfitted growth exponent alpha (d ~ j^alpha): {alpha:.3f} (paper: 0.5)"
    emit("baudet_unbounded_delay", text)

    # paper claim: sqrt growth, exponent ~ 0.5
    assert 0.4 < alpha < 0.6
    # condition (b): labels diverge
    tail_labels = res.trace.labels[-100:, 1]
    head_labels = res.trace.labels[: 100, 1]
    assert tail_labels.min() > head_labels.max()
    # delays are unbounded in practice: the max keeps growing
    assert delays[J // 2 :, 1].max() > delays[: J // 2, 1].max()
