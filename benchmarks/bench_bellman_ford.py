"""BELLMAN — the Arpanet anecdote: distributed async Bellman–Ford.

Section II recalls that the first Arpanet routing algorithm (1969) was
a distributed asynchronous Bellman–Ford.  We run the min-plus operator
on random digraphs under increasingly hostile conditions — bounded
delays, unbounded delays, out-of-order updates — and verify the exact
shortest-path distances always emerge (monotone fixed-point
convergence), with iteration counts degrading gracefully.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from benchmarks._common import emit, once
from repro.analysis.reporting import render_table
from repro.delays.bounded import UniformRandomDelay, ZeroDelay
from repro.delays.outoforder import ShuffledWindowDelay
from repro.delays.unbounded import BaudetSqrtDelay
from repro.solvers import async_bellman_ford, sync_bellman_ford, weights_from_graph


def make_graph(n, p, seed):
    g = nx.gnp_random_graph(n, p, seed=seed, directed=True)
    for u, v in g.edges:
        g[u][v]["weight"] = 0.5 + ((u * 13 + v * 7) % 20) / 5.0
    return g


def run_bellman():
    rows = []
    for n, p in ((20, 0.2), (50, 0.1)):
        g = make_graph(n, p, seed=n)
        W = weights_from_graph(g)
        ref = sync_bellman_ford(W, destination=0)
        regimes = [
            ("fresh", ZeroDelay(n)),
            ("bounded(8)", UniformRandomDelay(n, 8, seed=1)),
            ("Baudet sqrt(j)", BaudetSqrtDelay(n, list(range(0, n, 3)))),
            ("out-of-order window 12", ShuffledWindowDelay(n, 12, seed=2)),
        ]
        rows.append([n, "sync sweeps", ref.iterations * n, 0.0, True])
        for name, delays in regimes:
            res = async_bellman_ford(W, 0, delays=delays, seed=3, max_iterations=500_000)
            err = float(np.max(np.abs(res.x - ref.x)))
            rows.append([n, f"async / {name}", res.iterations, err, err < 1e-9])
    return rows


def test_bellman_ford(benchmark):
    rows = once(benchmark, run_bellman)
    table = render_table(
        ["nodes", "regime", "component updates", "max error vs sync", "exact"],
        rows,
        title="distributed asynchronous Bellman-Ford (Arpanet algorithm)",
    )
    emit("bellman_ford", table)

    # every regime recovers the exact distances
    assert all(r[4] for r in rows)
    # staleness costs at most a modest factor in updates
    for n in (20, 50):
        sub = [r for r in rows if r[0] == n and r[1].startswith("async")]
        fresh = next(r[2] for r in sub if "fresh" in r[1])
        worst = max(r[2] for r in sub)
        assert worst < 60 * fresh
