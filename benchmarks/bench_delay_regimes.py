"""DELAY-REGIMES — conditions (b)/(d): what staleness costs.

One problem, one steering policy, a sweep over delay models from the
degenerate (fresh data) through Chazan–Miranker bounded windows to
Baudet-style unbounded growth and out-of-order shuffles.  Measured:
iterations and macro-iterations to tolerance.  Convergence must hold
for *every* admissible regime (the theory's point), with a graceful
degradation of iteration counts as staleness grows.

A second table re-runs the staleness story as a fleet grid — every
registered delay model × 5 seeds, medians over seeds — so the claim no
longer rests on one lucky stream.
"""

from __future__ import annotations

import numpy as np

from benchmarks._common import emit, fleet_median_table, once
from repro.analysis.reporting import render_table
from repro.core.async_iteration import AsyncIterationEngine
from repro.core.macro import macro_sequence
from repro.delays.bounded import ChaoticRelaxationDelay, UniformRandomDelay, ZeroDelay
from repro.delays.outoforder import OutOfOrderDelay, ShuffledWindowDelay
from repro.delays.unbounded import (
    AdversarialSpikeDelay,
    BaudetSqrtDelay,
    LogGrowthDelay,
    PowerGrowthDelay,
)
from repro.problems import make_jacobi_instance
from repro.steering.policies import PermutationSweeps

TOL = 1e-10
N = 12


def run_regimes():
    op = make_jacobi_instance(N, dominance=0.3, seed=1)
    regimes = [
        ("fresh (Gauss-Seidel-like)", ZeroDelay(N)),
        ("bounded uniform(0..4)", UniformRandomDelay(N, 4, seed=2)),
        ("bounded uniform(0..16)", UniformRandomDelay(N, 16, seed=3)),
        ("chaotic relaxation b=8 (cond. d)", ChaoticRelaxationDelay(N, 8, seed=4)),
        ("log growth (unbounded)", LogGrowthDelay(N, scale=2.0)),
        ("Baudet sqrt(j) (unbounded)", BaudetSqrtDelay(N, [0, 1, 2])),
        ("power j^0.7 (unbounded)", PowerGrowthDelay(N, alpha=0.7)),
        ("adversarial spikes (unbounded)", AdversarialSpikeDelay(N, seed=5)),
        ("out-of-order (bounded base)", OutOfOrderDelay(UniformRandomDelay(N, 4, seed=6), seed=7)),
        ("shuffled window 16 (out-of-order)", ShuffledWindowDelay(N, 16, seed=8)),
    ]
    rows = []
    for name, delays in regimes:
        engine = AsyncIterationEngine(op, PermutationSweeps(N, seed=9), delays)
        res = engine.run(np.zeros(N), max_iterations=400_000, tol=TOL)
        ms = macro_sequence(res.trace)
        adm = res.trace.admissibility()
        rows.append(
            (
                name,
                res.converged,
                res.iterations,
                ms.count,
                adm.max_delay,
                "yes" if adm.monotone else "no",
            )
        )
    return rows


def test_delay_regimes(benchmark):
    rows = once(benchmark, run_regimes)
    table = render_table(
        [
            "delay regime",
            "converged",
            "iterations to tol",
            "macro-iterations",
            "max realized delay",
            "monotone labels",
        ],
        [list(r) for r in rows],
        title=f"staleness sweep on a q=0.7 Jacobi contraction (tol {TOL})",
    )
    emit("delay_regimes", table)

    by_name = {r[0]: r for r in rows}
    # the theory's point: EVERY admissible regime converges
    assert all(r[1] for r in rows), [r[0] for r in rows if not r[1]]
    # fresher data is never slower than the most delayed bounded regime
    assert (
        by_name["fresh (Gauss-Seidel-like)"][2]
        <= by_name["bounded uniform(0..16)"][2]
    )
    # staleness costs iterations: wide window slower than narrow window
    assert (
        by_name["bounded uniform(0..16)"][2]
        >= by_name["bounded uniform(0..4)"][2]
    )
    # out-of-order regimes really were non-monotone
    assert by_name["shuffled window 16 (out-of-order)"][5] == "no"


def test_delay_regimes_multiseed(benchmark):
    """Medians over 5 seeds of every registered delay model (fleet-run)."""
    from repro.scenarios import ScenarioGrid, available

    grid = ScenarioGrid(
        problems=(("jacobi", {"n": N, "dominance": 0.3}),),
        delays=available("delays"),
        steerings=("permutation-sweeps",),
        n_seeds=5,
        master_seed=11,
        max_iterations=40_000,
        tol=1e-8,
    )
    fleet, table = once(
        benchmark,
        lambda: fleet_median_table(
            grid,
            group_by=("delays",),
            metrics=("iterations", "converged", "final_residual"),
            title="median over 5 seeds per delay regime (fleet runner)",
        ),
    )
    emit("delay_regimes_multiseed", table)
    assert not fleet.failures(), [r.error for r in fleet.failures()]
    med = fleet.group_medians(by=("delays",), metrics=("iterations", "converged"))
    # every regime converges on every seed
    assert all(m["converged"] == 1.0 for m in med.values()), med
    # staleness costs iterations in the median too
    assert med[("zero",)]["iterations"] <= med[("uniform",)]["iterations"]
