"""FIG1 — reproduce Figure 1: a two-processor asynchronous schedule.

The paper's Figure 1 shows two processors performing updating phases of
heterogeneous lengths, communicating each completed component update
(arrows), with no synchronization or idle time.  We regenerate the
schedule with the discrete-event simulator, render it as an ASCII
timeline, and verify the defining properties the figure illustrates:
phases back-to-back (no idle time), messages sent at phase completions,
and an admissible (S, L) trace.
"""

from __future__ import annotations

import numpy as np

from benchmarks._common import emit, once
from repro.analysis.reporting import render_schedule, render_table
from repro.problems import make_jacobi_instance
from repro.runtime.simulator import (
    ChannelSpec,
    ConstantTime,
    DistributedSimulator,
    ProcessorSpec,
    UniformTime,
)


def run_fig1():
    op = make_jacobi_instance(2, dominance=0.5, seed=3)
    procs = [
        ProcessorSpec(components=(0,), compute_time=UniformTime(0.8, 1.4)),
        ProcessorSpec(components=(1,), compute_time=UniformTime(1.0, 2.4)),
    ]
    sim = DistributedSimulator(
        op, procs, channels=ChannelSpec(latency=ConstantTime(0.15)), seed=5
    )
    res = sim.run(np.zeros(2), max_iterations=12, tol=0.0)
    return op, res


def test_fig1_schedule(benchmark):
    op, res = once(benchmark, run_fig1)

    lines = [render_schedule(res, width=96)]
    adm = res.trace.admissibility()
    rows = []
    for p in res.phases:
        rows.append([f"P{p.processor}", p.iteration, f"{p.start:.2f}", f"{p.end:.2f}"])
    lines.append("")
    lines.append(
        render_table(["proc", "iteration j", "start", "end"], rows, title="updating phases")
    )
    lines.append("")
    lines.append(f"condition (a) holds: {adm.condition_a}")
    lines.append(f"max realized delay:  {adm.max_delay}")
    lines.append(f"no idle time: phases are back-to-back per processor")
    emit("fig1_schedule", "\n".join(lines))

    # Figure 1 invariants.
    assert adm.condition_a
    assert adm.plausibly_admissible
    # no idle time: each processor's next phase starts at the previous end
    for pid in (0, 1):
        phases = res.phases_of(pid)
        for a, b in zip(phases, phases[1:]):
            assert abs(b.start - a.end) < 1e-9
    # every completed phase sent its update to the peer
    full_msgs = [m for m in res.messages if not m.partial]
    assert len(full_msgs) == len(res.phases)
