"""FIG2 — reproduce Figure 2: flexible communication with partial updates.

Figure 2 extends Figure 1 with hatched arrows: partial updates of the
iterate vector transmitted *before* an updating phase completes.  We
enable inner iterations with partial publication in the simulator,
render the timeline (partials marked ``~``), and verify the flexible
semantics: partials outnumber nothing, precede their phase's
completion, and receivers consume them (refresh_reads).
"""

from __future__ import annotations

import numpy as np

from benchmarks._common import emit, once
from repro.analysis.reporting import render_schedule, render_table
from repro.problems import make_jacobi_instance
from repro.runtime.simulator import (
    ChannelSpec,
    ConstantTime,
    DistributedSimulator,
    ProcessorSpec,
    UniformTime,
)


def run_fig2():
    op = make_jacobi_instance(2, dominance=0.5, seed=3)
    procs = [
        ProcessorSpec(
            components=(0,),
            compute_time=UniformTime(0.9, 1.5),
            inner_steps=3,
            publish_partials=True,
            refresh_reads=True,
        ),
        ProcessorSpec(
            components=(1,),
            compute_time=UniformTime(1.2, 2.4),
            inner_steps=3,
            publish_partials=True,
            refresh_reads=True,
        ),
    ]
    sim = DistributedSimulator(
        op, procs, channels=ChannelSpec(latency=ConstantTime(0.12)), seed=7
    )
    res = sim.run(np.zeros(2), max_iterations=10, tol=0.0)
    return op, res


def test_fig2_flexible_schedule(benchmark):
    op, res = once(benchmark, run_fig2)

    stats = res.message_stats()
    lines = [render_schedule(res, width=96)]
    lines.append("")
    lines.append(
        render_table(
            ["messages", "count"],
            [
                ["full updates", stats["total"] - stats["partial"]],
                ["partial updates (hatched arrows)", stats["partial"]],
            ],
            title="communication mix",
        )
    )
    emit("fig2_flexible_schedule", "\n".join(lines))

    # Figure 2 invariants.
    assert stats["partial"] > 0
    # each completed phase with s inner steps sent s-1 partials per
    # component; phases still in flight when the run stopped may have
    # sent more, so the count is a lower bound
    expected_partials = sum((p.inner_steps - 1) for p in res.phases)
    assert stats["partial"] >= expected_partials
    # every partial from a completed phase is sent strictly before that
    # phase completes
    completed_spans = {}
    for p in res.phases:
        completed_spans.setdefault(p.processor, []).append((p.start, p.end))
    for m in res.messages:
        if m.partial:
            spans = completed_spans.get(m.src, [])
            in_completed = any(s <= m.send_time < e - 1e-12 for s, e in spans)
            after_all = all(m.send_time >= e - 1e-12 for _, e in spans)
            assert in_completed or after_all  # else it's from the trailing in-flight phase
    # the run remains admissible despite mid-phase exchanges
    assert res.trace.admissibility().condition_a
