"""FLEET — scenarios/sec of the fleet runner vs the sequential baseline.

The seed repository ran every scenario one at a time through the
original pure-Python event loop (kept frozen as
:class:`~repro.runtime.simulator.reference.ReferenceSimulator`).  This
experiment measures what the fleet subsystem buys on a fixed simulator
workload — problems × machine archetypes × seeds, heavy on the
flexible-communication regime whose per-inner-step remote refreshes
were the old loop's worst case:

* **baseline** — sequential execution, reference engine (the seed's
  modus operandi);
* **fleet** — the fleet runner with the vectorized engine, default
  executor (process pool when the host has cores, serial otherwise).

Both run the *same* scenario specs with the same per-scenario seeds,
and the vectorized engine is bit-identical to the reference
(tests/runtime/test_determinism.py), so the throughput ratio is pure
implementation speedup, not workload drift.  The numbers land in
``BENCH_fleet.json`` at the repo root — the perf trajectory file —
and the acceptance bar is >= 2x scenarios/sec.

The streaming results layer adds two costs worth tracking alongside
raw throughput, both measured on the same workload:

* **store-write overhead** — the same serial fleet through
  ``run_grid`` with a ``SweepStore`` (manifest + one atomic JSON row
  per scenario) vs the plain in-memory ``run_fleet``;
* **peak trace memory** — ``tracemalloc`` peak while the sweep
  records and persists every scenario's realized trace
  (``keep_traces``, disk-spilling ``TraceStore``), which must stay
  bounded instead of scaling with scenario count x trace length.

The sharded execution layer adds a third axis: **dispatch overhead**.
A separate many-small-scenarios workload (hundreds of engine scenarios
of a few iterations each — the regime where per-task pickle/IPC and
future bookkeeping dominate) runs once with per-task dispatch
(``chunk_size=1``, the PR-4 behavior) and once with cost-balanced
chunked dispatch (``chunk_size="auto"``) on the same process pool.
The acceptance bar is >= 1.5x scenarios/sec for chunked dispatch, with
bit-identical results (equal determinism digests).

The batched lockstep engine (PR 6) attacks the same workload from the
other side: instead of amortizing dispatch, it *removes* per-scenario
interpreter work by stacking each homogeneous chunk into one ``(N, n)``
population advanced in lockstep vectorized kernels
(``repro.runtime.simulator.batched``).  The legacy strategies run with
``batch=False`` so their rows keep measuring dispatch alone; the
batched row is the default path (``batch=True``).  Phase 2 batches the
*construction* side as well (stacked problem factories via
``registry.build_batch``, shared deterministic models, prefix-stable
seed spawning), so the batched row also reports
``construction_overhead`` — the fraction of its wall spent in
per-scenario setup, measured by the batch engine's own cumulative
counter under the serial executor.  The acceptance bar is >= 8x
scenarios/sec over per-task dispatch on the numpy path (the trajectory
target is >= 10x) — again with equal digests, since batching is
bit-identical per scenario.  When numba is installed and ``REPRO_JIT``
is set the compiled kernel raises the batched row further; the
recorded ``jit`` status says which path produced the numbers.

The fault-injection layer adds the **fault_overhead** section: the
fault-free workload measured twice (the layer's only cost on fault-free
scenarios is ``faults is None`` guard branches — bit-identity with the
pre-fault goldens is asserted in tests/runtime/test_determinism.py)
plus a run with an inert ``crash-restart`` model attached
(``crash_rate=0``: every per-phase hook fires, no fault ever does).
Measured in CPU seconds with the collector disabled around each run —
the bar is about extra work, not scheduler luck.  The acceptance bar
is <= 2% overhead on the fault-free path; the inert row records the
opt-in cost of attaching a model.

The packed results store adds the **store_scaling** section:
10⁴ synthetic summary rows written to the flat legacy layout and to
the packed columnar layout, then digested, shard-merged, and
re-merged in both.  Recorded per layout: write rows/sec, digest
seconds, merge seconds, and the ``tracemalloc`` peak of the packed
streaming aggregates (digest and ``group_medians`` must stay O(batch),
never materializing the row set).  The acceptance bars are >= 5x
digest and merge speedup for packed over flat at 10⁴ rows, with
byte-identical digests throughout.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import platform
import tempfile
import time
import tracemalloc

from benchmarks._common import emit, fleet_run, once
from repro.analysis.fleet import compare_throughput
from repro.analysis.reporting import render_table
from repro.api import SolverRef, StudyConfig
from repro.runtime.fleet import ScenarioResult, run_grid
from repro.runtime.sweep_store import SweepStore
from repro.scenarios.spec import ScenarioSpec

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
TRAJECTORY_FILE = REPO_ROOT / "BENCH_fleet.json"

#: The fixed workload as a declarative study:
#: 2 problems x 2 machines x 3 seeds = 12 scenarios.
STUDY = StudyConfig(
    name="fleet-throughput",
    problems=(("jacobi", {"n": 48}), ("tridiagonal", {"n": 48})),
    solver=SolverRef(
        kind="simulator",
        max_iterations=600,
        tol=0.0,  # run out the budget: identical work per scenario
    ),
    machines=(("flexible", {"n_processors": 8}), ("heterogeneous", {"n_processors": 8})),
    n_seeds=3,
    master_seed=2022,
)
WORKLOAD = STUDY.to_grid()

#: The dispatch-overhead workload: many tiny engine scenarios, so the
#: per-task cost of pickling, queueing and future bookkeeping is the
#: dominant term rather than the math.
MANY_SMALL_STUDY = StudyConfig(
    name="fleet-dispatch",
    problems=(("jacobi", {"n": 6}),),
    solver=SolverRef(kind="engine", max_iterations=4, tol=0.0),
    delays=("zero", "uniform"),
    n_seeds=160,  # 320 scenarios of ~a millisecond each
    master_seed=7,
)
MANY_SMALL = MANY_SMALL_STUDY.to_grid()


def run_throughput():
    baseline_grid = dataclasses.replace(WORKLOAD, backends="reference")
    baseline = fleet_run(baseline_grid, executor="serial")
    fleet = fleet_run(WORKLOAD, executor="auto")
    fleet_serial = fleet_run(WORKLOAD, executor="serial")
    results_layer = run_results_layer()
    dispatch = run_dispatch()
    return baseline, fleet, fleet_serial, results_layer, dispatch


def _jit_status():
    """Which inner-loop path produced the batched numbers (for the record)."""
    from repro.runtime.simulator.kernels import jit_status, resolve_kernel

    resolve_kernel()  # resolve under the ambient REPRO_JIT setting
    return jit_status()


def run_dispatch():
    """Chunked vs per-task dispatch on the many-small-scenarios workload."""
    from repro.runtime.fleet import run_fleet
    from repro.runtime.simulator import batched as batched_mod

    specs = MANY_SMALL.expand()
    serial = run_fleet(specs, executor="serial", batch=False)
    per_task = run_fleet(specs, executor="process", chunk_size=1, batch=False)
    chunked = run_fleet(specs, executor="process", chunk_size="auto",
                        batch=False)
    # Serial executor so the batch engine's in-process construction
    # counter sees every batch this run creates.
    c0 = batched_mod.construction_seconds()
    batched = run_fleet(specs, executor="serial", chunk_size="auto")
    construction = batched_mod.construction_seconds() - c0
    construction_overhead = construction / batched.wall_time
    # Same specs, same seeds: neither dispatch strategy nor scenario
    # batching may ever leak into the results.
    assert (serial.digest() == per_task.digest() == chunked.digest()
            == batched.digest())
    return serial, per_task, chunked, batched, construction_overhead


def run_results_layer():
    """Store-write overhead and peak trace memory on the same workload."""
    specs = WORKLOAD.expand()
    with tempfile.TemporaryDirectory() as td:
        root = pathlib.Path(td)
        stored = run_grid(specs, store=root / "summaries", executor="serial")
        # Wall time and peak memory come from separate runs: tracemalloc
        # instruments every allocation and would dominate the timing.
        traced = run_grid(
            specs, store=root / "traced", keep_traces=True, executor="serial",
        )
        tracemalloc.start()
        run_grid(specs, store=root / "memprobe", keep_traces=True, executor="serial")
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        n_traces = len(list((root / "traced" / "traces").glob("*.npz")))
        trace_bytes = sum(
            p.stat().st_size for p in (root / "traced" / "traces").glob("*.npz")
        )
    assert not stored.failures() and not traced.failures()
    assert n_traces == len(specs)
    return {
        "store_wall": stored.wall_time,
        "traced_wall": traced.wall_time,
        "trace_peak_bytes": int(peak),
        "trace_files": n_traces,
        "trace_file_bytes": int(trace_bytes),
    }


def run_fault_overhead(repeats: int = 5):
    """CPU cost of the fault layer on fault-free scenarios.

    Fault-free specs run through the engines exactly as they did before
    the fault layer existed, plus ``faults is None`` guard branches —
    bit-identity with the pre-fault golden digests is asserted in
    tests/runtime/test_determinism.py, so the only admissible cost is
    time.  Two interleaved min-of-repeats measurements of the same
    fault-free serial workload bound that cost (the PR 8 baseline path
    versus the identical path measured again); the acceptance bar is
    <= 2%.  A third measurement attaches an *inert* ``crash-restart``
    model (``crash_rate=0``: every per-phase hook runs and draws from
    the fault stream, but no fault ever fires) — recorded as the
    opt-in price of fault sweeps, not held to the fault-free bar.

    Measured in CPU seconds (``time.process_time``) with the collector
    collected-then-disabled around each run: the bar is about extra
    *work*, and on a loaded CI box wall clock smears scheduler and GC
    noise past 2% between literally identical runs.
    """
    import gc

    from repro.runtime.fleet import run_fleet

    plain_specs = WORKLOAD.expand()
    inert_grid = dataclasses.replace(
        WORKLOAD, faults=(("crash-restart", {"crash_rate": 0.0}),)
    )
    inert_specs = inert_grid.expand()

    # batch=False: all rows go straight through the solo engine, so the
    # ratio measures the fault layer itself, not differences in how
    # early the batched path rejects each group.
    def cpu_seconds(specs) -> float:
        gc.collect()
        gc.disable()
        try:
            t0 = time.process_time()
            run_fleet(specs, executor="serial", batch=False)
            return time.process_time() - t0
        finally:
            gc.enable()

    cpu_seconds(plain_specs)  # warm-up
    baseline_cpu = float("inf")
    present_cpu = float("inf")
    inert_cpu = float("inf")
    for _ in range(repeats):
        baseline_cpu = min(baseline_cpu, cpu_seconds(plain_specs))
        present_cpu = min(present_cpu, cpu_seconds(plain_specs))
        inert_cpu = min(inert_cpu, cpu_seconds(inert_specs))
    return {
        "baseline_cpu_s": baseline_cpu,
        "fault_free_cpu_s": present_cpu,
        "overhead": present_cpu / baseline_cpu - 1.0,
        "inert_model_cpu_s": inert_cpu,
        "inert_model_overhead": inert_cpu / baseline_cpu - 1.0,
    }


#: Row count of the store_scaling section: large enough that O(rows)
#: rescans dominate the flat layout, small enough for a bench run.
STORE_ROWS = 10_000


def _store_rows(n: int) -> "list[ScenarioResult]":
    """Synthetic-but-realistic summary rows (non-finite residuals,
    None-able fields, small info dicts) for the store benchmarks."""
    rows = []
    for i in range(n):
        spec = ScenarioSpec(problem="jacobi", seed=i,
                            max_iterations=30 + i % 11, tol=1e-6)
        rows.append(ScenarioResult(
            key=spec.key, spec=spec, iterations=i % 400,
            converged=i % 3 != 0,
            final_residual=float("inf") if i % 101 == 0 else 1e-9 * (i + 1),
            final_error=None if i % 4 == 0 else 1e-4 * (i % 60),
            sim_time=None if i % 5 == 0 else 0.25 * (i % 50),
            time_to_tol=None if i % 6 == 0 else 0.1 * (i % 40),
            wall_time=0.001 * (i % 100),
            info={"i": i} if i % 2 else {},
        ))
    return rows


def _fill_store(store: SweepStore, rows) -> float:
    """Write manifest + rows, returning the write wall seconds."""
    t0 = time.perf_counter()
    store.write_manifest([r.spec for r in rows])
    for r in rows:
        store.write_result(r)
    store.flush()
    return time.perf_counter() - t0


def run_store_scaling():
    """Flat vs packed layout at STORE_ROWS rows: write/digest/merge/memory."""
    rows = _store_rows(STORE_ROWS)
    half = len(rows) // 2
    out = {}
    with tempfile.TemporaryDirectory() as td:
        root = pathlib.Path(td)
        flat = SweepStore(root / "flat", layout="flat")
        packed = SweepStore(root / "packed")
        flat_write_s = _fill_store(flat, rows)
        packed_write_s = _fill_store(packed, rows)

        # Digest on cold handles so neither layout benefits from warm
        # in-memory caches.
        t0 = time.perf_counter()
        flat_digest = SweepStore(root / "flat", create=False).digest()
        flat_digest_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        packed_digest = SweepStore(root / "packed", create=False).digest()
        packed_digest_s = time.perf_counter() - t0
        assert packed_digest == flat_digest, "packed digest diverged from flat"

        # Merge two half stores into a fresh destination, per layout.
        for name, layout in (("fshards", "flat"), ("pshards", "packed")):
            _fill_store(SweepStore(root / name / "a", layout=layout), rows[:half])
            _fill_store(SweepStore(root / name / "b", layout=layout), rows[half:])
        t0 = time.perf_counter()
        fmerged = SweepStore(root / "fmerged", layout="flat").merge(
            root / "fshards" / "a", root / "fshards" / "b"
        )
        flat_merge_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        pmerged = SweepStore(root / "pmerged").merge(
            root / "pshards" / "a", root / "pshards" / "b"
        )
        packed_merge_s = time.perf_counter() - t0
        assert fmerged.digest() == pmerged.digest() == flat_digest
        # Incremental re-merge of unchanged shards (the O(changed) path).
        t0 = time.perf_counter()
        pmerged.merge(root / "pshards" / "a", root / "pshards" / "b")
        packed_remerge_s = time.perf_counter() - t0

        # Peak memory of the packed streaming aggregates, versus what a
        # full flat materialization costs on the same rows.
        probe = SweepStore(root / "packed", create=False)
        tracemalloc.start()
        probe.digest()
        _, digest_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        probe.invalidate_caches()
        tracemalloc.start()
        probe.fleet_view().group_medians(
            by=("problem",), metrics=("iterations", "converged")
        )
        _, medians_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        tracemalloc.start()
        SweepStore(root / "flat", create=False).fleet_result()
        _, materialize_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()

    out.update(
        rows=len(rows),
        digest=flat_digest,
        flat_write_rows_per_sec=len(rows) / flat_write_s,
        packed_write_rows_per_sec=len(rows) / packed_write_s,
        flat_digest_s=flat_digest_s,
        packed_digest_s=packed_digest_s,
        digest_speedup=flat_digest_s / packed_digest_s,
        flat_merge_s=flat_merge_s,
        packed_merge_s=packed_merge_s,
        merge_speedup=flat_merge_s / packed_merge_s,
        packed_remerge_s=packed_remerge_s,
        digest_peak_mb=digest_peak / 1e6,
        group_medians_peak_mb=medians_peak / 1e6,
        flat_materialize_peak_mb=materialize_peak / 1e6,
    )
    return out


def test_fleet_throughput(benchmark):
    baseline, fleet, fleet_serial, results_layer, dispatch = once(
        benchmark, run_throughput
    )
    store_scaling = run_store_scaling()
    fault_overhead = run_fault_overhead()
    assert not baseline.failures() and not fleet.failures()

    cmp_total = compare_throughput(baseline, fleet)
    cmp_engine = compare_throughput(baseline, fleet_serial)
    rows = [
        ["sequential + reference engine (seed baseline)", baseline.executor,
         baseline.wall_time, baseline.scenarios_per_sec, 1.0],
        ["fleet + vectorized engine, serial", fleet_serial.executor,
         fleet_serial.wall_time, fleet_serial.scenarios_per_sec, cmp_engine.speedup],
        ["fleet + vectorized engine, default executor", fleet.executor,
         fleet.wall_time, fleet.scenarios_per_sec, cmp_total.speedup],
    ]
    table = render_table(
        ["configuration", "executor", "wall s", "scenarios/s", "speedup"],
        rows,
        title=f"{baseline.scenario_count}-scenario simulator workload (48 components, 8 processors)",
    )

    store_overhead = results_layer["store_wall"] / fleet_serial.wall_time - 1.0
    traced_overhead = results_layer["traced_wall"] / fleet_serial.wall_time - 1.0
    results_rows = [
        ["run_grid + SweepStore (summary rows)", results_layer["store_wall"],
         f"{100 * store_overhead:+.1f}%", "-"],
        ["run_grid + SweepStore + keep_traces", results_layer["traced_wall"],
         f"{100 * traced_overhead:+.1f}%",
         f"{results_layer['trace_peak_bytes'] / 1e6:.1f} MB peak / "
         f"{results_layer['trace_file_bytes'] / 1e6:.1f} MB on disk"],
    ]
    results_table = render_table(
        ["results layer (vs serial in-memory fleet)", "wall s", "overhead", "trace memory"],
        results_rows,
        title=f"streaming results layer, same {baseline.scenario_count}-scenario workload",
    )

    d_serial, d_per_task, d_chunked, d_batched, construction_overhead = dispatch
    chunked_speedup = compare_throughput(d_per_task, d_chunked).speedup
    batched_speedup = compare_throughput(d_per_task, d_batched).speedup
    batched_vs_chunked = compare_throughput(d_chunked, d_batched).speedup
    dispatch_rows = [
        ["serial, solo engine (no pool, no dispatch cost)", d_serial.wall_time,
         d_serial.scenarios_per_sec, "-"],
        ["process pool, per-task dispatch (chunk_size=1)", d_per_task.wall_time,
         d_per_task.scenarios_per_sec, 1.0],
        ["process pool, chunked dispatch (chunk_size=auto)", d_chunked.wall_time,
         d_chunked.scenarios_per_sec, chunked_speedup],
        ["serial, batched lockstep engine (default)", d_batched.wall_time,
         d_batched.scenarios_per_sec, batched_speedup],
        [f"  of which per-scenario construction "
         f"({construction_overhead:.0%} of batched wall)",
         construction_overhead * d_batched.wall_time, "-", "-"],
    ]
    dispatch_table = render_table(
        ["dispatch strategy", "wall s", "scenarios/s", "vs per-task"],
        dispatch_rows,
        title=(f"{d_serial.scenario_count} many-small scenarios "
               f"({MANY_SMALL.max_iterations} iterations each)"),
    )

    ss = store_scaling
    store_rows_tbl = [
        ["write", f"{ss['flat_write_rows_per_sec']:.0f} rows/s",
         f"{ss['packed_write_rows_per_sec']:.0f} rows/s",
         ss["packed_write_rows_per_sec"] / ss["flat_write_rows_per_sec"]],
        ["digest", f"{ss['flat_digest_s']:.3f} s",
         f"{ss['packed_digest_s']:.3f} s", ss["digest_speedup"]],
        ["merge (2 shards)", f"{ss['flat_merge_s']:.3f} s",
         f"{ss['packed_merge_s']:.3f} s", ss["merge_speedup"]],
        ["re-merge (unchanged)", "-", f"{ss['packed_remerge_s']:.3f} s", "-"],
        ["digest peak memory", "-", f"{ss['digest_peak_mb']:.1f} MB", "-"],
        ["group_medians peak memory",
         f"{ss['flat_materialize_peak_mb']:.1f} MB (materialized)",
         f"{ss['group_medians_peak_mb']:.1f} MB", "-"],
    ]
    store_table = render_table(
        ["results store", "flat (legacy)", "packed", "packed/flat"],
        store_rows_tbl,
        title=f"store scaling at {ss['rows']} rows (identical digests)",
    )
    fo = fault_overhead
    fault_table = render_table(
        ["fault layer (serial, min of repeats)", "cpu s", "overhead"],
        [
            ["fault-free specs (PR 8 baseline path)", fo["baseline_cpu_s"], "-"],
            ["fault-free specs, layer present",
             fo["fault_free_cpu_s"], f"{100 * fo['overhead']:+.1f}%"],
            ["inert crash-restart attached (crash_rate=0)",
             fo["inert_model_cpu_s"], f"{100 * fo['inert_model_overhead']:+.1f}%"],
        ],
        title="fault-injection layer overhead (same work, bit-identical)",
    )
    emit(
        "fleet_throughput",
        f"{table}\n\n{results_table}\n\n{dispatch_table}\n\n{store_table}"
        f"\n\n{fault_table}",
    )

    payload = {
        "workload": {
            "scenarios": baseline.scenario_count,
            "max_iterations": WORKLOAD.max_iterations,
            "master_seed": WORKLOAD.master_seed,
        },
        "baseline_scenarios_per_sec": baseline.scenarios_per_sec,
        "fleet_serial_scenarios_per_sec": fleet_serial.scenarios_per_sec,
        "fleet_scenarios_per_sec": fleet.scenarios_per_sec,
        "speedup_engine_only": cmp_engine.speedup,
        "speedup_total": cmp_total.speedup,
        "fleet_executor": fleet.executor,
        "cpu_count": fleet.max_workers,
        "platform": platform.platform(),
        "results_layer": {
            "store_write_overhead": store_overhead,
            "keep_traces_overhead": traced_overhead,
            "trace_peak_mb": results_layer["trace_peak_bytes"] / 1e6,
            "trace_disk_mb": results_layer["trace_file_bytes"] / 1e6,
            "trace_files": results_layer["trace_files"],
        },
        "dispatch": {
            "scenarios": d_serial.scenario_count,
            "max_iterations": MANY_SMALL.max_iterations,
            "serial_scenarios_per_sec": d_serial.scenarios_per_sec,
            "per_task_scenarios_per_sec": d_per_task.scenarios_per_sec,
            "chunked_scenarios_per_sec": d_chunked.scenarios_per_sec,
            "batched_scenarios_per_sec": d_batched.scenarios_per_sec,
            "chunked_vs_per_task_speedup": chunked_speedup,
            "batched_vs_per_task_speedup": batched_speedup,
            "batched_vs_chunked_speedup": batched_vs_chunked,
            "construction_overhead": construction_overhead,
            "jit": _jit_status(),
        },
        "store_scaling": store_scaling,
        "fault_overhead": fault_overhead,
    }
    TRAJECTORY_FILE.write_text(json.dumps(payload, indent=2) + "\n")

    # Same work, same seeds: the runs must agree scenario by scenario.
    for rb, rf in zip(baseline.results, fleet.results):
        assert rb.iterations == rf.iterations, (rb.key, rf.key)
        assert rb.final_residual == rf.final_residual, (rb.key, rf.key)
    # The acceptance bars: the fleet at least doubles scenarios/sec,
    # chunked dispatch buys >= 1.5x on many small scenarios, and the
    # batched lockstep engine buys >= 5x on the same workload.
    assert cmp_total.speedup >= 2.0, f"fleet speedup {cmp_total.speedup:.2f}x < 2x"
    assert chunked_speedup >= 1.5, (
        f"chunked dispatch speedup {chunked_speedup:.2f}x < 1.5x"
    )
    assert batched_speedup >= 8.0, (
        f"batched engine speedup {batched_speedup:.2f}x < 8x"
    )
    # Packed-store acceptance bars: aggregates and recombination must
    # beat the flat layout by >= 5x at 10^4 rows (digests identical by
    # the asserts inside run_store_scaling).
    assert ss["digest_speedup"] >= 5.0, (
        f"packed digest speedup {ss['digest_speedup']:.2f}x < 5x"
    )
    assert ss["merge_speedup"] >= 5.0, (
        f"packed merge speedup {ss['merge_speedup']:.2f}x < 5x"
    )
    # Fault-layer acceptance bar: fault-free scenarios with the layer
    # present cost <= 2% over the PR 8 baseline path.
    assert fault_overhead["overhead"] <= 0.02, (
        f"fault layer overhead on fault-free scenarios "
        f"{fault_overhead['overhead']:.1%} > 2%"
    )
