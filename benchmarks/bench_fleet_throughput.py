"""FLEET — scenarios/sec of the fleet runner vs the sequential baseline.

The seed repository ran every scenario one at a time through the
original pure-Python event loop (kept frozen as
:class:`~repro.runtime.simulator.reference.ReferenceSimulator`).  This
experiment measures what the fleet subsystem buys on a fixed simulator
workload — problems × machine archetypes × seeds, heavy on the
flexible-communication regime whose per-inner-step remote refreshes
were the old loop's worst case:

* **baseline** — sequential execution, reference engine (the seed's
  modus operandi);
* **fleet** — the fleet runner with the vectorized engine, default
  executor (process pool when the host has cores, serial otherwise).

Both run the *same* scenario specs with the same per-scenario seeds,
and the vectorized engine is bit-identical to the reference
(tests/runtime/test_determinism.py), so the throughput ratio is pure
implementation speedup, not workload drift.  The numbers land in
``BENCH_fleet.json`` at the repo root — the perf trajectory file —
and the acceptance bar is >= 2x scenarios/sec.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import platform

from benchmarks._common import emit, fleet_run, once
from repro.analysis.fleet import compare_throughput
from repro.analysis.reporting import render_table
from repro.scenarios import ScenarioGrid

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
TRAJECTORY_FILE = REPO_ROOT / "BENCH_fleet.json"

#: The fixed workload: 2 problems x 2 machines x 3 seeds = 12 scenarios.
WORKLOAD = ScenarioGrid(
    problems=(("jacobi", {"n": 48}), ("tridiagonal", {"n": 48})),
    kind="simulator",
    machines=(("flexible", {"n_processors": 8}), ("heterogeneous", {"n_processors": 8})),
    n_seeds=3,
    master_seed=2022,
    max_iterations=600,
    tol=0.0,  # run out the budget: identical work per scenario
)


def run_throughput():
    baseline_grid = dataclasses.replace(WORKLOAD, backends="reference")
    baseline = fleet_run(baseline_grid, executor="serial")
    fleet = fleet_run(WORKLOAD, executor="auto")
    fleet_serial = fleet_run(WORKLOAD, executor="serial")
    return baseline, fleet, fleet_serial


def test_fleet_throughput(benchmark):
    baseline, fleet, fleet_serial = once(benchmark, run_throughput)
    assert not baseline.failures() and not fleet.failures()

    cmp_total = compare_throughput(baseline, fleet)
    cmp_engine = compare_throughput(baseline, fleet_serial)
    rows = [
        ["sequential + reference engine (seed baseline)", baseline.executor,
         baseline.wall_time, baseline.scenarios_per_sec, 1.0],
        ["fleet + vectorized engine, serial", fleet_serial.executor,
         fleet_serial.wall_time, fleet_serial.scenarios_per_sec, cmp_engine.speedup],
        ["fleet + vectorized engine, default executor", fleet.executor,
         fleet.wall_time, fleet.scenarios_per_sec, cmp_total.speedup],
    ]
    table = render_table(
        ["configuration", "executor", "wall s", "scenarios/s", "speedup"],
        rows,
        title=f"{baseline.scenario_count}-scenario simulator workload (48 components, 8 processors)",
    )
    emit("fleet_throughput", table)

    payload = {
        "workload": {
            "scenarios": baseline.scenario_count,
            "max_iterations": WORKLOAD.max_iterations,
            "master_seed": WORKLOAD.master_seed,
        },
        "baseline_scenarios_per_sec": baseline.scenarios_per_sec,
        "fleet_serial_scenarios_per_sec": fleet_serial.scenarios_per_sec,
        "fleet_scenarios_per_sec": fleet.scenarios_per_sec,
        "speedup_engine_only": cmp_engine.speedup,
        "speedup_total": cmp_total.speedup,
        "fleet_executor": fleet.executor,
        "cpu_count": fleet.max_workers,
        "platform": platform.platform(),
    }
    TRAJECTORY_FILE.write_text(json.dumps(payload, indent=2) + "\n")

    # Same work, same seeds: the runs must agree scenario by scenario.
    for rb, rf in zip(baseline.results, fleet.results):
        assert rb.iterations == rf.iterations, (rb.key, rf.key)
        assert rb.final_residual == rf.final_residual, (rb.key, rf.key)
    # The acceptance bar: the fleet at least doubles scenarios/sec.
    assert cmp_total.speedup >= 2.0, f"fleet speedup {cmp_total.speedup:.2f}x < 2x"
