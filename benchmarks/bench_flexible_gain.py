"""FLEX — Section IV claim (per [9], [10]): flexible communication helps.

Same machine, same operator, three communication policies:

* **plain** — one inner step, full updates at phase completion only;
* **multi-step** — s inner steps per phase, still only final updates
  exchanged (the approximate operator T^s of Remark 2);
* **flexible** — s inner steps, partial updates published after every
  inner step and fresh data re-read before each inner step
  (Definition 3 / Figure 2).

Measured: simulated time and updates to tolerance.  The paper's claim
is that flexible communication improves the efficiency of asynchronous
gradient-type algorithms (Cray T3E results of [10]); the reproduction
must show flexible <= multi-step <= plain in time-to-tolerance shape.
"""

from __future__ import annotations

import numpy as np

from benchmarks._common import emit, once
from repro.analysis.rates import time_to_tolerance
from repro.analysis.reporting import render_table
from repro.operators.prox_gradient import ProxGradientOperator
from repro.problems import make_lasso, make_regression
from repro.runtime.simulator import (
    ChannelSpec,
    DistributedSimulator,
    ProcessorSpec,
    UniformTime,
)
from repro.utils.norms import BlockSpec

TOL = 1e-9
INNER = 4


def build_operator():
    data = make_regression(80, 12, sparsity=0.4, seed=1)
    prob = make_lasso(data, l1=0.05, l2=0.15)
    spec = BlockSpec.uniform(12, 4)
    return ProxGradientOperator(prob, prob.smooth.max_step(), spec)


def run_mode(op, inner_steps, publish, refresh, seed):
    procs = [
        ProcessorSpec(
            components=(i,),
            compute_time=UniformTime(0.6 * (1 + 0.5 * i), 1.4 * (1 + 0.5 * i)),
            inner_steps=inner_steps,
            publish_partials=publish,
            refresh_reads=refresh,
        )
        for i in range(4)
    ]
    sim = DistributedSimulator(
        op,
        procs,
        channels=ChannelSpec(latency=UniformTime(0.1, 0.8), fifo=False),
        seed=seed,
    )
    res = sim.run(np.zeros(op.dim), max_iterations=100_000, tol=TOL, residual_every=5)
    assert res.converged
    t = time_to_tolerance(res.trace.residuals, res.trace.times, TOL)
    return (t if t is not None else res.final_time), res


def run_flex():
    op = build_operator()
    out = {}
    for name, (s, pub, refresh) in {
        "plain async (s=1)": (1, False, False),
        f"multi-step (s={INNER}, final only)": (INNER, False, False),
        f"flexible (s={INNER}, partials+refresh)": (INNER, True, True),
    }.items():
        t, res = run_mode(op, s, pub, refresh, seed=3)
        out[name] = (t, res)
    return out


def test_flexible_gain(benchmark):
    results = once(benchmark, run_flex)
    rows = []
    for name, (t, res) in results.items():
        stats = res.message_stats()
        rows.append(
            [
                name,
                res.trace.n_iterations,
                f"{t:.2f}",
                stats["total"],
                stats["partial"],
            ]
        )
    table = render_table(
        ["communication mode", "phases", "sim. time to tol", "messages", "partials"],
        rows,
        title=f"flexible communication gain (tol {TOL}, 4 heterogeneous processors)",
    )
    emit("flexible_gain", table)

    times = {name: t for name, (t, _) in results.items()}
    t_plain = times["plain async (s=1)"]
    t_multi = times[f"multi-step (s={INNER}, final only)"]
    t_flex = times[f"flexible (s={INNER}, partials+refresh)"]
    # paper shape: flexible communication improves efficiency
    assert t_flex < t_plain
    assert t_flex <= t_multi * 1.05
