"""MACRO-EPOCH — Section IV's critique of epochs [30], quantified.

Macro-iterations (Definition 2) look at the labels actually consumed,
so they only certify progress made with post-macro-start data.  Epochs
[30] count update events per machine and are blind to out-of-order
data usage.  We run the same machine under (i) tag-checked FIFO
channels and (ii) untagged reordering channels; epochs advance at the
same pace in both, while the certified macro-iteration count collapses
under reordering — the measurable version of "macro-iteration
sequences account for possible out of order messages while epochs do
not".
"""

from __future__ import annotations

import numpy as np

from benchmarks._common import emit, once
from repro.analysis.comparison import compare_macro_epoch
from repro.analysis.reporting import render_table
from repro.problems import make_jacobi_instance
from repro.runtime.simulator import (
    ChannelSpec,
    DistributedSimulator,
    ProcessorSpec,
    UniformTime,
)


def run_macro_epoch():
    op = make_jacobi_instance(8, dominance=0.4, seed=1)
    procs = [
        ProcessorSpec(components=(2 * i, 2 * i + 1), compute_time=UniformTime(0.5, 1.5))
        for i in range(4)
    ]
    configs = [
        ("in-order (FIFO, tagged)", ChannelSpec(latency=UniformTime(0.05, 0.5), fifo=True)),
        (
            "reordering (tagged)",
            ChannelSpec(latency=UniformTime(0.05, 2.5), fifo=False),
        ),
        (
            "reordering (untagged overwrite)",
            ChannelSpec(latency=UniformTime(0.05, 2.5), fifo=False, apply="overwrite"),
        ),
    ]
    out = []
    for name, chan in configs:
        sim = DistributedSimulator(op, procs, channels=chan, seed=2)
        res = sim.run(np.zeros(8), max_iterations=1500, tol=0.0)
        cmp = compare_macro_epoch(res.trace)
        out.append((name, res, cmp))
    return out


def test_macro_vs_epoch(benchmark):
    results = once(benchmark, run_macro_epoch)

    rows = []
    for name, res, cmp in results:
        rows.append(
            [
                name,
                res.trace.n_iterations,
                res.message_stats()["reordered_arrivals"],
                cmp.epochs.count,
                cmp.macro.count,
                f"{cmp.macro_per_epoch:.3f}",
            ]
        )
    table = render_table(
        [
            "channel regime",
            "iterations",
            "reordered arrivals",
            "epochs [30]",
            "macro-iterations (Def. 2)",
            "macro / epoch",
        ],
        rows,
        title="Macro-iterations certify less under reordering; epochs cannot tell",
    )
    emit("macro_vs_epoch", table)

    by_name = {name: (res, cmp) for name, res, cmp in results}
    ordered_res, ordered = by_name["in-order (FIFO, tagged)"]
    reordered_res, reordered = by_name["reordering (tagged)"]
    untagged_res, untagged = by_name["reordering (untagged overwrite)"]
    # FIFO channels deliver in order; non-FIFO ones demonstrably reorder
    assert ordered_res.message_stats()["reordered_arrivals"] == 0
    assert reordered_res.message_stats()["reordered_arrivals"] > 0
    # untagged application makes consumed labels genuinely non-monotone
    assert not untagged.monotone_labels
    # epochs advance similarly (same steering physics) ...
    assert untagged.epochs.count >= 0.5 * ordered.epochs.count
    # ... but certified macro progress degrades monotonically with disorder
    assert reordered.macro_per_epoch < ordered.macro_per_epoch
    assert untagged.macro_per_epoch <= reordered.macro_per_epoch + 0.05
