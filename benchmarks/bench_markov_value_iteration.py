"""MARKOV — Section III: asynchronous iterations for Markov systems.

The survey lists Markov systems among the domains where macro-
iteration-based convergence applies.  We run asynchronous policy
evaluation (``x = beta P x + r``) and expected-absorption-cost
computation (``x = Q x + r``) under bounded, unbounded and
out-of-order delay regimes: all must converge to the exact values,
with the per-macro-iteration contraction respecting the known factor
(``beta`` for discounted evaluation).
"""

from __future__ import annotations

import numpy as np

from benchmarks._common import emit, once
from repro.analysis.reporting import render_table
from repro.core.async_iteration import AsyncIterationEngine
from repro.core.convergence import theorem1_certificate
from repro.core.macro import macro_sequence
from repro.delays.bounded import UniformRandomDelay
from repro.delays.outoforder import ShuffledWindowDelay
from repro.delays.unbounded import BaudetSqrtDelay
from repro.problems import (
    absorption_cost_operator,
    discounted_value_operator,
    random_absorbing_chain,
    random_markov_chain,
)
from repro.steering.policies import PermutationSweeps

TOL = 1e-10
N = 16
BETA = 0.85


def run_markov():
    rng = np.random.default_rng(1)
    P = random_markov_chain(N, density=0.4, seed=2)
    value_op = discounted_value_operator(P, rng.standard_normal(N), beta=BETA)
    Q, _ = random_absorbing_chain(N, 2, absorb_prob=0.15, seed=3)
    cost_op = absorption_cost_operator(Q, np.ones(N))
    regimes = [
        ("bounded(6)", lambda: UniformRandomDelay(N, 6, seed=4)),
        ("Baudet sqrt(j)", lambda: BaudetSqrtDelay(N, [0, 1, 2, 3])),
        ("out-of-order window 12", lambda: ShuffledWindowDelay(N, 12, seed=5)),
    ]
    rows = []
    for op_name, op, rho in (
        (f"discounted value (beta={BETA})", value_op, 1.0 - BETA),
        ("absorption cost", cost_op, None),
    ):
        fp = op.fixed_point()
        for reg_name, make_delays in regimes:
            engine = AsyncIterationEngine(op, PermutationSweeps(N, seed=6), make_delays())
            res = engine.run(np.zeros(N), max_iterations=500_000, tol=TOL)
            ms = macro_sequence(res.trace)
            err = float(np.max(np.abs(res.x - fp)))
            bound_ok = "-"
            if rho is not None:
                cert = theorem1_certificate(res.trace, ms, rho)
                bound_ok = "yes" if cert.satisfied else "NO"
            rows.append(
                [op_name, reg_name, res.converged, res.iterations, ms.count, f"{err:.1e}", bound_ok]
            )
    return rows


def test_markov_value_iteration(benchmark):
    rows = once(benchmark, run_markov)
    table = render_table(
        [
            "computation",
            "delay regime",
            "converged",
            "iterations",
            "macro-iters",
            "error vs exact",
            "(1-beta)^k bound",
        ],
        rows,
        title=f"asynchronous Markov-system computations (tol {TOL})",
    )
    emit("markov_value_iteration", table)

    assert all(r[2] for r in rows)
    assert all(float(r[5]) < 1e-7 for r in rows)
    # the beta-contraction macro bound holds for discounted evaluation
    assert all(r[6] in ("yes", "-") for r in rows)
