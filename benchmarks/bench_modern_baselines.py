"""MODERN — [30], [32]: DAve-PG and ARock against the paper's framework.

The modern asynchronous comparators the paper discusses: ARock's
damped KM coordinate corrections and DAve-PG's delayed-averaged
proximal gradient.  We run all four methods (ISTA sync baseline, the
paper's flexible async solver, ARock, DAve-PG) on the same lasso and
sparse-logistic instances to the same tolerance and report
coordinate-update counts and final objectives.  The reproduction claim
is qualitative: every method reaches the same optimum; the paper-style
flexible solver is competitive in per-coordinate work.
"""

from __future__ import annotations

import numpy as np

from benchmarks._common import emit, once
from repro.analysis.reporting import render_table
from repro.problems import (
    make_classification,
    make_lasso,
    make_regression,
    make_sparse_logistic,
)
from repro.solvers import ARockSolver, DAvePGSolver, FlexibleAsyncSolver, ISTASolver

TOL = 1e-8


def run_modern():
    reg = make_regression(100, 16, sparsity=0.4, seed=1)
    cls = make_classification(120, 12, seed=2)
    cases = [
        ("lasso", make_lasso(reg, l1=0.05, l2=0.1)),
        ("sparse logistic", make_sparse_logistic(cls, l1=0.02, l2=0.2)),
    ]
    rows = []
    for pname, prob in cases:
        xstar = prob.solution()
        n = prob.dim
        solvers = [
            ("ISTA (sync)", ISTASolver(), n),  # per iteration: n coords
            ("flexible async (this paper)", FlexibleAsyncSolver(seed=3), 1),
            ("ARock [32]", ARockSolver(max_delay=5, eta=0.8, seed=4), 1),
            ("DAve-PG [30]", DAvePGSolver(4, seed=5), n),  # full gradient/worker
        ]
        for sname, solver, coords_per_iter in solvers:
            res = solver.solve(prob, tol=TOL, max_iterations=2_000_000)
            rows.append(
                [
                    pname,
                    sname,
                    res.converged,
                    res.iterations * coords_per_iter,
                    f"{res.error_to(xstar):.1e}",
                    f"{res.objective:.8f}",
                ]
            )
    return rows


def test_modern_baselines(benchmark):
    rows = once(benchmark, run_modern)
    table = render_table(
        ["problem", "method", "converged", "coordinate updates", "error vs x*", "objective"],
        rows,
        title=f"modern asynchronous baselines, tol {TOL}",
    )
    emit("modern_baselines", table)

    assert all(r[2] for r in rows)
    # every method agrees on the optimum
    for pname in ("lasso", "sparse logistic"):
        objs = [float(r[5]) for r in rows if r[0] == pname]
        assert max(objs) - min(objs) < 1e-6
        errs = [float(r[4]) for r in rows if r[0] == pname]
        assert max(errs) < 1e-4
    # the flexible solver is within an order of magnitude of ARock in
    # coordinate-update count on each problem
    for pname in ("lasso", "sparse logistic"):
        sub = {r[1]: r[3] for r in rows if r[0] == pname}
        assert sub["flexible async (this paper)"] < 10 * sub["ARock [32]"]
