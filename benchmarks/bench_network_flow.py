"""NETFLOW — [6], [8]: asynchronous relaxation for convex network flow.

The original application domain of the paper's author: dual price
adjustment for strictly convex separable network flow.  We sweep
network sizes, comparing synchronous Jacobi/Gauss–Seidel relaxation
against totally asynchronous relaxation (unbounded-delay capable) and
asynchronous fixed-step dual gradient [8].  All methods must find the
same flows (strong duality, conservation), with async iteration counts
within a constant factor of synchronous component updates.
"""

from __future__ import annotations

import numpy as np

from benchmarks._common import emit, once
from repro.analysis.reporting import render_table
from repro.delays.unbounded import BaudetSqrtDelay
from repro.problems import random_flow_network
from repro.solvers import NetworkFlowRelaxationSolver

TOL = 1e-9


def run_netflow():
    rows = []
    for n_nodes in (10, 20, 40):
        net = random_flow_network(n_nodes, arc_density=0.2, seed=n_nodes)
        results = {}
        for label, method, mode, kwargs in [
            ("sync Jacobi", "relaxation", "sync_jacobi", {}),
            ("sync Gauss-Seidel", "relaxation", "sync_gauss_seidel", {}),
            ("async relaxation [6]", "relaxation", "async", {}),
            ("async gradient [8]", "gradient", "async", {}),
            (
                "async relax, unbounded delays",
                "relaxation",
                "async",
                {"delays": BaudetSqrtDelay(n_nodes - 1, [0])},
            ),
        ]:
            solver = NetworkFlowRelaxationSolver(method, mode, seed=5, **kwargs)
            r = solver.solve(net, tol=TOL, max_iterations=2_000_000)
            results[label] = r
            # sync methods count sweeps; normalize to component updates
            updates = (
                r.iterations * (n_nodes - 1) if mode.startswith("sync") else r.iterations
            )
            rows.append(
                [
                    n_nodes,
                    label,
                    r.converged,
                    updates,
                    f"{r.info['primal_infeasibility']:.1e}",
                    f"{r.objective:.6f}",
                ]
            )
        # all methods agree on the optimal cost
        objs = [r.objective for r in results.values()]
        assert max(objs) - min(objs) < 1e-6, objs
    return rows


def test_network_flow(benchmark):
    rows = once(benchmark, run_netflow)
    table = render_table(
        [
            "nodes",
            "method",
            "converged",
            "component updates",
            "conservation viol.",
            "optimal cost",
        ],
        rows,
        title=f"convex separable network flow, dual relaxation (tol {TOL})",
    )
    emit("network_flow", table)

    assert all(r[2] for r in rows)
    # conservation satisfied everywhere
    assert all(float(r[4]) < 1e-6 for r in rows)
    # async relaxation stays within a constant factor of sync Jacobi updates
    for n_nodes in (10, 20, 40):
        subset = {r[1]: r for r in rows if r[0] == n_nodes}
        sync_updates = subset["sync Jacobi"][3]
        async_updates = subset["async relaxation [6]"][3]
        assert async_updates < 25 * sync_updates
