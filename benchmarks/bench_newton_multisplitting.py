"""NEWTON — [25]: asynchronous modified Newton multi-splitting.

El Baz & Elkihel's IPDPSW 2015 result: block modified-Newton updates
(exact block solves against a frozen block-diagonal Hessian splitting)
accelerate asynchronous relaxation for network flow duals.  We compare
asynchronous scalar gradient relaxation against asynchronous block
Newton on the same duals, sweeping block counts — the Newton variant
must need far fewer component updates.
"""

from __future__ import annotations

import numpy as np

from benchmarks._common import emit, once
from repro.analysis.reporting import render_table
from repro.problems import make_network_flow_dual
from repro.solvers import AsyncNewtonSolver, AsyncSolver

TOL = 1e-9


def run_newton():
    rows = []
    for n_nodes in (12, 24):
        prob = make_network_flow_dual(n_nodes, 0.3, seed=n_nodes)
        xstar = prob.solution()
        rg = AsyncSolver(seed=1).solve(prob, tol=TOL, max_iterations=2_000_000)
        rows.append(
            [
                n_nodes,
                "async gradient relaxation",
                "-",
                rg.converged,
                rg.iterations,
                f"{rg.error_to(xstar):.1e}",
            ]
        )
        for nb in (2, 4, 8):
            rn = AsyncNewtonSolver(nb, seed=2).solve(
                prob, tol=TOL, max_iterations=2_000_000
            )
            rows.append(
                [
                    n_nodes,
                    "async modified Newton [25]",
                    nb,
                    rn.converged,
                    rn.iterations,
                    f"{rn.error_to(xstar):.1e}",
                ]
            )
    return rows


def test_newton_multisplitting(benchmark):
    rows = once(benchmark, run_newton)
    table = render_table(
        ["nodes", "method", "blocks", "converged", "updates to tol", "error vs x*"],
        rows,
        title=f"Newton multi-splitting vs gradient relaxation on flow duals (tol {TOL})",
    )
    emit("newton_multisplitting", table)

    assert all(r[3] for r in rows)
    for n_nodes in (12, 24):
        sub = [r for r in rows if r[0] == n_nodes]
        grad = next(r[4] for r in sub if "gradient" in r[1])
        newts = [r[4] for r in sub if "Newton" in r[1]]
        # second-order blocks beat first-order relaxation per update
        assert min(newts) < grad
        # fewer blocks (bigger block solves) need fewer updates
        newton_by_blocks = [
            (r[2], r[4]) for r in sub if "Newton" in r[1]
        ]
        newton_by_blocks.sort()
        assert newton_by_blocks[0][1] <= newton_by_blocks[-1][1] * 1.5
