"""OBSTACLE — [26]: sub-domain methods with several exchange frequencies.

The IBM SP4 experiments of [26] solved the obstacle problem with
asynchronous sub-domain (strip) relaxation and studied how the
*frequency of data exchange* affects time to convergence: exchanging
after every inner sweep costs bandwidth, exchanging rarely costs
staleness.  We reproduce the sweep with strips of a 2-D grid: the
number of inner steps per phase (1, 2, 4, 8, 16) is the inverse
exchange frequency.  The expected shape is a shallow optimum at a
moderate frequency once per-message overhead is accounted for.
"""

from __future__ import annotations

import numpy as np

from benchmarks._common import emit, once
from repro.analysis.rates import time_to_tolerance
from repro.analysis.reporting import render_table
from repro.problems import make_obstacle_problem
from repro.runtime.simulator import (
    ChannelSpec,
    ConstantTime,
    DistributedSimulator,
    ProcessorSpec,
    UniformTime,
)

TOL = 1e-8
N_STRIPS = 4
INNER_SWEEP_COST = 0.25   # simulated time per inner sweep of one strip
COMM_OVERHEAD = 0.6       # per-phase packing/send cost on the compute path
MESSAGE_COST = 0.4        # in-flight latency


def run_obstacle():
    prob = make_obstacle_problem(10, 12, force=-2.0, seed=1)
    spec = prob.strip_decomposition(N_STRIPS)
    op = prob.projected_jacobi_operator(spec)
    rows = []
    for inner in (1, 2, 4, 8, 16):
        procs = [
            ProcessorSpec(
                components=(i,),
                compute_time=UniformTime(
                    0.9 * (INNER_SWEEP_COST * inner + COMM_OVERHEAD),
                    1.1 * (INNER_SWEEP_COST * inner + COMM_OVERHEAD),
                ),
                inner_steps=inner,
            )
            for i in range(N_STRIPS)
        ]
        sim = DistributedSimulator(
            op,
            procs,
            channels=ChannelSpec(latency=ConstantTime(MESSAGE_COST)),
            seed=2,
        )
        res = sim.run(
            np.zeros(op.dim), max_iterations=100_000, tol=TOL, residual_every=4
        )
        assert res.converged
        t = time_to_tolerance(res.trace.residuals, res.trace.times, TOL)
        t = t if t is not None else res.final_time
        lcp = prob.residual_complementarity(res.x)
        rows.append(
            [
                inner,
                f"1/{inner}",
                res.trace.n_iterations,
                int(res.stats["messages_sent"]),
                f"{t:.1f}",
                f"{lcp:.1e}",
            ]
        )
    return rows


def test_obstacle_exchange_freq(benchmark):
    rows = once(benchmark, run_obstacle)
    table = render_table(
        [
            "inner sweeps / phase",
            "exchange freq",
            "phases",
            "messages",
            "sim. time to tol",
            "LCP residual",
        ],
        rows,
        title=f"obstacle problem, {N_STRIPS} strips, exchange-frequency sweep ([26])",
    )
    emit("obstacle_exchange_freq", table)

    # all frequencies converge to the LCP solution (the natural residual
    # carries the stencil's ~4/h^2 scaling, hence the looser threshold)
    assert all(float(r[5]) < 1e-4 for r in rows)
    times = [float(r[4]) for r in rows]
    msgs = [r[3] for r in rows]
    # fewer exchanges -> strictly fewer messages
    assert all(b <= a for a, b in zip(msgs, msgs[1:]))
    # the extremes are not optimal: some interior frequency beats at
    # least one endpoint (the [26] shape)
    assert min(times[1:-1]) <= min(times[0], times[-1]) + 1e-9
