"""ORDER-INTERVALS — [23]: verified enclosures without contraction constants.

The survey highlights asynchronous iterations "with order intervals":
for isotone operators, running the iteration from a sub-solution and a
super-solution under the same schedule yields a monotone enclosure of
the fixed point whose width is a *computable, verified* error bound —
no contraction constant required.  We run the bracketing engine on the
obstacle problem and Bellman–Ford, compare its verified bound with the
true error, and measure the overhead versus a single (unverified) run.
"""

from __future__ import annotations

import numpy as np

from benchmarks._common import emit, once
from repro.analysis.reporting import render_table
from repro.core.async_iteration import AsyncIterationEngine
from repro.core.order_intervals import OrderIntervalEngine
from repro.delays.bounded import UniformRandomDelay
from repro.operators.monotone import MinPlusBellmanFordOperator
from repro.problems import make_obstacle_problem
from repro.steering.policies import PermutationSweeps

TOL = 1e-8


def bellman_case():
    W = np.full((12, 12), np.inf)
    rng = np.random.default_rng(1)
    for i in range(1, 12):
        targets = rng.choice(i, size=min(2, i), replace=False)
        for t in targets:
            W[i, t] = float(rng.uniform(0.5, 3.0))
    op = MinPlusBellmanFordOperator(W, 0)
    fp = op.fixed_point()
    hi = fp + 25.0
    hi[0] = 0.0
    return "Bellman-Ford (12 nodes)", op, np.zeros(12), hi, fp


def obstacle_case():
    prob = make_obstacle_problem(6, 6, seed=2)
    op = prob.projected_jacobi_operator()
    fp = op.fixed_point()
    n = op.dim
    return "obstacle LCP (6x6)", op, np.full(n, -5.0), np.full(n, 5.0), fp


def run_cases():
    rows = []
    for name, op, lo, hi, fp in (bellman_case(), obstacle_case()):
        n = op.n_components
        steering = PermutationSweeps(n, seed=3)
        delays = UniformRandomDelay(n, 4, seed=4)
        eng = OrderIntervalEngine(op, steering, delays)
        res = eng.run(lo, hi, tol=TOL, max_iterations=500_000)
        true_err = float(np.max(np.abs(res.lower - fp)))
        single = AsyncIterationEngine(
            op, PermutationSweeps(n, seed=3), UniformRandomDelay(n, 4, seed=4)
        ).run(np.zeros(n), max_iterations=500_000, tol=TOL)
        rows.append(
            [
                name,
                res.converged,
                res.iterations,
                f"{res.width:.1e}",
                f"{true_err:.1e}",
                res.enclosure_ok and res.contains(fp),
                single.iterations,
            ]
        )
    return rows


def test_order_intervals(benchmark):
    rows = once(benchmark, run_cases)
    table = render_table(
        [
            "problem",
            "converged",
            "bracketing iterations",
            "verified width",
            "true error",
            "fixed point enclosed",
            "single-run iterations",
        ],
        rows,
        title=f"order-interval enclosures ([23]), width tolerance {TOL}",
    )
    emit("order_intervals", table)

    assert all(r[1] for r in rows)
    assert all(r[5] for r in rows)
    # the verified width really bounds the true error
    for r in rows:
        assert float(r[4]) <= float(r[3]) + 1e-12
    # bracketing costs about the same iteration count as a single run
    for r in rows:
        assert r[2] < 4 * r[6] + 100
