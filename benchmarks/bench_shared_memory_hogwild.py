"""HOGWILD — Remark 3: shared-memory asynchronous machine-learning training.

Remark 3 motivates flexible asynchronous iterations for machine
learning at scale.  This bench runs the *real* (threaded, lock-free)
shared-memory backend on logistic-regression training, sweeping worker
counts, and reports updates, wall time and update throughput.  Under
the Python GIL true parallel speedup is not expected (see module docs);
the claims verified are correctness ones: every configuration reaches
the same trained model, and throughput does not collapse with workers.
"""

from __future__ import annotations

import numpy as np

from benchmarks._common import emit, once
from repro.analysis.reporting import render_table
from repro.operators.prox_gradient import ForwardBackwardOperator
from repro.problems import make_classification, make_logistic
from repro.runtime.shared_memory import SharedMemoryAsyncRunner

TOL = 1e-7


def run_hogwild():
    data = make_classification(200, 12, separation=2.0, seed=1)
    prob = make_logistic(data, l2=0.2)
    op = ForwardBackwardOperator(prob, prob.smooth.max_step())
    xstar = prob.solution()
    rows = []
    for workers in (1, 2, 4):
        runner = SharedMemoryAsyncRunner(op, n_workers=workers)
        res = runner.run(np.zeros(12), max_updates=2_000_000, tol=TOL, timeout=60.0)
        err = float(np.max(np.abs(res.x - xstar)))
        acc = prob.smooth.accuracy(res.x, data.features, data.labels)
        rows.append(
            [
                workers,
                res.converged,
                res.total_updates,
                f"{res.wall_time:.2f}",
                f"{res.total_updates / max(res.wall_time, 1e-9):.0f}",
                f"{err:.1e}",
                f"{acc:.3f}",
            ]
        )
    return rows, prob.smooth.accuracy(xstar, data.features, data.labels)


def test_shared_memory_hogwild(benchmark):
    rows, ref_acc = once(benchmark, run_hogwild)
    table = render_table(
        [
            "threads",
            "converged",
            "updates",
            "wall time (s)",
            "updates/s",
            "error vs x*",
            "train accuracy",
        ],
        rows,
        title=f"lock-free shared-memory logistic training (tol {TOL}, ref acc {ref_acc:.3f})",
    )
    emit("shared_memory_hogwild", table)

    assert all(r[1] for r in rows)
    # every thread count trains the same model
    assert all(float(r[5]) < 1e-3 for r in rows)
    assert all(abs(float(r[6]) - ref_acc) < 0.02 for r in rows)
