"""TERMINATION — [15], [22]: macro-iteration-based stopping criteria.

Detecting that an asynchronous iteration has converged requires a
criterion robust to stale data; El Baz's method [22] quantifies
quiescence over a complete macro-iteration.  We run asynchronous
iterations with the online detector at several thresholds and report
(i) the iteration at which it fires, (ii) the true error at that
moment, and (iii) the guaranteed bound eps/(1-q) — the detector must
never fire with a true error above its guarantee, and the detection
overhead versus an oracle (which watches the true error) must be
bounded.
"""

from __future__ import annotations

import numpy as np

from benchmarks._common import emit, once
from repro.analysis.reporting import render_table
from repro.core.history import VectorHistory
from repro.core.termination import MacroTerminationDetector
from repro.delays.bounded import UniformRandomDelay
from repro.problems import make_jacobi_instance
from repro.steering.policies import PermutationSweeps


def run_one(op, eps, seed):
    n = op.n_components
    q = op.contraction_factor()
    norm = op.norm()
    fp = op.fixed_point()
    det = MacroTerminationDetector(n, eps=eps, q=q)
    spec = op.block_spec
    hist = VectorHistory(np.zeros(n), spec)
    steering = PermutationSweeps(n, seed=seed)
    delays = UniformRandomDelay(n, 4, seed=seed + 1)
    guarantee = det.report().guaranteed_error
    oracle_at = None
    fired_at = None
    for j in range(1, 500_000):
        S = steering.active_set(j)
        labels = delays.labels(j)
        delayed = hist.assemble(labels)
        updates = {}
        disp = 0.0
        for i in S:
            new = op.apply_block(delayed, i)
            disp = max(
                disp, float(np.max(np.abs(new - hist.current[spec.slice(i)])))
            )
            updates[i] = new
        hist.commit(j, updates)
        err = norm(hist.current - fp)
        if oracle_at is None and err < guarantee:
            oracle_at = j
        if det.observe(j, S, labels, disp):
            fired_at = j
            break
    err_at_fire = norm(hist.current - fp)
    return fired_at, oracle_at, err_at_fire, guarantee


def run_termination():
    op = make_jacobi_instance(10, dominance=0.4, seed=1)
    rows = []
    for eps in (1e-4, 1e-6, 1e-8, 1e-10):
        fired, oracle, err, guarantee = run_one(op, eps, seed=2)
        rows.append(
            [
                f"{eps:.0e}",
                fired,
                oracle,
                f"{fired / oracle:.2f}" if oracle else "-",
                f"{err:.1e}",
                f"{guarantee:.1e}",
                err <= guarantee,
            ]
        )
    return rows


def test_termination(benchmark):
    rows = once(benchmark, run_termination)
    table = render_table(
        [
            "eps",
            "detector fired at",
            "oracle reached bound at",
            "overhead ratio",
            "true error at fire",
            "guarantee eps/(1-q)",
            "guarantee held",
        ],
        rows,
        title="macro-iteration termination detection ([15], [22])",
    )
    emit("termination", table)

    # the detector's guarantee holds at every threshold
    assert all(r[6] for r in rows)
    # detection overhead versus the oracle stays bounded
    for r in rows:
        assert r[1] is not None and r[2] is not None
        assert r[1] <= 5 * r[2] + 50
