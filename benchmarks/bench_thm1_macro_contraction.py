"""THM1 — Theorem 1's macro-iteration contraction bound, measured.

For the Definition 4 operator with step gamma in (0, 2/(mu+L)], the
bound (5) says the squared max-norm error after k macro-iterations is
at most (1 - gamma*mu)^k times the initial squared error.  We run the
flexible engine on lasso, ridge and logistic instances across step
sizes and delay regimes, check the bound on every iteration, and
report guaranteed vs realized per-macro contraction.
"""

from __future__ import annotations

import numpy as np

from benchmarks._common import emit, once
from repro.analysis.reporting import render_table
from repro.core.convergence import theorem1_certificate
from repro.core.flexible import FlexibleIterationEngine, InterpolatedPartials
from repro.core.macro import macro_sequence
from repro.delays.bounded import UniformRandomDelay
from repro.delays.unbounded import BaudetSqrtDelay
from repro.operators.prox_gradient import ProxGradientOperator
from repro.problems import (
    make_classification,
    make_lasso,
    make_logistic,
    make_regression,
    make_ridge,
)
from repro.steering.policies import PermutationSweeps


def build_cases():
    reg = make_regression(80, 10, sparsity=0.4, seed=1)
    cls = make_classification(100, 10, seed=2)
    return [
        ("lasso", make_lasso(reg, l1=0.05, l2=0.15)),
        ("ridge", make_ridge(reg, l2=0.3)),
        ("logistic", make_logistic(cls, l2=0.25)),
    ]


def run_thm1():
    rows = []
    worst_overall = 0.0
    for pname, prob in build_cases():
        gmax = prob.smooth.max_step()
        for gname, gamma in [("gamma_max", gmax), ("gamma_max/4", gmax / 4)]:
            n = prob.dim
            for dname, delays in [
                ("bounded(4)", UniformRandomDelay(n, 4, seed=3)),
                ("baudet sqrt(j)", BaudetSqrtDelay(n, [0, 1])),
            ]:
                op = ProxGradientOperator(prob, gamma)
                engine = FlexibleIterationEngine(
                    op,
                    PermutationSweeps(n, seed=4),
                    delays,
                    InterpolatedPartials(seed=5),
                )
                res = engine.run(np.zeros(n), max_iterations=60_000, tol=1e-11)
                ms = macro_sequence(res.trace)
                cert = theorem1_certificate(res.trace, ms, op.rho)
                worst_overall = max(worst_overall, cert.worst_margin)
                rows.append(
                    [
                        pname,
                        gname,
                        dname,
                        res.iterations,
                        ms.count,
                        "yes" if cert.satisfied else "NO",
                        f"{cert.worst_margin:.3f}",
                        f"{1 - op.rho:.4f}",
                        f"{cert.empirical_rate:.4f}",
                    ]
                )
    return rows, worst_overall


def test_thm1_macro_contraction(benchmark):
    rows, worst = once(benchmark, run_thm1)
    table = render_table(
        [
            "problem",
            "step",
            "delays",
            "iters",
            "macro K",
            "bound holds",
            "worst err^2/bound",
            "guaranteed (1-rho)",
            "realized rate",
        ],
        rows,
        title="Theorem 1: ||x(j)-x*||^2 <= (1-rho)^k max_i ||x_i(0)-x*||^2",
    )
    emit("thm1_macro_contraction", table)

    # The bound must hold in every configuration.
    assert all(r[5] == "yes" for r in rows), rows
    assert worst <= 1.0 + 1e-9
    # The realized rate is at least as fast as guaranteed, everywhere.
    for r in rows:
        assert float(r[8]) <= float(r[7]) + 1e-9
