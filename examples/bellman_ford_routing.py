"""The Arpanet algorithm: distributed asynchronous Bellman–Ford routing.

Builds a random wide-area network topology, computes shortest paths to
a destination with synchronous sweeps, then re-derives them with
totally asynchronous updates under message reordering and unbounded
delays — the regime the 1969 Arpanet implementation actually faced.

Run:  python examples/bellman_ford_routing.py
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.analysis.reporting import render_table
from repro.delays.outoforder import ShuffledWindowDelay
from repro.delays.unbounded import AdversarialSpikeDelay
from repro.solvers import async_bellman_ford, sync_bellman_ford, weights_from_graph


def main() -> None:
    g = nx.connected_watts_strogatz_graph(40, 4, 0.3, seed=1)
    dg = nx.DiGraph()
    dg.add_nodes_from(g.nodes)
    rng = np.random.default_rng(2)
    for u, v in g.edges:
        w = float(rng.uniform(1.0, 10.0))
        dg.add_edge(u, v, weight=w)
        dg.add_edge(v, u, weight=w)
    W = weights_from_graph(dg)
    print(f"topology: {dg.number_of_nodes()} routers, {dg.number_of_edges()} links")

    ref = sync_bellman_ford(W, destination=0)
    print(f"synchronous sweeps: {ref.iterations}, "
          f"max distance {ref.x.max():.2f}")

    rows = []
    n = W.shape[0]
    for label, delays in [
        ("default bounded delays", None),
        ("out-of-order window 16", ShuffledWindowDelay(n, 16, seed=3)),
        ("adversarial delay spikes", AdversarialSpikeDelay(n, spike_prob=0.1, fraction=0.5, seed=4)),
    ]:
        res = async_bellman_ford(W, 0, delays=delays, seed=5, max_iterations=1_000_000)
        err = float(np.max(np.abs(res.x - ref.x)))
        rows.append([label, res.converged, res.iterations, f"{err:.1e}"])
    print()
    print(render_table(
        ["delay regime", "converged", "node updates", "max error vs sync"], rows
    ))

    hops = ref.x[ref.x < 1e17]
    print()
    print(f"routing table to node 0 agrees across all regimes; "
          f"mean route length {hops.mean():.2f}")


if __name__ == "__main__":
    main()
