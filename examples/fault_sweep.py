"""Fault-injection walkthrough: convergence vs fault intensity.

Run from the repository root:

    PYTHONPATH=src python examples/fault_sweep.py      # or: make example-faults

The paper's unbounded-delay theory is a statement about *unreliable*
hardware; the fault axes make the unreliability explicit and
sweepable.  This example sweeps a crash-rate x delay-regime grid
through ``Study.run()``, then a fault-model x topology grid loaded
from StudyConfig TOML, and renders both as convergence-vs-fault-
intensity tables.  Everything rides the ordinary fleet/store stack:
per-scenario seeds, determinism digests and resume work unchanged.
"""

from __future__ import annotations

import repro
from repro.analysis.fleet import render_fault_intensity
from repro.api import FaultRef, SolverRef, Study, StudyConfig

# ----------------------------------------------------------------------
# 1. Crash-rate x delay-regime grid.  The delay regime of a simulator
#    scenario is induced by its machine archetype (uniform phases vs
#    WAN latencies), and the fault axis layers crash/restart cycles on
#    top.  Fault models draw from their own SeedSequence-spawned
#    streams, so the "none" rows are bit-identical to a run without
#    the fault layer at all.
# ----------------------------------------------------------------------
config = StudyConfig(
    name="crash-rate-sweep",
    problems=(("jacobi", {"n": 12}),),
    solver=SolverRef(kind="simulator", max_iterations=800, tol=1e-8),
    machines=(("uniform", {"n_processors": 4}),
              ("wan", {"n_processors": 4})),
    faults=(
        "none",
        FaultRef("crash-restart", {"crash_rate": 0.01}),
        FaultRef("crash-restart", {"crash_rate": 0.05}),
    ),
    n_seeds=3,
    execution={"executor": "serial"},
)
result = Study(config).run()
assert not result.failures(), [r.error for r in result.failures()]
print(f"crash-rate sweep: {config.size} scenarios, digest {result.digest()[:16]}…")
print()
print(render_fault_intensity(
    result.fleet,
    group_by=("machine", "fault", "fault_params"),
    counters=("fault_crashes", "fault_drops"),
    title="convergence vs crash rate per delay regime (median over 3 seeds)",
))

# ----------------------------------------------------------------------
# 2. The same family declaratively: >= 3 fault models x >= 2 cluster
#    topologies from a StudyConfig TOML document.  ``[[faults]]`` and
#    ``[[topologies]]`` are ordinary grid axes — names and params
#    validate eagerly against the registry (`python -m repro sweep
#    --list-axes` renders all of them), and fault-bearing lockstep
#    groups are rejected by name into the solo engine, so batching
#    stays a pure fast path.
# ----------------------------------------------------------------------
TOML = """
name = "fault-topology-grid"
n_seeds = 3

[solver]
kind = "simulator"
max_iterations = 800
tol = 1e-8

[execution]
executor = "serial"

[[problems]]
name = "jacobi"
params = { n = 12 }

[[machines]]
name = "uniform"
params = { n_processors = 4 }

[[faults]]
name = "crash-restart"
params = { crash_rate = 0.02 }

[[faults]]
name = "limplock"
params = { straggler = 1, factor = 6.0 }

[[faults]]
name = "lossy-channel"
params = { drop_prob = 0.1 }

[[faults]]
name = "chaos"

[[topologies]]
name = "ring"

[[topologies]]
name = "two-tier"
params = { rack_size = 2 }
"""
toml_config = StudyConfig.from_toml(TOML)
assert toml_config == StudyConfig.from_toml(toml_config.to_toml())
toml_result = Study(toml_config).run()
assert not toml_result.failures(), [r.error for r in toml_result.failures()]
print()
print(f"fault x topology grid: {toml_config.size} scenarios, "
      f"digest {toml_result.digest()[:16]}…")
print()
print(render_fault_intensity(
    toml_result.fleet,
    group_by=("fault", "topology"),
    title="convergence vs fault intensity per topology (median over 3 seeds)",
))

# ----------------------------------------------------------------------
# 3. The counters in those tables come from the per-scenario FaultLog:
#    every injected event is counted into ScenarioResult.info, survives
#    the strict-JSON round-trip and rides the packed SweepStore as int
#    columns without moving the determinism digest.
# ----------------------------------------------------------------------
sample = max(toml_result.ok(),
             key=lambda r: r.info.get("fault_drops", 0))
print()
print(f"harshest row ({sample.spec.fault} @ {sample.spec.topology}): "
      f"crashes={sample.info.get('fault_crashes', 0)} "
      f"drops={sample.info.get('fault_drops', 0)} "
      f"limp_episodes={sample.info.get('fault_limp_episodes', 0)} "
      f"max_staleness={sample.info.get('fault_max_staleness', 0)}")
