"""Study-API walkthrough: from a declarative config to multi-seed medians.

Run from the repository root:

    PYTHONPATH=src python examples/fleet_sweep.py      # or: make example-fleet

The same sweep is available without writing code:

    python -m repro sweep --seeds 3 --max-iterations 3000
    python -m repro study run examples/study.toml
"""

from __future__ import annotations

import dataclasses

import repro
from repro.analysis.fleet import compare_throughput, render_backend_comparison
from repro.api import SolverRef, Study, StudyConfig

# ----------------------------------------------------------------------
# 1. Describe a study declaratively: 2 problems x 2 delay models x
#    2 steering policies x 3 seeds = 24 scenarios.  Axis entries are
#    registry names (see `python -m repro sweep --list-axes`), with
#    optional parameter overrides as (name, params) pairs — everything
#    validates eagerly, with did-you-mean suggestions on typos.
# ----------------------------------------------------------------------
config = StudyConfig(
    name="fleet-walkthrough",
    problems=(("jacobi", {"n": 24}), "tridiagonal"),
    delays=("uniform", "baudet-sqrt"),
    steerings=("cyclic", "random-subset"),
    n_seeds=3,
    master_seed=0,
    solver=SolverRef(kind="engine", max_iterations=3000, tol=1e-8),
)
study = Study(config)
print(f"study: {study!r}")
print(f"grid: {config.size} scenarios, e.g. {study.specs()[0].key}")

# ----------------------------------------------------------------------
# 2. Run it.  Every scenario carries its own independently spawned
#    seed, so "auto" (process pool on multi-core hosts), "thread" and
#    "serial" all give bit-identical results — certified by the
#    determinism digest.
# ----------------------------------------------------------------------
result = study.run()
assert not result.failures(), [r.error for r in result.failures()]
print(f"determinism digest: {result.digest()}")

# ----------------------------------------------------------------------
# 3. Aggregate: per-group medians over seeds are the statistically
#    honest form of every claim in the paper.  The report's grouping
#    and metrics come from the config's [report] section (or
#    kind-appropriate defaults).
# ----------------------------------------------------------------------
print()
print(result.report(title="median over 3 seeds per (problem, delay regime)"))

# ----------------------------------------------------------------------
# 4. Simulator-kind studies sweep machine archetypes instead of delay
#    models; backends="reference" runs the frozen seed engine, which is
#    how the throughput benchmark measures the vectorization speedup.
# ----------------------------------------------------------------------
sim_config = StudyConfig(
    name="simulated-machines",
    problems=(("jacobi", {"n": 24}),),
    solver=SolverRef(kind="simulator", max_iterations=300, tol=1e-8),
    machines=("uniform", "flexible"),
    n_seeds=2,
    execution={"executor": "serial"},
)
sim_result = Study(sim_config).run()
baseline = Study(dataclasses.replace(
    sim_config, solver=SolverRef(kind="simulator", backends=("reference",),
                                 max_iterations=300, tol=1e-8),
)).run()
cmp = compare_throughput(baseline.fleet, sim_result.fleet)
print()
print(sim_result.report(title="simulated machines (vectorized engine)"))
print(f"\nvectorized vs reference engine on this workload: {cmp.speedup:.2f}x scenarios/sec")

# ----------------------------------------------------------------------
# 5. The backend axis: one study, several execution engines.  Scenarios
#    differing only in backend share seeds, so the pivot table is a
#    like-for-like comparison (vectorized and reference must agree
#    exactly; shared-memory runs the same problems on real threads).
# ----------------------------------------------------------------------
cross_config = dataclasses.replace(
    sim_config,
    name="cross-backend",
    machines=("uniform",),
    solver=SolverRef(kind="simulator",
                     backends=("vectorized", "reference", "shared-memory"),
                     max_iterations=3000, tol=1e-8),
)
cross_result = Study(cross_config).run()
print()
print(render_backend_comparison(cross_result.fleet, metric="iterations",
                                group_by=("machine",)))

# ----------------------------------------------------------------------
# 6. Every study serializes: write the TOML, reload it, run it from the
#    CLI (`python -m repro study run <file>`), resume it after a kill
#    (`study resume`) — all bit-identical by content hash.
# ----------------------------------------------------------------------
reloaded = repro.StudyConfig.from_toml(config.to_toml())
assert reloaded == config and reloaded.content_hash == config.content_hash
print(f"\nconfig round-trips through TOML: content hash {config.content_hash}")

# ----------------------------------------------------------------------
# 7. Sharded execution: split one grid across hosts and recombine.
#    `grid.shard(k, i)` is content-hash-stable and seed-preserving, so
#    k per-host stores merged with `SweepStore.merge` certify
#    bit-identically with a single-host run.  On the CLI this is
#    `study run STUDY.toml --shard i/k --out hostN` per host plus one
#    `python -m repro store merge --out merged host1 host2 ...`.
#    A cache directory makes overlapping studies incremental: every
#    scenario is looked up by content hash before executing, so the
#    "merged-from-shards" scenarios below all resolve from the cache
#    instantly in the final single-host rerun.
# ----------------------------------------------------------------------
import tempfile  # noqa: E402

from repro.runtime.fleet import run_grid  # noqa: E402
from repro.runtime.sweep_store import SweepStore  # noqa: E402

shard_config = dataclasses.replace(
    sim_config, name="sharded", solver=SolverRef(kind="simulator",
                                                 max_iterations=300, tol=1e-8),
)
grid = shard_config.to_grid()
with tempfile.TemporaryDirectory() as td:
    cache = f"{td}/cache"
    for i in range(2):  # "two hosts", here just two calls
        run_grid(grid.shard(2, i), store=f"{td}/host{i}", cache=cache,
                 executor="serial")
    merged = SweepStore(f"{td}/merged").merge(f"{td}/host0", f"{td}/host1")
    single = Study(shard_config).run(out=f"{td}/single", cache=cache)
    assert merged.digest() == single.digest()
    print(f"\n2-shard merge certifies against single host: {merged.digest()[:16]}…")
    print(f"(and the single-host rerun was {len(single.ok())}/{grid.size} cache hits)")
