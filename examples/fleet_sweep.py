"""Fleet-runner walkthrough: from a declarative grid to multi-seed medians.

Run from the repository root:

    PYTHONPATH=src python examples/fleet_sweep.py      # or: make example-fleet

The same sweep is available without writing code:

    python -m repro sweep --seeds 3 --max-iterations 3000
"""

from __future__ import annotations

import dataclasses

from repro.analysis.fleet import compare_throughput, render_fleet_table
from repro.runtime.fleet import run_fleet
from repro.scenarios import ScenarioGrid

# ----------------------------------------------------------------------
# 1. Describe a grid declaratively: 2 problems x 2 delay models x
#    2 steering policies x 3 seeds = 24 scenarios.  Axis entries are
#    registry names (see `python -m repro sweep --list-axes`), with
#    optional parameter overrides as (name, params) pairs.
# ----------------------------------------------------------------------
grid = ScenarioGrid(
    problems=(("jacobi", {"n": 24}), "tridiagonal"),
    delays=("uniform", "baudet-sqrt"),
    steerings=("cyclic", "random-subset"),
    n_seeds=3,
    master_seed=0,
    max_iterations=3000,
    tol=1e-8,
)
specs = grid.expand()
print(f"grid: {grid.size} scenarios, e.g. {specs[0].key}")

# ----------------------------------------------------------------------
# 2. Run the fleet.  Every scenario carries its own independently
#    spawned seed, so "auto" (process pool on multi-core hosts),
#    "thread" and "serial" all give bit-identical results.
# ----------------------------------------------------------------------
fleet = run_fleet(specs, executor="auto")
assert not fleet.failures(), [r.error for r in fleet.failures()]

# ----------------------------------------------------------------------
# 3. Aggregate: per-group medians over seeds are the statistically
#    honest form of every claim in the paper.
# ----------------------------------------------------------------------
print()
print(render_fleet_table(
    fleet,
    group_by=("problem", "delays"),
    metrics=("iterations", "converged", "final_residual"),
    title="median over 3 seeds per (problem, delay regime)",
))

# ----------------------------------------------------------------------
# 4. Simulator-kind grids sweep machine archetypes instead of delay
#    models; backends="reference" runs the frozen seed engine, which is
#    how the throughput benchmark measures the vectorization speedup.
# ----------------------------------------------------------------------
sim_grid = ScenarioGrid(
    problems=(("jacobi", {"n": 24}),),
    kind="simulator",
    machines=("uniform", "flexible"),
    n_seeds=2,
    max_iterations=300,
    tol=1e-8,
)
sim_fleet = run_fleet(sim_grid.expand(), executor="serial")
baseline = run_fleet(
    dataclasses.replace(sim_grid, backends="reference").expand(), executor="serial"
)
cmp = compare_throughput(baseline, sim_fleet)
print()
print(render_fleet_table(
    sim_fleet,
    group_by=("machine",),
    metrics=("iterations", "converged", "sim_time"),
    title="simulated machines (vectorized engine)",
))
print(f"\nvectorized vs reference engine on this workload: {cmp.speedup:.2f}x scenarios/sec")

# ----------------------------------------------------------------------
# 5. The backend axis: one grid, several execution engines.  Scenarios
#    differing only in backend share seeds, so the pivot table is a
#    like-for-like comparison (vectorized and reference must agree
#    exactly; shared-memory runs the same problems on real threads).
# ----------------------------------------------------------------------
from repro.analysis.fleet import render_backend_comparison

cross_grid = dataclasses.replace(
    sim_grid, machines=("uniform",),
    backends=("vectorized", "reference", "shared-memory"),
    max_iterations=3000,
)
cross_fleet = run_fleet(cross_grid.expand(), executor="serial")
print()
print(render_backend_comparison(cross_fleet, metric="iterations", group_by=("machine",)))
