"""Figures 1 and 2 side by side: plain vs flexible asynchronous schedules.

Runs the same two-processor machine twice — once exchanging only
completed updates (Figure 1) and once with inner iterations publishing
partial updates (Figure 2) — renders both ASCII timelines, and reports
the efficiency difference.

Run:  python examples/flexible_vs_plain.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.rates import time_to_tolerance
from repro.analysis.reporting import render_schedule
from repro.problems import make_jacobi_instance
from repro.runtime.simulator import (
    ChannelSpec,
    ConstantTime,
    DistributedSimulator,
    ProcessorSpec,
    UniformTime,
)

TOL = 1e-10


def run(flexible: bool):
    op = make_jacobi_instance(2, dominance=0.3, seed=1)
    kwargs = (
        dict(inner_steps=3, publish_partials=True, refresh_reads=True)
        if flexible
        else dict(inner_steps=1)
    )
    procs = [
        ProcessorSpec(components=(0,), compute_time=UniformTime(0.9, 1.3), **kwargs),
        ProcessorSpec(components=(1,), compute_time=UniformTime(1.2, 2.2), **kwargs),
    ]
    sim = DistributedSimulator(
        op, procs, channels=ChannelSpec(latency=ConstantTime(0.2)), seed=2
    )
    res = sim.run(np.zeros(2), max_iterations=5000, tol=TOL, residual_every=1)
    t = time_to_tolerance(res.trace.residuals, res.trace.times, TOL)
    return res, (t if t is not None else res.final_time)


def main() -> None:
    plain, t_plain = run(flexible=False)
    flex, t_flex = run(flexible=True)

    print("=== Figure 1: plain asynchronous iterations ===")
    print(render_schedule(plain, horizon=14.0, width=100))
    print()
    print("=== Figure 2: flexible communication (partial updates ~) ===")
    print(render_schedule(flex, horizon=14.0, width=100))
    print()
    print(f"time to residual < {TOL}:")
    print(f"  plain:    {t_plain:8.2f} simulated units "
          f"({plain.message_stats()['total']} messages)")
    print(f"  flexible: {t_flex:8.2f} simulated units "
          f"({flex.message_stats()['total']} messages, "
          f"{flex.message_stats()['partial']} partial)")


if __name__ == "__main__":
    main()
