"""Remark 3 in practice: asynchronous training of an ML model.

Trains L2-regularized logistic regression two ways:

* on the *simulated* distributed machine — four heterogeneous
  processors with flexible communication, measuring simulated time and
  the realized macro-iteration structure;
* on the *real* shared-memory backend — lock-free Hogwild-style
  threads on one iterate vector.

Both must reach the same trained model as the synchronous reference.

Run:  python examples/machine_learning_training.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reporting import render_table
from repro.core.macro import macro_sequence
from repro.operators.prox_gradient import ForwardBackwardOperator, ProxGradientOperator
from repro.problems import make_classification, make_logistic
from repro.runtime.shared_memory import SharedMemoryAsyncRunner
from repro.runtime.simulator import (
    ChannelSpec,
    DistributedSimulator,
    ProcessorSpec,
    UniformTime,
)
from repro.utils.norms import BlockSpec


def main() -> None:
    data = make_classification(400, 24, separation=2.0, label_flip=0.05, seed=0)
    problem = make_logistic(data, l2=0.1)
    xstar = problem.solution()
    ref_acc = problem.smooth.accuracy(xstar, data.features, data.labels)
    print(f"logistic regression: {data.n_samples} samples, {data.n_features} features, "
          f"reference train accuracy {ref_acc:.3f}")

    rows = []

    # --- simulated distributed machine with flexible communication ----
    gamma = problem.smooth.max_step()
    spec = BlockSpec.uniform(problem.dim, 4)
    op = ProxGradientOperator(problem, gamma, spec)
    procs = [
        ProcessorSpec(
            components=(i,),
            compute_time=UniformTime(0.5 * (1 + i), 1.2 * (1 + i)),  # heterogeneous
            inner_steps=3,
            publish_partials=True,
            refresh_reads=True,
        )
        for i in range(4)
    ]
    sim = DistributedSimulator(
        op, procs, channels=ChannelSpec(latency=UniformTime(0.05, 0.4), fifo=False), seed=1
    )
    res = sim.run(np.zeros(problem.dim), max_iterations=100_000, tol=1e-9, residual_every=5)
    x_sim = op.minimizer_from_fixed_point(res.x)
    ms = macro_sequence(res.trace)
    rows.append(
        [
            "simulated machine (flexible, 4 procs)",
            res.converged,
            res.trace.n_iterations,
            f"{float(np.max(np.abs(x_sim - xstar))):.1e}",
            f"{problem.smooth.accuracy(x_sim, data.features, data.labels):.3f}",
            f"{res.final_time:.1f} (simulated)",
        ]
    )
    print(f"simulated run: {ms.count} macro-iterations, "
          f"{res.message_stats()['partial']} partial updates exchanged")

    # --- real shared-memory threads ----------------------------------
    fb = ForwardBackwardOperator(problem, gamma)
    runner = SharedMemoryAsyncRunner(fb, n_workers=4)
    sm = runner.run(np.zeros(problem.dim), max_updates=3_000_000, tol=1e-7, timeout=120.0)
    rows.append(
        [
            "shared-memory threads (Hogwild, 4 workers)",
            sm.converged,
            sm.total_updates,
            f"{float(np.max(np.abs(sm.x - xstar))):.1e}",
            f"{problem.smooth.accuracy(sm.x, data.features, data.labels):.3f}",
            f"{sm.wall_time:.2f}s (wall)",
        ]
    )

    print()
    print(render_table(
        ["backend", "converged", "updates", "error vs x*", "train acc", "time"], rows
    ))


if __name__ == "__main__":
    main()
