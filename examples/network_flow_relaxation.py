"""The paper's original domain: asynchronous network-flow relaxation [6].

Builds a random strictly-convex-cost flow network, solves its dual by
distributed asynchronous price adjustment (including under Baudet-style
unbounded delays), recovers the primal flows and verifies conservation
and strong duality.

Run:  python examples/network_flow_relaxation.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reporting import render_table
from repro.delays.unbounded import BaudetSqrtDelay
from repro.problems import random_flow_network
from repro.problems.network_flow import NetworkFlowDualProblem
from repro.solvers import NetworkFlowRelaxationSolver


def main() -> None:
    net = random_flow_network(30, arc_density=0.15, supply_scale=2.0, seed=0)
    print(f"network: {net.n_nodes} nodes, {net.n_arcs} arcs, "
          f"connected={net.is_connected()}")

    rows = []
    for label, solver in [
        ("sync Gauss-Seidel sweeps", NetworkFlowRelaxationSolver("relaxation", "sync_gauss_seidel")),
        ("async relaxation [6]", NetworkFlowRelaxationSolver("relaxation", "async", seed=1)),
        ("async dual gradient [8]", NetworkFlowRelaxationSolver("gradient", "async", seed=2)),
        (
            "async relaxation, unbounded delays",
            NetworkFlowRelaxationSolver(
                "relaxation", "async", delays=BaudetSqrtDelay(net.n_nodes - 1, [0, 1]), seed=3
            ),
        ),
    ]:
        res = solver.solve(net, tol=1e-10, max_iterations=3_000_000)
        rows.append(
            [
                label,
                res.converged,
                res.iterations,
                f"{res.info['primal_infeasibility']:.1e}",
                f"{res.objective:.6f}",
            ]
        )
    print()
    print(render_table(
        ["method", "converged", "price updates", "conservation viol.", "primal cost"],
        rows,
    ))

    # Strong duality check on the last solve.
    dual = NetworkFlowDualProblem(net)
    p = dual.solution()
    flows = dual.recover_flows(p)
    print()
    print(f"strong duality gap: "
          f"{abs(net.arc_cost(flows) - (-dual.objective(p))):.2e}")
    print(f"largest |flow|: {np.max(np.abs(flows)):.3f}")


if __name__ == "__main__":
    main()
