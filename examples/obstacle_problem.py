"""Numerical simulation substrate: the obstacle problem ([26]).

Solves the discretized membrane-over-obstacle linear complementarity
problem by asynchronous sub-domain (strip) relaxation on the simulated
machine, prints the contact set, and compares exchange frequencies —
the sweep of the IBM SP4 experiments in [26].

Run:  python examples/obstacle_problem.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.rates import time_to_tolerance
from repro.analysis.reporting import render_table
from repro.problems import make_obstacle_problem
from repro.runtime.simulator import (
    ChannelSpec,
    ConstantTime,
    DistributedSimulator,
    ProcessorSpec,
    UniformTime,
)


def render_contact(prob, u) -> str:
    """ASCII map of the contact set (# = membrane touches obstacle)."""
    contact = (np.abs(u - prob.psi) < 1e-9).reshape(prob.ny, prob.nx)
    lines = []
    for row in contact:
        lines.append("".join("#" if c else "." for c in row))
    return "\n".join(lines)


def main() -> None:
    prob = make_obstacle_problem(16, 16, force=-4.0, obstacle_height=-0.01, seed=0)
    print(f"grid: {prob.nx} x {prob.ny} interior nodes ({prob.dim} unknowns)")

    rows = []
    final_u = None
    for inner in (1, 2, 4, 8):
        spec = prob.strip_decomposition(4)
        op = prob.projected_jacobi_operator(spec)
        procs = [
            ProcessorSpec(
                components=(i,),
                compute_time=UniformTime(0.2 * inner + 0.4, 0.3 * inner + 0.5),
                inner_steps=inner,
            )
            for i in range(4)
        ]
        sim = DistributedSimulator(
            op, procs, channels=ChannelSpec(latency=ConstantTime(0.3)), seed=1
        )
        res = sim.run(np.zeros(prob.dim), max_iterations=200_000, tol=1e-8, residual_every=4)
        t = time_to_tolerance(res.trace.residuals, res.trace.times, 1e-8)
        rows.append(
            [
                inner,
                res.converged,
                res.trace.n_iterations,
                f"{(t if t is not None else res.final_time):.1f}",
                f"{prob.residual_complementarity(res.x):.1e}",
            ]
        )
        final_u = res.x

    print()
    print(render_table(
        ["inner sweeps/phase", "converged", "phases", "sim. time", "LCP residual"],
        rows,
        title="asynchronous strip relaxation, exchange-frequency sweep",
    ))
    print()
    print("contact set (membrane touching the obstacle):")
    print(render_contact(prob, final_u))


if __name__ == "__main__":
    main()
