"""Quickstart: the `repro` front door in five calls.

One lasso instance of the paper's problem (4) through four execution
substrates — the exact Definition 1 engine, flexible communication
(Definitions 3/4), the simulated distributed machine, and real
shared-memory threads — then the same experiment scaled to a
multi-seed study with one declarative object that also serializes to
TOML for `python -m repro study run`.

Run:  PYTHONPATH=src python examples/quickstart.py
"""

from __future__ import annotations

import repro

# ----------------------------------------------------------------------
# 1. One call: a registered problem on the default Definition 1 engine.
#    Problem names come from the unified registry
#    (`python -m repro sweep --list-axes`); extra keywords reach the
#    problem factory, validated eagerly with did-you-mean on typos.
# ----------------------------------------------------------------------
exact = repro.solve("lasso", seed=0, max_iterations=20_000)
print(f"exact engine      : {exact.key}")
print(f"                    converged={exact.converged} "
      f"iterations={exact.iterations} residual={exact.final_residual:.2e}")

# ----------------------------------------------------------------------
# 2. The same problem under flexible communication (Def. 3/4) with
#    unbounded Baudet-style delays, and on the simulated distributed
#    machine (where S and L are *induced* by processor/channel physics)
#    — only the backend changes, never the problem definition.
# ----------------------------------------------------------------------
flex = repro.solve("lasso", backend="flexible", delays="baudet-sqrt",
                   steering="permutation-sweeps", seed=0, max_iterations=20_000)
sim = repro.solve("lasso", backend="simulator", seed=0)
hogwild = repro.solve("lasso", backend="shared-memory", seed=0,
                      max_iterations=20_000)
print(f"flexible engine   : iterations={flex.iterations} converged={flex.converged}")
print(f"simulated machine : iterations={sim.iterations} sim_time={sim.sim_time:.1f}")
print(f"shared memory     : iterations={hogwild.iterations} "
      f"wall={hogwild.result.wall_time * 1e3:.0f}ms")

# ----------------------------------------------------------------------
# 3. Claims need populations, not runs: sweep a grid of delay regimes
#    with independent per-scenario seeds and read grouped medians.
# ----------------------------------------------------------------------
study = repro.sweep(
    problems=("jacobi", "tridiagonal"),
    delays=("uniform", "baudet-sqrt"),
    steerings=("cyclic",),
    n_seeds=3,
    max_iterations=3000,
)
print()
print(study.report())

# ----------------------------------------------------------------------
# 4. The same study as one declarative, serializable object.  The TOML
#    below round-trips bit-identically (same content hash), so
#    `python -m repro study run study.toml` reproduces exactly this.
# ----------------------------------------------------------------------
config = repro.StudyConfig(
    name="quickstart",
    problems=("jacobi", "tridiagonal"),
    delays=("uniform", "baudet-sqrt"),
    n_seeds=3,
    solver={"kind": "engine", "max_iterations": 3000},
)
assert repro.StudyConfig.from_toml(config.to_toml()) == config
print(f"\nstudy config content hash: {config.content_hash}  "
      f"({config.size} scenarios)")
print("--- study.toml ---")
print(config.to_toml())
