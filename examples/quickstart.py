"""Quickstart: solve a lasso problem with flexible asynchronous iterations.

Builds a synthetic regression dataset, sets up the strongly convex
lasso of problem (4), and solves it three ways:

1. synchronous FISTA (reference baseline);
2. totally asynchronous proximal gradient (Definition 1);
3. asynchronous iterations with flexible communication (Definitions
   3/4) — the paper's method, with the Theorem 1 certificate checked
   on the realized trace.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reporting import render_table
from repro.core.convergence import theorem1_certificate
from repro.core.macro import macro_sequence
from repro.problems import make_lasso, make_regression
from repro.solvers import AsyncSolver, FISTASolver, FlexibleAsyncSolver


def main() -> None:
    # A 300-sample, 60-feature sparse regression task.
    data = make_regression(300, 60, sparsity=0.6, noise_std=0.1, seed=0)
    problem = make_lasso(data, l1=0.05, l2=0.05)
    xstar = problem.solution()
    print(f"problem: lasso, dim={problem.dim}, mu={problem.smooth.mu:.4f}, "
          f"L={problem.smooth.lipschitz:.4f}, gamma_max={problem.smooth.max_step():.4f}")

    rows = []
    results = {}
    for name, solver in [
        ("FISTA (synchronous)", FISTASolver()),
        ("async prox-gradient (Def. 1)", AsyncSolver(seed=1)),
        ("flexible async (Def. 3/4)", FlexibleAsyncSolver(seed=2)),
    ]:
        res = solver.solve(problem, tol=1e-9, max_iterations=2_000_000)
        results[name] = res
        rows.append(
            [
                name,
                res.converged,
                res.iterations,
                f"{res.error_to(xstar):.2e}",
                f"{res.objective:.6f}",
            ]
        )
    print()
    print(render_table(["solver", "converged", "iterations", "error vs x*", "objective"], rows))

    # Theorem 1 certificate on the flexible run.
    flex = results["flexible async (Def. 3/4)"]
    ms = macro_sequence(flex.trace)
    cert = theorem1_certificate(flex.trace, ms, flex.info["rho"])
    print()
    print(f"macro-iterations completed: {ms.count}")
    print(f"Theorem 1 bound held on every iteration: {cert.satisfied}")
    print(f"guaranteed rate (1-rho): {1 - cert.rho:.4f}, realized: {cert.empirical_rate:.4f}")
    print(f"constraint (3) violations: {flex.info['constraint_violations']} "
          f"of {flex.info['constraint_checks']} checks")

    sparsity = np.mean(np.abs(flex.x) < 1e-10)
    print(f"recovered solution sparsity: {sparsity:.0%} "
          f"(ground truth: {np.mean(data.true_weights == 0):.0%})")


if __name__ == "__main__":
    main()
