"""Verified error bounds with order intervals ([23]).

For isotone operators, bracketing asynchronous iterations deliver a
*proof* of accuracy: the fixed point is pinched between a rising lower
run and a falling upper run, so the enclosure width is a rigorous
error bound — with no contraction constant and no knowledge of the
solution.  This example computes verified shortest-path distances and
a verified obstacle-problem solution.

Run:  python examples/verified_enclosures.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reporting import render_table
from repro.core.order_intervals import OrderIntervalEngine
from repro.delays.bounded import UniformRandomDelay
from repro.operators.monotone import MinPlusBellmanFordOperator
from repro.problems import make_obstacle_problem
from repro.steering.policies import PermutationSweeps


def main() -> None:
    rows = []

    # --- verified shortest paths --------------------------------------
    rng = np.random.default_rng(0)
    n = 15
    W = np.full((n, n), np.inf)
    for i in range(1, n):
        for t in rng.choice(i, size=min(2, i), replace=False):
            W[i, t] = float(rng.uniform(0.5, 4.0))
    op = MinPlusBellmanFordOperator(W, 0)
    fp = op.fixed_point()
    hi = fp + 50.0
    hi[0] = 0.0
    eng = OrderIntervalEngine(
        op, PermutationSweeps(n, seed=1), UniformRandomDelay(n, 5, seed=2)
    )
    res = eng.run(np.zeros(n), hi, tol=1e-10)
    rows.append(
        [
            "shortest paths (15 nodes)",
            res.iterations,
            f"{res.width:.1e}",
            res.enclosure_ok,
            res.contains(fp),
        ]
    )

    # --- verified obstacle solution -----------------------------------
    prob = make_obstacle_problem(8, 8, force=-3.0, seed=3)
    pop = prob.projected_jacobi_operator()
    m = pop.dim
    eng2 = OrderIntervalEngine(
        pop, PermutationSweeps(m, seed=4), UniformRandomDelay(m, 4, seed=5)
    )
    res2 = eng2.run(np.full(m, -5.0), np.full(m, 5.0), tol=1e-9, max_iterations=500_000)
    rows.append(
        [
            "obstacle LCP (8x8 grid)",
            res2.iterations,
            f"{res2.width:.1e}",
            res2.enclosure_ok,
            res2.contains(pop.fixed_point()),
        ]
    )

    print(render_table(
        ["problem", "iterations", "verified error bound", "enclosure held", "solution enclosed"],
        rows,
        title="order-interval asynchronous iterations: certified accuracy",
    ))
    print()
    print("The 'verified error bound' column is rigorous: the true solution")
    print("is mathematically guaranteed to lie within that distance of the")
    print("returned iterate, with no contraction constant needed.")


if __name__ == "__main__":
    main()
