"""repro — asynchronous iterations with unbounded delays, out-of-order
messages and flexible communication.

A production-grade reproduction of

    D. El-Baz, "On Parallel or Distributed Asynchronous Iterations with
    Unbounded Delays and Possible Out of Order Messages or Flexible
    Communication for Convex Optimization Problems and Machine
    Learning", IPDPSW (IPPS) 2022.

Public API tour
---------------
* ``repro.operators`` — fixed-point maps: affine splittings, gradient
  steps, the Definition 4 prox-gradient operator, inner-iteration
  approximations, Newton multi-splittings, monotone operators.
* ``repro.problems`` — quadratics, lasso/ridge/logistic/SVM, convex
  separable network flow duals, the obstacle problem, dataset makers.
* ``repro.delays`` / ``repro.steering`` — the ``L`` and ``S`` of
  Definition 1 (bounded, unbounded, out-of-order; cyclic, random, ...).
* ``repro.core`` — the asynchronous engines (Definitions 1 and 3),
  macro-iterations (Definition 2), epochs [30], Theorem 1 certificates
  and termination detection.
* ``repro.runtime`` — a deterministic discrete-event simulator of a
  parallel/distributed machine plus a real shared-memory backend.
* ``repro.solvers`` — end-to-end synchronous/asynchronous/flexible
  solvers and modern baselines (ARock, DAve-PG, async Bellman–Ford).
* ``repro.analysis`` — rate fitting, certificates, comparisons, and
  paper-style text reports.

Quickstart
----------
>>> from repro.problems import make_regression, make_lasso
>>> from repro.solvers import FlexibleAsyncSolver
>>> data = make_regression(200, 50, sparsity=0.5, seed=0)
>>> problem = make_lasso(data)
>>> result = FlexibleAsyncSolver(seed=1).solve(problem, tol=1e-8)
>>> result.converged
True
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
