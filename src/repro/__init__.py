"""repro — asynchronous iterations with unbounded delays, out-of-order
messages and flexible communication.

A production-grade reproduction of

    D. El-Baz, "On Parallel or Distributed Asynchronous Iterations with
    Unbounded Delays and Possible Out of Order Messages or Flexible
    Communication for Convex Optimization Problems and Machine
    Learning", IPDPSW (IPPS) 2022.

Public API tour
---------------
* ``repro.solve`` / ``repro.sweep`` / ``repro.load_study`` — the front
  door: one scenario, a declarative grid, or a study file, through any
  execution backend (:mod:`repro.api`).
* ``repro.Study`` / ``repro.StudyConfig`` — the declarative Study
  layer: solve → sweep → store → report as one validated, serializable
  (TOML/JSON) object.
* ``repro.operators`` — fixed-point maps: affine splittings, gradient
  steps, the Definition 4 prox-gradient operator, inner-iteration
  approximations, Newton multi-splittings, monotone operators.
* ``repro.problems`` — quadratics, lasso/ridge/logistic/SVM, convex
  separable network flow duals, the obstacle problem, dataset makers.
* ``repro.delays`` / ``repro.steering`` — the ``L`` and ``S`` of
  Definition 1 (bounded, unbounded, out-of-order; cyclic, random, ...).
* ``repro.core`` — the asynchronous engines (Definitions 1 and 3),
  macro-iterations (Definition 2), epochs [30], Theorem 1 certificates
  and termination detection.
* ``repro.runtime`` — a deterministic discrete-event simulator of a
  parallel/distributed machine, a real shared-memory backend, the
  scenario fleet and the content-addressed sweep store.
* ``repro.scenarios`` — the unified ingredient registry and the
  declarative ``ScenarioSpec``/``ScenarioGrid``.
* ``repro.solvers`` — end-to-end synchronous/asynchronous/flexible
  solvers and modern baselines (ARock, DAve-PG, async Bellman–Ford).
* ``repro.analysis`` — rate fitting, certificates, comparisons, and
  paper-style text reports.

Quickstart
----------
Solve one registered problem on the default Definition 1 engine, then
the same lasso instance on the simulated distributed machine:

>>> import repro
>>> result = repro.solve("jacobi", seed=0)
>>> bool(result.converged)
True
>>> machine_run = repro.solve("lasso", backend="simulator", seed=0)
>>> bool(machine_run.converged)
True
>>> machine_run.sim_time is not None
True

Sweep a small grid (2 delay regimes x 2 seeds) and read the grouped
medians; every scenario carries an independently spawned seed, so the
result is bit-identical on any executor:

>>> study = repro.sweep(problems=("jacobi",), delays=("zero", "uniform"),
...                     n_seeds=2, max_iterations=500, executor="serial")
>>> study.scenario_count
4
>>> len(study.digest())
64

The same sweep as a declarative config that round-trips through TOML:

>>> cfg = repro.StudyConfig(problems=("jacobi",), delays=("zero", "uniform"),
...                         n_seeds=2)
>>> repro.StudyConfig.from_toml(cfg.to_toml()) == cfg
True
"""

from typing import Any

__version__ = "1.1.0"

#: Lazy top-level exports: name -> providing module.  Resolved on first
#: attribute access so ``import repro`` stays light (the CLI's ``info``
#: verb must not pay for NumPy-heavy engine imports).
_EXPORTS = {
    # the Study front door
    "solve": "repro.api",
    "sweep": "repro.api",
    "load_study": "repro.api",
    "Study": "repro.api",
    "StudyConfig": "repro.api",
    "StudyResult": "repro.api",
    "SolveOutcome": "repro.api",
    "ProblemRef": "repro.api",
    "SolverRef": "repro.api",
    # the declarative scenario layer
    "ScenarioSpec": "repro.scenarios",
    "ScenarioGrid": "repro.scenarios",
    # the fleet and its persistence
    "FleetResult": "repro.runtime.fleet",
    "ScenarioResult": "repro.runtime.fleet",
    "run_fleet": "repro.runtime.fleet",
    "run_grid": "repro.runtime.fleet",
    "SweepStore": "repro.runtime.sweep_store",
}

__all__ = ["__version__", *sorted(_EXPORTS)]


def __getattr__(name: str) -> Any:
    """PEP 562 lazy exports (cached in module globals after first use)."""
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from None
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__() -> "list[str]":
    return sorted({*globals(), *_EXPORTS})
