"""Command-line interface: ``python -m repro {info,list,run <exp-id>,sweep}``."""

from __future__ import annotations

import argparse
import pathlib
import subprocess
import sys

from repro import __version__
from repro.experiments import EXPERIMENTS, benchmarks_dir


def _cmd_info() -> int:
    print(f"repro {__version__}")
    print(
        "Reproduction of: El-Baz, 'On Parallel or Distributed Asynchronous "
        "Iterations with Unbounded Delays and Possible Out of Order Messages "
        "or Flexible Communication for Convex Optimization Problems and "
        "Machine Learning', IPDPSW 2022."
    )
    print(f"{len(EXPERIMENTS)} registered experiments; see `python -m repro list`.")
    return 0


def _cmd_list() -> int:
    width = max(len(e.exp_id) for e in EXPERIMENTS)
    for e in EXPERIMENTS:
        print(f"{e.exp_id.ljust(width)}  {e.paper_artifact}  [{e.bench_module}]")
    return 0


def _cmd_run(exp_id: str) -> int:
    matches = [e for e in EXPERIMENTS if e.exp_id.lower() == exp_id.lower()]
    if not matches:
        print(f"unknown experiment {exp_id!r}; try `python -m repro list`", file=sys.stderr)
        return 2
    bench = benchmarks_dir() / matches[0].bench_module
    cmd = [sys.executable, "-m", "pytest", str(bench), "--benchmark-only", "-q", "-s"]
    return subprocess.call(cmd)


def _csv(value: str) -> tuple[str, ...]:
    items = tuple(s.strip() for s in value.split(",") if s.strip())
    if not items:
        raise argparse.ArgumentTypeError(f"empty list: {value!r}")
    return items


def _cmd_sweep(args: argparse.Namespace) -> int:
    # Imported here so `repro info` stays instant.
    from repro.analysis.fleet import render_backend_comparison, render_fleet_table
    from repro.runtime import backends as _backends
    from repro.runtime.fleet import run_fleet, run_grid
    from repro.runtime.sweep_store import SweepStore
    from repro.scenarios import ScenarioGrid, available

    if args.list_axes:
        for axis in ("problem", "steering", "delays", "machine"):
            print(f"{axis}: {', '.join(available(axis))}")
        print(
            "backend: "
            f"{', '.join(_backends.available_backends('model'))} (--kind engine); "
            f"{', '.join(_backends.available_backends('machine'))} (--kind simulator)"
        )
        return 0

    kind = args.kind
    if kind is None:
        # Derive the scenario kind from the requested backends; pure
        # model backends mean an engine sweep, machine backends a
        # simulator sweep.  No backend keeps the engine default.
        kind = "engine"
        if args.backend:
            try:
                kinds = {_backends.backend_kind(b) for b in args.backend}
            except KeyError as exc:
                print(f"sweep: {exc.args[0]}", file=sys.stderr)
                return 2
            if kinds == {"machine"}:
                kind = "simulator"
            elif kinds != {"model"}:
                if "algorithm" in kinds:
                    msg = (
                        f"sweep: backends {args.backend} include algorithm-kind "
                        "comparators, which are not sweepable; use model backends "
                        "(engine sweeps) or machine backends (simulator sweeps)"
                    )
                else:
                    msg = (
                        f"sweep: backends {args.backend} mix kinds {sorted(kinds)}; "
                        "a sweep needs all-model or all-machine backends"
                    )
                print(msg, file=sys.stderr)
                return 2

    try:
        grid = ScenarioGrid(
            problems=args.problems,
            kind=kind,
            steerings=args.steering,
            delays=args.delays,
            machines=args.machines,
            n_seeds=args.seeds,
            master_seed=args.master_seed,
            backends=args.backend,
            max_iterations=args.max_iterations,
            tol=args.tol,
        )
    except (KeyError, ValueError) as exc:
        msg = exc.args[0] if exc.args else str(exc)
        print(f"sweep: {msg}", file=sys.stderr)
        return 2
    out_dir = args.out
    if args.resume is not None:
        resume_path = pathlib.Path(args.resume)
        if out_dir is not None and pathlib.Path(out_dir).resolve() != resume_path.resolve():
            print("sweep: --out and --resume point at different stores", file=sys.stderr)
            return 2
        if not (resume_path / "manifest.json").is_file():
            # An unrelated existing directory is as wrong as a missing
            # one — resuming "into" it would re-run everything and
            # scatter store files there.
            print(f"sweep: no sweep store at {args.resume} to resume", file=sys.stderr)
            return 2
        out_dir = args.resume
    if args.keep_traces and out_dir is None:
        print("sweep: --keep-traces requires --out (or --resume)", file=sys.stderr)
        return 2

    specs = grid.expand()
    print(
        f"sweep: {len(specs)} scenarios "
        f"({len(grid.problems)} problems x "
        + (
            f"{len(grid.delays)} delay models x {len(grid.steerings)} policies"
            if kind == "engine"
            else f"{len(grid.machines)} machines"
        )
        + (f" x {len(grid.backends)} backends" if len(grid.backends) > 1 else "")
        + f" x {args.seeds} seeds), executor={args.executor}"
    )
    if out_dir is not None:
        store = SweepStore(out_dir)
        if args.resume is not None:
            # The same completeness rule run_grid applies, so the
            # banner and what actually re-executes cannot disagree.
            done = sum(
                1 for s in specs
                if store.load_complete_result(s, require_trace=args.keep_traces)
                is not None
            )
            print(f"sweep: resuming from {out_dir}: {done}/{len(specs)} "
                  "scenarios already complete")
        fleet = run_grid(
            specs,
            store=store,
            resume=store if args.resume is not None else None,
            keep_traces=args.keep_traces,
            executor=args.executor,
            max_workers=args.workers,
        )
        print(f"sweep: results in {out_dir} "
              + ("(traces kept)" if args.keep_traces else ""))
    else:
        fleet = run_fleet(specs, executor=args.executor, max_workers=args.workers)

    multi_backend = len(grid.backends) > 1
    group_by = args.group_by
    if group_by is None:
        group_by = ("problem", "delays") if kind == "engine" else ("problem", "machine")
        if multi_backend:
            group_by = group_by + ("backend",)
    metrics = ("iterations", "converged", "final_residual")
    if kind == "simulator":
        metrics = metrics + ("sim_time",)
    print(render_fleet_table(fleet, group_by=group_by, metrics=metrics, title=None))
    if multi_backend:
        pivot_by = ("problem", "delays") if kind == "engine" else ("problem", "machine")
        print(render_backend_comparison(fleet, metric="iterations", group_by=pivot_by))

    for r in fleet.failures():
        print(f"FAILED {r.key}: {r.error}", file=sys.stderr)
    if args.json is not None:
        pathlib.Path(args.json).write_text(fleet.to_json())
        print(f"wrote {args.json}")
    return 1 if fleet.failures() else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="asynchronous-iterations reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("info", help="print version and paper banner")
    sub.add_parser("list", help="list registered experiments")
    run = sub.add_parser("run", help="run one experiment's benchmark")
    run.add_argument("exp_id", help="experiment id from `list` (e.g. THM1)")

    sweep = sub.add_parser(
        "sweep",
        help="run a scenario grid through the fleet runner",
        description=(
            "Expand a declarative scenario grid (problem x delay model x "
            "steering policy x seeds, or problem x machine x seeds) and "
            "execute it concurrently, printing per-group medians."
        ),
    )
    sweep.add_argument("--kind", choices=("engine", "simulator"), default=None,
                       help="scenario kind; default: derived from --backend "
                            "(engine when no backend is given)")
    sweep.add_argument("--problems", type=_csv, default=("jacobi", "tridiagonal"),
                       help="comma-separated problem names (see --list-axes)")
    sweep.add_argument("--delays", type=_csv, default=("uniform", "baudet-sqrt"),
                       help="delay model names (engine kind)")
    sweep.add_argument("--steering", type=_csv, default=("cyclic", "random-subset"),
                       help="steering policy names (engine kind)")
    sweep.add_argument("--machines", type=_csv, default=("uniform", "flexible"),
                       help="machine archetype names (simulator kind)")
    sweep.add_argument("--seeds", type=int, default=3, help="seed replicates per combo")
    sweep.add_argument("--master-seed", type=int, default=0)
    sweep.add_argument("--backend", type=_csv, default=None,
                       help="comma-separated execution backends from the runtime "
                            "registry (engine sweeps: exact, flexible; simulator "
                            "sweeps: vectorized, reference, shared-memory; see "
                            "--list-axes).  More than one backend adds a grid "
                            "axis sharing seeds across backends and prints a "
                            "cross-backend comparison table; default: the "
                            "kind's canonical backend")
    sweep.add_argument("--max-iterations", type=int, default=2000)
    sweep.add_argument("--tol", type=float, default=1e-8)
    sweep.add_argument("--executor", choices=("auto", "serial", "thread", "process"),
                       default="auto")
    sweep.add_argument("--workers", type=int, default=None, help="pool width cap")
    sweep.add_argument("--group-by", type=_csv, default=None,
                       help="spec fields for the median table (default: problem,delays)")
    sweep.add_argument("--json", default=None, metavar="PATH",
                       help="also write the full FleetResult as JSON")
    sweep.add_argument("--out", default=None, metavar="DIR",
                       help="stream per-scenario results into a content-addressed "
                            "sweep store at DIR (manifest + results/<hash>.json, "
                            "written as workers finish)")
    sweep.add_argument("--resume", default=None, metavar="DIR",
                       help="resume an interrupted sweep from the store at DIR: "
                            "scenarios with a persisted result are loaded, only "
                            "the missing ones run (implies --out DIR)")
    sweep.add_argument("--keep-traces", action="store_true",
                       help="persist each scenario's realized (S,L) trace as "
                            "traces/<hash>.npz in the sweep store (requires "
                            "--out/--resume; traces record via a disk-spilling "
                            "store, so memory stays bounded)")
    sweep.add_argument("--list-axes", action="store_true",
                       help="print registered axis names and exit")

    args = parser.parse_args(argv)
    try:
        if args.command == "info" or args.command is None:
            return _cmd_info()
        if args.command == "list":
            return _cmd_list()
        if args.command == "run":
            return _cmd_run(args.exp_id)
        if args.command == "sweep":
            return _cmd_sweep(args)
    except BrokenPipeError:
        # Output piped into a closed reader (e.g. `| head`): not an error.
        return 0
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
