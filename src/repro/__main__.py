"""Command-line interface: ``python -m repro {info,list,run <exp-id>}``."""

from __future__ import annotations

import argparse
import subprocess
import sys

from repro import __version__
from repro.experiments import EXPERIMENTS, benchmarks_dir


def _cmd_info() -> int:
    print(f"repro {__version__}")
    print(
        "Reproduction of: El-Baz, 'On Parallel or Distributed Asynchronous "
        "Iterations with Unbounded Delays and Possible Out of Order Messages "
        "or Flexible Communication for Convex Optimization Problems and "
        "Machine Learning', IPDPSW 2022."
    )
    print(f"{len(EXPERIMENTS)} registered experiments; see `python -m repro list`.")
    return 0


def _cmd_list() -> int:
    width = max(len(e.exp_id) for e in EXPERIMENTS)
    for e in EXPERIMENTS:
        print(f"{e.exp_id.ljust(width)}  {e.paper_artifact}  [{e.bench_module}]")
    return 0


def _cmd_run(exp_id: str) -> int:
    matches = [e for e in EXPERIMENTS if e.exp_id.lower() == exp_id.lower()]
    if not matches:
        print(f"unknown experiment {exp_id!r}; try `python -m repro list`", file=sys.stderr)
        return 2
    bench = benchmarks_dir() / matches[0].bench_module
    cmd = [sys.executable, "-m", "pytest", str(bench), "--benchmark-only", "-q", "-s"]
    return subprocess.call(cmd)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="asynchronous-iterations reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("info", help="print version and paper banner")
    sub.add_parser("list", help="list registered experiments")
    run = sub.add_parser("run", help="run one experiment's benchmark")
    run.add_argument("exp_id", help="experiment id from `list` (e.g. THM1)")
    args = parser.parse_args(argv)
    try:
        if args.command == "info" or args.command is None:
            return _cmd_info()
        if args.command == "list":
            return _cmd_list()
        if args.command == "run":
            return _cmd_run(args.exp_id)
    except BrokenPipeError:
        # Output piped into a closed reader (e.g. `| head`): not an error.
        return 0
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
