"""Command-line interface: ``python -m repro {info,list,run,sweep,study,store}``.

``sweep`` and ``study`` are two spellings of the same thing: both build
a :class:`~repro.api.config.StudyConfig` and execute it through
:class:`~repro.api.study.Study` — ``sweep`` from legacy flags (kept
stable), ``study`` from a declarative ``.toml``/``.json`` file with
``run``/``resume``/``report`` verbs.  ``study run --shard i/k`` runs
one content-hash-stable shard of the grid (one host of ``k``), and
``store merge`` recombines the per-host stores into one whose
determinism digest matches a single-host run bit for bit.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import subprocess
import sys

from repro import __version__
from repro.experiments import EXPERIMENTS, benchmarks_dir


def _cmd_info() -> int:
    print(f"repro {__version__}")
    print(
        "Reproduction of: El-Baz, 'On Parallel or Distributed Asynchronous "
        "Iterations with Unbounded Delays and Possible Out of Order Messages "
        "or Flexible Communication for Convex Optimization Problems and "
        "Machine Learning', IPDPSW 2022."
    )
    print(f"{len(EXPERIMENTS)} registered experiments; see `python -m repro list`.")
    return 0


def _cmd_list() -> int:
    width = max(len(e.exp_id) for e in EXPERIMENTS)
    for e in EXPERIMENTS:
        print(f"{e.exp_id.ljust(width)}  {e.paper_artifact}  [{e.bench_module}]")
    return 0


def _cmd_run(exp_id: str) -> int:
    matches = [e for e in EXPERIMENTS if e.exp_id.lower() == exp_id.lower()]
    if not matches:
        print(f"unknown experiment {exp_id!r}; try `python -m repro list`", file=sys.stderr)
        return 2
    bench = benchmarks_dir() / matches[0].bench_module
    cmd = [sys.executable, "-m", "pytest", str(bench), "--benchmark-only", "-q", "-s"]
    return subprocess.call(cmd)


def _csv(value: str) -> tuple[str, ...]:
    items = tuple(s.strip() for s in value.split(",") if s.strip())
    if not items:
        raise argparse.ArgumentTypeError(f"empty list: {value!r}")
    return items


def _shard(value: str) -> tuple[int, int]:
    """``"i/k"`` (1-based, e.g. ``2/4``) -> 0-based ``(index, num_shards)``."""
    try:
        i_text, k_text = value.split("/", 1)
        i, k = int(i_text), int(k_text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"shard must look like i/k (e.g. 2/4), got {value!r}"
        ) from None
    if k < 1 or not 1 <= i <= k:
        raise argparse.ArgumentTypeError(
            f"shard needs 1 <= i <= k, got {value!r}"
        )
    return (i - 1, k)


def _chunk_size(value: str) -> "int | str":
    if value == "auto":
        return "auto"
    try:
        size = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f'chunk size must be "auto" or a positive int, got {value!r}'
        ) from None
    if size < 1:
        raise argparse.ArgumentTypeError(f"chunk size must be >= 1, got {size}")
    return size


# ----------------------------------------------------------------------
# The shared study executor (sweep and study both land here)
# ----------------------------------------------------------------------

def _grid_shape(config) -> str:
    """``2 problems x 2 delay models x 2 policies x 3 seeds`` banner text."""
    shape = f"{len(config.problems)} problems x "
    if config.kind == "engine":
        shape += (
            f"{len(config.delays)} delay models x "
            f"{len(config.steerings)} policies"
        )
    else:
        shape += f"{len(config.machines)} machines"
        if tuple(str(f) for f in config.faults) != ("none",):
            shape += f" x {len(config.faults)} faults"
        if tuple(str(t) for t in config.topologies) != ("native",):
            shape += f" x {len(config.topologies)} topologies"
    if len(config.solver.backends) > 1:
        shape += f" x {len(config.solver.backends)} backends"
    return shape + f" x {config.n_seeds} seeds"


def _execute_study(
    config,
    *,
    prog: str,
    resume: bool,
    json_path: "str | None" = None,
    print_digest: bool = False,
    shard: "tuple[int, int] | None" = None,
    cache: "bool | None" = None,
) -> int:
    """Run one validated StudyConfig, printing the standard banners/report."""
    from repro.api.study import Study
    from repro.runtime.sweep_store import SweepStore

    study = Study(config)
    specs = study.shard_specs(shard)
    banner = (
        f"{prog}: {len(specs)} scenarios ({_grid_shape(config)}), "
        f"executor={config.execution.executor}"
    )
    if shard is not None:
        banner += f", shard {shard[0] + 1}/{shard[1]} of {config.size} scenarios"
    print(banner)
    out_dir = config.store.out
    if resume:
        try:
            store = SweepStore(out_dir, create=False)
        except FileNotFoundError:
            print(f"{prog}: no sweep store at {out_dir} to resume", file=sys.stderr)
            return 2
        # The same completeness rule run_grid applies, so the banner
        # and what actually re-executes cannot disagree.
        done = sum(
            1 for s in specs
            if store.load_complete_result(s, require_trace=config.store.keep_traces)
            is not None
        )
        print(f"{prog}: resuming from {out_dir}: {done}/{len(specs)} "
              "scenarios already complete")

    result = study.run(resume=resume, shard=shard, cache=cache)
    if out_dir is not None:
        print(f"{prog}: results in {out_dir} "
              + ("(traces kept)" if config.store.keep_traces else ""))

    print(result.report(title=None))
    if print_digest:
        print(f"{prog}: determinism digest {result.digest()}")

    for r in result.failures():
        print(f"FAILED {r.key}: {r.error}", file=sys.stderr)
    if json_path is not None:
        pathlib.Path(json_path).write_text(result.fleet.to_json())
        print(f"wrote {json_path}")
    return 1 if result.failures() else 0


# ----------------------------------------------------------------------
# sweep: legacy flags, now a thin shim that builds a StudyConfig
# ----------------------------------------------------------------------

def _cmd_list_axes() -> int:
    """Axis tables rendered from registry introspection (no hand lists)."""
    from repro.runtime import backends as _backends
    from repro.scenarios.registry import describe_axes

    for axis, entries in describe_axes().items():
        print(f"{axis}:")
        for e in entries:
            print(f"  {e.describe():<44}  {e.summary}")
    print(
        "backend: "
        f"{', '.join(_backends.available_backends('model'))} (--kind engine); "
        f"{', '.join(_backends.available_backends('machine'))} (--kind simulator)"
    )
    print(
        "dispatch: --chunk-size auto|N (cost-balanced pool chunks), "
        "batched lockstep execution of homogeneous chunks (default; "
        "--no-batch for one solo call per scenario), "
        "--jit / REPRO_JIT=1 (compiled batched inner loop, numpy fallback), "
        "--cache DIR / REPRO_SWEEP_CACHE (cross-study result cache), "
        "study run --shard i/k + store merge (multi-host sweeps)"
    )
    return 0


def _sweep_config(args: argparse.Namespace):
    """Compile the legacy sweep flags into a validated StudyConfig."""
    from repro.api.config import (
        ExecutionSpec,
        ReportSpec,
        SolverRef,
        StoreSpec,
        StudyConfig,
        infer_kind,
    )

    backends = tuple(args.backend) if args.backend else ()
    out_dir = args.out if args.resume is None else args.resume
    return StudyConfig(
        name="sweep",
        problems=tuple(args.problems),
        solver=SolverRef(
            kind=infer_kind(backends, args.kind),
            backends=backends,
            max_iterations=args.max_iterations,
            tol=args.tol,
        ),
        steerings=tuple(args.steering),
        delays=tuple(args.delays),
        machines=tuple(args.machines),
        faults=tuple(args.faults),
        topologies=tuple(args.topologies),
        n_seeds=args.seeds,
        master_seed=args.master_seed,
        store=StoreSpec(
            out=out_dir,
            resume=args.resume is not None,
            keep_traces=args.keep_traces,
        ),
        report=ReportSpec(group_by=args.group_by or ()),
        execution=ExecutionSpec(
            executor=args.executor,
            max_workers=args.workers,
            chunk_size=args.chunk_size,
            batch=not args.no_batch,
            jit=True if args.jit else None,
            cache_dir=args.cache,
        ),
    )


def _cmd_sweep(args: argparse.Namespace) -> int:
    if args.list_axes:
        return _cmd_list_axes()

    # Path conflicts are CLI-level mistakes; keep their messages stable.
    if args.resume is not None:
        resume_path = pathlib.Path(args.resume)
        if args.out is not None and pathlib.Path(args.out).resolve() != resume_path.resolve():
            print("sweep: --out and --resume point at different stores", file=sys.stderr)
            return 2
        if not (resume_path / "manifest.json").is_file():
            # An unrelated existing directory is as wrong as a missing
            # one — resuming "into" it would re-run everything and
            # scatter store files there.
            print(f"sweep: no sweep store at {args.resume} to resume", file=sys.stderr)
            return 2
    if args.keep_traces and args.out is None and args.resume is None:
        print("sweep: --keep-traces requires --out (or --resume)", file=sys.stderr)
        return 2

    try:
        config = _sweep_config(args)
    except (KeyError, ValueError) as exc:
        msg = exc.args[0] if exc.args else str(exc)
        print(f"sweep: {msg}", file=sys.stderr)
        return 2
    return _execute_study(
        config, prog="sweep", resume=args.resume is not None, json_path=args.json,
        cache=False if args.no_cache else None,
    )


# ----------------------------------------------------------------------
# study: the declarative front door
# ----------------------------------------------------------------------

def _cmd_study(args: argparse.Namespace) -> int:
    import dataclasses
    import tomllib

    from repro.api.config import ExecutionSpec, StudyConfig
    from repro.api.study import Study
    from repro.api.toml_io import load_study_file

    try:
        doc = load_study_file(args.study_file)
    except FileNotFoundError:
        print(f"study: no such study file: {args.study_file}", file=sys.stderr)
        return 2
    except (tomllib.TOMLDecodeError, json.JSONDecodeError) as exc:
        print(f"study: cannot parse {args.study_file}: {exc}", file=sys.stderr)
        return 2
    try:
        config = StudyConfig.from_dict(doc)
        if args.out is not None or args.keep_traces:
            config = config.with_store(
                args.out, keep_traces=True if args.keep_traces else None
            )
        overrides = (args.executor, args.workers, args.chunk_size, args.cache)
        if any(v is not None for v in overrides) or args.no_batch or args.jit:
            config = dataclasses.replace(
                config,
                execution=ExecutionSpec(
                    executor=args.executor or config.execution.executor,
                    max_workers=(
                        args.workers if args.workers is not None
                        else config.execution.max_workers
                    ),
                    chunk_size=(
                        args.chunk_size if args.chunk_size is not None
                        else config.execution.chunk_size
                    ),
                    batch=False if args.no_batch else config.execution.batch,
                    jit=True if args.jit else config.execution.jit,
                    cache_dir=(
                        args.cache if args.cache is not None
                        else config.execution.cache_dir
                    ),
                ),
            )
    except (KeyError, ValueError) as exc:
        msg = exc.args[0] if exc.args else str(exc)
        print(f"study: {msg}", file=sys.stderr)
        return 2

    if args.shard is not None and args.verb == "report":
        # A report always reads the whole store; "report one shard"
        # has no store of its own to read.
        print("study: --shard applies to run/resume, not report", file=sys.stderr)
        return 2

    if args.verb == "report":
        try:
            result = Study(config).result()
        except (FileNotFoundError, ValueError) as exc:
            msg = exc.args[0] if exc.args else str(exc)
            print(f"study: {msg}", file=sys.stderr)
            return 2
        total = config.size
        print(f"study: {config.name!r} from {config.store.out}: "
              f"{result.scenario_count}/{total} scenarios complete")
        print(result.report())
        print(f"study: determinism digest {result.digest()}")
        if args.json is not None:
            pathlib.Path(args.json).write_text(result.fleet.to_json())
            print(f"wrote {args.json}")
        return 0

    resume = args.verb == "resume" or config.store.resume
    if resume and config.store.out is None:
        print("study: resume needs a store: set [store] out or pass --out",
              file=sys.stderr)
        return 2
    try:
        return _execute_study(
            config, prog="study", resume=resume, json_path=args.json,
            print_digest=True, shard=args.shard,
            cache=False if args.no_cache else None,
        )
    except ValueError as exc:
        msg = exc.args[0] if exc.args else str(exc)
        print(f"study: {msg}", file=sys.stderr)
        return 2


# ----------------------------------------------------------------------
# store: inspect and recombine sweep stores
# ----------------------------------------------------------------------

def _cmd_store(args: argparse.Namespace) -> int:
    from repro.runtime.sweep_store import SweepStore

    if args.store_verb == "merge":
        try:
            shards = [SweepStore(p, create=False) for p in args.shards]
        except FileNotFoundError as exc:
            print(f"store: {exc}", file=sys.stderr)
            return 2
        merged = SweepStore(args.out).merge(*shards)
        hashes = merged.manifest_hashes()
        done = len(merged.completed() & set(hashes))
        digest = merged.digest()
        if args.json:
            # Machine-readable form for campaign tooling: stable keys,
            # one JSON document on stdout, nothing else.
            print(json.dumps({
                "out": str(args.out),
                "shards": [str(p) for p in args.shards],
                "scenarios": len(hashes),
                "completed": done,
                "digest": digest,
            }, indent=2))
            return 0
        print(
            f"store: merged {len(shards)} shard store"
            f"{'s' if len(shards) != 1 else ''} into {args.out}: "
            f"{done}/{len(hashes)} scenarios complete"
        )
        print(f"store: determinism digest {digest}")
        return 0
    if args.store_verb == "digest":
        try:
            store = SweepStore(args.store_dir, create=False)
        except FileNotFoundError as exc:
            print(f"store: {exc}", file=sys.stderr)
            return 2
        if args.json:
            try:
                scenarios = len(store.manifest_hashes())
            except FileNotFoundError:
                scenarios = None
            print(json.dumps({
                "store": str(args.store_dir),
                "layout": store.layout,
                "digest": store.digest(),
                "rows": len(store.completed()),
                "scenarios": scenarios,
            }, indent=2))
            return 0
        print(store.digest())
        return 0
    if args.store_verb == "migrate":
        try:
            store = SweepStore(args.store_dir, create=False)
        except FileNotFoundError as exc:
            print(f"store: {exc}", file=sys.stderr)
            return 2
        layout_before = store.layout
        before = store.digest()
        try:
            after = store.migrate()
        except RuntimeError as exc:
            print(f"store: {exc}", file=sys.stderr)
            return 2
        rows = len(store.completed())
        if args.json:
            print(json.dumps({
                "store": str(args.store_dir),
                "layout_before": layout_before,
                "layout": store.layout,
                "rows": rows,
                "digest_before": before,
                "digest": after,
                "migrated": layout_before != store.layout,
            }, indent=2))
            return 0
        if layout_before == "packed":
            print(f"store: {args.store_dir} is already packed ({rows} rows)")
        else:
            print(
                f"store: migrated {args.store_dir} flat -> packed "
                f"({rows} rows, digest preserved)"
            )
        print(f"store: determinism digest {after}")
        return 0
    print(f"store: unknown verb {args.store_verb!r}", file=sys.stderr)
    return 2


# ----------------------------------------------------------------------
# Argument parsing
# ----------------------------------------------------------------------

def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="asynchronous-iterations reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("info", help="print version and paper banner")
    sub.add_parser("list", help="list registered experiments")
    run = sub.add_parser("run", help="run one experiment's benchmark")
    run.add_argument("exp_id", help="experiment id from `list` (e.g. THM1)")

    sweep = sub.add_parser(
        "sweep",
        help="run a scenario grid through the fleet runner",
        description=(
            "Expand a declarative scenario grid (problem x delay model x "
            "steering policy x seeds, or problem x machine x seeds) and "
            "execute it concurrently, printing per-group medians.  These "
            "flags build a StudyConfig: `python -m repro study` runs the "
            "same thing from a declarative TOML/JSON file."
        ),
    )
    sweep.add_argument("--kind", choices=("engine", "simulator"), default=None,
                       help="scenario kind; default: derived from --backend "
                            "(engine when no backend is given)")
    sweep.add_argument("--problems", type=_csv, default=("jacobi", "tridiagonal"),
                       help="comma-separated problem names (see --list-axes)")
    sweep.add_argument("--delays", type=_csv, default=("uniform", "baudet-sqrt"),
                       help="delay model names (engine kind)")
    sweep.add_argument("--steering", type=_csv, default=("cyclic", "random-subset"),
                       help="steering policy names (engine kind)")
    sweep.add_argument("--machines", type=_csv, default=("uniform", "flexible"),
                       help="machine archetype names (simulator kind)")
    sweep.add_argument("--faults", type=_csv, default=("none",),
                       help="fault model names (simulator kind; see --list-axes). "
                            "Each adds a grid axis of injected crash/limplock/"
                            "message-fault scenarios; default none keeps the "
                            "sweep fault-free and bit-identical to historical "
                            "digests")
    sweep.add_argument("--topologies", type=_csv, default=("native",),
                       help="network topology names (simulator kind; see "
                            "--list-axes).  Overrides the machine archetype's "
                            "channel graph; default native keeps the "
                            "archetype's own channels")
    sweep.add_argument("--seeds", type=int, default=3, help="seed replicates per combo")
    sweep.add_argument("--master-seed", type=int, default=0)
    sweep.add_argument("--backend", type=_csv, default=None,
                       help="comma-separated execution backends from the runtime "
                            "registry (engine sweeps: exact, flexible; simulator "
                            "sweeps: vectorized, reference, shared-memory; see "
                            "--list-axes).  More than one backend adds a grid "
                            "axis sharing seeds across backends and prints a "
                            "cross-backend comparison table; default: the "
                            "kind's canonical backend")
    sweep.add_argument("--max-iterations", type=int, default=2000)
    sweep.add_argument("--tol", type=float, default=1e-8)
    sweep.add_argument("--executor", choices=("auto", "serial", "thread", "process"),
                       default="auto")
    sweep.add_argument("--workers", type=int, default=None, help="pool width cap")
    sweep.add_argument("--chunk-size", type=_chunk_size, default="auto",
                       metavar="N|auto",
                       help="scenarios per dispatched pool task (default auto: "
                            "cost-balanced chunks, ~4 tasks per worker; 1 = "
                            "per-task dispatch)")
    sweep.add_argument("--no-batch", action="store_true",
                       help="disable batched lockstep execution of homogeneous "
                            "chunks (run one solo call per scenario; results "
                            "are bit-identical either way)")
    sweep.add_argument("--jit", action="store_true",
                       help="run the batched engine's inner loop through the "
                            "compiled numba kernel (auto-disabled with the "
                            "numpy fallback when numba is missing or its "
                            "bit-identity probe fails; results are "
                            "bit-identical either way)")
    sweep.add_argument("--cache", default=None, metavar="DIR",
                       help="cross-study result cache: completed scenarios are "
                            "looked up there by content hash before executing "
                            "and written back after (default: the "
                            "REPRO_SWEEP_CACHE environment variable)")
    sweep.add_argument("--no-cache", action="store_true",
                       help="disable the result cache even when "
                            "REPRO_SWEEP_CACHE is set")
    sweep.add_argument("--group-by", type=_csv, default=None,
                       help="spec fields for the median table (default: problem,delays)")
    sweep.add_argument("--json", default=None, metavar="PATH",
                       help="also write the full FleetResult as JSON")
    sweep.add_argument("--out", default=None, metavar="DIR",
                       help="stream per-scenario results into a content-addressed "
                            "sweep store at DIR (sharded manifest + packed row "
                            "batches, written as workers finish)")
    sweep.add_argument("--resume", default=None, metavar="DIR",
                       help="resume an interrupted sweep from the store at DIR: "
                            "scenarios with a persisted result are loaded, only "
                            "the missing ones run (implies --out DIR)")
    sweep.add_argument("--keep-traces", action="store_true",
                       help="persist each scenario's realized (S,L) trace as "
                            "traces/<hash>.npz in the sweep store (requires "
                            "--out/--resume; traces record via a disk-spilling "
                            "store, so memory stays bounded)")
    sweep.add_argument("--list-axes", action="store_true",
                       help="print registered axis names, parameters and "
                            "defaults (from registry introspection) and exit")

    study = sub.add_parser(
        "study",
        help="run/resume/report a declarative study file",
        description=(
            "Execute a declarative study: a TOML (or JSON) StudyConfig "
            "naming problems, solver backends, grid axes, store and report "
            "options.  `run` executes it, `resume` completes an interrupted "
            "store bit-identically, `report` renders a (possibly partial) "
            "store without running anything."
        ),
    )
    study.add_argument("verb", choices=("run", "resume", "report"),
                       help="what to do with the study")
    study.add_argument("study_file", metavar="STUDY",
                       help="path to the study config (.toml or .json)")
    study.add_argument("--out", default=None, metavar="DIR",
                       help="override the config's [store] out directory")
    study.add_argument("--keep-traces", action="store_true",
                       help="override the config to persist realized traces")
    study.add_argument("--executor", choices=("auto", "serial", "thread", "process"),
                       default=None, help="override the config's executor")
    study.add_argument("--workers", type=int, default=None,
                       help="override the config's pool width cap")
    study.add_argument("--chunk-size", type=_chunk_size, default=None,
                       metavar="N|auto",
                       help="override the config's dispatch chunk size "
                            "(auto: cost-balanced chunks; 1: per-task dispatch)")
    study.add_argument("--no-batch", action="store_true",
                       help="override the config to disable batched lockstep "
                            "execution (one solo call per scenario)")
    study.add_argument("--jit", action="store_true",
                       help="override the config to run the batched engine "
                            "through the compiled numba kernel (numpy fallback "
                            "when unavailable; bit-identical either way)")
    study.add_argument("--shard", type=_shard, default=None, metavar="i/k",
                       help="run only shard i of k (1-based, e.g. 2/4): a "
                            "content-hash-stable, seed-preserving slice of the "
                            "grid; run each shard on its own host with its own "
                            "--out store, then recombine with "
                            "`python -m repro store merge`")
    study.add_argument("--cache", default=None, metavar="DIR",
                       help="override the config's cross-study result cache "
                            "directory (default: [execution] cache_dir, else "
                            "the REPRO_SWEEP_CACHE environment variable)")
    study.add_argument("--no-cache", action="store_true",
                       help="disable the result cache for this invocation")
    study.add_argument("--json", default=None, metavar="PATH",
                       help="also write the full FleetResult as JSON")

    store = sub.add_parser(
        "store",
        help="inspect/merge content-addressed sweep stores",
        description=(
            "Operate on sweep-store directories.  `merge` recombines the "
            "per-host stores of a sharded study into one store whose "
            "determinism digest is bit-identical to a single-host run; "
            "`digest` prints a store's digest for cross-host comparison; "
            "`migrate` upgrades a flat legacy store to the packed "
            "columnar layout in place (digest-preserving)."
        ),
    )
    store_sub = store.add_subparsers(dest="store_verb", required=True)
    merge = store_sub.add_parser(
        "merge", help="merge shard stores into one certified store"
    )
    merge.add_argument("--out", required=True, metavar="DIR",
                       help="destination store (created if missing; merging "
                            "into an existing store is incremental)")
    merge.add_argument("shards", nargs="+", metavar="SHARD",
                       help="shard store directories to merge in")
    merge.add_argument("--json", action="store_true",
                       help="print a machine-readable JSON summary instead "
                            "of prose")
    digest = store_sub.add_parser(
        "digest", help="print a store's determinism digest"
    )
    digest.add_argument("store_dir", metavar="DIR", help="sweep store directory")
    digest.add_argument("--json", action="store_true",
                        help="print digest plus layout/row counts as JSON")
    migrate = store_sub.add_parser(
        "migrate", help="upgrade a flat legacy store to the packed layout"
    )
    migrate.add_argument("store_dir", metavar="DIR", help="sweep store directory")
    migrate.add_argument("--json", action="store_true",
                         help="print a machine-readable JSON summary instead "
                              "of prose")

    args = parser.parse_args(argv)
    try:
        if args.command == "info" or args.command is None:
            return _cmd_info()
        if args.command == "list":
            return _cmd_list()
        if args.command == "run":
            return _cmd_run(args.exp_id)
        if args.command == "sweep":
            return _cmd_sweep(args)
        if args.command == "study":
            return _cmd_study(args)
        if args.command == "store":
            return _cmd_store(args)
    except BrokenPipeError:
        # Output piped into a closed reader (e.g. `| head`): not an error.
        return 0
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
