"""Analysis: rates, certificates, comparisons and paper-style reports."""

from repro.analysis.comparison import (
    MacroEpochComparison,
    SpeedupReport,
    compare_macro_epoch,
    speedup,
)
from repro.analysis.rates import (
    RateFit,
    fit_geometric_rate,
    iterations_to_tolerance,
    time_to_tolerance,
)
from repro.analysis.reporting import render_schedule, render_series, render_table

__all__ = [
    "MacroEpochComparison",
    "RateFit",
    "SpeedupReport",
    "compare_macro_epoch",
    "fit_geometric_rate",
    "iterations_to_tolerance",
    "render_schedule",
    "render_series",
    "render_table",
    "speedup",
    "time_to_tolerance",
]
