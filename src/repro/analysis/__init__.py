"""Analysis: rates, certificates, comparisons and paper-style reports."""

from repro.analysis.comparison import (
    MacroEpochComparison,
    SpeedupReport,
    compare_macro_epoch,
    speedup,
)
from repro.analysis.fleet import (
    FAULT_COUNTERS,
    ThroughputComparison,
    backend_comparison_rows,
    compare_throughput,
    fault_intensity_rows,
    fleet_from_store,
    fleet_summary_rows,
    render_backend_comparison,
    render_fault_intensity,
    render_fleet_table,
    render_study_report,
)
from repro.analysis.rates import (
    RateFit,
    StreamingRateFit,
    fit_geometric_rate,
    fit_geometric_rate_streaming,
    iterations_to_tolerance,
    time_to_tolerance,
)
from repro.analysis.reporting import render_schedule, render_series, render_table

__all__ = [
    "FAULT_COUNTERS",
    "MacroEpochComparison",
    "RateFit",
    "SpeedupReport",
    "StreamingRateFit",
    "ThroughputComparison",
    "backend_comparison_rows",
    "compare_macro_epoch",
    "compare_throughput",
    "fault_intensity_rows",
    "fit_geometric_rate",
    "fit_geometric_rate_streaming",
    "fleet_from_store",
    "fleet_summary_rows",
    "iterations_to_tolerance",
    "render_backend_comparison",
    "render_fault_intensity",
    "render_fleet_table",
    "render_schedule",
    "render_series",
    "render_study_report",
    "render_table",
    "speedup",
    "time_to_tolerance",
]
