"""Cross-method and macro-vs-epoch comparison utilities.

The survey claims of the paper become measurable comparisons here:
simulated-time speedup/efficiency of async over sync, and the
structural comparison between macro-iteration and epoch sequences on
the same trace (the Section IV argument).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.epochs import EpochSequence, epoch_sequence
from repro.core.macro import MacroSequence, macro_sequence
from repro.core.trace import IterationTrace

__all__ = [
    "SpeedupReport",
    "speedup",
    "MacroEpochComparison",
    "compare_macro_epoch",
]


@dataclass(frozen=True)
class SpeedupReport:
    """Simulated-time comparison of two runs reaching the same tolerance.

    Attributes
    ----------
    baseline_time, candidate_time:
        Simulated times to tolerance (``inf`` when not reached).
    speedup:
        ``baseline / candidate`` (``> 1`` means the candidate wins).
    baseline_iterations, candidate_iterations:
        Global iterations to tolerance.
    """

    baseline_time: float
    candidate_time: float
    baseline_iterations: int | None
    candidate_iterations: int | None

    @property
    def speedup(self) -> float:
        if self.candidate_time <= 0 or not np.isfinite(self.candidate_time):
            return float("nan") if not np.isfinite(self.candidate_time) else float("inf")
        return self.baseline_time / self.candidate_time


def speedup(
    baseline_series: np.ndarray,
    baseline_times: np.ndarray,
    candidate_series: np.ndarray,
    candidate_times: np.ndarray,
    tol: float,
) -> SpeedupReport:
    """Build a :class:`SpeedupReport` from two (series, times) pairs."""
    from repro.analysis.rates import iterations_to_tolerance, time_to_tolerance

    bt = time_to_tolerance(baseline_series, baseline_times, tol)
    ct = time_to_tolerance(candidate_series, candidate_times, tol)
    return SpeedupReport(
        baseline_time=float("inf") if bt is None else bt,
        candidate_time=float("inf") if ct is None else ct,
        baseline_iterations=iterations_to_tolerance(baseline_series, tol),
        candidate_iterations=iterations_to_tolerance(candidate_series, tol),
    )


@dataclass(frozen=True)
class MacroEpochComparison:
    """Macro-iteration vs epoch structure of one trace.

    Attributes
    ----------
    macro:
        The Definition 2 sequence.
    epochs:
        The [30] sequence.
    monotone_labels:
        Whether the trace's labels were monotone (no out-of-order
        messages) — the regime where epochs are a valid progress
        measure.
    macro_per_epoch:
        Ratio of completed macro-iterations to epochs (``< 1`` under
        reordering: epochs over-count certified progress).
    """

    macro: MacroSequence
    epochs: EpochSequence
    monotone_labels: bool

    @property
    def macro_per_epoch(self) -> float:
        if self.epochs.count == 0:
            return float("nan")
        return self.macro.count / self.epochs.count


def compare_macro_epoch(trace: IterationTrace, min_updates: int = 2) -> MacroEpochComparison:
    """Compute both sequences and the monotonicity flag for one trace."""
    adm = trace.admissibility()
    return MacroEpochComparison(
        macro=macro_sequence(trace),
        epochs=epoch_sequence(trace, min_updates=min_updates),
        monotone_labels=adm.monotone,
    )
