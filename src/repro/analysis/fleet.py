"""Analysis of fleet results: grouped medians, tables, comparisons.

Consumes the typed :class:`~repro.runtime.fleet.FleetResult` that the
fleet runner produces and renders the aggregate views the benchmarks
and the ``python -m repro sweep`` CLI print: per-group medians over
seeds (the statistically honest summary of a grid) and head-to-head
throughput comparisons between fleet configurations.

Every helper also accepts a persisted sweep: :func:`fleet_from_store`
reassembles the ``FleetResult`` from a
:class:`~repro.runtime.sweep_store.SweepStore` directory (final
aggregate or partial per-scenario rows), so the tables and the
cross-backend pivot read equally from a live run or from disk.
"""

from __future__ import annotations

import os
import pathlib
from dataclasses import dataclass
from typing import Any, Sequence

import statistics

import numpy as np

from repro.analysis.reporting import render_table
from repro.runtime.fleet import FleetResult
from repro.runtime.sweep_store import SweepStore

__all__ = [
    "fleet_from_store",
    "fleet_summary_rows",
    "render_fleet_table",
    "backend_comparison_rows",
    "render_backend_comparison",
    "render_study_report",
    "fault_intensity_rows",
    "render_fault_intensity",
    "FAULT_COUNTERS",
    "ThroughputComparison",
    "compare_throughput",
]

#: Fault-log counters that quantify injected-fault intensity; carried
#: in each row's ``info`` dict by the simulator engines (absent — and
#: treated as zero — for fault-free rows).
FAULT_COUNTERS = ("fault_crashes", "fault_drops", "fault_limp_episodes")


def fleet_from_store(
    store: "SweepStore | str | os.PathLike[str]",
    *,
    lazy: bool = False,
) -> "FleetResult | Any":
    """Load a persisted sweep back into a typed :class:`FleetResult`.

    Accepts a :class:`~repro.runtime.sweep_store.SweepStore`, its root
    directory, or a bare ``fleet.json`` path.  Partial stores (sweep
    still running or killed mid-flight) load with whatever scenarios
    have completed, in manifest order — so the same
    :func:`render_fleet_table`/:func:`render_backend_comparison` calls
    work on in-flight results.  With ``lazy=True`` a store loads as a
    streaming :class:`~repro.runtime.sweep_store.StoreFleetView`
    instead — same report surface, O(batch) memory at million-row
    scale (bare ``fleet.json`` paths still materialize: the file *is*
    the full document).
    """
    if isinstance(store, SweepStore):
        return store.fleet_view() if lazy else store.fleet_result()
    path = pathlib.Path(store)
    if path.is_file():
        return FleetResult.from_json(path.read_text())
    opened = SweepStore(path, create=False)
    return opened.fleet_view() if lazy else opened.fleet_result()


def fleet_summary_rows(
    fleet: FleetResult,
    *,
    group_by: Sequence[str] = ("problem",),
    metrics: Sequence[str] = ("iterations", "converged", "final_residual"),
) -> tuple[list[str], list[list[Any]]]:
    """Headers and rows of per-group medians, ready for ``render_table``.

    Groups are tuples of :class:`~repro.scenarios.spec.ScenarioSpec`
    field values; each metric column is the median over the group's
    non-failed scenarios (``converged`` is a fraction).
    """
    medians = fleet.group_medians(by=tuple(group_by), metrics=tuple(metrics))
    headers = [*group_by, "n", *metrics]
    rows: list[list[Any]] = []
    for gkey, agg in medians.items():
        rows.append([*gkey, int(agg["count"]), *(agg[m] for m in metrics)])
    return headers, rows


def render_fleet_table(
    fleet: FleetResult,
    *,
    group_by: Sequence[str] = ("problem",),
    metrics: Sequence[str] = ("iterations", "converged", "final_residual"),
    title: str | None = None,
) -> str:
    """Monospace per-group median table plus a fleet footer line."""
    headers, rows = fleet_summary_rows(fleet, group_by=group_by, metrics=metrics)
    table = render_table(headers, rows, title=title)
    # A store-reassembled fleet (no live aggregate) reports the *sum*
    # of its rows' wall times — honest cumulative compute, labelled as
    # such rather than passed off as one run's wall clock.
    wall = f"{fleet.wall_time:.2f}s"
    if fleet.executor == "store":
        wall += " cumulative"
    footer = (
        f"{fleet.scenario_count} scenarios in {wall} "
        f"({fleet.scenarios_per_sec:.2f}/s, executor={fleet.executor}, "
        f"workers={fleet.max_workers}, failures={len(fleet.failures())})"
    )
    return f"{table}\n{footer}"


def backend_comparison_rows(
    fleet: FleetResult,
    *,
    metric: str = "iterations",
    group_by: Sequence[str] = ("problem",),
) -> tuple[list[str], list[list[Any]]]:
    """Pivot one metric into one column per execution backend.

    Scenarios that differ only in ``spec.backend`` share a seed (the
    grid spawns one seed per experiment, not per engine), so a row of
    this table is a like-for-like comparison: close columns mean the
    engines agree on the same work, and the ``sim_time``/``wall_time``
    metrics expose their relative cost.  Cells are per-group medians
    over non-failed scenarios; groups missing a backend show ``nan``.
    """
    medians = fleet.group_medians(by=("backend", *group_by), metrics=(metric,))
    backends = sorted({key[0] for key in medians})
    groups = sorted({key[1:] for key in medians}, key=repr)
    headers = [*group_by, *(f"{metric}[{b}]" for b in backends)]
    rows: list[list[Any]] = []
    for g in groups:
        row: list[Any] = [*g]
        for b in backends:
            row.append(medians.get((b, *g), {}).get(metric, float("nan")))
        rows.append(row)
    return headers, rows


def render_backend_comparison(
    fleet: FleetResult,
    *,
    metric: str = "iterations",
    group_by: Sequence[str] = ("problem",),
    title: str | None = "cross-backend comparison",
) -> str:
    """Monospace pivot table of one metric across execution backends."""
    headers, rows = backend_comparison_rows(fleet, metric=metric, group_by=group_by)
    return render_table(headers, rows, title=title)


def render_study_report(
    fleet: FleetResult,
    *,
    kind: str = "engine",
    group_by: Sequence[str] | None = None,
    metrics: Sequence[str] | None = None,
    backend_metric: str = "iterations",
    title: str | None = None,
) -> str:
    """The standard study report: grouped medians + cross-backend pivot.

    One rendering shared by ``python -m repro sweep``/``study`` and
    :meth:`repro.api.StudyResult.report`, so the CLI and the Python API
    cannot drift apart.  ``group_by``/``metrics`` default to
    kind-appropriate choices (engine studies group by problem × delay
    regime, simulator studies by problem × machine and add
    ``sim_time``); when the fleet spans several execution backends the
    grouping gains a ``backend`` column and the pivot table is appended.
    """
    backends = {r.spec.backend for r in fleet.results}
    multi_backend = len(backends) > 1
    pivot_by = ("problem", "delays") if kind == "engine" else ("problem", "machine")
    if group_by is None:
        group_by = pivot_by + (("backend",) if multi_backend else ())
    if metrics is None:
        metrics = ("iterations", "converged", "final_residual")
        if kind == "simulator":
            metrics = metrics + ("sim_time",)
    out = render_fleet_table(
        fleet, group_by=tuple(group_by), metrics=tuple(metrics), title=title
    )
    if multi_backend:
        out += "\n" + render_backend_comparison(
            fleet,
            metric=backend_metric,
            group_by=tuple(g for g in pivot_by if g != "backend"),
        )
    return out


def fault_intensity_rows(
    fleet: FleetResult,
    *,
    group_by: Sequence[str] = ("fault",),
    metrics: Sequence[str] = ("iterations", "converged", "final_residual"),
    counters: Sequence[str] = FAULT_COUNTERS,
) -> tuple[list[str], list[list[Any]]]:
    """Convergence metrics against measured fault intensity, per group.

    Groups rows by the given :class:`~repro.scenarios.spec.ScenarioSpec`
    fields (``fault`` by default; ``fault_params``/``topology_params``
    group by their canonical repr so dict-valued axes work), then
    reports for each group the *measured* fault intensity — the mean of
    each fault-log counter from the rows' ``info`` stats — alongside
    the usual convergence summary (boolean metrics as rates, numeric
    ones as medians over non-failed rows).  Rows sort by total mean
    counter intensity, so the table reads fault-free baseline first,
    harshest regime last.
    """

    def gkey(r: Any) -> tuple[Any, ...]:
        out = []
        for f in group_by:
            v = getattr(r.spec, f)
            out.append(repr(dict(sorted(v.items()))) if isinstance(v, dict) else v)
        return tuple(out)

    counts: dict[tuple[Any, ...], int] = {}
    mvals: dict[tuple[Any, ...], list[list[Any]]] = {}
    cvals: dict[tuple[Any, ...], list[float]] = {}
    for r in fleet.results:
        if r.error is not None:
            continue
        g = gkey(r)
        counts[g] = counts.get(g, 0) + 1
        if g not in mvals:
            mvals[g] = [[] for _ in metrics]
            cvals[g] = [0.0 for _ in counters]
        for j, m in enumerate(metrics):
            v = getattr(r, m)
            if v is not None:
                mvals[g][j].append(v)
        info = getattr(r, "info", None) or {}
        for j, c in enumerate(counters):
            cvals[g][j] += float(info.get(c, 0))
    headers = [*group_by, "n", *(f"mean_{c}" for c in counters), *metrics]
    rows: list[list[Any]] = []
    for g in counts:
        n = counts[g]
        means = [tot / n for tot in cvals[g]]
        row: list[Any] = [*g, n, *means]
        for j, m in enumerate(metrics):
            raw = mvals[g][j]
            if raw and all(isinstance(v, (bool, np.bool_)) for v in raw):
                row.append(sum(map(bool, raw)) / len(raw))
                continue
            vals_f = [float(v) for v in raw if np.isfinite(v)]
            row.append(statistics.median(vals_f) if vals_f else float("nan"))
        rows.append(row)
    base = len(group_by) + 1
    rows.sort(key=lambda row: (sum(row[base:base + len(counters)]), repr(row[:base])))
    return headers, rows


def render_fault_intensity(
    fleet: FleetResult,
    *,
    group_by: Sequence[str] = ("fault",),
    metrics: Sequence[str] = ("iterations", "converged", "final_residual"),
    counters: Sequence[str] = FAULT_COUNTERS,
    title: str | None = "convergence vs fault intensity",
) -> str:
    """Monospace convergence-vs-fault-intensity table."""
    headers, rows = fault_intensity_rows(
        fleet, group_by=group_by, metrics=metrics, counters=counters
    )
    return render_table(headers, rows, title=title)


@dataclass(frozen=True)
class ThroughputComparison:
    """Scenarios/sec of a candidate fleet against a baseline fleet."""

    baseline_per_sec: float
    candidate_per_sec: float
    baseline_wall: float
    candidate_wall: float
    scenario_count: int

    @property
    def speedup(self) -> float:
        if self.candidate_per_sec <= 0:
            return float("nan")
        return self.candidate_per_sec / self.baseline_per_sec


def compare_throughput(baseline: FleetResult, candidate: FleetResult) -> ThroughputComparison:
    """Compare two fleets over the same scenario population.

    Raises when the fleets ran different numbers of scenarios — the
    throughput ratio is only meaningful over identical work.
    """
    if baseline.scenario_count != candidate.scenario_count:
        raise ValueError(
            f"fleet sizes differ: {baseline.scenario_count} vs {candidate.scenario_count}"
        )
    return ThroughputComparison(
        baseline_per_sec=baseline.scenarios_per_sec,
        candidate_per_sec=candidate.scenarios_per_sec,
        baseline_wall=baseline.wall_time,
        candidate_wall=candidate.wall_time,
        scenario_count=baseline.scenario_count,
    )
