"""Convergence-rate estimation from realized series.

Asynchronous runs produce noisy, non-monotone error/residual series;
these helpers extract the quantities the benchmarks report: fitted
geometric rates, iterations/time to tolerance, and per-macro-iteration
contraction factors.

The streaming results layer adds the incremental form:
:class:`StreamingRateFit` accumulates the same log-linear regression
chunk by chunk, so metrics can be computed while a
:class:`~repro.core.trace.TraceStore` is still recording — or over a
spilled store's chunks without ever materializing the full series
(:func:`fit_geometric_rate_streaming`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

__all__ = [
    "RateFit",
    "StreamingRateFit",
    "fit_geometric_rate",
    "fit_geometric_rate_streaming",
    "iterations_to_tolerance",
    "rates_from_store",
    "time_to_tolerance",
]


@dataclass(frozen=True)
class RateFit:
    """Least-squares geometric fit ``series[j] ~ C * rate^j``.

    Attributes
    ----------
    rate:
        Fitted per-iteration contraction factor.
    log_intercept:
        Fitted ``log C``.
    r_squared:
        Goodness of fit in log space.
    n_points:
        Number of (positive, finite) points used.
    """

    rate: float
    log_intercept: float
    r_squared: float
    n_points: int

    def half_life(self) -> float:
        """Iterations to halve the series (``inf`` for non-contracting fits)."""
        if not 0.0 < self.rate < 1.0:
            return float("inf")
        return float(np.log(0.5) / np.log(self.rate))


def fit_geometric_rate(series: np.ndarray, *, skip: int = 0) -> RateFit:
    """Fit a geometric decay to a positive series by log-linear regression.

    Parameters
    ----------
    series:
        Error or residual values indexed by iteration.
    skip:
        Initial entries to ignore (transient).
    """
    y = np.asarray(series, dtype=np.float64)
    if y.ndim != 1:
        raise ValueError(f"series must be 1-D, got shape {y.shape}")
    idx = np.arange(y.size)
    mask = np.isfinite(y) & (y > 0)
    mask[:skip] = False
    x, ly = idx[mask].astype(np.float64), np.log(y[mask])
    if x.size < 2:
        return RateFit(rate=float("nan"), log_intercept=float("nan"), r_squared=0.0, n_points=int(x.size))
    A = np.vstack([x, np.ones_like(x)]).T
    coef, *_ = np.linalg.lstsq(A, ly, rcond=None)
    slope, intercept = float(coef[0]), float(coef[1])
    pred = A @ coef
    ss_res = float(np.sum((ly - pred) ** 2))
    ss_tot = float(np.sum((ly - ly.mean()) ** 2))
    # A constant series is a perfect flat-line fit; without the exact
    # check, roundoff leaves ss_tot ~ 1e-32 and r2 garbage.  OLS with
    # an intercept has r2 in [0, 1] mathematically, so clamping only
    # removes floating-point noise.
    if ss_tot <= 0 or ly.max() == ly.min():
        r2 = 1.0
    else:
        r2 = min(1.0, max(0.0, 1.0 - ss_res / ss_tot))
    return RateFit(rate=float(np.exp(slope)), log_intercept=intercept, r_squared=r2, n_points=int(x.size))


class StreamingRateFit:
    """Incremental geometric-rate fit over series chunks.

    Feed :meth:`update` successive slices of an error/residual series
    (in order); :meth:`fit` returns the same log-linear regression
    :func:`fit_geometric_rate` computes on the concatenated series,
    from O(1) accumulated sums — no chunk is retained.  This is the
    incremental-metrics primitive of the results layer: it consumes
    ``TraceStore.iter_series(...)`` output, a live sink mid-run, or a
    sweep's chunk files, all without materializing the series.
    """

    def __init__(self, *, skip: int = 0) -> None:
        if skip < 0:
            raise ValueError(f"skip must be >= 0, got {skip}")
        self.skip = int(skip)
        self._offset = 0  # global index of the next incoming entry
        self._n = 0
        self._sx = 0.0
        self._sy = 0.0
        self._sxx = 0.0
        self._sxy = 0.0
        self._syy = 0.0
        self._ymin = float("inf")
        self._ymax = float("-inf")

    @property
    def n_points(self) -> int:
        """Number of (positive, finite) points accumulated so far."""
        return self._n

    def update(self, chunk: np.ndarray) -> "StreamingRateFit":
        """Accumulate one contiguous slice of the series (chainable)."""
        y = np.asarray(chunk, dtype=np.float64)
        if y.ndim != 1:
            raise ValueError(f"chunk must be 1-D, got shape {y.shape}")
        idx = np.arange(self._offset, self._offset + y.size, dtype=np.float64)
        self._offset += y.size
        mask = np.isfinite(y) & (y > 0) & (idx >= self.skip)
        if mask.any():
            x, ly = idx[mask], np.log(y[mask])
            self._n += int(x.size)
            self._sx += float(x.sum())
            self._sy += float(ly.sum())
            self._sxx += float((x * x).sum())
            self._sxy += float((x * ly).sum())
            self._syy += float((ly * ly).sum())
            self._ymin = min(self._ymin, float(ly.min()))
            self._ymax = max(self._ymax, float(ly.max()))
        return self

    def fit(self) -> RateFit:
        """The :class:`RateFit` of everything accumulated so far."""
        n = self._n
        if n < 2:
            return RateFit(
                rate=float("nan"), log_intercept=float("nan"), r_squared=0.0, n_points=n
            )
        sxx_c = self._sxx - self._sx * self._sx / n
        syy_c = self._syy - self._sy * self._sy / n
        if sxx_c <= 0:  # all points at one index: no slope identifiable
            return RateFit(
                rate=float("nan"), log_intercept=float("nan"), r_squared=0.0, n_points=n
            )
        sxy_c = self._sxy - self._sx * self._sy / n
        slope = sxy_c / sxx_c
        intercept = (self._sy - slope * self._sx) / n
        ss_res = max(0.0, syy_c - slope * sxy_c)
        # Same constant-series guard as fit_geometric_rate: a flat
        # series is a perfect fit, but syy_c is then a roundoff residue
        # and the ratio below would be garbage.
        if syy_c <= 0 or self._ymax == self._ymin:
            r2 = 1.0
        else:
            r2 = min(1.0, max(0.0, 1.0 - ss_res / syy_c))
        return RateFit(
            rate=float(np.exp(slope)),
            log_intercept=float(intercept),
            r_squared=float(r2),
            n_points=n,
        )


def fit_geometric_rate_streaming(
    chunks: Iterable[np.ndarray], *, skip: int = 0
) -> RateFit:
    """Fit a geometric decay over a chunked series without concatenating.

    ``chunks`` is any in-order iterable of series slices — typically
    ``TraceStore.iter_series("residuals")`` — so the fit runs in
    O(chunk) memory over arbitrarily long (possibly disk-spilled)
    traces.  Agrees with :func:`fit_geometric_rate` on the
    concatenated series up to floating-point roundoff.
    """
    acc = StreamingRateFit(skip=skip)
    for chunk in chunks:
        acc.update(chunk)
    return acc.fit()


def rates_from_store(store, *, skip: int = 0) -> "dict[str, RateFit]":
    """Per-scenario geometric rate fits from a store's persisted traces.

    Streams the store's rows (:meth:`~repro.runtime.sweep_store.SweepStore.iter_rows`
    — no ScenarioResult materialization) and fits
    :func:`fit_geometric_rate` to each row whose trace was kept and
    recorded at least two residuals.  Keyed by scenario key; rows
    without a usable trace are simply absent, so the caller decides
    whether an empty result is an error.
    """
    fits: "dict[str, RateFit]" = {}
    for row in store.iter_rows():
        if not store.has_trace(row.content_hash):
            continue
        trace = store.load_trace(row.content_hash)
        if trace.residuals is None or len(trace.residuals) < 2:
            continue  # nothing to regress
        fits[row.key] = fit_geometric_rate(trace.residuals, skip=skip)
    return fits


def iterations_to_tolerance(series: np.ndarray, tol: float) -> int | None:
    """First index where the series falls (and stays) below ``tol``.

    "Stays" guards against the non-monotone dips of asynchronous runs:
    the index returned is the first ``j`` with ``series[r] < tol`` for
    all ``r >= j``.  Returns ``None`` when never reached.
    """
    y = np.asarray(series, dtype=np.float64)
    if tol <= 0:
        raise ValueError(f"tol must be positive, got {tol}")
    if y.size == 0:
        return None
    below = y < tol
    if not below[-1]:
        return None  # not below at the end => never *stays* below
    above_idx = np.nonzero(~below)[0]
    if above_idx.size == 0:
        return 0  # below from the start
    j = int(above_idx[-1] + 1)  # first index after the last excursion
    return j if j < y.size else None


def time_to_tolerance(
    series: np.ndarray, times: np.ndarray, tol: float
) -> float | None:
    """Simulated time at which the series permanently drops below ``tol``.

    ``series`` has ``J + 1`` entries (initial + per iteration),
    ``times`` has ``J`` (completion times); returns the completion time
    of the iteration found by :func:`iterations_to_tolerance`, time 0.0
    when already below at the start, or ``None``.
    """
    j = iterations_to_tolerance(series, tol)
    if j is None:
        return None
    if j == 0:
        return 0.0
    t = np.asarray(times, dtype=np.float64)
    if t.size != np.asarray(series).size - 1:
        raise ValueError("times must have one fewer entry than series")
    return float(t[j - 1])
