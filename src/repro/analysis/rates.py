"""Convergence-rate estimation from realized series.

Asynchronous runs produce noisy, non-monotone error/residual series;
these helpers extract the quantities the benchmarks report: fitted
geometric rates, iterations/time to tolerance, and per-macro-iteration
contraction factors.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["RateFit", "fit_geometric_rate", "iterations_to_tolerance", "time_to_tolerance"]


@dataclass(frozen=True)
class RateFit:
    """Least-squares geometric fit ``series[j] ~ C * rate^j``.

    Attributes
    ----------
    rate:
        Fitted per-iteration contraction factor.
    log_intercept:
        Fitted ``log C``.
    r_squared:
        Goodness of fit in log space.
    n_points:
        Number of (positive, finite) points used.
    """

    rate: float
    log_intercept: float
    r_squared: float
    n_points: int

    def half_life(self) -> float:
        """Iterations to halve the series (``inf`` for non-contracting fits)."""
        if not 0.0 < self.rate < 1.0:
            return float("inf")
        return float(np.log(0.5) / np.log(self.rate))


def fit_geometric_rate(series: np.ndarray, *, skip: int = 0) -> RateFit:
    """Fit a geometric decay to a positive series by log-linear regression.

    Parameters
    ----------
    series:
        Error or residual values indexed by iteration.
    skip:
        Initial entries to ignore (transient).
    """
    y = np.asarray(series, dtype=np.float64)
    if y.ndim != 1:
        raise ValueError(f"series must be 1-D, got shape {y.shape}")
    idx = np.arange(y.size)
    mask = np.isfinite(y) & (y > 0)
    mask[:skip] = False
    x, ly = idx[mask].astype(np.float64), np.log(y[mask])
    if x.size < 2:
        return RateFit(rate=float("nan"), log_intercept=float("nan"), r_squared=0.0, n_points=int(x.size))
    A = np.vstack([x, np.ones_like(x)]).T
    coef, *_ = np.linalg.lstsq(A, ly, rcond=None)
    slope, intercept = float(coef[0]), float(coef[1])
    pred = A @ coef
    ss_res = float(np.sum((ly - pred) ** 2))
    ss_tot = float(np.sum((ly - ly.mean()) ** 2))
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return RateFit(rate=float(np.exp(slope)), log_intercept=intercept, r_squared=r2, n_points=int(x.size))


def iterations_to_tolerance(series: np.ndarray, tol: float) -> int | None:
    """First index where the series falls (and stays) below ``tol``.

    "Stays" guards against the non-monotone dips of asynchronous runs:
    the index returned is the first ``j`` with ``series[r] < tol`` for
    all ``r >= j``.  Returns ``None`` when never reached.
    """
    y = np.asarray(series, dtype=np.float64)
    if tol <= 0:
        raise ValueError(f"tol must be positive, got {tol}")
    if y.size == 0:
        return None
    below = y < tol
    if not below[-1]:
        return None  # not below at the end => never *stays* below
    above_idx = np.nonzero(~below)[0]
    if above_idx.size == 0:
        return 0  # below from the start
    j = int(above_idx[-1] + 1)  # first index after the last excursion
    return j if j < y.size else None


def time_to_tolerance(
    series: np.ndarray, times: np.ndarray, tol: float
) -> float | None:
    """Simulated time at which the series permanently drops below ``tol``.

    ``series`` has ``J + 1`` entries (initial + per iteration),
    ``times`` has ``J`` (completion times); returns the completion time
    of the iteration found by :func:`iterations_to_tolerance`, time 0.0
    when already below at the start, or ``None``.
    """
    j = iterations_to_tolerance(series, tol)
    if j is None:
        return None
    if j == 0:
        return 0.0
    t = np.asarray(times, dtype=np.float64)
    if t.size != np.asarray(series).size - 1:
        raise ValueError("times must have one fewer entry than series")
    return float(t[j - 1])
