"""Text rendering: paper-style tables and the Figure 1/2 timelines.

The benchmark harness prints its measurements through these helpers so
every experiment's output is a self-describing block of rows/series —
the reproduction of the paper's figures in a terminal.

:func:`render_schedule` draws the simulator's phase/message records as
an ASCII timeline in the style of Figures 1 and 2: one lane per
processor, updating phases as labelled boxes, full updates as ``o``
send markers and partial updates (flexible communication) as ``~``.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.runtime.simulator.records import SimulationResult

__all__ = ["render_table", "render_series", "render_schedule"]


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str | None = None,
    float_fmt: str = "{:.4g}",
) -> str:
    """Monospace table with auto-sized columns.

    Floats go through ``float_fmt``; everything else through ``str``.
    """
    def fmt(v: object) -> str:
        if isinstance(v, (float, np.floating)):
            if np.isnan(v):
                return "-"
            return float_fmt.format(float(v))
        return str(v)

    str_rows = [[fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(f"row has {len(row)} cells for {len(headers)} headers")
        for c, cell in enumerate(row):
            widths[c] = max(widths[c], len(cell))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    name: str,
    values: Sequence[float],
    *,
    max_points: int = 12,
    float_fmt: str = "{:.3g}",
) -> str:
    """One-line summary of a numeric series (subsampled)."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        return f"{name}: (empty)"
    if arr.size > max_points:
        idx = np.linspace(0, arr.size - 1, max_points).astype(int)
        shown = arr[idx]
    else:
        shown = arr
    body = ", ".join(float_fmt.format(v) for v in shown)
    return f"{name} [{arr.size} pts]: {body}"


def render_schedule(
    result: SimulationResult,
    *,
    horizon: float | None = None,
    width: int = 100,
    show_messages: bool = True,
) -> str:
    """ASCII reproduction of the paper's Figure 1 / Figure 2 timelines.

    One lane per processor; each updating phase is drawn as
    ``[##j##]`` spanning its simulated duration and labelled with its
    global iteration number.  Below each lane, ``o`` marks full-update
    sends and ``~`` marks partial-update sends (flexible
    communication) at their send times.
    """
    if width < 20:
        raise ValueError(f"width must be >= 20, got {width}")
    if not result.phases:
        return "(no phases completed)"
    t_max = horizon if horizon is not None else max(p.end for p in result.phases)
    if t_max <= 0:
        raise ValueError("horizon must be positive")
    procs = sorted({p.processor for p in result.phases})

    def col(t: float) -> int:
        return min(width - 1, max(0, int(round(t / t_max * (width - 1)))))

    lines: list[str] = [f"time 0 {'-' * (width - 12)} {t_max:.3g}"]
    for pid in procs:
        lane = [" "] * width
        for ph in result.phases:
            if ph.processor != pid or ph.start > t_max:
                continue
            a, b = col(ph.start), col(min(ph.end, t_max))
            if b <= a:
                b = min(width - 1, a + 1)
            lane[a] = "["
            lane[b] = "]"
            for c in range(a + 1, b):
                lane[c] = "#"
            label = str(ph.iteration)
            mid = max(a + 1, (a + b) // 2 - len(label) // 2)
            for k, ch in enumerate(label):
                if mid + k < b:
                    lane[mid + k] = ch
        lines.append(f"P{pid} |" + "".join(lane))
        if show_messages:
            msg_lane = [" "] * width
            for m in result.messages:
                if m.src != pid or m.send_time > t_max:
                    continue
                c = col(m.send_time)
                mark = "~" if m.partial else "o"
                # Dropped messages render as 'x' regardless of kind.
                if m.arrival is None:
                    mark = "x"
                msg_lane[c] = mark
            lines.append("   |" + "".join(msg_lane))
    lines.append(
        "legend: [#j#] updating phase j | o full update sent | "
        "~ partial update sent | x dropped"
    )
    return "\n".join(lines)
