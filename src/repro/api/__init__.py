"""One front door: the declarative Study API.

Everything the library can do — solve one scenario, sweep a grid,
stream results into a resumable store, render reports — is reachable
from this package through one object (:class:`Study`) and one file
format (:class:`StudyConfig`, serialized as TOML or JSON):

>>> from repro.api import solve
>>> bool(solve("jacobi", seed=0).converged)
True

The same study three ways::

    # Python one-liner
    result = repro.sweep(problems=("jacobi", "tridiagonal"),
                         delays=("uniform",), n_seeds=3)

    # Declarative file (study.toml) + loader
    study = repro.load_study("study.toml")
    result = study.run()

    # CLI
    #   python -m repro study run study.toml --out results/

All three compile to the same :class:`~repro.scenarios.spec.ScenarioGrid`
and :func:`~repro.runtime.fleet.run_grid` call — the Study layer adds
no second execution path.
"""

from repro.api.config import (
    ComponentRef,
    DelayRef,
    ExecutionSpec,
    FaultRef,
    MachineRef,
    ProblemRef,
    ReportSpec,
    SolverRef,
    SteeringRef,
    StoreSpec,
    StudyConfig,
    TopologyRef,
    infer_kind,
)
from repro.api.study import (
    SolveOutcome,
    Study,
    StudyResult,
    load_study,
    solve,
    sweep,
)
from repro.api.toml_io import dumps_toml, load_study_file, loads_toml

__all__ = [
    "ComponentRef",
    "DelayRef",
    "ExecutionSpec",
    "FaultRef",
    "MachineRef",
    "ProblemRef",
    "ReportSpec",
    "SolveOutcome",
    "SolverRef",
    "SteeringRef",
    "StoreSpec",
    "Study",
    "StudyConfig",
    "StudyResult",
    "TopologyRef",
    "dumps_toml",
    "infer_kind",
    "load_study",
    "load_study_file",
    "loads_toml",
    "solve",
    "sweep",
]
