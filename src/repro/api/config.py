"""Declarative study configuration: the one file format for everything.

A :class:`StudyConfig` pins down a complete experiment campaign —
which problems (:class:`ProblemRef`), how to execute them
(:class:`SolverRef`: scenario kind, execution backends, budget), the
grid axes (steering × delays | machines × seeds), where results stream
(:class:`StoreSpec`), and how they are summarized
(:class:`ReportSpec`).  Everything is a frozen dataclass of plain data
that validates **eagerly** against the unified registries
(:mod:`repro.scenarios.registry` for ingredients,
:mod:`repro.runtime.backends` for engines): a typo'd name or parameter
fails at construction with a did-you-mean message, never inside a
worker process an hour into a sweep.

Serialization round-trips bit-identically through
``to_dict``/``from_dict``, JSON and TOML, reusing the scenario layer's
canonicalization (:func:`repro.scenarios.spec._canon` — the same
machinery that content-addresses :class:`ScenarioSpec`), so
:attr:`StudyConfig.content_hash` is stable across live objects, study
files on disk, and reloads.  :meth:`StudyConfig.to_grid` compiles the
config into the :class:`~repro.scenarios.spec.ScenarioGrid` the fleet
executes — the Study layer adds no second execution path.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields, replace
from typing import Any, ClassVar, Mapping

from repro.api.toml_io import dumps_toml, loads_toml
from repro.runtime.fleet import METRIC_FIELDS
from repro.scenarios import registry
from repro.scenarios.spec import ScenarioGrid, ScenarioSpec, _canon
from repro.utils.naming import unknown_name_message

__all__ = [
    "ComponentRef",
    "ProblemRef",
    "SteeringRef",
    "DelayRef",
    "MachineRef",
    "FaultRef",
    "TopologyRef",
    "SolverRef",
    "StoreSpec",
    "ReportSpec",
    "ExecutionSpec",
    "StudyConfig",
]

_KINDS = ("engine", "simulator")
_EXECUTORS = ("auto", "serial", "thread", "process")

#: ScenarioSpec fields a report may group by.
_GROUPABLE = ("problem", "kind", "steering", "delays", "machine", "fault",
              "topology", "backend", "seed", "max_iterations", "tol")


# ----------------------------------------------------------------------
# Ingredient references
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ComponentRef:
    """A registry name plus parameter overrides, validated eagerly.

    Both the name and every parameter are checked against the unified
    registry's introspected signature at construction time, with
    did-you-mean suggestions on typos.  Subclasses pin the axis.
    """

    name: str
    params: dict[str, Any] = field(default_factory=dict)

    AXIS: ClassVar[str] = ""

    def __post_init__(self) -> None:
        entry = registry.entry(self.AXIS, self.name)  # did-you-mean KeyError
        params = _canon(dict(self.params))
        for key in params:
            if key not in entry.defaults:
                raise ValueError(
                    unknown_name_message(
                        f"parameter for {self.AXIS} {self.name!r}",
                        key,
                        sorted(entry.defaults),
                    )
                )
        object.__setattr__(self, "params", params)

    @classmethod
    def coerce(cls, item: Any) -> "ComponentRef":
        """Accept ``"name"``, ``("name", params)``, ``{"name": ..}``, or a ref."""
        if isinstance(item, cls):
            return item
        if isinstance(item, str):
            return cls(item)
        if isinstance(item, Mapping):
            # A typo'd key ("parms") must not silently drop overrides.
            for key in item:
                if key not in ("name", "params"):
                    raise ValueError(
                        unknown_name_message(
                            f"{cls.AXIS} entry key", str(key), ("name", "params")
                        )
                    )
            if "name" not in item:
                raise ValueError(
                    f"{cls.AXIS} entry needs a 'name' key, got {sorted(item)}"
                )
            return cls(str(item["name"]), dict(item.get("params", {})))
        name, params = item
        return cls(str(name), dict(params))

    def to_dict(self) -> dict[str, Any]:
        return {"name": self.name, "params": dict(self.params)}

    @property
    def axis_item(self) -> tuple[str, dict[str, Any]]:
        """The ``(name, params)`` pair :class:`ScenarioGrid` axes accept."""
        return (self.name, dict(self.params))


@dataclass(frozen=True)
class ProblemRef(ComponentRef):
    """A registered problem (operator factory) with overrides."""

    AXIS: ClassVar[str] = "problem"


@dataclass(frozen=True)
class SteeringRef(ComponentRef):
    """A registered steering policy with overrides."""

    AXIS: ClassVar[str] = "steering"


@dataclass(frozen=True)
class DelayRef(ComponentRef):
    """A registered delay model with overrides."""

    AXIS: ClassVar[str] = "delays"


@dataclass(frozen=True)
class MachineRef(ComponentRef):
    """A registered machine archetype with overrides."""

    AXIS: ClassVar[str] = "machine"


@dataclass(frozen=True)
class FaultRef(ComponentRef):
    """A registered fault model with overrides (simulator studies)."""

    AXIS: ClassVar[str] = "fault"


@dataclass(frozen=True)
class TopologyRef(ComponentRef):
    """A registered topology channel graph with overrides (simulator studies)."""

    AXIS: ClassVar[str] = "topology"


# ----------------------------------------------------------------------
# How to execute
# ----------------------------------------------------------------------

def infer_kind(backends: "tuple[str, ...]", kind: "str | None" = None) -> str:
    """Scenario kind implied by an execution-backend list.

    All-``model`` backends mean an engine study, all-``machine``
    backends a simulator study; no backends keep the engine default.
    Mixed or ``algorithm``-kind lists are not sweepable and raise.
    """
    if kind is not None:
        if kind not in _KINDS:
            raise ValueError(f"kind must be one of {_KINDS}, got {kind!r}")
        return kind
    if not backends:
        return "engine"
    from repro.runtime import backends as _backends

    kinds = {_backends.backend_kind(b) for b in backends}
    if kinds == {"machine"}:
        return "simulator"
    if kinds == {"model"}:
        return "engine"
    if "algorithm" in kinds:
        raise ValueError(
            f"backends {list(backends)} include algorithm-kind comparators, "
            "which are not sweepable; use model backends (engine studies) or "
            "machine backends (simulator studies)"
        )
    raise ValueError(
        f"backends {list(backends)} mix kinds {sorted(kinds)}; "
        "a study needs all-model or all-machine backends"
    )


@dataclass(frozen=True)
class SolverRef:
    """How scenarios execute: kind, backend axis, and the shared budget.

    ``backends=()`` resolves eagerly to the kind's default backend
    (``exact`` for engine studies, ``vectorized`` for simulator
    studies), mirroring :class:`~repro.scenarios.spec.ScenarioSpec`,
    so a config that spelled the default out and one that omitted it
    hash identically.
    """

    kind: str = "engine"
    backends: tuple[str, ...] = ()
    max_iterations: int = 2000
    tol: float = 1e-8

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"kind must be one of {_KINDS}, got {self.kind!r}")
        backends = self.backends
        if isinstance(backends, str):
            backends = (backends,)
        backends = tuple(backends)
        # Validation (names, kind compatibility, did-you-mean) is the
        # scenario layer's _check_backend; reuse it via a throwaway
        # grid-normalization rather than duplicating the rules.
        from repro.scenarios.spec import _check_backend

        if not backends:
            backends = (_check_backend(None, self.kind),)
        else:
            backends = tuple(_check_backend(b, self.kind) for b in backends)
        if len(set(backends)) != len(backends):
            raise ValueError(f"duplicate backends: {backends}")
        object.__setattr__(self, "backends", backends)
        if self.max_iterations < 1:
            raise ValueError(f"max_iterations must be >= 1, got {self.max_iterations}")
        if self.tol < 0:
            raise ValueError(f"tol must be >= 0, got {self.tol}")

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "backends": list(self.backends),
            "max_iterations": int(self.max_iterations),
            "tol": float(self.tol),
        }


# ----------------------------------------------------------------------
# Where results go, how they are reported, how the fleet runs
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class StoreSpec:
    """Persistence options: sweep-store directory, resume, traces."""

    out: str | None = None
    resume: bool = False
    keep_traces: bool = False

    def __post_init__(self) -> None:
        if self.out is not None:
            object.__setattr__(self, "out", str(self.out))
        if self.keep_traces and self.out is None:
            raise ValueError("keep_traces requires an out directory")
        if self.resume and self.out is None:
            raise ValueError("resume requires an out directory")

    def to_dict(self) -> dict[str, Any]:
        doc: dict[str, Any] = {
            "resume": bool(self.resume),
            "keep_traces": bool(self.keep_traces),
        }
        if self.out is not None:
            doc["out"] = self.out  # TOML has no null: omit when unset
        return doc


@dataclass(frozen=True)
class ReportSpec:
    """How a finished study renders: grouping, metrics, backend pivot.

    Empty ``group_by``/``metrics`` mean "kind-appropriate defaults"
    (resolved at render time, so the same config reports sensibly for
    engine and simulator studies).
    """

    group_by: tuple[str, ...] = ()
    metrics: tuple[str, ...] = ()
    backend_metric: str = "iterations"

    def __post_init__(self) -> None:
        object.__setattr__(self, "group_by", tuple(self.group_by))
        object.__setattr__(self, "metrics", tuple(self.metrics))
        for name in self.group_by:
            if name not in _GROUPABLE:
                raise ValueError(
                    unknown_name_message("group-by field", name, _GROUPABLE)
                )
        for metric in (*self.metrics, self.backend_metric):
            if metric not in METRIC_FIELDS:
                raise ValueError(
                    unknown_name_message("metric", metric, METRIC_FIELDS)
                )

    def to_dict(self) -> dict[str, Any]:
        return {
            "group_by": list(self.group_by),
            "metrics": list(self.metrics),
            "backend_metric": self.backend_metric,
        }


@dataclass(frozen=True)
class ExecutionSpec:
    """Fleet execution knobs: executor, pool width, dispatch, cache.

    ``chunk_size`` controls how many scenarios ride in one dispatched
    pool task (``"auto"``: cost-balanced chunks, ~4 tasks per worker;
    ``1``: per-task dispatch).  ``batch`` routes homogeneous spec
    groups inside each chunk through the scenario-batched lockstep
    engine (on by default; ``False`` restores one solo call per
    scenario).  ``jit`` opts the batched engine into the compiled numba
    kernel (``None`` defers to the ``REPRO_JIT`` environment variable;
    the kernel auto-disables, reason recorded, when numba is absent or
    its bit-identity probe fails).  ``cache_dir`` names the cross-study
    result cache
    consulted by content hash before any scenario executes (``None``
    defers to the ``REPRO_SWEEP_CACHE`` environment variable at run
    time).  All of these change only *how fast* results arrive, never
    their bits, so none participates in defaults-only documents: they
    are omitted from :meth:`to_dict` when unset and old study files
    load unchanged.
    """

    executor: str = "auto"
    max_workers: int | None = None
    chunk_size: int | str = "auto"
    batch: bool = True
    jit: bool | None = None
    cache_dir: str | None = None

    def __post_init__(self) -> None:
        if self.executor not in _EXECUTORS:
            raise ValueError(
                unknown_name_message("executor", self.executor, _EXECUTORS)
            )
        if self.max_workers is not None and self.max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {self.max_workers}")
        from repro.runtime.fleet import _check_chunk_size

        _check_chunk_size(self.chunk_size)
        if not isinstance(self.batch, bool):
            raise ValueError(f"batch must be a bool, got {self.batch!r}")
        if self.jit is not None and not isinstance(self.jit, bool):
            raise ValueError(f"jit must be a bool or None, got {self.jit!r}")
        if self.cache_dir is not None:
            object.__setattr__(self, "cache_dir", str(self.cache_dir))

    def to_dict(self) -> dict[str, Any]:
        doc: dict[str, Any] = {"executor": self.executor}
        if self.max_workers is not None:
            doc["max_workers"] = int(self.max_workers)
        if self.chunk_size != "auto":
            doc["chunk_size"] = int(self.chunk_size)
        if not self.batch:
            doc["batch"] = False
        if self.jit is not None:
            doc["jit"] = self.jit  # tri-state: omitted means "env decides"
        if self.cache_dir is not None:
            doc["cache_dir"] = self.cache_dir  # TOML has no null: omit when unset
        return doc


# ----------------------------------------------------------------------
# The study config
# ----------------------------------------------------------------------

def _coerce_axis(items: Any, ref_cls: type[ComponentRef]) -> tuple[ComponentRef, ...]:
    if isinstance(items, (str, Mapping)) or (
        isinstance(items, tuple) and len(items) == 2 and isinstance(items[0], str)
        and isinstance(items[1], Mapping)
    ):
        items = (items,)
    out = tuple(ref_cls.coerce(item) for item in items)
    if not out:
        raise ValueError(f"axis {ref_cls.AXIS!r} must not be empty")
    return out


@dataclass(frozen=True)
class StudyConfig:
    """One declarative study: solve → sweep → store → report, as data.

    ``problems`` × (``delays`` × ``steerings`` | ``machines`` ×
    ``faults`` × ``topologies``) × ``solver.backends`` × ``n_seeds`` is
    the scenario grid :meth:`to_grid` compiles to; ``store`` and
    ``report`` describe what :meth:`repro.api.Study.run` does with the
    results.  Axis entries accept plain names, ``(name, params)``
    pairs, dicts, or ``*Ref`` objects — everything normalizes to refs
    at construction.  The ``faults``/``topologies`` axes apply to
    simulator studies only and default to the structural no-ops
    (``none``/``native``), under which they are omitted from the
    canonical document so pre-fault study files keep their content
    hashes.
    """

    problems: tuple[ProblemRef, ...]
    name: str = "study"
    solver: SolverRef = field(default_factory=SolverRef)
    steerings: tuple[SteeringRef, ...] = ("cyclic",)
    delays: tuple[DelayRef, ...] = ("zero",)
    machines: tuple[MachineRef, ...] = ("uniform",)
    faults: tuple[FaultRef, ...] = ("none",)
    topologies: tuple[TopologyRef, ...] = ("native",)
    n_seeds: int = 1
    master_seed: int = 0
    store: StoreSpec = field(default_factory=StoreSpec)
    report: ReportSpec = field(default_factory=ReportSpec)
    execution: ExecutionSpec = field(default_factory=ExecutionSpec)

    FORMAT_VERSION: ClassVar[int] = 1

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ValueError(f"study name must be a nonempty string, got {self.name!r}")
        if isinstance(self.solver, Mapping):
            object.__setattr__(self, "solver", SolverRef(**self.solver))
        object.__setattr__(self, "problems", _coerce_axis(self.problems, ProblemRef))
        object.__setattr__(self, "steerings", _coerce_axis(self.steerings, SteeringRef))
        object.__setattr__(self, "delays", _coerce_axis(self.delays, DelayRef))
        object.__setattr__(self, "machines", _coerce_axis(self.machines, MachineRef))
        object.__setattr__(self, "faults", _coerce_axis(self.faults, FaultRef))
        object.__setattr__(self, "topologies", _coerce_axis(self.topologies, TopologyRef))
        if isinstance(self.store, Mapping):
            object.__setattr__(self, "store", StoreSpec(**self.store))
        if isinstance(self.report, Mapping):
            object.__setattr__(self, "report", ReportSpec(**self.report))
        if isinstance(self.execution, Mapping):
            object.__setattr__(self, "execution", ExecutionSpec(**self.execution))
        if self.n_seeds < 1:
            raise ValueError(f"n_seeds must be >= 1, got {self.n_seeds}")

    # -- compilation ---------------------------------------------------
    @property
    def kind(self) -> str:
        return self.solver.kind

    def to_grid(self) -> ScenarioGrid:
        """Compile to the :class:`ScenarioGrid` the fleet executes."""
        return ScenarioGrid(
            problems=tuple(r.axis_item for r in self.problems),
            kind=self.solver.kind,
            steerings=tuple(r.axis_item for r in self.steerings),
            delays=tuple(r.axis_item for r in self.delays),
            machines=tuple(r.axis_item for r in self.machines),
            faults=tuple(r.axis_item for r in self.faults),
            topologies=tuple(r.axis_item for r in self.topologies),
            n_seeds=self.n_seeds,
            master_seed=self.master_seed,
            backends=self.solver.backends,
            max_iterations=self.solver.max_iterations,
            tol=self.solver.tol,
        )

    def specs(self) -> tuple[ScenarioSpec, ...]:
        """The fully expanded scenario list (one independent seed each)."""
        return self.to_grid().expand()

    @property
    def size(self) -> int:
        """Number of scenarios this study expands to."""
        return self.to_grid().size

    def with_store(self, out: "str | None", *, resume: "bool | None" = None,
                   keep_traces: "bool | None" = None) -> "StudyConfig":
        """A copy with store options overridden (``None`` keeps current)."""
        store = StoreSpec(
            out=out if out is not None else self.store.out,
            resume=self.store.resume if resume is None else resume,
            keep_traces=self.store.keep_traces if keep_traces is None else keep_traces,
        )
        return replace(self, store=store)

    # -- serialization -------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Canonical plain-data document (JSON- and TOML-serializable).

        Every field participates; ``None``-valued options are omitted
        (TOML has no null) and restored as defaults by
        :meth:`from_dict`, so the round trip is exact.  The
        ``faults``/``topologies`` axes are likewise omitted at their
        no-op defaults, keeping pre-fault documents — and their content
        hashes — byte-identical.
        """
        doc = {
            "format_version": self.FORMAT_VERSION,
            "name": self.name,
            "n_seeds": int(self.n_seeds),
            "master_seed": int(self.master_seed),
            "solver": self.solver.to_dict(),
            "store": self.store.to_dict(),
            "report": self.report.to_dict(),
            "execution": self.execution.to_dict(),
            "problems": [r.to_dict() for r in self.problems],
            "steerings": [r.to_dict() for r in self.steerings],
            "delays": [r.to_dict() for r in self.delays],
            "machines": [r.to_dict() for r in self.machines],
        }
        if self.faults != (FaultRef("none"),):
            doc["faults"] = [r.to_dict() for r in self.faults]
        if self.topologies != (TopologyRef("native"),):
            doc["topologies"] = [r.to_dict() for r in self.topologies]
        return doc

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "StudyConfig":
        """Rebuild a validated config from :meth:`to_dict` output.

        Unknown top-level keys raise with a did-you-mean suggestion —
        a misspelled key in a hand-written study file must not be
        silently ignored.
        """
        doc = dict(doc)
        version = doc.pop("format_version", cls.FORMAT_VERSION)
        if int(version) > cls.FORMAT_VERSION:
            raise ValueError(
                f"study file format_version {version} is newer than this "
                f"library understands ({cls.FORMAT_VERSION})"
            )
        known = {f.name for f in fields(cls)}
        for key in doc:
            if key not in known:
                raise ValueError(
                    unknown_name_message("study config key", key, sorted(known))
                )
        return cls(**doc)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "StudyConfig":
        return cls.from_dict(json.loads(text))

    def to_toml(self) -> str:
        return dumps_toml(self.to_dict())

    @classmethod
    def from_toml(cls, text: str) -> "StudyConfig":
        return cls.from_dict(loads_toml(text))

    @property
    def content_hash(self) -> str:
        """SHA-256 (16 hex chars) of the canonical document.

        Stable across live objects, JSON/TOML round trips, and
        process boundaries — the study-level analogue of
        :attr:`ScenarioSpec.content_hash`.
        """
        doc = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(doc.encode()).hexdigest()[:16]
