"""The Study front door: one object from solve to sweep to report.

:class:`Study` wraps a validated
:class:`~repro.api.config.StudyConfig` and compiles it onto the
existing machinery — ``config.to_grid()`` →
:func:`repro.runtime.fleet.run_grid` (with a
:class:`~repro.runtime.sweep_store.SweepStore` when the config asks
for persistence) — so the declarative layer adds no second execution
path; it *is* the fleet, reachable from one object and one file
format.  :class:`StudyResult` bundles the outcome: the typed
:class:`~repro.runtime.fleet.FleetResult`, the store handle, the
determinism digest, and lazy analysis accessors.

Module-level conveniences are the public one-liners re-exported at the
package root:

* :func:`solve` — one scenario, returning the final iterate;
* :func:`sweep` — build a config from keywords and run it;
* :func:`load_study` — a :class:`Study` from a ``.toml``/``.json`` file.
"""

from __future__ import annotations

import pathlib
import sys
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

import numpy as np

from repro.api.config import StudyConfig
from repro.api.toml_io import load_study_file
from repro.runtime.fleet import (
    FleetResult,
    ScenarioResult,
    execute_scenario,
    run_grid,
)
from repro.runtime.sweep_store import SweepStore
from repro.scenarios.spec import ScenarioSpec

__all__ = [
    "SolveOutcome",
    "Study",
    "StudyResult",
    "load_study",
    "solve",
    "sweep",
]

#: Backend aliases accepted by :func:`solve`: a scenario *kind* stands
#: for that kind's default execution backend.
_KIND_ALIASES = ("engine", "simulator")

#: Distinguishes "no title argument" from an explicit ``title=None``.
_DEFAULT_TITLE = object()


# ----------------------------------------------------------------------
# solve: one scenario, full outcome
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class SolveOutcome:
    """Everything one :func:`solve` call produced.

    The scalar summary (``converged``, ``iterations``, ...) delegates
    to the underlying :class:`~repro.runtime.fleet.ScenarioResult`;
    ``x`` is the final iterate and ``trace`` the realized ``(S, L)``
    iteration trace (when the backend records one).
    """

    result: ScenarioResult
    x: np.ndarray
    trace: Any = None
    stats: dict[str, Any] = field(default_factory=dict)

    @property
    def spec(self) -> ScenarioSpec:
        return self.result.spec

    @property
    def key(self) -> str:
        return self.result.key

    @property
    def converged(self) -> bool:
        return self.result.converged

    @property
    def iterations(self) -> int:
        return self.result.iterations

    @property
    def final_residual(self) -> float:
        return self.result.final_residual

    @property
    def final_error(self) -> "float | None":
        return self.result.final_error

    @property
    def sim_time(self) -> "float | None":
        return self.result.sim_time

    def __repr__(self) -> str:
        return (
            f"SolveOutcome(key={self.key!r}, converged={self.converged}, "
            f"iterations={self.iterations}, final_residual={self.final_residual:.3e})"
        )


def _resolve_solve_backend(backend: "str | None") -> tuple[str, "str | None"]:
    """``backend`` -> ``(scenario kind, backend name or None)``.

    Accepts a registered ``model``/``machine`` execution-backend name
    (kind derived from the registry), a kind alias
    (``"engine"``/``"simulator"`` meaning "that kind's default
    backend"), or ``None`` (engine default).
    """
    if backend is None:
        return "engine", None
    if backend in _KIND_ALIASES:
        return backend, None
    from repro.runtime import backends as _backends

    kind = _backends.backend_kind(backend)  # KeyError with did-you-mean
    if kind == "algorithm":
        raise ValueError(
            f"backend {backend!r} is an algorithm-kind comparator and runs "
            f"through its solver class (see repro.solvers), not solve(); "
            f"solve() takes model backends "
            f"({', '.join(_backends.available_backends('model'))}) or machine "
            f"backends ({', '.join(_backends.available_backends('machine'))})"
        )
    return ("engine" if kind == "model" else "simulator"), backend


def solve(
    problem: Any,
    *,
    backend: "str | None" = None,
    steering: Any = "cyclic",
    delays: Any = "zero",
    machine: Any = "uniform",
    seed: int = 0,
    max_iterations: int = 2000,
    tol: float = 1e-8,
    **problem_params: Any,
) -> SolveOutcome:
    """Solve one registered problem through any execution backend.

    ``problem`` is a registry name (``repro.solve("lasso", ...)``);
    extra keyword arguments are passed to its factory.  ``backend`` is
    a ``model``- or ``machine``-kind execution-backend name
    (``"exact"``, ``"vectorized"``, ``"shared-memory"``, ...) or the
    alias ``"engine"``/``"simulator"`` for the kind's default;
    algorithm-kind comparators (``arock``, ``dave-pg``) run through
    their solver classes instead.  Engine runs use ``steering``/``delays``;
    simulator runs use ``machine`` — each accepts a name or a
    ``(name, params)`` pair, validated eagerly with did-you-mean
    suggestions.  Raises on scenario errors (unlike the fleet, which
    records them).

    >>> solve("jacobi", seed=0).converged
    True
    """
    from repro.api.config import DelayRef, MachineRef, ProblemRef, SteeringRef

    kind, backend_name = _resolve_solve_backend(backend)
    prob = ProblemRef.coerce(problem)
    if problem_params:  # re-validate the merged params eagerly
        prob = ProblemRef(prob.name, {**prob.params, **problem_params})
    steer = SteeringRef.coerce(steering)
    delay = DelayRef.coerce(delays)
    mach = MachineRef.coerce(machine)
    spec = ScenarioSpec(
        problem=prob.name,
        kind=kind,
        problem_params=dict(prob.params),
        steering=steer.name,
        steering_params=steer.params,
        delays=delay.name,
        delay_params=delay.params,
        machine=mach.name,
        machine_params=mach.params,
        backend=backend_name,
        seed=seed,
        max_iterations=max_iterations,
        tol=tol,
    )
    summary, run = execute_scenario(spec)
    return SolveOutcome(result=summary, x=run.x, trace=run.trace, stats=dict(run.stats))


# ----------------------------------------------------------------------
# Study and StudyResult
# ----------------------------------------------------------------------

class Study:
    """A declarative study, ready to run, resume, or inspect.

    Construct from a :class:`~repro.api.config.StudyConfig` (or a
    mapping coerced into one), or load a study file with
    :meth:`from_file`/:func:`load_study`.  The config validates at
    construction; :meth:`run` executes it through the fleet.
    """

    def __init__(self, config: "StudyConfig | Mapping[str, Any]") -> None:
        if not isinstance(config, StudyConfig):
            config = StudyConfig.from_dict(config)
        self.config = config

    @classmethod
    def from_file(cls, path: "str | pathlib.Path") -> "Study":
        """Load a study from a ``.toml`` or ``.json`` file."""
        return cls(StudyConfig.from_dict(load_study_file(path)))

    # -- introspection -------------------------------------------------
    @property
    def name(self) -> str:
        return self.config.name

    def specs(self) -> tuple[ScenarioSpec, ...]:
        return self.config.specs()

    def __repr__(self) -> str:
        cfg = self.config
        return (
            f"<Study {cfg.name!r} kind={cfg.kind} scenarios={cfg.size} "
            f"hash={cfg.content_hash}>"
        )

    def shard_specs(self, shard: "tuple[int, int] | None") -> tuple[ScenarioSpec, ...]:
        """The specs this host runs: all of them, or one grid shard.

        ``shard`` is ``(index, num_shards)`` with a 0-based index; the
        split is the content-hash-stable, seed-preserving
        :meth:`~repro.scenarios.spec.ScenarioGrid.shard`.
        """
        if shard is None:
            return self.specs()
        index, num_shards = shard
        return self.config.to_grid().shard(num_shards, index)

    # -- execution -----------------------------------------------------
    def run(
        self,
        *,
        out: "str | pathlib.Path | None" = None,
        resume: "bool | None" = None,
        keep_traces: "bool | None" = None,
        executor: "str | None" = None,
        max_workers: "int | None" = None,
        chunk_size: "int | str | None" = None,
        batch: "bool | None" = None,
        jit: "bool | None" = None,
        cache: Any = None,
        shard: "tuple[int, int] | None" = None,
    ) -> "StudyResult":
        """Execute the study's scenario grid through the fleet.

        Keyword overrides win over the config's ``store``/``execution``
        sections (``None`` keeps the config's value).  With an ``out``
        directory the run streams into a
        :class:`~repro.runtime.sweep_store.SweepStore` as workers
        finish; ``resume=True`` additionally requires the store to
        exist and re-executes only the scenarios it is missing —
        bit-identical to an uninterrupted run.

        ``shard=(index, num_shards)`` runs only that content-hash-stable
        slice of the grid (each host gets its own ``out`` store;
        recombine with :meth:`~repro.runtime.sweep_store.SweepStore.merge`).
        ``cache`` overrides the config's ``execution.cache_dir``
        (``False`` disables caching even when the config or the
        ``REPRO_SWEEP_CACHE`` environment variable names one).
        ``batch`` overrides ``execution.batch``: homogeneous spec
        groups run through the scenario-batched lockstep engine by
        default — a pure throughput change, bit-identical results —
        and ``False`` restores one solo call per scenario.  ``jit``
        overrides ``execution.jit``: ``True`` opts the batched engine
        into the compiled numba kernel (auto-disabled when numba is
        absent or its bit-identity probe fails), ``None`` defers to
        the config and then the ``REPRO_JIT`` environment variable.
        """
        cfg = self.config
        out = str(out) if out is not None else cfg.store.out
        do_resume = cfg.store.resume if resume is None else bool(resume)
        keep = cfg.store.keep_traces if keep_traces is None else bool(keep_traces)
        chosen_executor = executor if executor is not None else cfg.execution.executor
        workers = max_workers if max_workers is not None else cfg.execution.max_workers
        chunks = chunk_size if chunk_size is not None else cfg.execution.chunk_size
        do_batch = cfg.execution.batch if batch is None else bool(batch)
        do_jit = cfg.execution.jit if jit is None else bool(jit)
        if cache is None:
            cache = cfg.execution.cache_dir

        specs = self.shard_specs(shard)
        store: SweepStore | None = None
        if out is not None:
            # Resuming demands an existing store: a typo'd path must
            # error, not silently re-run the whole study.
            store = SweepStore(out, create=not do_resume)
        else:
            if keep:
                raise ValueError("keep_traces requires an out directory")
            if do_resume:
                raise ValueError("resume requires an out directory")
        fleet = run_grid(
            specs,
            store=store,
            resume=store if do_resume else None,
            cache=cache,
            keep_traces=keep,
            executor=chosen_executor,
            max_workers=workers,
            chunk_size=chunks,
            batch=do_batch,
            jit=do_jit,
        )
        return StudyResult(config=cfg, fleet=fleet, store=store)

    def resume(self, *, out: "str | pathlib.Path | None" = None, **kwargs: Any) -> "StudyResult":
        """:meth:`run` with ``resume=True`` (store must already exist)."""
        return self.run(out=out, resume=True, **kwargs)

    def result(self, out: "str | pathlib.Path | None" = None) -> "StudyResult":
        """A :class:`StudyResult` over an existing store, without running.

        Reads whatever the store has completed so far (possibly a
        partial, still-running sweep) — the ``study report`` verb.
        """
        path = str(out) if out is not None else self.config.store.out
        if path is None:
            raise ValueError("no store directory: pass out= or set [store] out")
        store = SweepStore(path, create=False)
        # Lazy view: reporting on a million-row store streams rows shard
        # by shard instead of materializing every ScenarioResult.
        return StudyResult(config=self.config, fleet=store.fleet_view(), store=store)


class StudyResult:
    """Outcome bundle of one study run: results, store, analysis.

    Wraps the :class:`~repro.runtime.fleet.FleetResult` (``.fleet``),
    the :class:`~repro.runtime.sweep_store.SweepStore` handle when the
    run persisted (``.store``), and the config that produced them.
    Analysis accessors are lazy: nothing is computed until asked.
    """

    def __init__(
        self,
        *,
        config: StudyConfig,
        fleet: "FleetResult | Any",
        store: "SweepStore | None" = None,
    ) -> None:
        # ``fleet`` is either the run's typed FleetResult or, for
        # report-over-store (Study.result), a lazy StoreFleetView with
        # the same aggregate surface.
        self.config = config
        self.fleet = fleet
        self.store = store
        self._rates: dict[int, dict[str, Any]] = {}

    # -- delegation ----------------------------------------------------
    @property
    def results(self) -> "Sequence[ScenarioResult]":
        return self.fleet.results

    def ok(self) -> "Sequence[ScenarioResult]":
        return self.fleet.ok()

    def failures(self) -> tuple[ScenarioResult, ...]:
        return self.fleet.failures()

    @property
    def scenario_count(self) -> int:
        return self.fleet.scenario_count

    def digest(self) -> str:
        """The determinism certificate of this run.

        Computed from the in-memory fleet; for persisted runs it equals
        ``store.digest()`` (same algorithm, same rows), which is what
        makes ``study resume`` verifiable against an uninterrupted run.
        """
        return self.fleet.digest()

    # -- lazy analysis -------------------------------------------------
    def rates(self, *, skip: int = 0) -> "dict[str, Any]":
        """Per-scenario geometric convergence-rate fits (lazy, cached).

        Requires persisted traces (a run with ``keep_traces``); returns
        ``{scenario key: RateFit}`` for every scenario whose residual
        trace is in the store.  Cached per ``skip`` value.
        """
        if skip in self._rates:
            return self._rates[skip]
        if self.store is None:
            raise RuntimeError(
                "rates() needs persisted traces: run the study with an out "
                "directory and keep_traces=True"
            )
        from repro.analysis.rates import rates_from_store

        fits: dict[str, Any] = rates_from_store(self.store, skip=skip)
        if not fits:
            raise RuntimeError(
                "no persisted traces in the store: run with keep_traces=True"
            )
        self._rates[skip] = fits
        return fits

    def backend_comparison(
        self,
        *,
        metric: "str | None" = None,
        group_by: "Sequence[str] | None" = None,
    ) -> "tuple[list[str], list[list[Any]]]":
        """Headers and rows of the cross-backend pivot (lazy)."""
        from repro.analysis.fleet import backend_comparison_rows

        if group_by is None:
            group_by = self.config.report.group_by or (
                ("problem", "delays") if self.config.kind == "engine"
                else ("problem", "machine")
            )
            group_by = tuple(g for g in group_by if g != "backend")
        return backend_comparison_rows(
            self.fleet,
            metric=metric or self.config.report.backend_metric,
            group_by=group_by,
        )

    def report(self, *, title: Any = _DEFAULT_TITLE) -> str:
        """The paper-style text report of this study (lazy).

        ``title`` defaults to ``study '<name>'``; pass ``title=None``
        for an untitled table (the CLI's style).
        """
        from repro.analysis.fleet import render_study_report

        if title is _DEFAULT_TITLE:
            title = f"study {self.config.name!r}"
        return render_study_report(
            self.fleet,
            kind=self.config.kind,
            group_by=self.config.report.group_by or None,
            metrics=self.config.report.metrics or None,
            backend_metric=self.config.report.backend_metric,
            title=title,
        )

    def print_report(self) -> None:  # pragma: no cover - console sugar
        sys.stdout.write(self.report() + "\n")

    def __repr__(self) -> str:
        where = f" store={str(self.store.root)!r}" if self.store is not None else ""
        return (
            f"<StudyResult {self.config.name!r} scenarios={self.scenario_count} "
            f"failures={len(self.failures())}{where}>"
        )


# ----------------------------------------------------------------------
# Module-level conveniences
# ----------------------------------------------------------------------

def sweep(
    problems: "Sequence[Any] | str",
    *,
    name: str = "sweep",
    kind: "str | None" = None,
    backends: "Sequence[str] | str | None" = None,
    steerings: Sequence[Any] = ("cyclic",),
    delays: Sequence[Any] = ("zero",),
    machines: Sequence[Any] = ("uniform",),
    faults: Sequence[Any] = ("none",),
    topologies: Sequence[Any] = ("native",),
    n_seeds: int = 3,
    master_seed: int = 0,
    max_iterations: int = 2000,
    tol: float = 1e-8,
    out: "str | pathlib.Path | None" = None,
    resume: bool = False,
    keep_traces: bool = False,
    executor: str = "auto",
    max_workers: "int | None" = None,
    chunk_size: "int | str" = "auto",
    batch: bool = True,
    jit: "bool | None" = None,
    cache: "str | pathlib.Path | None" = None,
) -> StudyResult:
    """Build a :class:`StudyConfig` from keywords and run it.

    The keyword surface mirrors the ``python -m repro sweep`` flags;
    the CLI is a thin shim over exactly this path.  ``kind`` defaults
    to whatever the ``backends`` imply (engine when unspecified).
    ``cache`` names a cross-study result cache directory (default:
    the ``REPRO_SWEEP_CACHE`` environment variable).
    """
    from repro.api.config import (
        ExecutionSpec,
        SolverRef,
        StoreSpec,
        infer_kind,
    )

    if isinstance(backends, str):
        backends = (backends,)
    backends = tuple(backends) if backends else ()
    config = StudyConfig(
        name=name,
        problems=problems,
        solver=SolverRef(
            kind=infer_kind(backends, kind),
            backends=backends,
            max_iterations=max_iterations,
            tol=tol,
        ),
        steerings=tuple(steerings),
        delays=tuple(delays),
        machines=tuple(machines),
        faults=tuple(faults),
        topologies=tuple(topologies),
        n_seeds=n_seeds,
        master_seed=master_seed,
        store=StoreSpec(
            out=None if out is None else str(out),
            resume=resume,
            keep_traces=keep_traces,
        ),
        execution=ExecutionSpec(
            executor=executor,
            max_workers=max_workers,
            chunk_size=chunk_size,
            batch=batch,
            jit=jit,
            cache_dir=None if cache is None else str(cache),
        ),
    )
    return Study(config).run()


def load_study(path: "str | pathlib.Path") -> Study:
    """Load a declarative study from a ``.toml`` or ``.json`` file."""
    return Study.from_file(path)
