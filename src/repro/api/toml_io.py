"""Study-file serialization: TOML out, TOML/JSON in.

The standard library ships a TOML *parser* (:mod:`tomllib`) but no
writer, so :func:`dumps_toml` implements the small subset a
:class:`~repro.api.config.StudyConfig` document needs: top-level
scalars, ``[section]`` tables whose nested dicts render as inline
tables, and ``[[array-of-tables]]`` entries for the grid axes.  The
emitted text parses back (``tomllib.loads``) into the exact document it
was produced from — the bit-identical round-trip the Study layer's
content hashing relies on — which is pinned by
``tests/api/test_study_config.py``.

TOML has no null: ``None`` values must be dropped by the caller before
emission (``StudyConfig.to_dict`` omits them), and a stray ``None``
raises instead of silently corrupting the file.
"""

from __future__ import annotations

import json
import math
import pathlib
import tomllib
from typing import Any, Mapping

__all__ = ["dumps_toml", "loads_toml", "load_study_file"]


def _scalar(value: Any) -> str:
    """One TOML value: bool/int/float/str, or an inline array/table."""
    if value is None:
        raise TypeError("TOML has no null; drop None-valued keys before emission")
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if math.isnan(value):
            return "nan"
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        out = repr(value)
        # TOML floats need a decimal point or exponent; repr(2.0) has one.
        return out
    if isinstance(value, str):
        # JSON string escaping is valid TOML basic-string escaping.
        return json.dumps(value)
    if isinstance(value, Mapping):
        inner = ", ".join(f"{_key(k)} = {_scalar(v)}" for k, v in value.items())
        return "{" + (f" {inner} " if inner else "") + "}"
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(_scalar(v) for v in value) + "]"
    raise TypeError(f"cannot serialize {type(value).__name__} to TOML")


def _key(key: str) -> str:
    """Bare key when possible, quoted otherwise."""
    if key and all(c.isalnum() or c in "-_" for c in key):
        return key
    return json.dumps(key)


def dumps_toml(doc: Mapping[str, Any]) -> str:
    """Serialize a plain-data document as TOML text.

    Top-level scalars come first (TOML's parsing rule), then one
    ``[section]`` per dict value, then ``[[name]]`` blocks for lists of
    dicts.  Nested dicts inside sections render as inline tables.
    """
    scalars: list[str] = []
    tables: list[str] = []
    for key, value in doc.items():
        if isinstance(value, Mapping):
            tables.append(f"\n[{_key(key)}]")
            tables.extend(
                f"{_key(k)} = {_scalar(v)}" for k, v in value.items()
            )
        elif (
            isinstance(value, (list, tuple))
            and value
            and all(isinstance(v, Mapping) for v in value)
        ):
            for item in value:
                tables.append(f"\n[[{_key(key)}]]")
                tables.extend(
                    f"{_key(k)} = {_scalar(v)}" for k, v in item.items()
                )
        else:
            scalars.append(f"{_key(key)} = {_scalar(value)}")
    return "\n".join([*scalars, *tables]) + "\n"


def loads_toml(text: str) -> dict[str, Any]:
    """Parse TOML text into a plain dict (:mod:`tomllib`)."""
    return tomllib.loads(text)


def load_study_file(path: "str | pathlib.Path") -> dict[str, Any]:
    """Read a study document from ``.toml`` or ``.json`` by suffix."""
    path = pathlib.Path(path)
    text = path.read_text()
    if path.suffix.lower() == ".json":
        return json.loads(text)
    return loads_toml(text)
