"""Core asynchronous-iteration machinery (the paper's contribution).

* :mod:`repro.core.async_iteration` — Definition 1 executed exactly;
* :mod:`repro.core.flexible` — Definition 3 with partial updates and
  the constraint-(3) audit;
* :mod:`repro.core.macro` — Definition 2 macro-iteration sequences;
* :mod:`repro.core.epochs` — the epoch sequence of [30] for comparison;
* :mod:`repro.core.convergence` — Theorem 1 certificates;
* :mod:`repro.core.termination` — macro-iteration stopping criteria
  ([15], [22]);
* :mod:`repro.core.trace` / :mod:`repro.core.history` — run records;
* :mod:`repro.core.replay` — wrap a realized trace as ``(S, L)`` models
  for cross-backend replay.
"""

from repro.core.async_iteration import AsyncIterationEngine, AsyncRunResult
from repro.core.convergence import (
    TheoremOneReport,
    empirical_macro_contraction,
    macro_iterations_to_tolerance,
    theorem1_bound,
    theorem1_certificate,
)
from repro.core.epochs import EpochSequence, epoch_sequence
from repro.core.flexible import (
    FlexibleIterationEngine,
    FlexibleRunResult,
    InterpolatedPartials,
    LabelledValues,
    PartialUpdateModel,
)
from repro.core.history import VectorHistory
from repro.core.macro import MacroSequence, macro_sequence
from repro.core.order_intervals import OrderIntervalEngine, OrderIntervalResult
from repro.core.replay import TraceReplayDelays, TraceReplaySteering
from repro.core.termination import (
    MacroTerminationDetector,
    TerminationReport,
    error_bound_from_eps,
)
from repro.core.trace import (
    IterationTrace,
    TraceBuilder,
    TraceHandle,
    TraceStore,
    load_trace,
    save_trace,
)

__all__ = [
    "AsyncIterationEngine",
    "AsyncRunResult",
    "EpochSequence",
    "FlexibleIterationEngine",
    "FlexibleRunResult",
    "InterpolatedPartials",
    "IterationTrace",
    "LabelledValues",
    "MacroSequence",
    "MacroTerminationDetector",
    "OrderIntervalEngine",
    "OrderIntervalResult",
    "PartialUpdateModel",
    "TerminationReport",
    "TheoremOneReport",
    "TraceBuilder",
    "TraceHandle",
    "TraceReplayDelays",
    "TraceReplaySteering",
    "TraceStore",
    "VectorHistory",
    "empirical_macro_contraction",
    "epoch_sequence",
    "error_bound_from_eps",
    "load_trace",
    "macro_iterations_to_tolerance",
    "macro_sequence",
    "save_trace",
    "theorem1_bound",
    "theorem1_certificate",
]
