"""The asynchronous iteration engine — Definition 1 executed exactly.

Given an operator ``F``, an initial vector ``x(0)``, a steering policy
``S`` and a delay model ``L``, the engine produces the sequence

    ``x_i(j) = F_i(x_1(l_1(j)), ..., x_n(l_n(j)))   if i in S_j``
    ``x_i(j) = x_i(j-1)                             otherwise``

recording the full ``(S, L)`` trace for macro-iteration/epoch analysis
and optional error/residual series.  This is the *mathematical* engine:
global iterations are the serialization points and delays/steering are
supplied as models.  The hardware-level counterpart that *generates*
``(S, L)`` from processor and channel timing lives in
:mod:`repro.runtime.simulator` and produces the same trace type.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.history import VectorHistory
from repro.core.trace import IterationTrace, TraceStore, resolve_sink
from repro.delays.base import DelayModel
from repro.operators.base import FixedPointOperator
from repro.steering.base import SteeringPolicy
from repro.utils.validation import check_vector

__all__ = ["AsyncRunResult", "AsyncIterationEngine"]


@dataclass(frozen=True)
class AsyncRunResult:
    """Outcome of an asynchronous run.

    Attributes
    ----------
    x:
        Final iterate ``x(J)``.
    trace:
        The realized :class:`~repro.core.trace.IterationTrace`.
    converged:
        Whether the stopping tolerance was reached before the
        iteration budget ran out.
    iterations:
        Number of global iterations performed.
    final_residual:
        Fixed-point residual ``||F(x) - x||_u`` at the final iterate.
    """

    x: np.ndarray
    trace: IterationTrace
    converged: bool
    iterations: int
    final_residual: float

    def final_error(self) -> float | None:
        """Final ``||x - x*||_u`` when the trace carries an error series."""
        if self.trace.errors is None or self.trace.errors.size == 0:
            return None
        return float(self.trace.errors[-1])


class AsyncIterationEngine:
    """Driver for Definition 1 asynchronous iterations.

    Parameters
    ----------
    operator:
        The fixed-point map ``F`` (its block spec defines components).
    steering:
        Steering policy producing ``S_j``; component count must match.
    delays:
        Delay model producing ``l_i(j)``; component count must match.
    reference:
        Optional known fixed point ``x*`` for error tracking; defaults
        to ``operator.fixed_point()``.
    residual_every:
        Evaluate the (full-operator) residual every this many
        iterations for the stopping test; 1 = every iteration.
    """

    def __init__(
        self,
        operator: FixedPointOperator,
        steering: SteeringPolicy,
        delays: DelayModel,
        *,
        reference: np.ndarray | None = None,
        residual_every: int = 1,
    ) -> None:
        n = operator.n_components
        if steering.n_components != n:
            raise ValueError(
                f"steering has {steering.n_components} components, operator has {n}"
            )
        if delays.n_components != n:
            raise ValueError(
                f"delay model has {delays.n_components} components, operator has {n}"
            )
        if residual_every < 1:
            raise ValueError(f"residual_every must be >= 1, got {residual_every}")
        self.operator = operator
        self.steering = steering
        self.delays = delays
        self.residual_every = int(residual_every)
        if reference is None:
            reference = operator.fixed_point()
        self.reference = (
            None if reference is None else check_vector(reference, "reference", dim=operator.dim)
        )

    def run(
        self,
        x0: np.ndarray,
        *,
        max_iterations: int = 10_000,
        tol: float = 1e-10,
        track_errors: bool = True,
        track_residuals: bool = True,
        meta: dict[str, Any] | None = None,
        sink: TraceStore | None = None,
    ) -> AsyncRunResult:
        """Execute the asynchronous iteration from ``x0``.

        Stops when the fixed-point residual (checked every
        ``residual_every`` iterations) falls below ``tol`` or the
        iteration budget is exhausted.  ``sink`` injects the
        :class:`~repro.core.trace.TraceStore` the run records into
        (e.g. a disk-spilling store); by default the engine uses a
        fresh in-memory store.
        """
        x0 = check_vector(x0, "x0", dim=self.operator.dim)
        if max_iterations < 0:
            raise ValueError(f"max_iterations must be >= 0, got {max_iterations}")
        self.steering.reset()
        self.delays.reset()
        norm = self.operator.norm()
        spec = self.operator.block_spec
        hist = VectorHistory(x0, spec)
        builder = resolve_sink(sink, spec.n_blocks)
        if meta:
            builder.meta.update(meta)

        err0 = norm(x0 - self.reference) if (track_errors and self.reference is not None) else None
        res0 = self.operator.residual(x0) if track_residuals else None
        builder.record_initial(error=err0, residual=res0)

        converged = False
        last_residual = res0 if res0 is not None else float("inf")
        track_err = track_errors and self.reference is not None

        for j in range(1, max_iterations + 1):
            S = self.steering.active_set(j)
            if len(S) == 0:
                raise RuntimeError(f"steering produced empty S_{j}")
            labels = self.delays.labels(j)
            delayed = hist.assemble(labels)
            updates = {i: self.operator.apply_block(delayed, i) for i in S}
            hist.commit(j, updates)

            err = norm(hist.current - self.reference) if track_err else None
            res: float | None = None
            if track_residuals:
                if j % self.residual_every == 0 or j == max_iterations:
                    res = self.operator.residual(hist.current)
                    last_residual = res
                else:
                    res = last_residual
            builder.record(S, labels, error=err, residual=res)

            if track_residuals and last_residual < tol:
                converged = True
                break

        x_final = hist.current.copy()
        final_res = self.operator.residual(x_final)
        if not track_residuals and final_res < tol:
            converged = True
        return AsyncRunResult(
            x=x_final,
            trace=builder.build(),
            converged=converged,
            iterations=hist.latest_label,
            final_residual=final_res,
        )
