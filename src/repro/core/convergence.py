"""Theorem 1 certificates: the macro-iteration contraction bound.

Theorem 1 states that the flexible asynchronous iteration driven by
the Definition 4 operator with step ``gamma in (0, 2/(mu+L)]``
satisfies, for all ``j >= j_k``,

    ``||x(j) - x*||^2  <=  (1 - rho)^k  max_i ||x_i(0) - x*_i||^2``

with ``rho = gamma * mu`` and ``{j_k}`` the macro-iteration sequence.
:func:`theorem1_certificate` evaluates the bound against a realized
error series; :func:`macro_iterations_to_tolerance` inverts it to
predict the macro budget for a target accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.macro import MacroSequence
from repro.core.trace import IterationTrace

__all__ = [
    "theorem1_bound",
    "macro_iterations_to_tolerance",
    "TheoremOneReport",
    "theorem1_certificate",
    "empirical_macro_contraction",
]


def theorem1_bound(k: int | np.ndarray, rho: float, initial_sq_error: float) -> np.ndarray:
    """The right-hand side ``(1 - rho)^k * max_i ||x_i(0) - x*_i||^2``."""
    if not 0.0 < rho <= 1.0:
        raise ValueError(f"rho must lie in (0, 1], got {rho}")
    if initial_sq_error < 0:
        raise ValueError(f"initial_sq_error must be >= 0, got {initial_sq_error}")
    return (1.0 - rho) ** np.asarray(k) * initial_sq_error


def macro_iterations_to_tolerance(rho: float, initial_error: float, tol: float) -> int:
    """Smallest ``k`` with ``(1-rho)^k * err0^2 <= tol^2`` (inf-safe)."""
    if not 0.0 < rho <= 1.0:
        raise ValueError(f"rho must lie in (0, 1], got {rho}")
    if tol <= 0:
        raise ValueError(f"tol must be positive, got {tol}")
    if initial_error <= tol:
        return 0
    if rho == 1.0:
        return 1
    k = 2.0 * (np.log(tol) - np.log(initial_error)) / np.log(1.0 - rho)
    return int(np.ceil(k))


@dataclass(frozen=True)
class TheoremOneReport:
    """Outcome of checking the bound (5) on a realized run.

    Attributes
    ----------
    rho:
        The modulus ``gamma * mu`` used.
    satisfied:
        True iff every iteration respected the bound (with slack).
    n_checked:
        Number of iterations checked (those with a defined bound).
    worst_margin:
        Max of ``err(j)^2 / bound(j)`` — ``<= 1`` means satisfied.
    first_violation:
        Iteration index of the first violation, or ``None``.
    empirical_rate:
        Fitted per-macro-iteration squared-error contraction factor
        (geometric mean of consecutive macro-boundary ratios); compare
        against the guaranteed ``1 - rho``.
    """

    rho: float
    satisfied: bool
    n_checked: int
    worst_margin: float
    first_violation: int | None
    empirical_rate: float


def theorem1_certificate(
    trace: IterationTrace,
    macro: MacroSequence,
    rho: float,
    *,
    slack: float = 1e-9,
) -> TheoremOneReport:
    """Check inequality (5) on every iteration of a traced run.

    The trace's ``errors`` series must be present (``||x(j) - x*||_u``
    in the operator's max norm, so its square matches the theorem's
    ``max_i ||x_i - x*_i||^2`` statement).
    """
    if trace.errors is None:
        raise ValueError("trace has no error series; rerun with a known reference solution")
    errors = trace.errors
    sq = errors**2
    initial_sq = float(sq[0])
    J = trace.n_iterations
    worst = 0.0
    first_violation: int | None = None
    n_checked = 0
    for j in range(0, J + 1):
        k = macro.index_of_iteration(j)
        bound = theorem1_bound(k, rho, initial_sq)
        if bound <= 0.0:
            continue
        margin = float(sq[j] / bound)
        n_checked += 1
        if margin > worst:
            worst = margin
        if margin > 1.0 + slack and first_violation is None:
            first_violation = j

    empirical = empirical_macro_contraction(trace, macro)
    return TheoremOneReport(
        rho=float(rho),
        satisfied=first_violation is None,
        n_checked=n_checked,
        worst_margin=worst,
        first_violation=first_violation,
        empirical_rate=empirical,
    )


def empirical_macro_contraction(trace: IterationTrace, macro: MacroSequence) -> float:
    """Geometric-mean squared-error ratio across macro boundaries.

    Computes ``(err(j_K)^2 / err(j_0)^2)^(1/K)`` over the realized
    macro labels — the per-macro-iteration contraction actually
    achieved, to be compared with the guaranteed ``1 - rho``.  Returns
    ``nan`` when fewer than one macro step completed or the error hits
    exact zero (ratio undefined).
    """
    if trace.errors is None:
        raise ValueError("trace has no error series")
    labels = macro.labels
    if labels.size < 2:
        return float("nan")
    errs = trace.errors[labels]
    if errs[0] <= 0.0 or errs[-1] <= 0.0:
        return float("nan")
    K = labels.size - 1
    return float((errs[-1] ** 2 / errs[0] ** 2) ** (1.0 / K))
