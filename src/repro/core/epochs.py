"""Epoch sequences of Mishchenko–Iutzeler–Malick [30].

The epoch sequence is defined on *machines* rather than labels:

    ``k_0 = 0``
    ``k_{m+1} = min_k { each machine made at least two updates
                        on the interval {k_m, ..., k} }``

The paper (Section IV) argues epochs are *less general* than
macro-iterations: they count update events per machine but never look
at which data those updates consumed, so out-of-order messages (an
update computed from data older than the epoch start) are silently
counted as progress.  :func:`epoch_sequence` implements [30]'s
construction so the MACRO-EPOCH benchmark can quantify that gap: under
message reordering the epoch sequence keeps advancing while the *valid*
macro-iteration count (which certifies contraction) advances more
slowly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.trace import IterationTrace

__all__ = ["EpochSequence", "epoch_sequence"]


@dataclass(frozen=True)
class EpochSequence:
    """The realized epoch labels ``(k_0=0, k_1, ..., k_M)``.

    Attributes
    ----------
    labels:
        Strictly increasing integer array starting at 0.
    n_machines:
        Number of machines counted.
    n_iterations:
        Horizon of the underlying trace.
    """

    labels: np.ndarray
    n_machines: int
    n_iterations: int

    def __post_init__(self) -> None:
        arr = np.asarray(self.labels, dtype=np.int64)
        if arr.ndim != 1 or arr.size == 0 or arr[0] != 0:
            raise ValueError("epoch labels must be a 1-D array starting at 0")
        if np.any(np.diff(arr) <= 0):
            raise ValueError("epoch labels must be strictly increasing")
        object.__setattr__(self, "labels", arr)

    @property
    def count(self) -> int:
        """Number ``M`` of completed epochs."""
        return self.labels.size - 1

    def index_of_iteration(self, j: int) -> int:
        """``m(j) = max{m : k_m <= j}``."""
        if j < 0:
            raise ValueError(f"iteration must be >= 0, got {j}")
        return int(np.searchsorted(self.labels, j, side="right") - 1)

    def lengths(self) -> np.ndarray:
        """Epoch lengths ``k_{m+1} - k_m``."""
        return np.diff(self.labels)


def epoch_sequence(trace: IterationTrace, min_updates: int = 2) -> EpochSequence:
    """Compute [30]'s epoch sequence from a realized trace.

    Machines are identified through ``trace.owners`` (component ->
    machine); when absent, every component is its own machine.  An
    iteration ``r`` counts as one update for machine ``m`` when ``S_r``
    contains at least one component owned by ``m``.

    Parameters
    ----------
    min_updates:
        Updates each machine must make per epoch ([30] uses two: one to
        *produce* and one to *incorporate* fresh information).
    """
    if min_updates < 1:
        raise ValueError(f"min_updates must be >= 1, got {min_updates}")
    n = trace.n_components
    owners = (
        trace.owners if trace.owners is not None else np.arange(n, dtype=np.int64)
    )
    machines = np.unique(owners)
    n_machines = machines.size
    machine_index = {int(m): k for k, m in enumerate(machines)}

    J = trace.n_iterations
    labels = [0]
    counts = np.zeros(n_machines, dtype=np.int64)
    for r in range(1, J + 1):
        touched = {machine_index[int(owners[i])] for i in trace.active_sets[r - 1]}
        for m in touched:
            counts[m] += 1
        if np.all(counts >= min_updates):
            labels.append(r)
            counts[:] = 0
    return EpochSequence(np.asarray(labels, dtype=np.int64), n_machines, J)
