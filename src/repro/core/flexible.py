"""Asynchronous iterations with flexible communication — Definition 3.

The flexible engine generalizes Definition 1: the values fed to the
approximate operator ``G`` need not be labelled iterates
``x_h(l_h(j))`` — they may be *partial updates* ``x~_h(j)`` (the
hatched arrows of Figure 2), subject to the norm constraint (3):

    ``||x~_h(j) - x*_h||_h / u_h  <=  ||x(l(j)) - x*||_u``.

In a running system partial updates come from inner iterative
processes or partially transmitted buffers; at the mathematical level
we model them as *interpolations between a delayed labelled value and
a newer labelled value* of the same component — exactly the state a
partially completed transmission/computation passes through.  The
engine verifies constraint (3) a posteriori whenever ``x*`` is known
and reports the violation statistics (contraction makes violations
rare but they are possible; Theorem 1 assumes the constraint, it does
not prove it for every partial-update generator).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.async_iteration import AsyncRunResult
from repro.core.history import VectorHistory
from repro.core.trace import TraceStore, resolve_sink
from repro.delays.base import DelayModel
from repro.operators.base import FixedPointOperator
from repro.steering.base import SteeringPolicy
from repro.utils.norms import block_euclidean_norms
from repro.utils.rng import as_generator
from repro.utils.validation import check_probability, check_vector

__all__ = [
    "PartialUpdateModel",
    "LabelledValues",
    "InterpolatedPartials",
    "FlexibleRunResult",
    "FlexibleIterationEngine",
]


class PartialUpdateModel(abc.ABC):
    """Produces the exchanged values ``x~(j)`` of Definition 3."""

    @abc.abstractmethod
    def values(self, hist: VectorHistory, labels: np.ndarray, j: int) -> np.ndarray:
        """The vector ``(x~_1(j), ..., x~_n(j))`` used at iteration ``j``."""

    def reset(self) -> None:
        """Reset internal state (default: stateless no-op)."""


class LabelledValues(PartialUpdateModel):
    """Degenerate model: ``x~_h(j) = x_h(l_h(j))`` — plain Definition 1."""

    def values(self, hist: VectorHistory, labels: np.ndarray, j: int) -> np.ndarray:
        return hist.assemble(labels)


class InterpolatedPartials(PartialUpdateModel):
    """Partial updates as delayed-to-fresh interpolations.

    With probability ``partial_prob`` a component's exchanged value is

        ``x~_h = (1 - theta) x_h(l_h(j)) + theta x_h(m_h)``

    with ``m_h`` a uniformly drawn *newer* label and
    ``theta ~ U(theta_range)``: the receiver sees a value part-way
    between what the labels say it has and something fresher — a
    partially transmitted buffer or a partially completed inner
    computation.  With ``theta -> 1`` this converges to "always use
    freshest data"; with ``partial_prob = 0`` it degenerates to
    :class:`LabelledValues`.
    """

    def __init__(
        self,
        *,
        partial_prob: float = 1.0,
        theta_range: tuple[float, float] = (0.25, 1.0),
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        self.partial_prob = check_probability(partial_prob, "partial_prob")
        lo, hi = float(theta_range[0]), float(theta_range[1])
        if not 0.0 <= lo <= hi <= 1.0:
            raise ValueError(f"theta_range must satisfy 0 <= lo <= hi <= 1, got {theta_range}")
        self.theta_range = (lo, hi)
        self.rng = as_generator(seed)

    def values(self, hist: VectorHistory, labels: np.ndarray, j: int) -> np.ndarray:
        spec = hist.spec
        out = np.empty(spec.dim)
        lo, hi = self.theta_range
        for h, sl in enumerate(spec.slices()):
            base = hist.component_at(h, int(labels[h]))
            if self.rng.random() >= self.partial_prob or hist.latest_label <= labels[h]:
                out[sl] = base
                continue
            m = int(self.rng.integers(labels[h], hist.latest_label + 1))
            fresh = hist.component_at(h, m)
            theta = lo if hi == lo else float(self.rng.uniform(lo, hi))
            out[sl] = (1.0 - theta) * base + theta * fresh
        return out


@dataclass(frozen=True)
class FlexibleRunResult(AsyncRunResult):
    """Async run result extended with constraint-(3) statistics.

    Attributes
    ----------
    constraint_checks:
        Number of (iteration, component) pairs checked against (3).
    constraint_violations:
        How many checks failed.
    worst_constraint_ratio:
        Max observed ``||x~_h - x*_h||_h / (u_h ||x(l(j)) - x*||_u)``
        (``<= 1`` means the constraint held everywhere).
    """

    constraint_checks: int = 0
    constraint_violations: int = 0
    worst_constraint_ratio: float = 0.0


class FlexibleIterationEngine:
    """Driver for Definition 3 iterations with flexible communication.

    Mirrors :class:`~repro.core.async_iteration.AsyncIterationEngine`
    but routes the operator's inputs through a
    :class:`PartialUpdateModel` and audits the norm constraint (3)
    whenever a reference solution is available.
    """

    def __init__(
        self,
        operator: FixedPointOperator,
        steering: SteeringPolicy,
        delays: DelayModel,
        partials: PartialUpdateModel | None = None,
        *,
        reference: np.ndarray | None = None,
        residual_every: int = 1,
    ) -> None:
        n = operator.n_components
        if steering.n_components != n:
            raise ValueError(
                f"steering has {steering.n_components} components, operator has {n}"
            )
        if delays.n_components != n:
            raise ValueError(
                f"delay model has {delays.n_components} components, operator has {n}"
            )
        if residual_every < 1:
            raise ValueError(f"residual_every must be >= 1, got {residual_every}")
        self.operator = operator
        self.steering = steering
        self.delays = delays
        self.partials = partials if partials is not None else InterpolatedPartials()
        self.residual_every = int(residual_every)
        if reference is None:
            reference = operator.fixed_point()
        self.reference = (
            None if reference is None else check_vector(reference, "reference", dim=operator.dim)
        )

    def run(
        self,
        x0: np.ndarray,
        *,
        max_iterations: int = 10_000,
        tol: float = 1e-10,
        track_errors: bool = True,
        track_residuals: bool = True,
        check_constraint: bool = True,
        meta: dict[str, Any] | None = None,
        sink: TraceStore | None = None,
    ) -> FlexibleRunResult:
        """Execute the flexible-communication iteration from ``x0``.

        ``sink`` injects the trace store the run records into (see
        :func:`repro.core.trace.resolve_sink`).
        """
        x0 = check_vector(x0, "x0", dim=self.operator.dim)
        if max_iterations < 0:
            raise ValueError(f"max_iterations must be >= 0, got {max_iterations}")
        self.steering.reset()
        self.delays.reset()
        self.partials.reset()
        norm = self.operator.norm()
        spec = self.operator.block_spec
        weights = norm.weights
        hist = VectorHistory(x0, spec)
        builder = resolve_sink(sink, spec.n_blocks)
        if meta:
            builder.meta.update(meta)

        track_err = track_errors and self.reference is not None
        audit = check_constraint and self.reference is not None
        err0 = norm(x0 - self.reference) if track_err else None
        res0 = self.operator.residual(x0) if track_residuals else None
        builder.record_initial(error=err0, residual=res0)

        checks = violations = 0
        worst_ratio = 0.0
        converged = False
        last_residual = res0 if res0 is not None else float("inf")

        for j in range(1, max_iterations + 1):
            S = self.steering.active_set(j)
            if len(S) == 0:
                raise RuntimeError(f"steering produced empty S_{j}")
            labels = self.delays.labels(j)
            exchanged = self.partials.values(hist, labels, j)

            if audit:
                labelled = hist.assemble(labels)
                rhs = norm(labelled - self.reference)
                lhs = block_euclidean_norms(exchanged - self.reference, spec) / weights
                checks += spec.n_blocks
                if rhs > 0:
                    ratios = lhs / rhs
                    worst_ratio = max(worst_ratio, float(np.max(ratios)))
                    violations += int(np.sum(ratios > 1.0 + 1e-12))
                else:
                    violations += int(np.sum(lhs > 1e-12))

            updates = {i: self.operator.apply_block(exchanged, i) for i in S}
            hist.commit(j, updates)

            err = norm(hist.current - self.reference) if track_err else None
            res: float | None = None
            if track_residuals:
                if j % self.residual_every == 0 or j == max_iterations:
                    res = self.operator.residual(hist.current)
                    last_residual = res
                else:
                    res = last_residual
            builder.record(S, labels, error=err, residual=res)
            if track_residuals and last_residual < tol:
                converged = True
                break

        x_final = hist.current.copy()
        final_res = self.operator.residual(x_final)
        if not track_residuals and final_res < tol:
            converged = True
        return FlexibleRunResult(
            x=x_final,
            trace=builder.build(),
            converged=converged,
            iterations=hist.latest_label,
            final_residual=final_res,
            constraint_checks=checks,
            constraint_violations=violations,
            worst_constraint_ratio=worst_ratio,
        )
