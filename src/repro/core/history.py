"""Iterate-history storage for label-addressed component access.

Definition 1 updates use ``x_h(l_h(j))`` — the value component ``h``
had at global iteration ``l_h(j)``.  Because a component's value only
changes at iterations where it is updated, we store, per component,
the sorted list of update labels plus the values written there, and
answer "value at label ``m``" with a binary search (the value from the
latest update at or before ``m``).  Memory is proportional to the
number of *updates*, not to ``n * J``.
"""

from __future__ import annotations

from bisect import bisect_right

import numpy as np

from repro.utils.norms import BlockSpec

__all__ = ["VectorHistory"]


class VectorHistory:
    """Per-component update history of an asynchronous iteration.

    Parameters
    ----------
    x0:
        Initial iterate (label 0).
    spec:
        Block decomposition into ``n`` components.
    """

    def __init__(self, x0: np.ndarray, spec: BlockSpec) -> None:
        x0 = np.asarray(x0, dtype=np.float64)
        if x0.shape != (spec.dim,):
            raise ValueError(f"x0 must have shape ({spec.dim},), got {x0.shape}")
        self.spec = spec
        # labels[i] is a strictly increasing list of update labels of
        # component i (starting with 0); values[i] the written blocks.
        self._labels: list[list[int]] = [[0] for _ in range(spec.n_blocks)]
        self._values: list[list[np.ndarray]] = [
            [x0[sl].copy()] for sl in spec.slices()
        ]
        self._current = x0.copy()
        self._latest_label = 0

    # -- reads ---------------------------------------------------------
    @property
    def current(self) -> np.ndarray:
        """The freshest full iterate ``x(j)`` (view; do not mutate)."""
        return self._current

    @property
    def latest_label(self) -> int:
        """The largest label written so far."""
        return self._latest_label

    def component_at(self, i: int, label: int) -> np.ndarray:
        """Value of component ``i`` at global iteration ``label``.

        The value from the most recent update of ``i`` at or before
        ``label`` (label 0 = the initial vector).
        """
        if label < 0:
            raise ValueError(f"label must be >= 0, got {label}")
        labs = self._labels[i]
        k = bisect_right(labs, label) - 1
        return self._values[i][k]

    def assemble(self, labels: np.ndarray) -> np.ndarray:
        """The delayed vector ``(x_1(l_1), ..., x_n(l_n))`` as one array."""
        labels = np.asarray(labels, dtype=np.int64)
        if labels.shape != (self.spec.n_blocks,):
            raise ValueError(
                f"labels must have shape ({self.spec.n_blocks},), got {labels.shape}"
            )
        out = np.empty(self.spec.dim)
        for i, sl in enumerate(self.spec.slices()):
            out[sl] = self.component_at(i, int(labels[i]))
        return out

    def update_count(self, i: int) -> int:
        """Number of updates recorded for component ``i`` (excluding label 0)."""
        return len(self._labels[i]) - 1

    # -- writes ----------------------------------------------------------
    def commit(self, label: int, updates: dict[int, np.ndarray]) -> None:
        """Record the updates of iteration ``label`` (components in ``S_label``).

        Components absent from ``updates`` implicitly keep their value
        (the second branch of equation (1)); nothing is stored for them.
        """
        if label <= self._latest_label:
            raise ValueError(
                f"labels must be strictly increasing; got {label} after {self._latest_label}"
            )
        for i, val in updates.items():
            sl = self.spec.slice(i)
            v = np.asarray(val, dtype=np.float64)
            if v.shape != (sl.stop - sl.start,):
                raise ValueError(
                    f"component {i} update has shape {v.shape}, expected ({sl.stop - sl.start},)"
                )
            self._labels[i].append(label)
            self._values[i].append(v.copy())
            self._current[sl] = v
        self._latest_label = label

    def value_at(self, label: int) -> np.ndarray:
        """Full iterate ``x(label)`` reconstructed from histories."""
        out = np.empty(self.spec.dim)
        for i, sl in enumerate(self.spec.slices()):
            out[sl] = self.component_at(i, label)
        return out
