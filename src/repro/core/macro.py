"""Macro-iteration sequences — Definition 2, implemented verbatim.

With ``l(r) = min_h l_h(r)``, the macro-iteration sequence is

    ``j_0 = 0``
    ``j_{k+1} = min_j { U_{ j_k <= l(r), r <= j } S_r = {1, ..., n} }``

i.e. the next macro-label is the first iteration by which *every*
component has been updated at least once using values no older than
the previous macro-label.  From one macro-iteration to the next the
iterate provably enters the next contraction level set (the "boxes" of
Bertsekas' General Convergence Theorem), which is what Theorem 1's
``(1 - rho)^k`` rides on.

Unlike the epoch sequence of [30] (:mod:`repro.core.epochs`), the
construction uses the *labels actually consumed* (``l(r)``), so
out-of-order messages — non-monotone ``l_h`` — are handled correctly:
an update that consumed stale pre-``j_k`` data simply does not count
toward macro-step ``k+1``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.trace import IterationTrace

__all__ = ["MacroSequence", "macro_sequence"]


@dataclass(frozen=True)
class MacroSequence:
    """The realized macro-iteration labels ``(j_0=0, j_1, ..., j_K)``.

    Attributes
    ----------
    labels:
        Strictly increasing integer array starting at 0; entry ``k`` is
        the paper's ``j_k``.
    n_iterations:
        Horizon ``J`` of the underlying trace (macro-steps beyond the
        horizon are unknowable, not nonexistent).
    """

    labels: np.ndarray
    n_iterations: int

    def __post_init__(self) -> None:
        arr = np.asarray(self.labels, dtype=np.int64)
        if arr.ndim != 1 or arr.size == 0 or arr[0] != 0:
            raise ValueError("macro labels must be a 1-D array starting at 0")
        if np.any(np.diff(arr) <= 0):
            raise ValueError("macro labels must be strictly increasing")
        object.__setattr__(self, "labels", arr)

    @property
    def count(self) -> int:
        """Number ``K`` of completed macro-iterations."""
        return self.labels.size - 1

    def index_of_iteration(self, j: int) -> int:
        """``k(j) = max{k : j_k <= j}`` — the macro count completed by ``j``."""
        if j < 0:
            raise ValueError(f"iteration must be >= 0, got {j}")
        return int(np.searchsorted(self.labels, j, side="right") - 1)

    def lengths(self) -> np.ndarray:
        """Macro-iteration lengths ``j_{k+1} - j_k``."""
        return np.diff(self.labels)


def macro_sequence(trace: IterationTrace) -> MacroSequence:
    """Compute Definition 2's sequence from a realized trace.

    Linear in the trace length: macro-step ``k+1`` only inspects
    iterations ``r > j_k`` (since ``l(r) <= r - 1 < r`` forces
    ``r > j_k`` whenever ``l(r) >= j_k``), and consecutive scans are
    disjoint.
    """
    n = trace.n_components
    J = trace.n_iterations
    if J == 0:
        return MacroSequence(np.array([0], dtype=np.int64), 0)
    l_min = trace.labels.min(axis=1)  # l(r) for r = 1..J at index r-1
    macro = [0]
    covered: set[int] = set()
    j_k = 0
    r = j_k + 1
    while r <= J:
        if l_min[r - 1] >= j_k:
            covered.update(trace.active_sets[r - 1])
        if len(covered) == n:
            macro.append(r)
            j_k = r
            covered = set()
        r += 1
    return MacroSequence(np.asarray(macro, dtype=np.int64), J)
