"""Order-interval asynchronous iterations ([23], Miellou–El Baz–Spiteri).

The second classical convergence mechanism (besides contraction) is
*order monotonicity*: if ``F`` is isotone and an order interval
``[a, b]`` with ``a <= F(a)`` and ``F(b) <= b`` brackets the fixed
point, then asynchronous iterations started at the endpoints converge
*monotonically* — the lower run increases, the upper run decreases,
and at every global iteration the pair encloses every fixed point in
the interval.  Reference [23] ("a new class of asynchronous iterative
methods with order intervals") builds stopping tests on the enclosure
width, which is a *computable, verified* error bound — no contraction
constant needed.

:class:`OrderIntervalEngine` runs both endpoint iterations under the
*same* steering and delay realization and tracks the enclosure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.history import VectorHistory
from repro.delays.base import DelayModel
from repro.operators.base import FixedPointOperator
from repro.steering.base import SteeringPolicy
from repro.utils.validation import check_vector

__all__ = ["OrderIntervalResult", "OrderIntervalEngine"]


@dataclass(frozen=True)
class OrderIntervalResult:
    """Outcome of a bracketing run.

    Attributes
    ----------
    lower, upper:
        Final endpoint iterates (``lower <= upper`` componentwise).
    width:
        Final enclosure width ``max_i (upper_i - lower_i)``.
    iterations:
        Global iterations performed.
    converged:
        Whether the width tolerance was met.
    widths:
        Enclosure width after every iteration (index 0 = initial).
    monotone_ok:
        Whether the lower run never decreased and the upper run never
        increased.  This per-update monotonicity is guaranteed when the
        label sequences are monotone (the [14]/[23] setting); under
        out-of-order reads it may fail *without* invalidating the
        enclosure — ``enclosure_ok`` is the load-bearing invariant.
    enclosure_ok:
        Whether ``lower <= upper`` held at every iteration (the
        order-interval guarantee; fixed points in the initial bracket
        remain enclosed).
    """

    lower: np.ndarray
    upper: np.ndarray
    width: float
    iterations: int
    converged: bool
    widths: np.ndarray
    monotone_ok: bool
    enclosure_ok: bool

    def contains(self, x: np.ndarray) -> bool:
        """Whether ``x`` lies inside the final enclosure."""
        x = np.asarray(x, dtype=np.float64)
        return bool(np.all(x >= self.lower - 1e-12) and np.all(x <= self.upper + 1e-12))


class OrderIntervalEngine:
    """Asynchronous bracketing iteration for isotone operators.

    Parameters
    ----------
    operator:
        An isotone fixed-point map (``x <= y => F(x) <= F(y)``); not
        checked here — use
        :func:`repro.operators.monotone.is_isotone_sample` beforehand.
    steering, delays:
        Shared schedule applied to both endpoint runs (using the same
        realized ``(S, L)`` keeps the enclosure valid iteration by
        iteration).
    """

    def __init__(
        self,
        operator: FixedPointOperator,
        steering: SteeringPolicy,
        delays: DelayModel,
    ) -> None:
        n = operator.n_components
        if steering.n_components != n or delays.n_components != n:
            raise ValueError("steering/delays component counts must match the operator")
        self.operator = operator
        self.steering = steering
        self.delays = delays

    def run(
        self,
        lower0: np.ndarray,
        upper0: np.ndarray,
        *,
        tol: float = 1e-10,
        max_iterations: int = 100_000,
        require_bracket: bool = True,
    ) -> OrderIntervalResult:
        """Iterate both endpoints until the enclosure is ``tol``-thin.

        ``require_bracket`` verifies the sub/super-solution conditions
        ``lower0 <= F(lower0)`` and ``F(upper0) <= upper0`` up front
        (the hypotheses of the order-interval theorems).
        """
        op = self.operator
        lo = check_vector(lower0, "lower0", dim=op.dim).copy()
        hi = check_vector(upper0, "upper0", dim=op.dim).copy()
        if np.any(lo > hi):
            raise ValueError("need lower0 <= upper0 componentwise")
        if require_bracket:
            if np.any(op.apply(lo) < lo - 1e-10):
                raise ValueError("lower0 is not a sub-solution (lower0 <= F(lower0) fails)")
            if np.any(op.apply(hi) > hi + 1e-10):
                raise ValueError("upper0 is not a super-solution (F(upper0) <= upper0 fails)")
        self.steering.reset()
        self.delays.reset()
        spec = op.block_spec
        h_lo = VectorHistory(lo, spec)
        h_hi = VectorHistory(hi, spec)
        widths = [float(np.max(hi - lo))]
        monotone_ok = True
        enclosure_ok = True
        converged = widths[0] < tol
        it = 0
        for j in range(1, max_iterations + 1):
            if converged:
                break
            S = self.steering.active_set(j)
            labels = self.delays.labels(j)
            d_lo = h_lo.assemble(labels)
            d_hi = h_hi.assemble(labels)
            up_lo, up_hi = {}, {}
            for i in S:
                sl = spec.slice(i)
                new_lo = op.apply_block(d_lo, i)
                new_hi = op.apply_block(d_hi, i)
                if np.any(new_lo < h_lo.current[sl] - 1e-10) or np.any(
                    new_hi > h_hi.current[sl] + 1e-10
                ):
                    monotone_ok = False
                up_lo[i] = new_lo
                up_hi[i] = new_hi
            h_lo.commit(j, up_lo)
            h_hi.commit(j, up_hi)
            it = j
            if np.any(h_lo.current > h_hi.current + 1e-10):
                enclosure_ok = False
            w = float(np.max(h_hi.current - h_lo.current))
            widths.append(w)
            if w < tol:
                converged = True
        return OrderIntervalResult(
            lower=h_lo.current.copy(),
            upper=h_hi.current.copy(),
            width=widths[-1],
            iterations=it,
            converged=converged,
            widths=np.asarray(widths),
            monotone_ok=monotone_ok,
            enclosure_ok=enclosure_ok,
        )
