"""Replay models: feed a realized ``(S, L)`` trace back into an engine.

A trace recorded on one substrate (the event-driven machine simulator,
the shared-memory threads) *is* a steering sequence plus a delay
sequence, so it can be re-executed by the prescribed-(S, L) engines.
These two adapters wrap an :class:`~repro.core.trace.IterationTrace`
as a :class:`~repro.steering.base.SteeringPolicy` and a
:class:`~repro.delays.base.DelayModel`; the convenience entry point is
:func:`repro.runtime.backends.replay_trace`.

Replay is the cross-backend equivalence instrument: when the original
substrate's update semantics coincide with Definition 1 (each global
iteration applies ``F_i`` to the labelled values its labels name —
e.g. simulated machines with one component per processor and a single
inner step), the replayed iterates are bit-identical to the original
run.
"""

from __future__ import annotations

import numpy as np

from repro.core.trace import IterationTrace
from repro.delays.base import DelayModel
from repro.steering.base import SteeringPolicy

__all__ = ["TraceReplaySteering", "TraceReplayDelays"]


class TraceReplaySteering(SteeringPolicy):
    """Steering policy that replays the active sets of a recorded trace."""

    def __init__(self, trace: IterationTrace) -> None:
        super().__init__(trace.n_components)
        self._active_sets = trace.active_sets

    @property
    def n_iterations(self) -> int:
        """Length of the recorded schedule."""
        return len(self._active_sets)

    def active_set(self, j: int) -> tuple[int, ...]:
        if not 1 <= j <= len(self._active_sets):
            raise ValueError(
                f"replayed trace has {len(self._active_sets)} iterations, "
                f"cannot produce S_{j}"
            )
        return self._active_sets[j - 1]


class TraceReplayDelays(DelayModel):
    """Delay model that replays the labels of a recorded trace.

    Recorded labels already satisfy condition (a) (``l_i(j) <= j - 1``,
    validated by :class:`~repro.core.trace.IterationTrace`), so the
    clipping in :meth:`~repro.delays.base.DelayModel.labels` is the
    identity on them.
    """

    def __init__(self, trace: IterationTrace) -> None:
        super().__init__(trace.n_components)
        self._labels = trace.labels

    def raw_delays(self, j: int) -> np.ndarray:
        if not 1 <= j <= self._labels.shape[0]:
            raise ValueError(
                f"replayed trace has {self._labels.shape[0]} iterations, "
                f"cannot produce labels for j={j}"
            )
        return (j - 1) - self._labels[j - 1]

    def is_bounded(self) -> bool:
        """A finite recorded trace always has a finite delay bound."""
        return True
