"""Termination detection for asynchronous iterations ([15], [22]).

Detecting convergence of an asynchronous iteration is subtle: a small
*local* change at one updating phase proves nothing, because the phase
may have consumed stale data.  El Baz's termination method [22] and
the stopping criterion of [15] therefore quantify progress over a
*macro-iteration*: if, during a complete macro-iteration (every
component updated with post-macro-start data), every update moved its
component by less than ``eps``, then for a ``q``-contracting operator
the iterate is within ``eps / (1 - q)`` of the fixed point.

:class:`MacroTerminationDetector` implements that criterion online —
it ingests the per-iteration events an engine (or the simulator's
supervisor process) observes and raises its flag at the first macro
boundary whose updates were all small.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["MacroTerminationDetector", "TerminationReport", "error_bound_from_eps"]


def error_bound_from_eps(eps: float, q: float) -> float:
    """The guaranteed error radius ``eps / (1 - q)`` of the detector.

    For a ``q``-contraction in ``||.||_u``, if all updates across one
    macro-iteration changed their component by at most ``eps`` (in the
    same norm), the final iterate satisfies
    ``||x - x*||_u <= eps / (1 - q)``.
    """
    if not 0.0 <= q < 1.0:
        raise ValueError(f"q must lie in [0, 1), got {q}")
    if eps < 0:
        raise ValueError(f"eps must be >= 0, got {eps}")
    return eps / (1.0 - q)


@dataclass(frozen=True)
class TerminationReport:
    """What the detector concluded.

    Attributes
    ----------
    detected:
        Whether a quiet macro-iteration was observed.
    detection_iteration:
        Global iteration at which the flag was raised (``None`` if not).
    macro_steps_observed:
        Macro-iterations completed while the detector ran.
    quiet_macro_step:
        Index ``k`` of the quiet macro-iteration (``None`` if not).
    guaranteed_error:
        ``eps / (1 - q)`` when ``q`` was supplied, else ``None``.
    """

    detected: bool
    detection_iteration: int | None
    macro_steps_observed: int
    quiet_macro_step: int | None
    guaranteed_error: float | None


class MacroTerminationDetector:
    """Online macro-iteration-based stopping criterion.

    Feed :meth:`observe` once per global iteration with the active set,
    the labels used and the largest per-component update displacement
    (in the contraction norm).  The detector maintains Definition 2's
    construction incrementally and flags termination at the first macro
    boundary whose counted updates all moved less than ``eps``.

    Parameters
    ----------
    n_components:
        Number of components ``n``.
    eps:
        Displacement threshold.
    q:
        Optional contraction factor for the error guarantee.
    """

    def __init__(self, n_components: int, eps: float, q: float | None = None) -> None:
        if n_components < 1:
            raise ValueError(f"n_components must be >= 1, got {n_components}")
        if eps <= 0:
            raise ValueError(f"eps must be positive, got {eps}")
        if q is not None and not 0.0 <= q < 1.0:
            raise ValueError(f"q must lie in [0, 1), got {q}")
        self.n_components = int(n_components)
        self.eps = float(eps)
        self.q = q
        self._j_k = 0
        self._covered: set[int] = set()
        self._macro_quiet = True
        self._macro_count = 0
        self._detected_at: int | None = None
        self._quiet_step: int | None = None

    @property
    def detected(self) -> bool:
        """Whether termination has been detected."""
        return self._detected_at is not None

    def observe(
        self,
        j: int,
        active_set: tuple[int, ...],
        labels: np.ndarray,
        max_displacement: float,
    ) -> bool:
        """Ingest iteration ``j``; returns True when termination fires.

        ``max_displacement`` is ``max_{i in S_j} ||x_i(j) - x_i(j-1)||_i / u_i``
        — engines compute it for free while committing updates.
        """
        if self._detected_at is not None:
            return True
        l_min = int(np.min(labels))
        if l_min >= self._j_k:
            self._covered.update(int(i) for i in active_set)
            if max_displacement >= self.eps:
                self._macro_quiet = False
        # Updates from pre-macro data don't count toward coverage, but a
        # large displacement still disproves quiescence (the iterate moved).
        elif max_displacement >= self.eps:
            self._macro_quiet = False
        if len(self._covered) == self.n_components:
            self._macro_count += 1
            if self._macro_quiet:
                self._detected_at = j
                self._quiet_step = self._macro_count
                return True
            self._j_k = j
            self._covered = set()
            self._macro_quiet = True
        return False

    def report(self) -> TerminationReport:
        """Summarize the detector's state."""
        guaranteed = None if self.q is None else error_bound_from_eps(self.eps, self.q)
        return TerminationReport(
            detected=self.detected,
            detection_iteration=self._detected_at,
            macro_steps_observed=self._macro_count,
            quiet_macro_step=self._quiet_step,
            guaranteed_error=guaranteed,
        )
