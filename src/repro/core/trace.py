"""Realized ``(S, L)`` traces of asynchronous runs.

An :class:`IterationTrace` is the common currency between the pure-math
engines (:mod:`repro.core.async_iteration`), the hardware simulator
(:mod:`repro.runtime.simulator`) and the analysis layer: whatever
produced the run, the trace records which components were updated at
each global iteration (``S_j``), with which labels (``l_i(j)``), at
what simulated time, and optional residual/error series — everything
Definition 2 (macro-iterations), the epoch sequence of [30] and the
Theorem 1 certificate need.

:class:`TraceStore` is the streaming side of the same object: a
chunked *columnar* recorder (labels matrix, flat active-set values +
per-iteration counts, series columns) that every engine emits into,
one iteration at a time.  Chunks are frozen once full — optionally
spilled to disk, so trace length no longer bounds sweep size by RAM —
and the whole store round-trips through a single ``.npz`` file via
:meth:`TraceStore.save` / :meth:`TraceStore.load`.  ``TraceBuilder``
is the historical name of the store and remains an alias.
"""

from __future__ import annotations

import io
import json
import os
import pathlib
import zipfile
from dataclasses import dataclass, field
from typing import Any, Iterator

import numpy as np

from repro.delays.admissibility import AdmissibilityReport, check_admissibility
from repro.utils.serialization import json_safe

__all__ = [
    "IterationTrace",
    "TraceBuilder",
    "TraceHandle",
    "TraceStore",
    "resolve_sink",
    "load_trace",
    "save_trace",
]


@dataclass(frozen=True)
class IterationTrace:
    """Immutable record of a completed asynchronous run.

    Attributes
    ----------
    n_components:
        Number ``n`` of components of the iterate vector.
    active_sets:
        ``active_sets[j-1] = S_j`` for ``j = 1..J``.
    labels:
        Array ``(J, n)``; ``labels[j-1, i] = l_i(j)``.
    errors:
        Optional ``(J + 1,)`` series ``||x(j) - x*||_u`` including the
        initial point at index 0 (``None`` when ``x*`` is unknown).
    residuals:
        Optional ``(J + 1,)`` fixed-point residual series.
    times:
        Optional ``(J,)`` simulated completion times of each phase.
    owners:
        Optional ``(n,)`` map component -> machine (for epoch analysis).
    meta:
        Free-form provenance (problem name, seeds, parameters, ...).
    """

    n_components: int
    active_sets: tuple[tuple[int, ...], ...]
    labels: np.ndarray
    errors: np.ndarray | None = None
    residuals: np.ndarray | None = None
    times: np.ndarray | None = None
    owners: np.ndarray | None = None
    meta: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        labels = np.asarray(self.labels, dtype=np.int64)
        J = labels.shape[0]
        if labels.ndim != 2 or labels.shape[1] != self.n_components:
            raise ValueError(
                f"labels must have shape (J, {self.n_components}), got {labels.shape}"
            )
        if len(self.active_sets) != J:
            raise ValueError(
                f"got {len(self.active_sets)} active sets for {J} label rows"
            )
        object.__setattr__(self, "labels", labels)
        for name in ("errors", "residuals"):
            arr = getattr(self, name)
            if arr is not None:
                arr = np.asarray(arr, dtype=np.float64)
                if arr.shape != (J + 1,):
                    raise ValueError(f"{name} must have shape ({J + 1},), got {arr.shape}")
                object.__setattr__(self, name, arr)
        if self.times is not None:
            t = np.asarray(self.times, dtype=np.float64)
            if t.shape != (J,):
                raise ValueError(f"times must have shape ({J},), got {t.shape}")
            if J > 1 and np.any(np.diff(t) < -1e-12):
                raise ValueError("times must be nondecreasing")
            object.__setattr__(self, "times", t)
        if self.owners is not None:
            o = np.asarray(self.owners, dtype=np.int64)
            if o.shape != (self.n_components,):
                raise ValueError(
                    f"owners must have shape ({self.n_components},), got {o.shape}"
                )
            object.__setattr__(self, "owners", o)

    # -- derived quantities -------------------------------------------
    @property
    def n_iterations(self) -> int:
        """Number of global iterations ``J``."""
        return self.labels.shape[0]

    def delays(self) -> np.ndarray:
        """Realized delays ``d_i(j) = j - 1 - l_i(j)``, shape ``(J, n)``."""
        J = self.n_iterations
        iters = np.arange(1, J + 1)[:, None]
        return (iters - 1) - self.labels

    def update_counts(self) -> np.ndarray:
        """Number of updates per component over the whole run."""
        counts = np.zeros(self.n_components, dtype=np.int64)
        for S in self.active_sets:
            for i in S:
                counts[i] += 1
        return counts

    def admissibility(self) -> AdmissibilityReport:
        """Finite-horizon check of Definition 1's conditions (a)-(c)."""
        return check_admissibility(list(self.active_sets), self.labels, self.n_components)

    def truncated(self, J: int) -> "IterationTrace":
        """The first ``J`` iterations as a new trace (series included)."""
        if not 0 <= J <= self.n_iterations:
            raise ValueError(f"J must lie in [0, {self.n_iterations}], got {J}")
        return IterationTrace(
            n_components=self.n_components,
            active_sets=self.active_sets[:J],
            labels=self.labels[:J],
            errors=None if self.errors is None else self.errors[: J + 1],
            residuals=None if self.residuals is None else self.residuals[: J + 1],
            times=None if self.times is None else self.times[:J],
            owners=self.owners,
            meta=dict(self.meta),
        )

    # -- persistence ---------------------------------------------------
    def save(self, path: "str | os.PathLike[str]") -> pathlib.Path:
        """Persist this trace as a single ``.npz`` (see :func:`save_trace`)."""
        return save_trace(path, self)

    @staticmethod
    def load(path: "str | os.PathLike[str]") -> "IterationTrace":
        """Load a trace persisted by :meth:`save` (see :func:`load_trace`)."""
        return load_trace(path)


class TraceStore:
    """Chunked columnar recorder and persistent form of a realized trace.

    Engines call :meth:`record` once per global iteration and
    :meth:`build` at the end; series that were never supplied stay
    ``None`` in the built trace.  This is the *sink interface* of the
    results layer: any object with ``record_initial``/``record``/
    ``build`` (plus ``meta`` and ``owners`` attributes) can be handed
    to an engine's ``sink=`` parameter, and this class is the canonical
    implementation.

    Storage is columnar and chunked: labels rows, flat active-set
    values with per-iteration counts, and the numeric series live in
    per-chunk arrays that double up to ``chunk_size`` rows, so
    recording an iteration is a row assignment (the hot path of the
    simulator runs through here once per completed phase).  Full
    chunks are frozen — kept as plain arrays in memory, or written to
    ``spill_dir`` as ``chunk_NNNNNN.npz`` files so an arbitrarily long
    trace occupies O(chunk) RAM while recording.

    :meth:`save` writes the whole store (all chunks, owners, JSON-safe
    meta) into one ``.npz``; :meth:`load` restores it bit-identically,
    and :func:`load_trace` shortcuts straight to the
    :class:`IterationTrace` view.
    """

    _INITIAL_CAPACITY = 64
    DEFAULT_CHUNK_SIZE = 4096
    _FORMAT_VERSION = 1

    def __init__(
        self,
        n_components: int,
        owners: np.ndarray | None = None,
        *,
        chunk_size: int | None = None,
        spill_dir: "str | os.PathLike[str] | None" = None,
    ) -> None:
        if n_components < 1:
            raise ValueError(f"n_components must be >= 1, got {n_components}")
        chunk = self.DEFAULT_CHUNK_SIZE if chunk_size is None else int(chunk_size)
        if chunk < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk}")
        self.n_components = int(n_components)
        self.owners = owners
        self.meta: dict[str, Any] = {}
        self.chunk_size = chunk
        self._spill_dir: pathlib.Path | None = None
        self._spill_paths: list[pathlib.Path] = []
        self._frozen: list[dict[str, np.ndarray]] = []
        if spill_dir is not None:
            self._spill_dir = pathlib.Path(spill_dir)
            self._spill_dir.mkdir(parents=True, exist_ok=True)
        self._flushed_rows = 0
        self._flushed_act = 0
        self._flushed_err = 0
        self._flushed_res = 0
        self._flushed_time = 0
        self._reset_chunk()

    # -- recording (the sink interface) --------------------------------
    def _reset_chunk(self) -> None:
        cap = min(self._INITIAL_CAPACITY, self.chunk_size)
        n = self.n_components
        self._labels = np.zeros((cap, n), dtype=np.int64)
        self._act_counts = np.zeros(cap, dtype=np.int64)
        self._act_values = np.zeros(cap, dtype=np.int64)
        self._errors = np.zeros(cap + 1, dtype=np.float64)
        self._residuals = np.zeros(cap + 1, dtype=np.float64)
        self._times = np.zeros(cap, dtype=np.float64)
        self._rows = 0
        self._n_act = 0
        self._n_err = 0
        self._n_res = 0
        self._n_time = 0

    def _grow(self) -> None:
        cap = min(2 * self._labels.shape[0], self.chunk_size)
        grow = cap - self._labels.shape[0]
        self._labels = np.concatenate([self._labels, np.zeros((grow, self.n_components), np.int64)])
        self._act_counts = np.concatenate([self._act_counts, np.zeros(grow, np.int64)])
        self._errors = np.concatenate([self._errors, np.zeros(cap + 1 - self._errors.size)])
        self._residuals = np.concatenate(
            [self._residuals, np.zeros(cap + 1 - self._residuals.size)]
        )
        self._times = np.concatenate([self._times, np.zeros(cap - self._times.size)])

    def record_initial(self, error: float | None = None, residual: float | None = None) -> None:
        """Record the label-0 (initial point) series values."""
        if self._rows or self._flushed_rows:
            raise RuntimeError("record_initial must be called before any record()")
        if error is not None:
            self._errors[self._n_err] = float(error)
            self._n_err += 1
        if residual is not None:
            self._residuals[self._n_res] = float(residual)
            self._n_res += 1

    def record(
        self,
        active_set: tuple[int, ...],
        labels: np.ndarray,
        *,
        error: float | None = None,
        residual: float | None = None,
        time: float | None = None,
    ) -> None:
        """Append one global iteration to the store."""
        m = len(active_set)
        if m == 0:
            raise ValueError("active_set must be nonempty (Definition 1)")
        if self._rows >= self._labels.shape[0]:
            self._grow()
        r = self._rows
        self._labels[r, :] = labels
        while self._n_act + m > self._act_values.size:
            self._act_values = np.concatenate(
                [self._act_values, np.zeros(self._act_values.size, np.int64)]
            )
        self._act_values[self._n_act : self._n_act + m] = active_set
        self._n_act += m
        self._act_counts[r] = m
        if error is not None:
            self._errors[self._n_err] = float(error)
            self._n_err += 1
        if residual is not None:
            self._residuals[self._n_res] = float(residual)
            self._n_res += 1
        if time is not None:
            self._times[self._n_time] = float(time)
            self._n_time += 1
        self._rows += 1
        if self._rows >= self.chunk_size:
            self._flush()

    def _flush(self) -> None:
        if self._rows == 0:
            return
        chunk = {
            "labels": self._labels[: self._rows].copy(),
            "act_counts": self._act_counts[: self._rows].copy(),
            "act_values": self._act_values[: self._n_act].copy(),
            "errors": self._errors[: self._n_err].copy(),
            "residuals": self._residuals[: self._n_res].copy(),
            "times": self._times[: self._n_time].copy(),
        }
        if self._spill_dir is not None:
            path = self._spill_dir / f"chunk_{len(self._spill_paths):06d}.npz"
            with open(path, "wb") as f:
                np.savez(f, **chunk)
            self._spill_paths.append(path)
        else:
            self._frozen.append(chunk)
        self._flushed_rows += self._rows
        self._flushed_act += self._n_act
        self._flushed_err += self._n_err
        self._flushed_res += self._n_res
        self._flushed_time += self._n_time
        self._reset_chunk()

    # -- inspection -----------------------------------------------------
    @property
    def n_iterations(self) -> int:
        """Global iterations recorded so far."""
        return self._flushed_rows + self._rows

    @property
    def spilled_chunks(self) -> int:
        """Number of chunk files written to ``spill_dir``."""
        return len(self._spill_paths)

    def _current_chunk(self) -> dict[str, np.ndarray]:
        return {
            "labels": self._labels[: self._rows],
            "act_counts": self._act_counts[: self._rows],
            "act_values": self._act_values[: self._n_act],
            "errors": self._errors[: self._n_err],
            "residuals": self._residuals[: self._n_res],
            "times": self._times[: self._n_time],
        }

    def iter_chunks(self) -> Iterator[dict[str, np.ndarray]]:
        """Yield the frozen chunks then the live tail, as column dicts.

        Each dict carries ``labels`` (rows, n), ``act_counts`` (rows,),
        flat ``act_values``, and the ``errors``/``residuals``/``times``
        entries recorded within the chunk.  Spilled chunks are loaded
        one at a time, so incremental consumers (streaming metrics)
        never hold the whole trace.
        """
        for path in self._spill_paths:
            with np.load(path) as z:
                yield {k: z[k] for k in z.files}
        yield from self._frozen
        if self._rows or self._n_err or self._n_res:
            yield self._current_chunk()

    def _iter_column(self, name: str) -> Iterator[np.ndarray]:
        """One column across all chunks, loading only that npz member.

        ``np.load`` is lazy per member, so a spilled chunk file only
        decompresses the requested column — the per-column passes of
        :meth:`save` cost one member read each instead of inflating
        all six columns of every chunk six times.
        """
        for path in self._spill_paths:
            with np.load(path) as z:
                yield z[name]
        for chunk in self._frozen:
            yield chunk[name]
        yield self._current_chunk()[name]

    def iter_series(self, name: str) -> Iterator[np.ndarray]:
        """Yield one series column (``errors``/``residuals``/``times``) chunk by chunk."""
        if name not in ("errors", "residuals", "times"):
            raise KeyError(f"unknown series {name!r}")
        for arr in self._iter_column(name):
            if arr.size:
                yield arr

    def series(self, name: str) -> np.ndarray | None:
        """One full series column, or ``None`` when never recorded."""
        parts = list(self.iter_series(name))
        if not parts:
            return None
        return np.concatenate(parts)

    def _columns(self) -> dict[str, np.ndarray]:
        chunks = list(self.iter_chunks())
        n = self.n_components
        if not chunks:
            return {
                "labels": np.zeros((0, n), np.int64),
                "act_counts": np.zeros(0, np.int64),
                "act_values": np.zeros(0, np.int64),
                "errors": np.zeros(0),
                "residuals": np.zeros(0),
                "times": np.zeros(0),
            }
        return {
            key: np.concatenate([c[key] for c in chunks]) for key in chunks[0]
        }

    # -- materialization ------------------------------------------------
    def build(self) -> IterationTrace:
        """Finalize into an immutable :class:`IterationTrace`."""
        cols = self._columns()
        J = cols["labels"].shape[0]

        def _series(arr: np.ndarray, name: str) -> np.ndarray | None:
            count = arr.size
            if count == 0:
                return None
            if count != J + 1:
                raise RuntimeError(
                    f"series has {count} entries, expected {J + 1} "
                    "(record_initial + one per iteration)"
                )
            return arr

        times = cols["times"] if cols["times"].size == J and J > 0 else None
        offsets = np.concatenate([[0], np.cumsum(cols["act_counts"])])
        # .tolist() converts to Python ints at C speed; the per-row
        # tuple() is the only remaining Python-level loop.
        values = cols["act_values"].tolist()
        active_sets = tuple(
            tuple(values[offsets[r] : offsets[r + 1]]) for r in range(J)
        )
        return IterationTrace(
            n_components=self.n_components,
            active_sets=active_sets,
            labels=cols["labels"],
            errors=_series(cols["errors"], "errors"),
            residuals=_series(cols["residuals"], "residuals"),
            times=times,
            owners=self.owners,
            meta=dict(self.meta),
        )

    # -- persistence ----------------------------------------------------
    def _column_totals(self) -> dict[str, int]:
        return {
            "labels": self._flushed_rows + self._rows,
            "act_counts": self._flushed_rows + self._rows,
            "act_values": self._flushed_act + self._n_act,
            "errors": self._flushed_err + self._n_err,
            "residuals": self._flushed_res + self._n_res,
            "times": self._flushed_time + self._n_time,
        }

    @staticmethod
    def _stream_npy(
        zf: zipfile.ZipFile,
        name: str,
        dtype: np.dtype,
        shape: tuple[int, ...],
        chunks: Iterator[np.ndarray],
    ) -> None:
        """Write one ``.npy`` zip member from chunk arrays, never whole.

        Chunks concatenate along axis 0, so their C-order bytes simply
        append after a hand-written npy header with the final shape —
        this is what keeps :meth:`save` at O(chunk) memory for spilled
        stores instead of concatenating every chunk first.
        """
        header = {
            "descr": np.lib.format.dtype_to_descr(np.dtype(dtype)),
            "fortran_order": False,
            "shape": shape,
        }
        with zf.open(f"{name}.npy", mode="w") as member:
            np.lib.format.write_array_header_1_0(member, header)
            for chunk in chunks:
                member.write(np.ascontiguousarray(chunk, dtype=dtype).tobytes())

    def save(self, path: "str | os.PathLike[str]") -> pathlib.Path:
        """Write the whole store into one ``.npz`` file (atomic replace).

        The file holds the raw columns, so ``load(path).build()``
        reproduces the trace bit-identically (int64 labels/active
        values, float64 series).  Columns stream into the archive chunk
        by chunk — spilled chunks are re-read one at a time and never
        concatenated, so saving keeps the recording-time O(chunk)
        memory bound.  The spill directory is not touched.
        """
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        totals = self._column_totals()
        small: dict[str, np.ndarray] = {
            "format_version": np.asarray(self._FORMAT_VERSION, np.int64),
            "n_components": np.asarray(self.n_components, np.int64),
            "meta_json": np.asarray(json.dumps(json_safe(self.meta))),
        }
        if self.owners is not None:
            small["owners"] = np.asarray(self.owners, np.int64)
        tmp = path.with_name(path.name + ".tmp")
        with zipfile.ZipFile(tmp, "w", zipfile.ZIP_DEFLATED) as zf:
            for name, arr in small.items():
                buf = io.BytesIO()
                np.save(buf, arr)
                zf.writestr(f"{name}.npy", buf.getvalue())
            self._stream_npy(
                zf, "labels", np.int64, (totals["labels"], self.n_components),
                self._iter_column("labels"),
            )
            for name, dtype in (
                ("act_counts", np.int64),
                ("act_values", np.int64),
                ("errors", np.float64),
                ("residuals", np.float64),
                ("times", np.float64),
            ):
                self._stream_npy(
                    zf, name, dtype, (totals[name],), self._iter_column(name)
                )
        os.replace(tmp, path)
        return path

    @classmethod
    def load(cls, path: "str | os.PathLike[str]") -> "TraceStore":
        """Restore a store persisted by :meth:`save` (fully in memory)."""
        with np.load(path, allow_pickle=False) as z:
            version = int(z["format_version"])
            if version > cls._FORMAT_VERSION:
                raise ValueError(
                    f"trace file {path} has format v{version}; "
                    f"this build reads up to v{cls._FORMAT_VERSION}"
                )
            store = cls(int(z["n_components"]))
            chunk = {
                key: np.asarray(z[key])
                for key in ("labels", "act_counts", "act_values", "errors", "residuals", "times")
            }
            if "owners" in z.files:
                store.owners = np.asarray(z["owners"], np.int64)
            store.meta = json.loads(str(z["meta_json"]))
        store._frozen.append(chunk)
        store._flushed_rows = int(chunk["labels"].shape[0])
        store._flushed_act = int(chunk["act_values"].size)
        store._flushed_err = int(chunk["errors"].size)
        store._flushed_res = int(chunk["residuals"].size)
        store._flushed_time = int(chunk["times"].size)
        return store

    @classmethod
    def from_trace(cls, trace: IterationTrace, **kwargs: Any) -> "TraceStore":
        """Wrap a materialized :class:`IterationTrace` back into a store."""
        store = cls(trace.n_components, owners=trace.owners, **kwargs)
        store.meta = dict(trace.meta)
        J = trace.n_iterations
        counts = np.asarray([len(S) for S in trace.active_sets], np.int64)
        flat = (
            np.asarray([c for S in trace.active_sets for c in S], np.int64)
            if J
            else np.zeros(0, np.int64)
        )
        chunk = {
            "labels": np.asarray(trace.labels, np.int64),
            "act_counts": counts,
            "act_values": flat,
            "errors": np.zeros(0) if trace.errors is None else np.asarray(trace.errors),
            "residuals": np.zeros(0) if trace.residuals is None else np.asarray(trace.residuals),
            "times": np.zeros(0) if trace.times is None else np.asarray(trace.times),
        }
        store._frozen.append(chunk)
        store._flushed_rows = J
        store._flushed_act = int(chunk["act_values"].size)
        store._flushed_err = int(chunk["errors"].size)
        store._flushed_res = int(chunk["residuals"].size)
        store._flushed_time = int(chunk["times"].size)
        return store


#: Historical name of the trace sink; every engine still accepts it.
TraceBuilder = TraceStore


def resolve_sink(
    sink: TraceStore | None, n_components: int, owners: np.ndarray | None = None
) -> TraceStore:
    """The store an engine should record into.

    ``None`` means the engine owns its trace and gets a fresh in-memory
    store; an injected sink (e.g. a spilling :class:`TraceStore`) is
    validated against the engine's component count and gains the
    engine's ``owners`` map when it has none of its own.
    """
    if sink is None:
        return TraceStore(n_components, owners=owners)
    if sink.n_components != n_components:
        raise ValueError(
            f"sink has {sink.n_components} components, engine has {n_components}"
        )
    if owners is not None and sink.owners is None:
        sink.owners = owners
    return sink


def save_trace(path: "str | os.PathLike[str]", trace: IterationTrace) -> pathlib.Path:
    """Persist a materialized trace as a :class:`TraceStore` ``.npz``."""
    return TraceStore.from_trace(trace).save(path)


def load_trace(path: "str | os.PathLike[str]") -> IterationTrace:
    """Materialize the :class:`IterationTrace` stored in a ``.npz`` file."""
    return TraceStore.load(path).build()


class TraceHandle:
    """A materializable reference to a realized trace.

    The streaming results layer moves traces out of result objects:
    a handle names a trace that may live in memory, on disk, or both,
    and :meth:`materialize` produces the :class:`IterationTrace` view
    on demand (cached).  Handles are cheap to carry through fleet
    results and sweep stores — the arrays only load when analysis asks.
    """

    __slots__ = ("path", "_trace")

    def __init__(
        self,
        trace: IterationTrace | None = None,
        path: "str | os.PathLike[str] | None" = None,
    ) -> None:
        if trace is None and path is None:
            raise ValueError("TraceHandle needs a trace, a path, or both")
        self.path = None if path is None else pathlib.Path(path)
        self._trace = trace

    @property
    def in_memory(self) -> bool:
        """Whether :meth:`materialize` is free (trace already loaded)."""
        return self._trace is not None

    def materialize(self) -> IterationTrace:
        """The trace itself, loading from ``path`` on first access."""
        if self._trace is None:
            self._trace = load_trace(self.path)
        return self._trace

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = "memory" if self.in_memory else "disk"
        return f"<TraceHandle {where} path={self.path}>"
