"""Realized ``(S, L)`` traces of asynchronous runs.

An :class:`IterationTrace` is the common currency between the pure-math
engines (:mod:`repro.core.async_iteration`), the hardware simulator
(:mod:`repro.runtime.simulator`) and the analysis layer: whatever
produced the run, the trace records which components were updated at
each global iteration (``S_j``), with which labels (``l_i(j)``), at
what simulated time, and optional residual/error series — everything
Definition 2 (macro-iterations), the epoch sequence of [30] and the
Theorem 1 certificate need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.delays.admissibility import AdmissibilityReport, check_admissibility

__all__ = ["IterationTrace", "TraceBuilder"]


@dataclass(frozen=True)
class IterationTrace:
    """Immutable record of a completed asynchronous run.

    Attributes
    ----------
    n_components:
        Number ``n`` of components of the iterate vector.
    active_sets:
        ``active_sets[j-1] = S_j`` for ``j = 1..J``.
    labels:
        Array ``(J, n)``; ``labels[j-1, i] = l_i(j)``.
    errors:
        Optional ``(J + 1,)`` series ``||x(j) - x*||_u`` including the
        initial point at index 0 (``None`` when ``x*`` is unknown).
    residuals:
        Optional ``(J + 1,)`` fixed-point residual series.
    times:
        Optional ``(J,)`` simulated completion times of each phase.
    owners:
        Optional ``(n,)`` map component -> machine (for epoch analysis).
    meta:
        Free-form provenance (problem name, seeds, parameters, ...).
    """

    n_components: int
    active_sets: tuple[tuple[int, ...], ...]
    labels: np.ndarray
    errors: np.ndarray | None = None
    residuals: np.ndarray | None = None
    times: np.ndarray | None = None
    owners: np.ndarray | None = None
    meta: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        labels = np.asarray(self.labels, dtype=np.int64)
        J = labels.shape[0]
        if labels.ndim != 2 or labels.shape[1] != self.n_components:
            raise ValueError(
                f"labels must have shape (J, {self.n_components}), got {labels.shape}"
            )
        if len(self.active_sets) != J:
            raise ValueError(
                f"got {len(self.active_sets)} active sets for {J} label rows"
            )
        object.__setattr__(self, "labels", labels)
        for name in ("errors", "residuals"):
            arr = getattr(self, name)
            if arr is not None:
                arr = np.asarray(arr, dtype=np.float64)
                if arr.shape != (J + 1,):
                    raise ValueError(f"{name} must have shape ({J + 1},), got {arr.shape}")
                object.__setattr__(self, name, arr)
        if self.times is not None:
            t = np.asarray(self.times, dtype=np.float64)
            if t.shape != (J,):
                raise ValueError(f"times must have shape ({J},), got {t.shape}")
            if J > 1 and np.any(np.diff(t) < -1e-12):
                raise ValueError("times must be nondecreasing")
            object.__setattr__(self, "times", t)
        if self.owners is not None:
            o = np.asarray(self.owners, dtype=np.int64)
            if o.shape != (self.n_components,):
                raise ValueError(
                    f"owners must have shape ({self.n_components},), got {o.shape}"
                )
            object.__setattr__(self, "owners", o)

    # -- derived quantities -------------------------------------------
    @property
    def n_iterations(self) -> int:
        """Number of global iterations ``J``."""
        return self.labels.shape[0]

    def delays(self) -> np.ndarray:
        """Realized delays ``d_i(j) = j - 1 - l_i(j)``, shape ``(J, n)``."""
        J = self.n_iterations
        iters = np.arange(1, J + 1)[:, None]
        return (iters - 1) - self.labels

    def update_counts(self) -> np.ndarray:
        """Number of updates per component over the whole run."""
        counts = np.zeros(self.n_components, dtype=np.int64)
        for S in self.active_sets:
            for i in S:
                counts[i] += 1
        return counts

    def admissibility(self) -> AdmissibilityReport:
        """Finite-horizon check of Definition 1's conditions (a)-(c)."""
        return check_admissibility(list(self.active_sets), self.labels, self.n_components)

    def truncated(self, J: int) -> "IterationTrace":
        """The first ``J`` iterations as a new trace (series included)."""
        if not 0 <= J <= self.n_iterations:
            raise ValueError(f"J must lie in [0, {self.n_iterations}], got {J}")
        return IterationTrace(
            n_components=self.n_components,
            active_sets=self.active_sets[:J],
            labels=self.labels[:J],
            errors=None if self.errors is None else self.errors[: J + 1],
            residuals=None if self.residuals is None else self.residuals[: J + 1],
            times=None if self.times is None else self.times[:J],
            owners=self.owners,
            meta=dict(self.meta),
        )


class TraceBuilder:
    """Incremental construction of an :class:`IterationTrace`.

    Engines call :meth:`record` once per global iteration and
    :meth:`build` at the end; series that were never supplied stay
    ``None`` in the built trace.

    Storage is amortized: labels and the numeric series live in
    preallocated arrays that double on overflow, so recording an
    iteration is a row assignment instead of a per-event list of
    freshly allocated arrays (the hot path of the simulator runs
    through here once per completed phase).
    """

    _INITIAL_CAPACITY = 64

    def __init__(self, n_components: int, owners: np.ndarray | None = None) -> None:
        if n_components < 1:
            raise ValueError(f"n_components must be >= 1, got {n_components}")
        self.n_components = int(n_components)
        self._active: list[tuple[int, ...]] = []
        cap = self._INITIAL_CAPACITY
        self._labels = np.zeros((cap, self.n_components), dtype=np.int64)
        self._errors = np.zeros(cap + 1, dtype=np.float64)
        self._residuals = np.zeros(cap + 1, dtype=np.float64)
        self._times = np.zeros(cap, dtype=np.float64)
        self._n_errors = 0
        self._n_residuals = 0
        self._n_times = 0
        self._owners = owners
        self.meta: dict[str, Any] = {}

    def _grow(self) -> None:
        cap = 2 * self._labels.shape[0]
        self._labels = np.concatenate(
            [self._labels, np.zeros_like(self._labels)], axis=0
        )
        self._errors = np.concatenate([self._errors, np.zeros(cap + 1 - self._errors.size)])
        self._residuals = np.concatenate(
            [self._residuals, np.zeros(cap + 1 - self._residuals.size)]
        )
        self._times = np.concatenate([self._times, np.zeros(cap - self._times.size)])

    def record_initial(self, error: float | None = None, residual: float | None = None) -> None:
        """Record the label-0 (initial point) series values."""
        if self._active:
            raise RuntimeError("record_initial must be called before any record()")
        if error is not None:
            self._errors[self._n_errors] = float(error)
            self._n_errors += 1
        if residual is not None:
            self._residuals[self._n_residuals] = float(residual)
            self._n_residuals += 1

    def record(
        self,
        active_set: tuple[int, ...],
        labels: np.ndarray,
        *,
        error: float | None = None,
        residual: float | None = None,
        time: float | None = None,
    ) -> None:
        """Append one global iteration to the trace."""
        if len(active_set) == 0:
            raise ValueError("active_set must be nonempty (Definition 1)")
        J = len(self._active)
        if J >= self._labels.shape[0]:
            self._grow()
        self._active.append(tuple(int(i) for i in active_set))
        self._labels[J, :] = labels
        if error is not None:
            self._errors[self._n_errors] = float(error)
            self._n_errors += 1
        if residual is not None:
            self._residuals[self._n_residuals] = float(residual)
            self._n_residuals += 1
        if time is not None:
            self._times[self._n_times] = float(time)
            self._n_times += 1

    def build(self) -> IterationTrace:
        """Finalize into an immutable :class:`IterationTrace`."""
        J = len(self._active)
        labels = self._labels[:J].copy()

        def _series(buf: np.ndarray, count: int) -> np.ndarray | None:
            if count == 0:
                return None
            if count != J + 1:
                raise RuntimeError(
                    f"series has {count} entries, expected {J + 1} "
                    "(record_initial + one per iteration)"
                )
            return buf[:count].copy()

        times = self._times[:J].copy() if self._n_times == J and J > 0 else None
        return IterationTrace(
            n_components=self.n_components,
            active_sets=tuple(self._active),
            labels=labels,
            errors=_series(self._errors, self._n_errors),
            residuals=_series(self._residuals, self._n_residuals),
            times=times,
            owners=self._owners,
            meta=dict(self.meta),
        )
