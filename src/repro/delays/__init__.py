"""Delay models ``L`` of Definition 1 and their admissibility checks.

Bounded models realize Chazan–Miranker's condition (d); unbounded
models realize Baudet's condition (b) only (including the paper's
``sqrt(j)`` worked example); out-of-order models produce non-monotone
label sequences, the case macro-iterations handle and epochs [30] do
not.
"""

from repro.delays.admissibility import AdmissibilityReport, check_admissibility
from repro.delays.base import DelayModel, delays_to_labels
from repro.delays.bounded import (
    ChaoticRelaxationDelay,
    ConstantDelay,
    UniformRandomDelay,
    ZeroDelay,
)
from repro.delays.outoforder import (
    OutOfOrderDelay,
    ShuffledWindowDelay,
    is_monotone_labels,
)
from repro.delays.unbounded import (
    AdversarialSpikeDelay,
    BaudetSqrtDelay,
    LogGrowthDelay,
    PowerGrowthDelay,
)

__all__ = [
    "AdmissibilityReport",
    "AdversarialSpikeDelay",
    "BaudetSqrtDelay",
    "ChaoticRelaxationDelay",
    "ConstantDelay",
    "DelayModel",
    "LogGrowthDelay",
    "OutOfOrderDelay",
    "PowerGrowthDelay",
    "ShuffledWindowDelay",
    "UniformRandomDelay",
    "ZeroDelay",
    "check_admissibility",
    "delays_to_labels",
    "is_monotone_labels",
]
