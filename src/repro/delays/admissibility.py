"""Verification of the admissibility conditions (a)-(d) on realized traces.

Definition 1's conditions are *asymptotic*, so on a finite trace we
check finite-horizon surrogates:

* (a) ``l_i(j) <= j - 1`` — exact check;
* (b) ``l_i(j) -> infinity`` — the running minimum of labels over the
  tail must grow: we check ``min_{r >= j} l_i(r) >= g(j)`` for a
  diverging staircase, reported as the *tail-minimum growth profile*;
* (c) every component appears infinitely often in ``S_j`` — on a
  finite trace we report the largest gap between consecutive updates
  of each component and whether each component is updated in the final
  window;
* (d) bounded delays — the maximum realized delay.

These checks power both the test suite (synthetic delay models must
satisfy what they claim) and the simulator validation (realized
hardware-like traces are admissible).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["AdmissibilityReport", "check_admissibility"]


@dataclass(frozen=True)
class AdmissibilityReport:
    """Finite-horizon admissibility summary of an ``(S, L)`` trace.

    Attributes
    ----------
    condition_a:
        True iff every label satisfied ``l_i(j) <= j - 1``.
    tail_min_labels:
        Array ``(n,)``: ``min_{r > J/2} l_i(r)`` — the label floor over
        the second half of the trace; grows with ``J`` iff (b) holds.
    max_update_gap:
        Array ``(n,)``: the largest gap (in iterations) between
        consecutive updates of each component (condition (c) surrogate).
    updated_in_final_window:
        True iff every component is updated during the last
        ``2 * max_update_gap`` iterations (no component abandoned).
    max_delay:
        The largest realized delay ``j - 1 - l_i(j)``.
    monotone:
        True iff all label sequences are nondecreasing (no out-of-order
        messages — the [30] assumption).
    """

    condition_a: bool
    tail_min_labels: np.ndarray
    max_update_gap: np.ndarray
    updated_in_final_window: bool
    max_delay: int
    monotone: bool

    @property
    def plausibly_admissible(self) -> bool:
        """Conjunction of the finite-horizon surrogates for (a)-(c)."""
        return bool(self.condition_a and self.updated_in_final_window)


def check_admissibility(
    active_sets: list[tuple[int, ...]],
    labels: np.ndarray,
    n_components: int,
) -> AdmissibilityReport:
    """Evaluate the admissibility surrogates on a realized trace.

    Parameters
    ----------
    active_sets:
        ``active_sets[j-1] = S_j`` for ``j = 1..J`` (tuples of component
        indices, each nonempty).
    labels:
        Array ``(J, n)``: ``labels[j-1] = (l_1(j), ..., l_n(j))``.
    n_components:
        The ``n`` of the iterate decomposition.
    """
    labels = np.asarray(labels, dtype=np.int64)
    J = labels.shape[0]
    if labels.ndim != 2 or labels.shape[1] != n_components:
        raise ValueError(f"labels must have shape (J, {n_components}), got {labels.shape}")
    if len(active_sets) != J:
        raise ValueError(f"got {len(active_sets)} active sets for {J} label rows")
    if J == 0:
        return AdmissibilityReport(
            condition_a=True,
            tail_min_labels=np.zeros(n_components, dtype=np.int64),
            max_update_gap=np.zeros(n_components, dtype=np.int64),
            updated_in_final_window=True,
            max_delay=0,
            monotone=True,
        )

    iters = np.arange(1, J + 1)[:, None]
    # (a): labels at iteration j must not exceed j - 1 and be >= 0.
    cond_a = bool(np.all(labels <= iters - 1) and np.all(labels >= 0))

    # (b) surrogate: label floor over the second half of the trace.
    half = J // 2
    tail = labels[half:, :] if half < J else labels
    tail_min = np.min(tail, axis=0)

    # Realized delays.
    max_delay = int(np.max((iters - 1) - labels))

    # (c) surrogate: update gaps per component.
    gaps = np.zeros(n_components, dtype=np.int64)
    last_seen = np.zeros(n_components, dtype=np.int64)  # iteration of last update, 0 = never
    for j, S in enumerate(active_sets, start=1):
        if len(S) == 0:
            raise ValueError(f"S_{j} is empty; Definition 1 requires nonempty steering sets")
        for i in S:
            if not 0 <= i < n_components:
                raise IndexError(f"component {i} in S_{j} out of range")
            gaps[i] = max(gaps[i], j - last_seen[i])
            last_seen[i] = j
    # Account for the trailing gap after the last update.
    gaps = np.maximum(gaps, (J + 1) - last_seen)
    never = last_seen == 0
    window = int(2 * np.max(gaps)) if np.any(last_seen > 0) else J + 1
    final_ok = bool(np.all(~never) and np.all(last_seen > J - window))

    monotone = bool(np.all(np.diff(labels, axis=0) >= 0)) if J > 1 else True

    return AdmissibilityReport(
        condition_a=cond_a,
        tail_min_labels=tail_min,
        max_update_gap=gaps,
        updated_in_final_window=final_ok,
        max_delay=max_delay,
        monotone=monotone,
    )
