"""Delay models: the sequence ``L = {(l_1(j), ..., l_n(j))}`` of Definition 1.

A delay model answers, for each global iteration ``j >= 1``, which past
iterate label ``l_i(j) <= j - 1`` supplies component ``i``'s value in
the updating phase.  Condition (a) is enforced structurally by
clipping; conditions (b) (labels tend to infinity — unbounded delays
allowed) and, for chaotic relaxation, (d) (bounded delays) are
properties of the concrete models and are verified empirically by
:mod:`repro.delays.admissibility`.

Delay models are *deterministic functions of (j, rng state)*; every
stochastic model owns a seeded generator so traces are reproducible.
"""

from __future__ import annotations

import abc

import numpy as np

__all__ = ["DelayModel", "delays_to_labels"]


def delays_to_labels(j: int, delays: np.ndarray) -> np.ndarray:
    """Convert delay amounts ``d_i(j)`` into labels ``l_i(j) = j-1-d_i(j)``.

    Labels are clipped into ``[0, j-1]`` so condition (a) holds by
    construction: at iteration ``j`` only values produced strictly
    before ``j`` may be used and nothing precedes the initial vector.
    """
    labels = (j - 1) - np.asarray(delays, dtype=np.int64)
    return np.clip(labels, 0, j - 1)


class DelayModel(abc.ABC):
    """Produces the label tuple ``(l_1(j), ..., l_n(j))`` for each ``j``.

    Subclasses implement :meth:`raw_delays`; :meth:`labels` applies the
    condition-(a) clipping.  ``n_components`` fixes the tuple length.
    """

    def __init__(self, n_components: int) -> None:
        if n_components < 1:
            raise ValueError(f"n_components must be >= 1, got {n_components}")
        self.n_components = int(n_components)

    @abc.abstractmethod
    def raw_delays(self, j: int) -> np.ndarray:
        """Delay amounts ``d_i(j) >= 0`` (before clipping), length ``n``."""

    def labels(self, j: int) -> np.ndarray:
        """The clipped labels ``l_i(j) in [0, j-1]`` for iteration ``j >= 1``."""
        if j < 1:
            raise ValueError(f"iteration index must be >= 1, got {j}")
        d = np.asarray(self.raw_delays(j), dtype=np.int64)
        if d.shape != (self.n_components,):
            raise ValueError(
                f"raw_delays returned shape {d.shape}, expected ({self.n_components},)"
            )
        if np.any(d < 0):
            raise ValueError("raw delays must be nonnegative")
        return delays_to_labels(j, d)

    def is_bounded(self) -> bool:
        """Whether the model guarantees a uniform delay bound (condition (d))."""
        return False

    def reset(self) -> None:
        """Reset any internal state (default: stateless no-op)."""
