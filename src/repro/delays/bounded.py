"""Bounded-delay models: the chaotic-relaxation regime (condition (d)).

Chazan–Miranker [12] and Miellou [14] assume a uniform bound
``0 <= d_i(j) < b(j) <= min(b, j)``; these models realize that
assumption in several ways, from the degenerate zero-delay (Gauss–
Seidel-like) case to random delays filling the whole admissible window.
"""

from __future__ import annotations

import numpy as np

from repro.delays.base import DelayModel
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive_integer

__all__ = ["ZeroDelay", "ConstantDelay", "UniformRandomDelay", "ChaoticRelaxationDelay"]


class ZeroDelay(DelayModel):
    """``l_i(j) = j - 1``: freshest possible data (no staleness).

    Asynchronous in steering only; the degenerate baseline against
    which delay effects are measured.
    """

    def raw_delays(self, j: int) -> np.ndarray:
        return np.zeros(self.n_components, dtype=np.int64)

    def is_bounded(self) -> bool:
        return True


class ConstantDelay(DelayModel):
    """Fixed staleness ``d_i(j) = d_i`` per component.

    Models pipeline latency: component ``i``'s value always arrives
    ``d_i`` iterations late (clipped near the start).
    """

    def __init__(self, n_components: int, delay: int | np.ndarray) -> None:
        super().__init__(n_components)
        d = np.broadcast_to(np.asarray(delay, dtype=np.int64), (n_components,)).copy()
        if np.any(d < 0):
            raise ValueError("delays must be nonnegative")
        self.delay = d

    def raw_delays(self, j: int) -> np.ndarray:
        return self.delay

    def is_bounded(self) -> bool:
        return True


class UniformRandomDelay(DelayModel):
    """I.i.d. delays ``d_i(j) ~ Uniform{0, ..., bound}``.

    The standard stochastic bounded-delay regime of the asynchronous
    SGD/coordinate-descent literature.
    """

    def __init__(
        self,
        n_components: int,
        bound: int,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        super().__init__(n_components)
        self.bound = check_positive_integer(bound, "bound")
        self.rng = as_generator(seed)

    def raw_delays(self, j: int) -> np.ndarray:
        return self.rng.integers(0, self.bound + 1, size=self.n_components)

    def is_bounded(self) -> bool:
        return True


class ChaoticRelaxationDelay(DelayModel):
    """Condition (d) verbatim: ``0 <= d_i(j) < b(j)``, ``b(j) = min(b, j)``.

    ``j - b(j)`` is monotone increasing since ``b(j)`` is the clipped
    constant ``b``; delays are drawn uniformly inside the *admissible
    window* ``[0, b(j) - 1]``, making this the maximal-entropy model
    satisfying Chazan–Miranker's assumptions exactly.
    """

    def __init__(
        self,
        n_components: int,
        b: int,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        super().__init__(n_components)
        self.b = check_positive_integer(b, "b")
        self.rng = as_generator(seed)

    def window(self, j: int) -> int:
        """The bound ``b(j) = min(b, j)`` of condition (d)."""
        return min(self.b, j)

    def raw_delays(self, j: int) -> np.ndarray:
        w = self.window(j)
        return self.rng.integers(0, w, size=self.n_components)

    def is_bounded(self) -> bool:
        return True
