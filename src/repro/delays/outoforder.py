"""Out-of-order message models: non-monotone label sequences.

The paper stresses (Sections II and IV) that condition (b) permits
*out-of-order messages*: the label functions ``l_i(j)`` need not be
monotone in ``j`` — a later updating phase may use an *older* value of
a component than an earlier phase did, exactly what happens on a
network that reorders packets.  Miellou [14] and Mishchenko et al. [30]
instead assume monotone ``l_i``; the models here generate genuinely
non-monotone sequences so the MACRO-EPOCH experiment can separate the
two theories empirically.
"""

from __future__ import annotations

import numpy as np

from repro.delays.base import DelayModel
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive_integer, check_probability

__all__ = ["OutOfOrderDelay", "ShuffledWindowDelay", "is_monotone_labels"]


class OutOfOrderDelay(DelayModel):
    """Wrap a base model; occasionally *regress* labels to older values.

    With probability ``reorder_prob`` a component's label is pushed
    back by up to ``max_regression`` extra iterations relative to the
    base model's label — simulating an old message overtaking a newer
    one and being applied after it.  Condition (b) survives because the
    regression amount is bounded, the base model satisfies (b), and a
    bounded perturbation of a diverging sequence still diverges.
    """

    def __init__(
        self,
        base: DelayModel,
        *,
        reorder_prob: float = 0.3,
        max_regression: int = 8,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        super().__init__(base.n_components)
        self.base = base
        self.reorder_prob = check_probability(reorder_prob, "reorder_prob")
        self.max_regression = check_positive_integer(max_regression, "max_regression")
        self.rng = as_generator(seed)

    def raw_delays(self, j: int) -> np.ndarray:
        d = np.asarray(self.base.raw_delays(j), dtype=np.int64).copy()
        hit = self.rng.random(self.n_components) < self.reorder_prob
        if np.any(hit):
            extra = self.rng.integers(1, self.max_regression + 1, size=int(np.sum(hit)))
            d[hit] += extra
        return d

    def is_bounded(self) -> bool:
        return self.base.is_bounded()

    def reset(self) -> None:
        self.base.reset()


class ShuffledWindowDelay(DelayModel):
    """Labels drawn uniformly from a sliding admissible window.

    ``l_i(j) ~ Uniform{max(0, j - window), ..., j - 1}`` independently
    per component and iteration: maximally non-monotone within a
    bounded window.  Satisfies (b) (window is bounded) and (d), but the
    realized label sequences are wildly out of order — the worst case a
    bounded-delay network can produce.
    """

    def __init__(
        self,
        n_components: int,
        window: int,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        super().__init__(n_components)
        self.window = check_positive_integer(window, "window")
        self.rng = as_generator(seed)

    def raw_delays(self, j: int) -> np.ndarray:
        w = min(self.window, j)
        return self.rng.integers(0, w, size=self.n_components)

    def is_bounded(self) -> bool:
        return True


def is_monotone_labels(labels_by_iteration: np.ndarray) -> bool:
    """Check whether every component's label sequence is nondecreasing.

    Parameters
    ----------
    labels_by_iteration:
        Array of shape ``(J, n)``: row ``j`` holds ``(l_1(j+1), ..., l_n(j+1))``.

    Returns
    -------
    bool
        True iff ``l_i`` is monotone nondecreasing for every ``i`` —
        the assumption of [14] and [30] that out-of-order messages
        violate.
    """
    arr = np.asarray(labels_by_iteration)
    if arr.ndim != 2:
        raise ValueError(f"expected 2-D label array, got shape {arr.shape}")
    if arr.shape[0] <= 1:
        return True
    return bool(np.all(np.diff(arr, axis=0) >= 0))
