"""Unbounded-delay models — the paper's central generalization.

Baudet's model (Definition 1) only requires ``l_i(j) -> infinity``
(condition (b)); delays may grow without bound.  These models realize
that regime:

* :class:`BaudetSqrtDelay` — the paper's worked example: processor P2's
  k-th updating phase takes ``k`` time units while P1 updates every
  unit, so the staleness of ``x_2`` as seen at iteration ``j`` grows
  like ``sqrt(j)`` and ``l_2(j) ~ j - sqrt(j) -> infinity``;
* :class:`PowerGrowthDelay` / :class:`LogGrowthDelay` — generic
  ``d(j) ~ j^alpha`` (``alpha < 1``) and ``d(j) ~ log j`` growth;
* :class:`AdversarialSpikeDelay` — delays that spike to a growing
  fraction of ``j`` at sparse instants, stressing condition (b) while
  still satisfying it.

All satisfy (b) because ``j - d(j) -> infinity``; none satisfies (d).
"""

from __future__ import annotations

import numpy as np

from repro.delays.base import DelayModel
from repro.utils.rng import as_generator
from repro.utils.validation import check_in_range, check_probability

__all__ = [
    "BaudetSqrtDelay",
    "PowerGrowthDelay",
    "LogGrowthDelay",
    "AdversarialSpikeDelay",
]


class BaudetSqrtDelay(DelayModel):
    """The paper's Section II example: ``d_i(j) = floor(sqrt(j))`` on slow components.

    Components listed in ``slow_components`` experience the growing
    staleness; the rest read fresh values (``d = 0``), mirroring the
    fast processor P1 / slow processor P2 construction.
    """

    def __init__(self, n_components: int, slow_components: list[int] | None = None) -> None:
        super().__init__(n_components)
        if slow_components is None:
            slow_components = [n_components - 1]
        slow = sorted(set(int(i) for i in slow_components))
        if any(i < 0 or i >= n_components for i in slow):
            raise IndexError(f"slow component index out of range [0, {n_components})")
        self.slow_components = slow
        self._mask = np.zeros(n_components, dtype=bool)
        self._mask[slow] = True

    def raw_delays(self, j: int) -> np.ndarray:
        d = np.zeros(self.n_components, dtype=np.int64)
        d[self._mask] = int(np.floor(np.sqrt(j)))
        return d


class PowerGrowthDelay(DelayModel):
    """``d_i(j) = floor(c * j^alpha)`` with ``alpha in [0, 1)``.

    Strictly sublinear growth keeps ``l_i(j) = j - 1 - d_i(j)``
    tending to infinity (condition (b)); ``alpha`` close to one is a
    nearly pathological but still admissible regime.
    """

    def __init__(self, n_components: int, alpha: float = 0.5, scale: float = 1.0) -> None:
        super().__init__(n_components)
        self.alpha = check_in_range(alpha, 0.0, 1.0, "alpha", hi_open=True)
        if scale < 0:
            raise ValueError(f"scale must be >= 0, got {scale}")
        self.scale = float(scale)

    def raw_delays(self, j: int) -> np.ndarray:
        d = int(np.floor(self.scale * j**self.alpha))
        return np.full(self.n_components, d, dtype=np.int64)


class LogGrowthDelay(DelayModel):
    """``d_i(j) = floor(c * log(1 + j))`` — slowly growing unbounded delays."""

    def __init__(self, n_components: int, scale: float = 1.0) -> None:
        super().__init__(n_components)
        if scale < 0:
            raise ValueError(f"scale must be >= 0, got {scale}")
        self.scale = float(scale)

    def raw_delays(self, j: int) -> np.ndarray:
        d = int(np.floor(self.scale * np.log1p(j)))
        return np.full(self.n_components, d, dtype=np.int64)


class AdversarialSpikeDelay(DelayModel):
    """Random delay spikes of size ``fraction * j`` at rate ``spike_prob``.

    Between spikes, delays follow a small uniform baseline.  Because a
    spike at iteration ``j`` has size at most ``fraction * j`` with
    ``fraction < 1``, labels still satisfy ``l_i(j) >= (1 - fraction) j - 1
    -> infinity`` so condition (b) holds despite arbitrarily large
    individual delays — the "unbounded but admissible" stress case.
    """

    def __init__(
        self,
        n_components: int,
        *,
        spike_prob: float = 0.05,
        fraction: float = 0.5,
        baseline: int = 1,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        super().__init__(n_components)
        self.spike_prob = check_probability(spike_prob, "spike_prob")
        self.fraction = check_in_range(fraction, 0.0, 1.0, "fraction", hi_open=True)
        if baseline < 0:
            raise ValueError(f"baseline must be >= 0, got {baseline}")
        self.baseline = int(baseline)
        self.rng = as_generator(seed)

    def raw_delays(self, j: int) -> np.ndarray:
        d = self.rng.integers(0, self.baseline + 1, size=self.n_components)
        spikes = self.rng.random(self.n_components) < self.spike_prob
        if np.any(spikes):
            d = d.astype(np.int64)
            d[spikes] = int(np.floor(self.fraction * j))
        return d
