"""Experiment registry and command-line entry point.

``python -m repro list`` enumerates the reproduction experiments;
``python -m repro run <exp-id>`` executes one benchmark module outside
pytest (useful for quick regeneration of a single table);
``python -m repro info`` prints the library's paper/version banner.

The registry mirrors DESIGN.md's experiment index so the CLI, the
benchmark suite and the documentation cannot drift apart silently —
``tests/integration/test_registry.py`` cross-checks them.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass

__all__ = ["Experiment", "EXPERIMENTS", "benchmarks_dir", "experiment_ids"]


@dataclass(frozen=True)
class Experiment:
    """One row of the reproduction's experiment index.

    Attributes
    ----------
    exp_id:
        Short identifier (matches DESIGN.md).
    paper_artifact:
        What in the paper this regenerates.
    bench_module:
        Filename under ``benchmarks/`` that produces it.
    """

    exp_id: str
    paper_artifact: str
    bench_module: str


EXPERIMENTS: tuple[Experiment, ...] = (
    Experiment("FIG1", "Figure 1: two-processor asynchronous schedule", "bench_fig1_schedule.py"),
    Experiment("FIG2", "Figure 2: flexible communication schedule", "bench_fig2_flexible_schedule.py"),
    Experiment("BAUDET", "Section II: sqrt(j) unbounded-delay example", "bench_baudet_unbounded_delay.py"),
    Experiment("THM1", "Theorem 1: macro-iteration contraction bound", "bench_thm1_macro_contraction.py"),
    Experiment("MACRO-EPOCH", "Section IV: macro-iterations vs epochs [30]", "bench_macro_vs_epoch.py"),
    Experiment("ASYNC-SYNC", "Section II: async vs sync efficiency", "bench_async_vs_sync.py"),
    Experiment("FLEX", "Section IV: flexible-communication gain", "bench_flexible_gain.py"),
    Experiment("DELAY-REGIMES", "Conditions (b)/(d): staleness sweep", "bench_delay_regimes.py"),
    Experiment("NETFLOW", "[6],[8]: network-flow relaxation", "bench_network_flow.py"),
    Experiment("OBSTACLE", "[26]: exchange-frequency study", "bench_obstacle_exchange_freq.py"),
    Experiment("BELLMAN", "Arpanet asynchronous Bellman-Ford", "bench_bellman_ford.py"),
    Experiment("MODERN", "[30],[32]: DAve-PG and ARock", "bench_modern_baselines.py"),
    Experiment("NEWTON", "[25]: Newton multi-splitting", "bench_newton_multisplitting.py"),
    Experiment("TERMINATION", "[15],[22]: stopping criteria", "bench_termination.py"),
    Experiment("HOGWILD", "Remark 3: shared-memory ML training", "bench_shared_memory_hogwild.py"),
    Experiment("ORDER-INTERVALS", "[23]: verified enclosures", "bench_order_intervals.py"),
    Experiment("MARKOV", "Section III: Markov systems", "bench_markov_value_iteration.py"),
    Experiment("ABL-STEP", "Ablation: step-size range", "bench_ablation_step_size.py"),
    Experiment("ABL-PARTIAL", "Ablation: partial freshness", "bench_ablation_partial_freshness.py"),
    Experiment("ABL-STEER", "Ablation: steering policies", "bench_ablation_steering.py"),
    Experiment("FLEET", "Fleet runner: scenarios/sec vs sequential baseline", "bench_fleet_throughput.py"),
)


def experiment_ids() -> list[str]:
    """All registered experiment identifiers, in index order."""
    return [e.exp_id for e in EXPERIMENTS]


def benchmarks_dir() -> pathlib.Path:
    """The repository's ``benchmarks/`` directory (best effort).

    Resolved relative to the installed package's source checkout; only
    meaningful for editable installs (which is how this repo ships).
    """
    here = pathlib.Path(__file__).resolve()
    for parent in here.parents:
        cand = parent / "benchmarks"
        if cand.is_dir():
            return cand
    raise FileNotFoundError("benchmarks/ directory not found relative to the package")
