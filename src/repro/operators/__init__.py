"""Fixed-point operators: the maps ``F`` (exact) and ``G`` (approximate).

This package implements every operator family the paper's survey and
Theorem 1 rely on:

* affine splittings (chaotic relaxation of [12], [14]);
* fixed-step gradient maps (``rho = gamma*mu`` contraction, Section V);
* proximal maps of the regularizers of problem (4);
* the Definition 4 approximate prox-gradient operator ``G``;
* inner-iteration approximations for flexible communication
  (Definition 3, [9], [23], [24]);
* modified Newton multi-splittings [25];
* monotone operators (min-plus Bellman–Ford, projected relaxation for
  the obstacle problem) covering the M-function route [4];
* contraction certificates in weighted max norms.
"""

from repro.operators.approximate import AdditiveNoiseOperator, InnerIterationOperator
from repro.operators.base import ComposedOperator, DampedOperator, FixedPointOperator
from repro.operators.contraction import (
    ContractionReport,
    diagonal_dominance_margin,
    estimate_contraction_factor,
    perron_weights,
)
from repro.operators.gradient import (
    GradientStepOperator,
    gradient_contraction_factor,
    max_contraction_step,
)
from repro.operators.linear import (
    AffineOperator,
    jacobi_operator,
    jor_operator,
    richardson_operator,
)
from repro.operators.monotone import (
    MinPlusBellmanFordOperator,
    ProjectedAffineOperator,
    is_isotone_sample,
)
from repro.operators.newton import ModifiedNewtonOperator
from repro.operators.prox_gradient import ForwardBackwardOperator, ProxGradientOperator
from repro.operators.proximal import (
    BoxConstraint,
    ElasticNetRegularizer,
    GroupLassoRegularizer,
    L1Regularizer,
    L2Regularizer,
    NonNegativeConstraint,
    Regularizer,
    SquaredL2Regularizer,
    ZeroRegularizer,
)

__all__ = [
    "AdditiveNoiseOperator",
    "AffineOperator",
    "BoxConstraint",
    "ComposedOperator",
    "ContractionReport",
    "DampedOperator",
    "ElasticNetRegularizer",
    "FixedPointOperator",
    "ForwardBackwardOperator",
    "GradientStepOperator",
    "GroupLassoRegularizer",
    "InnerIterationOperator",
    "L1Regularizer",
    "L2Regularizer",
    "MinPlusBellmanFordOperator",
    "ModifiedNewtonOperator",
    "NonNegativeConstraint",
    "ProjectedAffineOperator",
    "ProxGradientOperator",
    "Regularizer",
    "SquaredL2Regularizer",
    "ZeroRegularizer",
    "diagonal_dominance_margin",
    "estimate_contraction_factor",
    "gradient_contraction_factor",
    "is_isotone_sample",
    "jacobi_operator",
    "jor_operator",
    "max_contraction_step",
    "perron_weights",
    "richardson_operator",
]
