"""Fixed-point operator interfaces.

Asynchronous iterations (Definition 1 of the paper) are driven by an
operator ``F : R^N -> R^N`` whose fixed point ``x* = F(x*)`` is the
object being computed.  The engine only ever needs

* full application ``F(x)`` (vectorized), and
* component application ``F_i(x)`` for a block ``i`` of a
  :class:`~repro.utils.norms.BlockSpec`;

plus, for analysis, optional knowledge of a fixed point and of a
contraction factor in a weighted max norm.  :class:`FixedPointOperator`
is the ABC capturing that contract.
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from repro.utils.norms import BlockSpec, WeightedMaxNorm
from repro.utils.validation import check_vector

__all__ = ["FixedPointOperator", "ComposedOperator", "DampedOperator"]


class FixedPointOperator(abc.ABC):
    """An operator ``F : R^N -> R^N`` driving a fixed-point iteration.

    Subclasses must implement :meth:`apply`; :meth:`apply_block` has a
    generic (full-evaluation) default that concrete operators override
    when a cheaper component evaluation exists — the asynchronous
    engine calls :meth:`apply_block` on every updating phase, so the
    override matters for large problems.
    """

    def __init__(self, dim: int, block_spec: BlockSpec | None = None) -> None:
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        self._dim = int(dim)
        self._block_spec = block_spec if block_spec is not None else BlockSpec.scalar(dim)
        if self._block_spec.dim != self._dim:
            raise ValueError(
                f"block_spec covers {self._block_spec.dim} coordinates, operator has dim {self._dim}"
            )

    # -- core contract -------------------------------------------------
    @abc.abstractmethod
    def apply(self, x: np.ndarray) -> np.ndarray:
        """Evaluate ``F(x)`` (must not mutate ``x``)."""

    def apply_block(self, x: np.ndarray, i: int) -> np.ndarray:
        """Evaluate component ``F_i(x)`` for block ``i``.

        Default implementation evaluates the full operator and slices;
        override when a component can be computed independently.
        """
        return self.apply(x)[self._block_spec.slice(i)]

    def apply_blocks(self, x: np.ndarray, blocks: Sequence[int]) -> np.ndarray:
        """Evaluate several components at once, concatenated in block order.

        Used by steering policies that relax a subset ``S_j`` of
        components within one global iteration.
        """
        if len(blocks) == 0:
            return np.empty(0)
        full = self.apply(x)
        return np.concatenate([full[self._block_spec.slice(i)] for i in blocks])

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.apply(check_vector(x, "x", dim=self._dim))

    # -- metadata --------------------------------------------------------
    @property
    def dim(self) -> int:
        """Ambient dimension ``N``."""
        return self._dim

    @property
    def block_spec(self) -> BlockSpec:
        """Block decomposition of the iterate vector."""
        return self._block_spec

    @property
    def n_components(self) -> int:
        """Number of components ``n`` (blocks) of the iterate vector."""
        return self._block_spec.n_blocks

    # -- optional analysis hooks ----------------------------------------
    def fixed_point(self) -> np.ndarray | None:
        """A known fixed point ``x*``, or ``None`` when unavailable.

        Benchmarks use this to evaluate exact errors; solvers never
        rely on it.
        """
        return None

    def contraction_factor(self) -> float | None:
        """A proven contraction factor ``q < 1`` in :meth:`norm`, if known."""
        return None

    def norm(self) -> WeightedMaxNorm:
        """The weighted max norm in which the operator (if contracting) contracts."""
        return WeightedMaxNorm.uniform(self._block_spec)

    def residual(self, x: np.ndarray) -> float:
        """Fixed-point residual ``||F(x) - x||_u`` in :meth:`norm`."""
        x = check_vector(x, "x", dim=self._dim)
        return self.norm()(self.apply(x) - x)


class ComposedOperator(FixedPointOperator):
    """Composition ``F = outer ∘ inner`` of two conforming operators.

    Fixed points of the composition are generally *not* the fixed
    points of the parts; this class is used to build approximate
    operators (e.g. prox followed by a gradient step, Definition 4).
    """

    def __init__(self, outer: FixedPointOperator, inner: FixedPointOperator) -> None:
        if outer.dim != inner.dim:
            raise ValueError(f"dimension mismatch: outer {outer.dim} vs inner {inner.dim}")
        super().__init__(outer.dim, outer.block_spec)
        self.outer = outer
        self.inner = inner

    def apply(self, x: np.ndarray) -> np.ndarray:
        return self.outer.apply(self.inner.apply(x))


class DampedOperator(FixedPointOperator):
    """Damped/averaged operator ``x -> (1 - theta) x + theta F(x)``.

    For nonexpansive ``F`` and ``theta in (0, 1)`` this is the
    Krasnosel'skii–Mann averaging used by ARock [32]; it preserves the
    fixed-point set of ``F``.
    """

    def __init__(self, base: FixedPointOperator, theta: float) -> None:
        super().__init__(base.dim, base.block_spec)
        if not 0.0 < theta <= 1.0:
            raise ValueError(f"theta must lie in (0, 1], got {theta}")
        self.base = base
        self.theta = float(theta)

    def apply(self, x: np.ndarray) -> np.ndarray:
        return (1.0 - self.theta) * x + self.theta * self.base.apply(x)

    def apply_block(self, x: np.ndarray, i: int) -> np.ndarray:
        sl = self.block_spec.slice(i)
        return (1.0 - self.theta) * x[sl] + self.theta * self.base.apply_block(x, i)

    def fixed_point(self) -> np.ndarray | None:
        return self.base.fixed_point()

    def contraction_factor(self) -> float | None:
        q = self.base.contraction_factor()
        if q is None:
            return None
        return (1.0 - self.theta) + self.theta * q

    def norm(self) -> WeightedMaxNorm:
        return self.base.norm()
