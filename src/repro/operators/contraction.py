"""Contraction certificates and empirical contraction estimation.

Convergence of totally asynchronous iterations (and Theorem 1 of the
paper) rests on the operator contracting in a *weighted max norm*.
This module provides:

* exact certificates for affine maps (Perron weights of ``|A|``);
* :func:`estimate_contraction_factor` — an empirical estimate of
  ``sup ||F(x)-F(y)||_u / ||x-y||_u`` by sampling, used on nonlinear
  operators where no closed form exists;
* :func:`diagonal_dominance_margin` — the classical sufficient
  condition for Jacobi-type async convergence.
"""

from __future__ import annotations

import numpy as np

from repro.operators.base import FixedPointOperator
from repro.utils.norms import WeightedMaxNorm
from repro.utils.rng import as_generator

__all__ = [
    "estimate_contraction_factor",
    "diagonal_dominance_margin",
    "perron_weights",
    "ContractionReport",
]

from dataclasses import dataclass


@dataclass(frozen=True)
class ContractionReport:
    """Result of an empirical contraction study.

    Attributes
    ----------
    estimate:
        Max observed Lipschitz ratio in the tested norm.
    theoretical:
        The operator's own claimed factor (``None`` if unknown).
    samples:
        Number of pairs tested.
    is_contraction:
        Whether the empirical estimate is strictly below one.
    """

    estimate: float
    theoretical: float | None
    samples: int

    @property
    def is_contraction(self) -> bool:
        return self.estimate < 1.0

    def consistent(self, slack: float = 1e-9) -> bool:
        """True when the observed ratios never exceed the claimed factor."""
        if self.theoretical is None:
            return True
        return self.estimate <= self.theoretical + slack


def estimate_contraction_factor(
    op: FixedPointOperator,
    *,
    norm: WeightedMaxNorm | None = None,
    samples: int = 64,
    scale: float = 1.0,
    center: np.ndarray | None = None,
    seed: int | np.random.Generator | None = 0,
) -> ContractionReport:
    """Sample pairs ``(x, y)`` and bound ``||F(x)-F(y)||_u / ||x-y||_u``.

    Pairs are drawn around ``center`` (default: the fixed point when
    known, else the origin), including pairs straddling the fixed point
    where the ratio is typically extremal.
    """
    rng = as_generator(seed)
    if norm is None:
        norm = op.norm()
    if center is None:
        fp = op.fixed_point()
        center = fp if fp is not None else np.zeros(op.dim)
    worst = 0.0
    tested = 0
    for _ in range(samples):
        x = center + scale * rng.standard_normal(op.dim)
        y = center + scale * rng.standard_normal(op.dim)
        den = norm(x - y)
        if den < 1e-14:
            continue
        ratio = norm(op.apply(x) - op.apply(y)) / den
        worst = max(worst, ratio)
        tested += 1
    return ContractionReport(estimate=worst, theoretical=op.contraction_factor(), samples=tested)


def diagonal_dominance_margin(M: np.ndarray) -> float:
    """Strict-diagonal-dominance margin of a square matrix.

    Returns ``min_i (|M_ii| - sum_{j != i} |M_ij|) / |M_ii|``; positive
    iff ``M`` is strictly (row) diagonally dominant, in which case the
    Jacobi map contracts in the max norm with factor ``1 - margin`` and
    asynchronous iterations converge for any delays satisfying (a)-(c).
    """
    M = np.asarray(M, dtype=np.float64)
    if M.ndim != 2 or M.shape[0] != M.shape[1]:
        raise ValueError(f"M must be square, got shape {M.shape}")
    d = np.abs(np.diag(M))
    if np.any(d == 0):
        return -np.inf
    off = np.sum(np.abs(M), axis=1) - d
    return float(np.min((d - off) / d))


def perron_weights(A: np.ndarray, tol: float = 1e-12, max_iter: int = 10_000) -> tuple[float, np.ndarray]:
    """Power-iteration Perron pair ``(rho, u)`` of the nonnegative matrix ``|A|``.

    The weight vector ``u > 0`` achieves ``|| |A| ||_u = rho(|A|)``,
    i.e. it is the optimal weighting for the async contraction norm.
    Raises ``ValueError`` when power iteration stalls on a reducible
    matrix with a zero Perron eigenvector entry (weights then are not
    strictly positive and no weighted-max-norm certificate exists).
    """
    B = np.abs(np.asarray(A, dtype=np.float64))
    if B.ndim != 2 or B.shape[0] != B.shape[1]:
        raise ValueError(f"A must be square, got shape {B.shape}")
    n = B.shape[0]
    u = np.ones(n)
    rho = 0.0
    for _ in range(max_iter):
        v = B @ u
        new_rho = float(np.max(v))
        if new_rho == 0.0:
            return 0.0, np.ones(n)
        v = v / new_rho
        # Keep weights bounded away from zero for reducible matrices.
        v = np.maximum(v, 1e-14)
        if abs(new_rho - rho) < tol * max(1.0, new_rho) and float(np.max(np.abs(v - u))) < tol:
            u = v
            rho = new_rho
            break
        u, rho = v, new_rho
    q = float(np.max((B @ u) / u))
    return q, u
