"""Fixed-step gradient operators for smooth strongly convex functions.

The gradient step ``T(x) = x - gamma * grad f(x)`` is the prototypical
contracting fixed-point map of the paper's Section V: for ``f``
L-smooth and mu-strongly convex and ``gamma in (0, 2/(mu+L)]`` it
contracts in the Euclidean norm with factor

    ``q = max(|1 - gamma*mu|, |1 - gamma*L|) = 1 - gamma*mu``

(the equality holding exactly on the admissible step range), which is
the ``1 - rho`` of Theorem 1.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.operators.base import FixedPointOperator
from repro.utils.norms import BlockSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.problems.base import SmoothProblem

__all__ = ["GradientStepOperator", "max_contraction_step", "gradient_contraction_factor"]


def max_contraction_step(mu: float, L: float) -> float:
    """The largest admissible fixed step of the paper, ``2 / (mu + L)``.

    At this step the Euclidean contraction factor ``(L - mu)/(L + mu)``
    is minimal among fixed-step gradient methods.
    """
    if mu <= 0 or L < mu:
        raise ValueError(f"need 0 < mu <= L, got mu={mu}, L={L}")
    return 2.0 / (mu + L)


def gradient_contraction_factor(gamma: float, mu: float, L: float) -> float:
    """Euclidean contraction factor of ``x -> x - gamma grad f(x)``.

    ``max(|1-gamma*mu|, |1-gamma*L|)``; equals ``1 - gamma*mu`` (the
    Theorem 1 quantity) whenever ``gamma <= 2/(mu+L)``.
    """
    if mu <= 0 or L < mu:
        raise ValueError(f"need 0 < mu <= L, got mu={mu}, L={L}")
    if gamma <= 0:
        raise ValueError(f"gamma must be positive, got {gamma}")
    return max(abs(1.0 - gamma * mu), abs(1.0 - gamma * L))


class GradientStepOperator(FixedPointOperator):
    """``T(x) = x - gamma * grad f(x)`` for a smooth problem ``f``.

    Parameters
    ----------
    problem:
        A :class:`~repro.problems.base.SmoothProblem` exposing
        ``gradient``, ``mu`` and ``lipschitz``.
    gamma:
        Fixed step size; must lie in ``(0, 2/(mu+L)]`` when
        ``strict_step`` is true (the paper's admissible range).
    block_spec:
        Component decomposition for asynchronous updates.
    strict_step:
        Enforce the paper's step bound (default true).
    """

    def __init__(
        self,
        problem: "SmoothProblem",
        gamma: float,
        block_spec: BlockSpec | None = None,
        *,
        strict_step: bool = True,
    ) -> None:
        super().__init__(problem.dim, block_spec)
        if gamma <= 0:
            raise ValueError(f"gamma must be positive, got {gamma}")
        gmax = 2.0 / (problem.mu + problem.lipschitz)
        if strict_step and gamma > gmax * (1.0 + 1e-12):
            raise ValueError(
                f"gamma={gamma} exceeds the admissible bound 2/(mu+L)={gmax:.6g}; "
                "pass strict_step=False to override"
            )
        self.problem = problem
        self.gamma = float(gamma)

    def apply(self, x: np.ndarray) -> np.ndarray:
        return x - self.gamma * self.problem.gradient(x)

    def apply_block(self, x: np.ndarray, i: int) -> np.ndarray:
        sl = self.block_spec.slice(i)
        g = self.problem.gradient_block(x, sl)
        return x[sl] - self.gamma * g

    def fixed_point(self) -> np.ndarray | None:
        return self.problem.solution()

    def contraction_factor(self) -> float | None:
        return gradient_contraction_factor(self.gamma, self.problem.mu, self.problem.lipschitz)

    @property
    def rho(self) -> float:
        """Theorem 1's convergence modulus ``rho = gamma * mu``."""
        return self.gamma * self.problem.mu
