"""Affine fixed-point operators and classical splittings.

The oldest asynchronous iterations — chaotic relaxation of Chazan &
Miranker — solve ``M x = c`` through an affine fixed-point map
``F(x) = A x + b`` obtained from a matrix splitting.  These operators
are the canonical testbed for Definition 1: ``F`` contracts in the
weighted max norm iff the spectral radius of ``|A|`` is below one
(e.g. when ``M`` is strictly diagonally dominant), which is exactly the
classical necessary-and-sufficient condition for totally asynchronous
convergence.
"""

from __future__ import annotations

import numpy as np

from repro.operators.base import FixedPointOperator
from repro.utils.norms import BlockSpec, WeightedMaxNorm
from repro.utils.validation import check_finite_array, check_vector

__all__ = [
    "AffineOperator",
    "jacobi_operator",
    "jacobi_operator_batch",
    "jor_operator",
    "richardson_operator",
]


class AffineOperator(FixedPointOperator):
    """The affine map ``F(x) = A x + b`` on ``R^N``.

    Parameters
    ----------
    A:
        Iteration matrix, shape ``(N, N)``.
    b:
        Offset vector, shape ``(N,)``.
    block_spec:
        Optional block decomposition (defaults to scalar blocks).

    Notes
    -----
    * ``fixed_point`` solves ``(I - A) x* = b`` once, lazily, and
      caches the result (``None`` if ``I - A`` is singular).
    * ``contraction_factor`` returns ``|| |A| ||`` in the weighted max
      norm with the canonical positive weight vector when the spectral
      radius of ``|A|`` is < 1 (computed from the Perron eigenvector),
      otherwise ``None``.
    """

    def __init__(
        self,
        A: np.ndarray,
        b: np.ndarray,
        block_spec: BlockSpec | None = None,
    ) -> None:
        A = check_finite_array(A, "A")
        if A.ndim != 2 or A.shape[0] != A.shape[1]:
            raise ValueError(f"A must be square, got shape {A.shape}")
        b = check_vector(b, "b", dim=A.shape[0])
        super().__init__(A.shape[0], block_spec)
        self.A = A
        self.b = b
        self._fixed_point: np.ndarray | None = None
        self._fp_computed = False
        self._contraction: tuple[float, np.ndarray] | None = None
        self._contraction_computed = False

    def apply(self, x: np.ndarray) -> np.ndarray:
        return self.A @ x + self.b

    def apply_block(self, x: np.ndarray, i: int) -> np.ndarray:
        sl = self.block_spec.slice(i)
        return self.A[sl, :] @ x + self.b[sl]

    # -- analysis -----------------------------------------------------
    def spectral_radius_abs(self) -> float:
        """Spectral radius of ``|A|`` (the async convergence quantity)."""
        return float(np.max(np.abs(np.linalg.eigvals(np.abs(self.A)))))

    def _compute_contraction(self) -> tuple[float, np.ndarray] | None:
        """Perron weights for ``|A|``: ``|A| u <= q u`` with ``q < 1``.

        For an irreducible nonnegative matrix the Perron eigenvector is
        positive and gives the tightest weighted-max-norm bound.  For
        reducible matrices we regularize with a tiny positive
        perturbation which only loosens ``q`` marginally.
        """
        absA = np.abs(self.A)
        rho = self.spectral_radius_abs()
        if rho >= 1.0:
            return None
        n = absA.shape[0]
        # Perturb to ensure positivity of the eigenvector, then rescale.
        eps = 1e-12
        vals, vecs = np.linalg.eig(absA + eps * np.ones((n, n)))
        k = int(np.argmax(vals.real))
        u = np.abs(vecs[:, k].real)
        u = np.maximum(u, 1e-300)
        u = u / np.max(u)
        q = float(np.max((absA @ u) / u))
        if q >= 1.0:
            # Fall back to uniform weights when perturbation failed.
            q_uniform = float(np.max(absA.sum(axis=1)))
            if q_uniform < 1.0:
                return q_uniform, np.ones(n)
            return None
        return q, u

    def contraction_factor(self) -> float | None:
        if not self._contraction_computed:
            self._contraction = self._compute_contraction()
            self._contraction_computed = True
        return None if self._contraction is None else self._contraction[0]

    def norm(self) -> WeightedMaxNorm:
        if not self._contraction_computed:
            self._contraction = self._compute_contraction()
            self._contraction_computed = True
        if self._contraction is None or not self.block_spec.is_scalar:
            return WeightedMaxNorm.uniform(self.block_spec)
        return WeightedMaxNorm(self.block_spec, self._contraction[1])

    def fixed_point(self) -> np.ndarray | None:
        if not self._fp_computed:
            n = self.dim
            try:
                self._fixed_point = np.linalg.solve(np.eye(n) - self.A, self.b)
            except np.linalg.LinAlgError:
                self._fixed_point = None
            self._fp_computed = True
        return None if self._fixed_point is None else self._fixed_point.copy()

    @classmethod
    def _from_parts(
        cls, A: np.ndarray, b: np.ndarray, block_spec: BlockSpec
    ) -> "AffineOperator":
        """Validation-free constructor for batch-built operator stacks.

        The stacked factories (:func:`jacobi_operator_batch` and the
        registry's ``build_batch`` path) validate finiteness and shapes
        once per ``(B, n, n)`` stack, so re-checking each slice here
        would only re-pay the per-instance overhead the batch removed.
        ``A``/``b`` may be views into the shared stack and the
        ``block_spec`` may be one shared instance (it is immutable).
        """
        self = object.__new__(cls)
        FixedPointOperator.__init__(self, A.shape[0], block_spec)
        self.A = A
        self.b = b
        self._fixed_point = None
        self._fp_computed = False
        self._contraction = None
        self._contraction_computed = False
        return self

    @staticmethod
    def precompute_batch(
        ops: "list[AffineOperator]", *, A_stack: np.ndarray | None = None
    ) -> None:
        """Fill the lazy analysis caches of many same-shape operators at once.

        Populations of small affine operators (scenario batches) pay
        more for per-call LAPACK dispatch than for the decompositions
        themselves; stacking them into one ``(B, n, n)`` gufunc call
        amortizes that dispatch.  LAPACK routines run per matrix inside
        the gufunc loop, so every cached value is bit-identical to what
        the lazy per-operator path would have computed — this is purely
        a scheduling change (asserted by the batched-engine test suite).

        ``A_stack`` lets a batched constructor that already produced the
        ``(len(ops), n, n)`` stack (with ``ops[k].A`` the ``k``-th
        slice) hand it over directly instead of paying a re-stack.
        """
        todo = [
            o for o in ops
            if type(o) is AffineOperator
            and not (o._contraction_computed and o._fp_computed)
        ]
        if not todo:
            return
        n = todo[0].dim
        if any(o.dim != n for o in todo):
            raise ValueError("precompute_batch needs operators of one dimension")
        if A_stack is not None and len(todo) == len(ops):
            stackA = A_stack
        else:
            stackA = np.stack([o.A for o in todo])
        absA = np.abs(stackA)
        rhos = np.max(np.abs(np.linalg.eigvals(absA)), axis=1)
        eps = 1e-12
        vals, vecs = np.linalg.eig(absA + eps * np.ones((n, n)))
        for i, op in enumerate(todo):
            if not op._contraction_computed:
                contraction: tuple[float, np.ndarray] | None = None
                if float(rhos[i]) < 1.0:
                    k = int(np.argmax(vals[i].real))
                    u = np.abs(vecs[i][:, k].real)
                    u = np.maximum(u, 1e-300)
                    u = u / np.max(u)
                    q = float(np.max((absA[i] @ u) / u))
                    if q < 1.0:
                        contraction = (q, u)
                    else:
                        q_uniform = float(np.max(absA[i].sum(axis=1)))
                        if q_uniform < 1.0:
                            contraction = (q_uniform, np.ones(n))
                op._contraction = contraction
                op._contraction_computed = True
        solve_ops = [o for o in todo if not o._fp_computed]
        if solve_ops:
            if len(solve_ops) == len(todo):
                lhs = np.eye(n) - stackA
            else:
                lhs = np.eye(n) - np.stack([o.A for o in solve_ops])
            rhs = np.stack([o.b for o in solve_ops])[:, :, None]
            try:
                xs = np.linalg.solve(lhs, rhs)[:, :, 0]
                for i, op in enumerate(solve_ops):
                    op._fixed_point = xs[i]
                    op._fp_computed = True
            except np.linalg.LinAlgError:
                # One singular system poisons the whole gufunc call;
                # let each operator fall back to its own lazy solve.
                pass


def _split_diag(M: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Return (diagonal, off-diagonal part) of ``M``; check invertible diag."""
    M = check_finite_array(M, "M")
    if M.ndim != 2 or M.shape[0] != M.shape[1]:
        raise ValueError(f"M must be square, got shape {M.shape}")
    d = np.diag(M).copy()
    if np.any(d == 0.0):
        raise ValueError("M must have a nonzero diagonal for Jacobi-type splittings")
    R = M - np.diag(d)
    return d, R


def jacobi_operator(
    M: np.ndarray,
    c: np.ndarray,
    block_spec: BlockSpec | None = None,
) -> AffineOperator:
    """Jacobi fixed-point operator for the linear system ``M x = c``.

    ``F(x) = D^{-1} (c - R x)`` where ``M = D + R``.  Converges totally
    asynchronously iff ``rho(|D^{-1} R|) < 1`` (Chazan & Miranker),
    which holds for strictly diagonally dominant ``M``.
    """
    d, R = _split_diag(M)
    c = check_vector(c, "c", dim=M.shape[0])
    A = -R / d[:, None]
    b = c / d
    return AffineOperator(A, b, block_spec)


def jacobi_operator_batch(
    Ms: np.ndarray,
    cs: np.ndarray,
    block_spec: BlockSpec | None = None,
) -> list[AffineOperator]:
    """Jacobi operators for a stack of systems, bit-identical per slice.

    ``Ms`` is ``(B, n, n)``, ``cs`` is ``(B, n)``; the result matches
    ``[jacobi_operator(Ms[k], cs[k], block_spec) for k in range(B)]``
    bit for bit: the splitting ``A = -R / d``, ``b = c / d`` is purely
    elementwise (exact under stacking) and the lazy analysis caches are
    filled through :meth:`AffineOperator.precompute_batch`, whose
    stacked LAPACK gufuncs run the same routine per matrix.  Validation
    happens once on the stack, so the per-instance constructor overhead
    a solo loop pays ``B`` times is paid once.
    """
    Ms = np.asarray(Ms, dtype=np.float64)
    cs = np.asarray(cs, dtype=np.float64)
    if Ms.ndim != 3 or Ms.shape[1] != Ms.shape[2]:
        raise ValueError(f"Ms must be a (B, n, n) stack, got shape {Ms.shape}")
    B, n = Ms.shape[0], Ms.shape[1]
    if cs.shape != (B, n):
        raise ValueError(f"cs must have shape ({B}, {n}), got {cs.shape}")
    if not np.isfinite(Ms).all() or not np.isfinite(cs).all():
        raise ValueError("Ms and cs must be finite")
    idx = np.arange(n)
    ds = Ms[:, idx, idx].copy()
    if np.any(ds == 0.0):
        raise ValueError("M must have a nonzero diagonal for Jacobi-type splittings")
    # Mirrors _split_diag + jacobi_operator elementwise: R = M - diag(d),
    # A = -R / d, b = c / d.  Subtracting the diagonal gives an exact
    # 0.0 there (x - x), identical to the solo splitting's R.
    Rs = Ms.copy()
    Rs[:, idx, idx] -= ds
    As = -Rs / ds[:, :, None]
    bs = cs / ds
    spec = block_spec if block_spec is not None else BlockSpec.scalar(n)
    ops = [AffineOperator._from_parts(As[k], bs[k], spec) for k in range(B)]
    AffineOperator.precompute_batch(ops, A_stack=As)
    return ops


def jor_operator(
    M: np.ndarray,
    c: np.ndarray,
    omega: float,
    block_spec: BlockSpec | None = None,
) -> AffineOperator:
    """Jacobi over-relaxation: ``F(x) = (1-omega) x + omega D^{-1}(c - R x)``.

    ``omega in (0, 1]`` damps the Jacobi map; useful when plain Jacobi
    is not an async contraction but a damped version is.
    """
    if not 0.0 < omega <= 1.0:
        raise ValueError(f"omega must lie in (0, 1], got {omega}")
    jac = jacobi_operator(M, c)
    n = M.shape[0]
    A = (1.0 - omega) * np.eye(n) + omega * jac.A
    b = omega * jac.b
    return AffineOperator(A, b, block_spec)


def richardson_operator(
    M: np.ndarray,
    c: np.ndarray,
    alpha: float,
    block_spec: BlockSpec | None = None,
) -> AffineOperator:
    """Richardson iteration ``F(x) = x - alpha (M x - c)``.

    The linear analogue of a fixed-step gradient method; for SPD ``M``
    with eigenvalues in ``[mu, L]`` and ``alpha in (0, 2/(mu+L)]`` the
    2-norm contraction factor is ``1 - alpha*mu``.
    """
    M = check_finite_array(M, "M")
    c = check_vector(c, "c", dim=M.shape[0])
    if alpha <= 0:
        raise ValueError(f"alpha must be positive, got {alpha}")
    n = M.shape[0]
    A = np.eye(n) - alpha * M
    b = alpha * c
    return AffineOperator(A, b, block_spec)
