"""Monotone fixed-point operators (M-function theory, El Baz 1990 [4]).

Besides contraction, the second classical route to asynchronous
convergence is *order monotonicity*: if ``F`` is isotone
(``x <= y => F(x) <= F(y)`` componentwise) and an order interval
``[a, b]`` with ``a <= F(a)`` and ``F(b) <= b`` brackets a fixed point,
then totally asynchronous iterations started in the interval converge
monotonically — Bertsekas' box condition with order-interval level
sets, and the setting of the paper's references [4], [9], [23].

This module provides the two monotone operators used by the
experiments:

* :class:`MinPlusBellmanFordOperator` — the distributed shortest-path
  map of the Arpanet anecdote (Section II);
* :class:`ProjectedAffineOperator` — projected Jacobi relaxation for
  the obstacle problem's linear complementarity formulation [26].
"""

from __future__ import annotations

import numpy as np

from repro.operators.base import FixedPointOperator
from repro.utils.norms import BlockSpec
from repro.utils.validation import check_finite_array, check_vector

__all__ = ["MinPlusBellmanFordOperator", "ProjectedAffineOperator", "is_isotone_sample"]


class MinPlusBellmanFordOperator(FixedPointOperator):
    """Min-plus operator for single-destination shortest paths.

    ``F_i(x) = min_j ( w_ij + x_j )`` over out-neighbours ``j`` of node
    ``i``, with the destination pinned at 0.  This is the distributed
    asynchronous Bellman–Ford iteration run on the Arpanet in 1969
    ([11] pp. 479-480): it converges totally asynchronously for
    nonnegative weights from the all-``+inf``-above initialization, by
    monotonicity.

    Parameters
    ----------
    weights:
        Dense ``(N, N)`` matrix; ``weights[i, j]`` is the arc length
        from ``i`` to ``j`` and ``np.inf`` marks a missing arc.
    destination:
        Index of the destination node (its estimate stays 0).
    """

    def __init__(self, weights: np.ndarray, destination: int = 0) -> None:
        W = np.asarray(weights, dtype=np.float64)
        if W.ndim != 2 or W.shape[0] != W.shape[1]:
            raise ValueError(f"weights must be square, got shape {W.shape}")
        finite = W[np.isfinite(W)]
        if finite.size and np.any(finite < 0):
            raise ValueError("arc weights must be nonnegative for async convergence")
        n = W.shape[0]
        if not 0 <= destination < n:
            raise IndexError(f"destination {destination} out of range [0, {n})")
        super().__init__(n, BlockSpec.scalar(n))
        self.weights = W
        self.destination = int(destination)

    def apply(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        # F_i = min_j (w_ij + x_j); rows with no finite arc keep +inf.
        cand = self.weights + x[None, :]
        out = np.min(cand, axis=1)
        out[self.destination] = 0.0
        return out

    def apply_block(self, x: np.ndarray, i: int) -> np.ndarray:
        if i == self.destination:
            return np.zeros(1)
        val = float(np.min(self.weights[i, :] + np.asarray(x, dtype=np.float64)))
        return np.array([val])

    def initial_vector(self) -> np.ndarray:
        """The canonical monotone starting point: 0 at the destination, +inf elsewhere.

        Numerically we use a large finite sentinel so arithmetic stays
        finite; any value exceeding the diameter works.
        """
        finite = self.weights[np.isfinite(self.weights)]
        big = (float(np.sum(finite)) + 1.0) if finite.size else 1.0
        x0 = np.full(self.dim, big)
        x0[self.destination] = 0.0
        return x0

    def fixed_point(self) -> np.ndarray | None:
        """Exact distances via repeated synchronous sweeps (Bellman–Ford)."""
        x = self.initial_vector()
        for _ in range(self.dim + 1):
            nxt = self.apply(x)
            if np.array_equal(nxt, x):
                return nxt
            x = nxt
        return x  # negative-cycle-free by construction (nonneg weights)


class ProjectedAffineOperator(FixedPointOperator):
    """Projected affine map ``F(x) = max(psi, A x + b)`` (elementwise).

    With ``A = D^{-1}(D - M)`` and ``b = D^{-1} c`` a Jacobi splitting
    of an M-matrix system ``M x = c``, this is projected Jacobi
    relaxation for the linear complementarity problem

        ``x >= psi,  M x >= c,  (x - psi)^T (M x - c) = 0``

    — the discretized obstacle problem of [26].  The map is isotone and
    contracts in the weighted max norm whenever the unprojected Jacobi
    map does (projection onto ``{x >= psi}`` is a max-norm
    nonexpansion).
    """

    def __init__(
        self,
        A: np.ndarray,
        b: np.ndarray,
        lower: np.ndarray,
        block_spec: BlockSpec | None = None,
    ) -> None:
        A = check_finite_array(A, "A")
        if A.ndim != 2 or A.shape[0] != A.shape[1]:
            raise ValueError(f"A must be square, got shape {A.shape}")
        b = check_vector(b, "b", dim=A.shape[0])
        lower = check_vector(lower, "lower", dim=A.shape[0])
        super().__init__(A.shape[0], block_spec)
        self.A = A
        self.b = b
        self.lower = lower
        self._fp: np.ndarray | None = None

    def apply(self, x: np.ndarray) -> np.ndarray:
        return np.maximum(self.lower, self.A @ x + self.b)

    def apply_block(self, x: np.ndarray, i: int) -> np.ndarray:
        sl = self.block_spec.slice(i)
        return np.maximum(self.lower[sl], self.A[sl, :] @ x + self.b[sl])

    def contraction_factor(self) -> float | None:
        q = float(np.max(np.sum(np.abs(self.A), axis=1)))
        return q if q < 1.0 else None

    def fixed_point(self) -> np.ndarray | None:
        """Fixed point by synchronous iteration to machine tolerance."""
        if self._fp is None:
            q = self.contraction_factor()
            if q is None:
                return None
            x = np.maximum(self.lower, np.zeros(self.dim))
            for _ in range(200_000):
                nxt = self.apply(x)
                if float(np.max(np.abs(nxt - x))) < 1e-14:
                    x = nxt
                    break
                x = nxt
            self._fp = x
        return self._fp.copy()


def is_isotone_sample(
    op: FixedPointOperator,
    rng: np.random.Generator,
    trials: int = 32,
    scale: float = 1.0,
) -> bool:
    """Empirically test isotonicity: ``x <= y => F(x) <= F(y)``.

    Draws random ordered pairs and checks the componentwise order is
    preserved up to a small tolerance.  A sampling check, not a proof —
    used by tests and by solvers that want to warn on non-monotone
    operators before relying on order-interval arguments.
    """
    for _ in range(trials):
        x = scale * rng.standard_normal(op.dim)
        y = x + scale * np.abs(rng.standard_normal(op.dim))
        fx, fy = op.apply(x), op.apply(y)
        if np.any(fx > fy + 1e-10):
            return False
    return True
