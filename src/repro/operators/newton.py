"""Modified Newton and Newton multi-splitting operators [25].

El Baz & Elkihel (IPDPSW 2015) study parallel asynchronous *modified
Newton* methods for network flow: the exact Newton direction is
replaced by one computed from a fixed, cheaply invertible splitting of
the Hessian (block diagonal), so each processor can update its block
with second-order information without global factorizations.  The
resulting fixed-point map is

    ``F(x) = x - alpha * D(x)^{-1} grad f(x)``

with ``D`` the block-diagonal part of the (possibly frozen) Hessian and
``alpha`` a damping factor.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.operators.base import FixedPointOperator
from repro.utils.norms import BlockSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.problems.base import SmoothProblem

__all__ = ["ModifiedNewtonOperator"]


class ModifiedNewtonOperator(FixedPointOperator):
    """Damped block-Jacobi Newton map for a smooth problem.

    Parameters
    ----------
    problem:
        Smooth problem exposing ``gradient`` and ``hessian``.
    block_spec:
        Block decomposition; the Hessian is frozen at ``x0`` and only
        its block-diagonal is retained and factorized once (the
        "multi-splitting" of [25]).
    alpha:
        Damping in ``(0, 1]``; ``alpha = 1`` is the undamped method.
    x0:
        Point at which the Hessian splitting is built (defaults to 0).
    refresh_hessian:
        If true, refactorize the block diagonal at every application
        (modified Newton); if false (default) keep the frozen splitting.
    """

    def __init__(
        self,
        problem: "SmoothProblem",
        block_spec: BlockSpec | None = None,
        *,
        alpha: float = 1.0,
        x0: np.ndarray | None = None,
        refresh_hessian: bool = False,
    ) -> None:
        super().__init__(problem.dim, block_spec)
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must lie in (0, 1], got {alpha}")
        self.problem = problem
        self.alpha = float(alpha)
        self.refresh_hessian = bool(refresh_hessian)
        if x0 is None:
            x0 = np.zeros(problem.dim)
        self._blocks = self._factorize(np.asarray(x0, dtype=np.float64))

    def _factorize(self, x: np.ndarray) -> list[np.ndarray]:
        """Extract and invert the block-diagonal Hessian blocks at ``x``."""
        H = self.problem.hessian(x)
        inv_blocks: list[np.ndarray] = []
        for sl in self.block_spec.slices():
            block = H[sl, sl]
            # Regularize with mu to keep the splitting uniformly
            # invertible even where the Hessian block is near-singular.
            reg = max(self.problem.mu, 1e-12)
            block = block + 0.0 * np.eye(block.shape[0])
            try:
                inv_blocks.append(np.linalg.inv(block))
            except np.linalg.LinAlgError:
                inv_blocks.append(np.linalg.inv(block + reg * np.eye(block.shape[0])))
        return inv_blocks

    def apply(self, x: np.ndarray) -> np.ndarray:
        if self.refresh_hessian:
            self._blocks = self._factorize(np.asarray(x, dtype=np.float64))
        g = self.problem.gradient(x)
        out = np.array(x, dtype=np.float64, copy=True)
        for i, sl in enumerate(self.block_spec.slices()):
            out[sl] -= self.alpha * (self._blocks[i] @ g[sl])
        return out

    def apply_block(self, x: np.ndarray, i: int) -> np.ndarray:
        if self.refresh_hessian:
            self._blocks = self._factorize(np.asarray(x, dtype=np.float64))
        sl = self.block_spec.slice(i)
        g = self.problem.gradient_block(x, sl)
        return x[sl] - self.alpha * (self._blocks[i] @ g)

    def fixed_point(self) -> np.ndarray | None:
        return self.problem.solution()
