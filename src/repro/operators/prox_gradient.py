"""Proximal-gradient operators for the composite problem (4).

Two orderings appear in the literature and both are provided:

* :class:`ProxGradientOperator` — **Definition 4 of the paper**
  (backward–forward): ``G(x) = p - gamma * grad f(p)`` with
  ``p = prox_{gamma g}(x)``.  Its fixed points are the points whose
  prox is the minimizer of (4); the operator inherits the gradient
  step's contraction factor ``1 - gamma*mu`` because the prox is
  nonexpansive, which is what Theorem 1 uses.
* :class:`ForwardBackwardOperator` — classical ISTA ordering
  ``G(x) = prox_{gamma g}(x - gamma * grad f(x))`` whose fixed point
  *is* the minimizer of (4); used by the synchronous baselines and the
  modern comparators (ARock, DAve-PG).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.operators.base import FixedPointOperator
from repro.operators.gradient import gradient_contraction_factor
from repro.operators.proximal import Regularizer, ZeroRegularizer
from repro.utils.norms import BlockSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.problems.base import CompositeProblem

__all__ = ["ProxGradientOperator", "ForwardBackwardOperator"]


class _CompositeOperatorBase(FixedPointOperator):
    """Shared plumbing for the two prox-gradient orderings."""

    def __init__(
        self,
        problem: "CompositeProblem",
        gamma: float,
        block_spec: BlockSpec | None = None,
        *,
        strict_step: bool = True,
    ) -> None:
        super().__init__(problem.dim, block_spec)
        if gamma <= 0:
            raise ValueError(f"gamma must be positive, got {gamma}")
        mu, L = problem.smooth.mu, problem.smooth.lipschitz
        gmax = 2.0 / (mu + L)
        if strict_step and gamma > gmax * (1.0 + 1e-12):
            raise ValueError(
                f"gamma={gamma} exceeds the paper's bound 2/(mu+L)={gmax:.6g}; "
                "pass strict_step=False to override"
            )
        self.problem = problem
        self.gamma = float(gamma)

    @property
    def regularizer(self) -> Regularizer:
        """The non-smooth part ``g`` of problem (4)."""
        return self.problem.reg

    def contraction_factor(self) -> float | None:
        mu, L = self.problem.smooth.mu, self.problem.smooth.lipschitz
        return gradient_contraction_factor(self.gamma, mu, L)

    @property
    def rho(self) -> float:
        """Theorem 1's modulus ``rho = gamma * mu``."""
        return self.gamma * self.problem.smooth.mu


class ProxGradientOperator(_CompositeOperatorBase):
    """Definition 4: ``G(x) = prox(x) - gamma * grad f(prox(x))``.

    The prox is applied first, then one gradient step with fixed step
    size ``gamma in (0, 2/(mu+L)]``.  Since ``prox_{gamma g}`` is
    (firmly) nonexpansive and the gradient step contracts with factor
    ``1 - gamma*mu``, the composition contracts with the same factor —
    the ``1 - rho`` driving the macro-iteration bound (5).

    The fixed point ``y*`` of ``G`` satisfies ``prox(y*) = x*`` where
    ``x*`` minimizes (4): setting ``p = prox(y*)``, stationarity of the
    composite problem gives ``p - gamma grad f(p) = y*`` exactly when
    ``gamma * subgrad g(p) ∋ y* - p``, the prox optimality condition.
    """

    def apply(self, x: np.ndarray) -> np.ndarray:
        p = self.regularizer.prox(x, self.gamma)
        return p - self.gamma * self.problem.smooth.gradient(p)

    def apply_block(self, x: np.ndarray, i: int) -> np.ndarray:
        # Separable regularizers would allow a blockwise prox, but the
        # general contract only promises a full prox; evaluate fully and
        # slice. Concrete separable cases can override via subclassing.
        p = self.regularizer.prox(x, self.gamma)
        sl = self.block_spec.slice(i)
        g = self.problem.smooth.gradient_block(p, sl)
        return p[sl] - self.gamma * g

    def fixed_point(self) -> np.ndarray | None:
        """The fixed point ``y* = x* - gamma * grad f(x*)`` of ``G``.

        Derived from the problem's known minimizer ``x*`` when
        available: by the prox optimality condition,
        ``prox_{gamma g}(x* - gamma grad f(x*)) = x*``; substituting
        into the definition of ``G`` shows ``y*`` as above is fixed.
        """
        xstar = self.problem.solution()
        if xstar is None:
            return None
        return xstar - self.gamma * self.problem.smooth.gradient(xstar)

    def minimizer_from_fixed_point(self, y: np.ndarray) -> np.ndarray:
        """Map an iterate of ``G`` to an approximate minimizer of (4)."""
        return self.regularizer.prox(y, self.gamma)


class ForwardBackwardOperator(_CompositeOperatorBase):
    """ISTA ordering: ``G(x) = prox_{gamma g}(x - gamma * grad f(x))``.

    Fixed points coincide with minimizers of (4).  Contraction factor
    is the same ``1 - gamma*mu`` (prox nonexpansive after a
    contracting gradient step).
    """

    def apply(self, x: np.ndarray) -> np.ndarray:
        return self.regularizer.prox(x - self.gamma * self.problem.smooth.gradient(x), self.gamma)

    def apply_block(self, x: np.ndarray, i: int) -> np.ndarray:
        # The prox of the separable regularizers used in this library is
        # coordinatewise except GroupLasso, whose groups must then align
        # with the block spec; we evaluate the forward step only on the
        # needed block and prox it when the regularizer is separable.
        if isinstance(self.regularizer, ZeroRegularizer):
            sl = self.block_spec.slice(i)
            return x[sl] - self.gamma * self.problem.smooth.gradient_block(x, sl)
        return self.apply(x)[self.block_spec.slice(i)]

    def fixed_point(self) -> np.ndarray | None:
        return self.problem.solution()
