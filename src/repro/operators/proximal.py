"""Proximal operators of the non-smooth convex regularizers ``g``.

Problem (4) of the paper, ``min f(x) + g(x)``, covers regularized
machine-learning training; ``g`` is handled through its proximal map

    ``prox_{gamma g}(x) = argmin_v { g(v) + ||v - x||^2 / (2 gamma) }``.

Every :class:`Regularizer` provides the value ``g(x)`` and a closed-form
vectorized ``prox``.  All proximal maps are firmly nonexpansive — a
property the test suite verifies by hypothesis testing — which is what
Theorem 1 needs for the composed operator of Definition 4 to inherit
the gradient step's contraction.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.utils.norms import BlockSpec, block_euclidean_norms
from repro.utils.validation import check_nonnegative, check_vector

__all__ = [
    "Regularizer",
    "ZeroRegularizer",
    "L1Regularizer",
    "L2Regularizer",
    "SquaredL2Regularizer",
    "ElasticNetRegularizer",
    "BoxConstraint",
    "NonNegativeConstraint",
    "GroupLassoRegularizer",
]


class Regularizer(abc.ABC):
    """A proper convex lower semi-continuous function with known prox."""

    @abc.abstractmethod
    def value(self, x: np.ndarray) -> float:
        """Evaluate ``g(x)`` (may be ``inf`` for constraints)."""

    @abc.abstractmethod
    def prox(self, x: np.ndarray, gamma: float) -> np.ndarray:
        """Evaluate ``prox_{gamma g}(x)``; must not mutate ``x``."""

    def __call__(self, x: np.ndarray) -> float:
        return self.value(np.asarray(x, dtype=np.float64))

    def is_indicator(self) -> bool:
        """True when ``g`` is the indicator of a constraint set."""
        return False


class ZeroRegularizer(Regularizer):
    """``g = 0``: the prox is the identity (smooth unconstrained case)."""

    def value(self, x: np.ndarray) -> float:
        return 0.0

    def prox(self, x: np.ndarray, gamma: float) -> np.ndarray:
        check_nonnegative(gamma, "gamma")
        return np.array(x, dtype=np.float64, copy=True)


class L1Regularizer(Regularizer):
    """``g(x) = lam * ||x||_1`` with soft-thresholding prox (lasso)."""

    def __init__(self, lam: float) -> None:
        self.lam = check_nonnegative(lam, "lam")

    def value(self, x: np.ndarray) -> float:
        return self.lam * float(np.sum(np.abs(x)))

    def prox(self, x: np.ndarray, gamma: float) -> np.ndarray:
        check_nonnegative(gamma, "gamma")
        t = self.lam * gamma
        return np.sign(x) * np.maximum(np.abs(x) - t, 0.0)


class L2Regularizer(Regularizer):
    """``g(x) = lam * ||x||_2`` (un-squared); block soft-thresholding prox."""

    def __init__(self, lam: float) -> None:
        self.lam = check_nonnegative(lam, "lam")

    def value(self, x: np.ndarray) -> float:
        return self.lam * float(np.linalg.norm(x))

    def prox(self, x: np.ndarray, gamma: float) -> np.ndarray:
        check_nonnegative(gamma, "gamma")
        x = np.asarray(x, dtype=np.float64)
        nrm = float(np.linalg.norm(x))
        t = self.lam * gamma
        if nrm <= t:
            return np.zeros_like(x)
        return (1.0 - t / nrm) * x


class SquaredL2Regularizer(Regularizer):
    """``g(x) = (lam / 2) * ||x||_2^2`` with linear shrinkage prox (ridge)."""

    def __init__(self, lam: float) -> None:
        self.lam = check_nonnegative(lam, "lam")

    def value(self, x: np.ndarray) -> float:
        return 0.5 * self.lam * float(np.dot(x, x))

    def prox(self, x: np.ndarray, gamma: float) -> np.ndarray:
        check_nonnegative(gamma, "gamma")
        return np.asarray(x, dtype=np.float64) / (1.0 + self.lam * gamma)


class ElasticNetRegularizer(Regularizer):
    """``g(x) = lam1 ||x||_1 + (lam2/2) ||x||_2^2``; prox composes shrinkages."""

    def __init__(self, lam1: float, lam2: float) -> None:
        self.lam1 = check_nonnegative(lam1, "lam1")
        self.lam2 = check_nonnegative(lam2, "lam2")

    def value(self, x: np.ndarray) -> float:
        x = np.asarray(x, dtype=np.float64)
        return self.lam1 * float(np.sum(np.abs(x))) + 0.5 * self.lam2 * float(np.dot(x, x))

    def prox(self, x: np.ndarray, gamma: float) -> np.ndarray:
        check_nonnegative(gamma, "gamma")
        soft = np.sign(x) * np.maximum(np.abs(x) - self.lam1 * gamma, 0.0)
        return soft / (1.0 + self.lam2 * gamma)


class BoxConstraint(Regularizer):
    """Indicator of the box ``[lo, hi]^N`` (bounds may be vectors).

    The prox is the Euclidean projection (clipping); used by the
    obstacle problem where the box lower bound is the obstacle.
    """

    def __init__(self, lo: np.ndarray | float, hi: np.ndarray | float) -> None:
        self.lo = np.asarray(lo, dtype=np.float64)
        self.hi = np.asarray(hi, dtype=np.float64)
        if np.any(self.lo > self.hi):
            raise ValueError("box constraint requires lo <= hi elementwise")

    def value(self, x: np.ndarray) -> float:
        x = np.asarray(x, dtype=np.float64)
        inside = np.all(x >= self.lo - 1e-12) and np.all(x <= self.hi + 1e-12)
        return 0.0 if inside else float("inf")

    def prox(self, x: np.ndarray, gamma: float) -> np.ndarray:
        check_nonnegative(gamma, "gamma")
        return np.clip(x, self.lo, self.hi)

    def is_indicator(self) -> bool:
        return True


class NonNegativeConstraint(BoxConstraint):
    """Indicator of the nonnegative orthant (projection prox)."""

    def __init__(self) -> None:
        super().__init__(0.0, np.inf)


class GroupLassoRegularizer(Regularizer):
    """``g(x) = lam * sum_g w_g ||x_g||_2`` over disjoint contiguous groups.

    The prox is groupwise block soft-thresholding, vectorized across
    groups via :func:`~repro.utils.norms.block_euclidean_norms`.
    """

    def __init__(self, spec: BlockSpec, lam: float, weights: np.ndarray | None = None) -> None:
        self.spec = spec
        self.lam = check_nonnegative(lam, "lam")
        if weights is None:
            weights = np.ones(spec.n_blocks)
        self.weights = check_vector(weights, "weights", dim=spec.n_blocks)
        if np.any(self.weights < 0):
            raise ValueError("group weights must be nonnegative")

    def value(self, x: np.ndarray) -> float:
        norms = block_euclidean_norms(np.asarray(x, dtype=np.float64), self.spec)
        return self.lam * float(np.dot(self.weights, norms))

    def prox(self, x: np.ndarray, gamma: float) -> np.ndarray:
        check_nonnegative(gamma, "gamma")
        x = np.asarray(x, dtype=np.float64)
        norms = block_euclidean_norms(x, self.spec)
        thresh = self.lam * gamma * self.weights
        # Scale factor per group: max(0, 1 - t_g / ||x_g||); safe at 0.
        with np.errstate(divide="ignore", invalid="ignore"):
            scale = np.where(norms > thresh, 1.0 - thresh / np.maximum(norms, 1e-300), 0.0)
        out = x.copy()
        for i, sl in enumerate(self.spec.slices()):
            out[sl] *= scale[i]
        return out
