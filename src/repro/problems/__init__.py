"""Problem zoo: every workload the paper's survey and Section V touch.

* Quadratics and diagonally dominant linear systems (chaotic
  relaxation heritage, [12], [14]);
* Ridge / lasso / elastic net / logistic / SVM — the machine-learning
  instances of problem (4);
* Convex separable network flow duals ([6], [8] — the author's original
  application);
* The 2-D obstacle problem ([26] — numerical-simulation substrate);
* Synthetic dataset generators (offline substitutes for the
  unavailable historical testbeds).
"""

from repro.problems.base import CompositeProblem, SmoothProblem
from repro.problems.datasets import (
    ClassificationData,
    RegressionData,
    make_classification,
    make_regression,
)
from repro.problems.least_squares import (
    LeastSquaresProblem,
    make_elastic_net,
    make_lasso,
    make_ridge,
)
from repro.problems.linear_system import (
    make_jacobi_instance,
    random_dominant_system,
    tridiagonal_system,
)
from repro.problems.markov import (
    absorption_cost_operator,
    discounted_value_operator,
    random_absorbing_chain,
    random_markov_chain,
)
from repro.problems.logistic import LogisticProblem, make_logistic, make_sparse_logistic
from repro.problems.network_flow import (
    FlowNetwork,
    NetworkFlowDualProblem,
    make_network_flow_dual,
    random_flow_network,
)
from repro.problems.obstacle import ObstacleProblem, make_obstacle_problem
from repro.problems.quadratic import (
    QuadraticProblem,
    laplacian_quadratic,
    random_quadratic,
    separable_quadratic,
)
from repro.problems.svm import SmoothedHingeSVM, make_svm

__all__ = [
    "ClassificationData",
    "CompositeProblem",
    "FlowNetwork",
    "LeastSquaresProblem",
    "LogisticProblem",
    "NetworkFlowDualProblem",
    "ObstacleProblem",
    "QuadraticProblem",
    "RegressionData",
    "SmoothProblem",
    "SmoothedHingeSVM",
    "absorption_cost_operator",
    "discounted_value_operator",
    "laplacian_quadratic",
    "make_classification",
    "make_elastic_net",
    "make_jacobi_instance",
    "make_lasso",
    "make_logistic",
    "make_network_flow_dual",
    "make_obstacle_problem",
    "make_regression",
    "make_ridge",
    "make_sparse_logistic",
    "make_svm",
    "random_absorbing_chain",
    "random_dominant_system",
    "random_markov_chain",
    "random_flow_network",
    "random_quadratic",
    "separable_quadratic",
    "tridiagonal_system",
]
