"""Problem interfaces for the composite model (4): ``min f(x) + g(x)``.

``f`` is L-smooth and mu-strongly convex; ``g`` is convex lsc non-smooth
and handled by its prox (:mod:`repro.operators.proximal`).  A
:class:`SmoothProblem` exposes the quantities Theorem 1 consumes
(``mu``, ``L`` and gradients, including cheap *block* gradients for
asynchronous component updates); :class:`CompositeProblem` pairs a
smooth part with a regularizer and can compute a high-accuracy
reference solution by FISTA for error reporting.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.operators.proximal import Regularizer, ZeroRegularizer
from repro.utils.validation import check_vector

__all__ = ["SmoothProblem", "CompositeProblem"]


class SmoothProblem(abc.ABC):
    """An L-smooth, mu-strongly convex differentiable function on ``R^N``."""

    def __init__(self, dim: int, mu: float, lipschitz: float) -> None:
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        if not (0 < mu <= lipschitz):
            raise ValueError(f"need 0 < mu <= L, got mu={mu}, L={lipschitz}")
        self._dim = int(dim)
        self._mu = float(mu)
        self._L = float(lipschitz)

    # -- contract -----------------------------------------------------
    @abc.abstractmethod
    def objective(self, x: np.ndarray) -> float:
        """Evaluate ``f(x)``."""

    @abc.abstractmethod
    def gradient(self, x: np.ndarray) -> np.ndarray:
        """Evaluate ``grad f(x)``."""

    def gradient_block(self, x: np.ndarray, sl: slice) -> np.ndarray:
        """Evaluate ``(grad f(x))[sl]``.

        Default slices the full gradient; structured problems override
        with a partial evaluation (cost proportional to the block).
        """
        return self.gradient(x)[sl]

    def hessian(self, x: np.ndarray) -> np.ndarray:
        """Dense Hessian at ``x``; optional (Newton operators need it)."""
        raise NotImplementedError(f"{type(self).__name__} does not provide a Hessian")

    def solution(self) -> np.ndarray | None:
        """The unique minimizer when known in closed form, else ``None``."""
        return None

    # -- metadata -------------------------------------------------------
    @property
    def dim(self) -> int:
        """Ambient dimension ``N``."""
        return self._dim

    @property
    def mu(self) -> float:
        """Strong-convexity modulus ``mu > 0``."""
        return self._mu

    @property
    def lipschitz(self) -> float:
        """Gradient Lipschitz constant ``L >= mu``."""
        return self._L

    @property
    def condition_number(self) -> float:
        """``L / mu``."""
        return self._L / self._mu

    def max_step(self) -> float:
        """The paper's admissible step bound ``2 / (mu + L)``."""
        return 2.0 / (self._mu + self._L)

    def __call__(self, x: np.ndarray) -> float:
        return self.objective(check_vector(x, "x", dim=self._dim))


class CompositeProblem:
    """The full problem (4): smooth part plus proximable regularizer.

    Parameters
    ----------
    smooth:
        The ``f`` of problem (4).
    reg:
        The ``g`` of problem (4); defaults to zero (smooth problem).

    Notes
    -----
    ``solution()`` returns the smooth part's closed form when ``g = 0``,
    and otherwise runs FISTA to near machine precision once and caches
    the result.  Benchmarks treat this as ground truth ``x*``.
    """

    def __init__(self, smooth: SmoothProblem, reg: Regularizer | None = None) -> None:
        self.smooth = smooth
        self.reg = reg if reg is not None else ZeroRegularizer()
        self._solution: np.ndarray | None = None
        self._solved = False

    @property
    def dim(self) -> int:
        """Ambient dimension ``N``."""
        return self.smooth.dim

    def objective(self, x: np.ndarray) -> float:
        """Evaluate ``f(x) + g(x)``."""
        return self.smooth.objective(x) + self.reg.value(x)

    def __call__(self, x: np.ndarray) -> float:
        return self.objective(check_vector(x, "x", dim=self.dim))

    def solution(self, tol: float = 1e-12, max_iter: int = 100_000) -> np.ndarray | None:
        """High-accuracy minimizer of ``f + g`` (cached).

        Uses the closed form when available; otherwise FISTA with
        backtracking-free constant step ``1/L`` and strong-convexity
        restarting momentum.
        """
        if self._solved:
            return None if self._solution is None else self._solution.copy()
        if isinstance(self.reg, ZeroRegularizer):
            xs = self.smooth.solution()
            if xs is not None:
                self._solution = xs
                self._solved = True
                return xs.copy()
        self._solution = self._fista(tol=tol, max_iter=max_iter)
        self._solved = True
        return self._solution.copy()

    def _fista(self, tol: float, max_iter: int) -> np.ndarray:
        """Accelerated proximal gradient with the strongly convex momentum."""
        L, mu = self.smooth.lipschitz, self.smooth.mu
        step = 1.0 / L
        kappa = L / mu
        beta = (np.sqrt(kappa) - 1.0) / (np.sqrt(kappa) + 1.0)
        x = np.zeros(self.dim)
        y = x.copy()
        for _ in range(max_iter):
            x_new = self.reg.prox(y - step * self.smooth.gradient(y), step)
            if float(np.max(np.abs(x_new - x))) < tol * max(1.0, float(np.max(np.abs(x)))):
                return x_new
            y = x_new + beta * (x_new - x)
            x = x_new
        return x

    def prox_gradient_residual(self, x: np.ndarray, gamma: float) -> float:
        """Norm of the prox-gradient mapping ``(x - prox(x - gamma grad f(x)))/gamma``.

        Zero exactly at minimizers; the standard verifiable optimality
        measure for composite problems.
        """
        x = check_vector(x, "x", dim=self.dim)
        step = self.reg.prox(x - gamma * self.smooth.gradient(x), gamma)
        return float(np.linalg.norm(x - step)) / gamma
