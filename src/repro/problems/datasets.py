"""Synthetic dataset generation for the machine-learning problems.

The paper's Section V motivates problem (4) with supervised learning:
``m`` training samples ``(y_h, z_h)``, a model ``p(y, x)``, a loss
``h`` and a regularizer ``g``.  No public dataset ships with the paper
(and this environment is offline), so the ML experiments run on
controlled synthetic data: Gaussian design matrices with tunable
conditioning/correlation, sparse or dense ground-truth weights, and
label noise.  This keeps ``mu``, ``L`` and the true solution available
for exact error reporting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import as_generator
from repro.utils.validation import check_positive_integer

__all__ = ["RegressionData", "ClassificationData", "make_regression", "make_classification"]


@dataclass(frozen=True)
class RegressionData:
    """A linear-regression dataset ``z ~ Y @ x_true + noise``.

    Attributes
    ----------
    features:
        Design matrix ``Y`` of shape ``(m, n)`` (paper notation: inputs ``y_h``).
    targets:
        Target vector ``z`` of length ``m``.
    true_weights:
        The generating parameter vector ``x_true``.
    noise_std:
        Standard deviation of the additive label noise.
    """

    features: np.ndarray
    targets: np.ndarray
    true_weights: np.ndarray
    noise_std: float

    @property
    def n_samples(self) -> int:
        return self.features.shape[0]

    @property
    def n_features(self) -> int:
        return self.features.shape[1]


@dataclass(frozen=True)
class ClassificationData:
    """A binary-classification dataset with labels in ``{-1, +1}``."""

    features: np.ndarray
    labels: np.ndarray
    true_weights: np.ndarray

    @property
    def n_samples(self) -> int:
        return self.features.shape[0]

    @property
    def n_features(self) -> int:
        return self.features.shape[1]


def _design_matrix(
    m: int, n: int, correlation: float, rng: np.random.Generator
) -> np.ndarray:
    """Gaussian design with AR(1)-style column correlation ``correlation``."""
    base = rng.standard_normal((m, n))
    if correlation == 0.0:
        return base
    # Cholesky of the AR(1) covariance applied columnwise.
    idx = np.arange(n)
    cov = correlation ** np.abs(idx[:, None] - idx[None, :])
    chol = np.linalg.cholesky(cov + 1e-12 * np.eye(n))
    return base @ chol.T


def make_regression(
    n_samples: int,
    n_features: int,
    *,
    sparsity: float = 0.0,
    noise_std: float = 0.1,
    correlation: float = 0.0,
    seed: int | np.random.Generator | None = 0,
) -> RegressionData:
    """Generate a regression dataset for ridge/lasso/elastic-net runs.

    Parameters
    ----------
    sparsity:
        Fraction of true weights forced to zero (lasso ground truth).
    correlation:
        AR(1) feature correlation in ``[0, 1)`` — higher values worsen
        the conditioning of ``Y'Y`` and slow all methods down.
    """
    m = check_positive_integer(n_samples, "n_samples")
    n = check_positive_integer(n_features, "n_features")
    if not 0.0 <= sparsity < 1.0:
        raise ValueError(f"sparsity must lie in [0, 1), got {sparsity}")
    if not 0.0 <= correlation < 1.0:
        raise ValueError(f"correlation must lie in [0, 1), got {correlation}")
    if noise_std < 0:
        raise ValueError(f"noise_std must be >= 0, got {noise_std}")
    rng = as_generator(seed)
    Y = _design_matrix(m, n, correlation, rng)
    x_true = rng.standard_normal(n)
    if sparsity > 0.0:
        n_zero = int(round(sparsity * n))
        if n_zero >= n:
            n_zero = n - 1
        zero_idx = rng.choice(n, size=n_zero, replace=False)
        x_true[zero_idx] = 0.0
    z = Y @ x_true + noise_std * rng.standard_normal(m)
    return RegressionData(Y, z, x_true, float(noise_std))


def make_classification(
    n_samples: int,
    n_features: int,
    *,
    separation: float = 1.0,
    correlation: float = 0.0,
    label_flip: float = 0.0,
    seed: int | np.random.Generator | None = 0,
) -> ClassificationData:
    """Generate a logistic-regression dataset with ``{-1, +1}`` labels.

    ``separation`` scales the generating weights (larger = easier);
    ``label_flip`` randomly flips a fraction of labels (harder).
    """
    m = check_positive_integer(n_samples, "n_samples")
    n = check_positive_integer(n_features, "n_features")
    if separation <= 0:
        raise ValueError(f"separation must be positive, got {separation}")
    if not 0.0 <= label_flip < 0.5:
        raise ValueError(f"label_flip must lie in [0, 0.5), got {label_flip}")
    rng = as_generator(seed)
    Y = _design_matrix(m, n, correlation, rng)
    x_true = separation * rng.standard_normal(n) / np.sqrt(n)
    logits = Y @ x_true
    probs = 1.0 / (1.0 + np.exp(-logits))
    labels = np.where(rng.random(m) < probs, 1.0, -1.0)
    if label_flip > 0.0:
        flip = rng.random(m) < label_flip
        labels[flip] *= -1.0
    return ClassificationData(Y, labels, x_true)
