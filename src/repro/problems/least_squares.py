"""Regularized least-squares smooth parts (ridge base) and problem builders.

``f(x) = 1/(2m) ||Y x - z||^2 + (lam_2 / 2) ||x||^2`` is the smooth part
underlying ridge (``g = 0``), lasso (``g = lam_1 ||.||_1``) and elastic
net.  The ``lam_2`` term guarantees the strong convexity Theorem 1
requires even for underdetermined designs.
"""

from __future__ import annotations

import numpy as np

from repro.operators.proximal import ElasticNetRegularizer, L1Regularizer, ZeroRegularizer
from repro.problems.base import CompositeProblem, SmoothProblem
from repro.problems.datasets import RegressionData
from repro.utils.validation import check_finite_array, check_nonnegative, check_vector

__all__ = [
    "LeastSquaresProblem",
    "batch_least_squares",
    "make_ridge",
    "make_lasso",
    "make_elastic_net",
]


class LeastSquaresProblem(SmoothProblem):
    """``f(x) = 1/(2m)||Y x - z||^2 + (l2/2)||x||^2``.

    ``mu`` and ``L`` are the exact extreme eigenvalues of
    ``Y'Y/m + l2 I`` (computed once via a symmetric eigendecomposition
    of the Gram matrix).
    """

    def __init__(self, features: np.ndarray, targets: np.ndarray, l2: float = 0.0) -> None:
        Y = check_finite_array(features, "features")
        if Y.ndim != 2:
            raise ValueError(f"features must be 2-D, got shape {Y.shape}")
        m, n = Y.shape
        z = check_vector(targets, "targets", dim=m)
        l2 = check_nonnegative(l2, "l2")
        gram = (Y.T @ Y) / m
        eigs = np.linalg.eigvalsh(gram)
        mu = float(eigs[0]) + l2
        L = float(eigs[-1]) + l2
        if mu <= 0:
            raise ValueError(
                "smooth part is not strongly convex; increase l2 (Gram matrix is singular)"
            )
        super().__init__(n, mu, L)
        self.features = Y
        self.targets = z
        self.l2 = l2
        self._gram = gram
        self._Ytz = (Y.T @ z) / m
        self._sol: np.ndarray | None = None

    @classmethod
    def _from_precomputed(
        cls,
        Y: np.ndarray,
        z: np.ndarray,
        l2: float,
        gram: np.ndarray,
        eigs: np.ndarray,
    ) -> "LeastSquaresProblem":
        """Constructor taking the eigendecomposition from a batched caller.

        :func:`batch_least_squares` computes the Gram spectra of many
        instances through one stacked ``eigvalsh`` gufunc (the same
        LAPACK routine per matrix, so values are bit-identical to the
        per-instance path); everything else mirrors ``__init__``.
        """
        mu = float(eigs[0]) + l2
        L = float(eigs[-1]) + l2
        if mu <= 0:
            raise ValueError(
                "smooth part is not strongly convex; increase l2 (Gram matrix is singular)"
            )
        self = object.__new__(cls)
        SmoothProblem.__init__(self, Y.shape[1], mu, L)
        self.features = Y
        self.targets = z
        self.l2 = l2
        self._gram = gram
        self._Ytz = (Y.T @ z) / Y.shape[0]
        self._sol = None
        return self

    def objective(self, x: np.ndarray) -> float:
        x = np.asarray(x, dtype=np.float64)
        r = self.features @ x - self.targets
        return 0.5 * float(r @ r) / self.features.shape[0] + 0.5 * self.l2 * float(x @ x)

    def gradient(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        return self._gram @ x - self._Ytz + self.l2 * x

    def gradient_block(self, x: np.ndarray, sl: slice) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        return self._gram[sl, :] @ x - self._Ytz[sl] + self.l2 * x[sl]

    def hessian(self, x: np.ndarray) -> np.ndarray:
        return self._gram + self.l2 * np.eye(self.dim)

    def solution(self) -> np.ndarray | None:
        if self._sol is None:
            self._sol = np.linalg.solve(self.hessian(np.zeros(self.dim)), self._Ytz)
        return self._sol.copy()


def batch_least_squares(
    datas: "list[RegressionData]", l2: float = 0.0
) -> "list[LeastSquaresProblem]":
    """Smooth parts for many regression datasets, analysis batched.

    Bit-identical per dataset to
    ``[LeastSquaresProblem(d.features, d.targets, l2=l2) for d in datas]``:
    each Gram matrix is the same two-dimensional BLAS product a solo
    constructor computes (cross-dataset GEMM is never used), and the
    spectra come from one stacked ``eigvalsh`` call, which runs the
    identical LAPACK routine per matrix.
    """
    l2 = check_nonnegative(l2, "l2")
    checked: list[tuple[np.ndarray, np.ndarray]] = []
    grams = []
    for d in datas:
        Y = check_finite_array(d.features, "features")
        if Y.ndim != 2:
            raise ValueError(f"features must be 2-D, got shape {Y.shape}")
        z = check_vector(d.targets, "targets", dim=Y.shape[0])
        checked.append((Y, z))
        grams.append((Y.T @ Y) / Y.shape[0])
    eig_stack = np.linalg.eigvalsh(np.stack(grams))
    return [
        LeastSquaresProblem._from_precomputed(Y, z, l2, grams[k], eig_stack[k])
        for k, (Y, z) in enumerate(checked)
    ]


def make_ridge(data: RegressionData, l2: float = 0.1) -> CompositeProblem:
    """Ridge regression: smooth LS + l2, no non-smooth part."""
    smooth = LeastSquaresProblem(data.features, data.targets, l2=l2)
    return CompositeProblem(smooth, ZeroRegularizer())


def make_lasso(data: RegressionData, l1: float = 0.05, l2: float = 0.05) -> CompositeProblem:
    """(Strongly convex) lasso: smooth LS + small l2, ``g = l1 ||.||_1``.

    The small l2 term keeps ``f`` strongly convex as Theorem 1 demands;
    pure lasso (``l2 = 0``) is available but loses the paper's
    geometric rate guarantee.
    """
    smooth = LeastSquaresProblem(data.features, data.targets, l2=l2)
    return CompositeProblem(smooth, L1Regularizer(l1))


def make_elastic_net(
    data: RegressionData, l1: float = 0.05, l2_smooth: float = 0.05, l2_prox: float = 0.05
) -> CompositeProblem:
    """Elastic net with the quadratic part split between ``f`` and ``g``.

    Splitting exercises both code paths (smooth strong convexity and
    shrinkage inside the prox) and matches how ARock-style solvers are
    usually configured.
    """
    smooth = LeastSquaresProblem(data.features, data.targets, l2=l2_smooth)
    return CompositeProblem(smooth, ElasticNetRegularizer(l1, l2_prox))
