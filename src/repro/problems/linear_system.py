"""Diagonally dominant linear systems — the chaotic-relaxation testbed.

Chazan & Miranker's chaotic relaxation [12] and Miellou's retarded
variants [14] were formulated for ``M x = c`` with ``rho(|D^{-1}R|) < 1``.
These generators produce instances with a *prescribed* async
contraction factor so delay/steering sweeps can vary difficulty on one
axis.
"""

from __future__ import annotations

import numpy as np

from repro.operators.linear import AffineOperator, jacobi_operator
from repro.utils.norms import BlockSpec
from repro.utils.rng import as_generator

__all__ = ["random_dominant_system", "tridiagonal_system", "make_jacobi_instance"]


def random_dominant_system(
    dim: int,
    dominance: float = 0.5,
    *,
    density: float = 1.0,
    seed: int | np.random.Generator | None = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Random system with Jacobi max-norm contraction factor ``1 - dominance``.

    Off-diagonal rows are rescaled so every row satisfies
    ``sum_{j != i} |M_ij| = (1 - dominance) * |M_ii|`` exactly; the
    Jacobi map then contracts in the unweighted max norm with factor
    exactly ``1 - dominance``.

    Parameters
    ----------
    dominance:
        Strict-dominance margin in ``(0, 1]``; smaller = harder.
    density:
        Probability of keeping each off-diagonal entry.
    """
    if not 0.0 < dominance <= 1.0:
        raise ValueError(f"dominance must lie in (0, 1], got {dominance}")
    if not 0.0 < density <= 1.0:
        raise ValueError(f"density must lie in (0, 1], got {density}")
    rng = as_generator(seed)
    M = rng.standard_normal((dim, dim))
    if density < 1.0 and dim > 1:
        mask = rng.random((dim, dim)) < density
        np.fill_diagonal(mask, True)
        M = np.where(mask, M, 0.0)
    np.fill_diagonal(M, 0.0)
    row_sums = np.sum(np.abs(M), axis=1)
    target = 1.0 - dominance
    diag = np.where(row_sums > 0, row_sums / max(target, 1e-300), 1.0)
    if target == 0.0:
        M[:, :] = 0.0
        diag = np.ones(dim)
    else:
        scale = np.where(row_sums > 0, (target * diag) / np.maximum(row_sums, 1e-300), 0.0)
        M *= scale[:, None]
    M[np.arange(dim), np.arange(dim)] = diag
    c = rng.standard_normal(dim)
    return M, c


def tridiagonal_system(
    dim: int,
    off_diag: float = -1.0,
    diag: float = 4.0,
    *,
    seed: int | np.random.Generator | None = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Classic tridiagonal Toeplitz system (1-D Poisson-like).

    Strictly diagonally dominant whenever ``|diag| > 2 |off_diag|``.
    """
    if dim < 2:
        raise ValueError("tridiagonal_system needs dim >= 2")
    rng = as_generator(seed)
    M = diag * np.eye(dim) + off_diag * (np.eye(dim, k=1) + np.eye(dim, k=-1))
    c = rng.standard_normal(dim)
    return M, c


def make_jacobi_instance(
    dim: int,
    dominance: float = 0.5,
    *,
    n_blocks: int | None = None,
    seed: int | np.random.Generator | None = 0,
) -> AffineOperator:
    """Random dominant system wrapped as a Jacobi fixed-point operator.

    ``n_blocks`` selects a uniform block decomposition (defaults to the
    scalar one); the returned operator carries its exact fixed point
    and contraction certificate.
    """
    M, c = random_dominant_system(dim, dominance, seed=seed)
    spec = None if n_blocks is None else BlockSpec.uniform(dim, n_blocks)
    return jacobi_operator(M, c, spec)
