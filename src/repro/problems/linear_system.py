"""Diagonally dominant linear systems — the chaotic-relaxation testbed.

Chazan & Miranker's chaotic relaxation [12] and Miellou's retarded
variants [14] were formulated for ``M x = c`` with ``rho(|D^{-1}R|) < 1``.
These generators produce instances with a *prescribed* async
contraction factor so delay/steering sweeps can vary difficulty on one
axis.
"""

from __future__ import annotations

import numpy as np

from repro.operators.linear import AffineOperator, jacobi_operator
from repro.utils.norms import BlockSpec
from repro.utils.rng import as_generator

__all__ = [
    "random_dominant_system",
    "random_dominant_system_batch",
    "tridiagonal_system",
    "make_jacobi_instance",
    "make_jacobi_batch",
    "make_tridiagonal_batch",
]


def random_dominant_system(
    dim: int,
    dominance: float = 0.5,
    *,
    density: float = 1.0,
    seed: int | np.random.Generator | None = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Random system with Jacobi max-norm contraction factor ``1 - dominance``.

    Off-diagonal rows are rescaled so every row satisfies
    ``sum_{j != i} |M_ij| = (1 - dominance) * |M_ii|`` exactly; the
    Jacobi map then contracts in the unweighted max norm with factor
    exactly ``1 - dominance``.

    Parameters
    ----------
    dominance:
        Strict-dominance margin in ``(0, 1]``; smaller = harder.
    density:
        Probability of keeping each off-diagonal entry.
    """
    if not 0.0 < dominance <= 1.0:
        raise ValueError(f"dominance must lie in (0, 1], got {dominance}")
    if not 0.0 < density <= 1.0:
        raise ValueError(f"density must lie in (0, 1], got {density}")
    rng = as_generator(seed)
    M = rng.standard_normal((dim, dim))
    if density < 1.0 and dim > 1:
        mask = rng.random((dim, dim)) < density
        np.fill_diagonal(mask, True)
        M = np.where(mask, M, 0.0)
    np.fill_diagonal(M, 0.0)
    row_sums = np.sum(np.abs(M), axis=1)
    target = 1.0 - dominance
    diag = np.where(row_sums > 0, row_sums / max(target, 1e-300), 1.0)
    if target == 0.0:
        M[:, :] = 0.0
        diag = np.ones(dim)
    else:
        scale = np.where(row_sums > 0, (target * diag) / np.maximum(row_sums, 1e-300), 0.0)
        M *= scale[:, None]
    M[np.arange(dim), np.arange(dim)] = diag
    c = rng.standard_normal(dim)
    return M, c


def random_dominant_system_batch(
    dim: int,
    dominance: float = 0.5,
    *,
    seeds: "list[int | np.random.Generator | np.random.SeedSequence | None]",
) -> tuple[np.ndarray, np.ndarray]:
    """A ``(B, dim, dim), (B, dim)`` stack of :func:`random_dominant_system` draws.

    Bit-identical per slice to
    ``[random_dominant_system(dim, dominance, seed=s) for s in seeds]``:
    each scenario's raw Gaussians are drawn from its own stream in solo
    order (``M`` then ``c``; the rescaling consumes no randomness), and
    the dominance rescaling itself is purely elementwise/row-wise
    arithmetic, which is exact under stacking.  Only the default dense
    ``density=1.0`` form batches — the sparsity mask would interleave a
    third draw, which solo order still permits, but no registry factory
    requests it.
    """
    if not 0.0 < dominance <= 1.0:
        raise ValueError(f"dominance must lie in (0, 1], got {dominance}")
    B = len(seeds)
    Ms = np.empty((B, dim, dim))
    cs = np.empty((B, dim))
    for k, seed in enumerate(seeds):
        rng = as_generator(seed)
        Ms[k] = rng.standard_normal((dim, dim))
        cs[k] = rng.standard_normal(dim)
    idx = np.arange(dim)
    Ms[:, idx, idx] = 0.0
    row_sums = np.sum(np.abs(Ms), axis=2)
    target = 1.0 - dominance
    diag = np.where(row_sums > 0, row_sums / max(target, 1e-300), 1.0)
    if target == 0.0:
        Ms[:] = 0.0
        diag = np.ones((B, dim))
    else:
        scale = np.where(
            row_sums > 0, (target * diag) / np.maximum(row_sums, 1e-300), 0.0
        )
        Ms *= scale[:, :, None]
    Ms[:, idx, idx] = diag
    return Ms, cs


def tridiagonal_system(
    dim: int,
    off_diag: float = -1.0,
    diag: float = 4.0,
    *,
    seed: int | np.random.Generator | None = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Classic tridiagonal Toeplitz system (1-D Poisson-like).

    Strictly diagonally dominant whenever ``|diag| > 2 |off_diag|``.
    """
    if dim < 2:
        raise ValueError("tridiagonal_system needs dim >= 2")
    rng = as_generator(seed)
    M = diag * np.eye(dim) + off_diag * (np.eye(dim, k=1) + np.eye(dim, k=-1))
    c = rng.standard_normal(dim)
    return M, c


def make_jacobi_instance(
    dim: int,
    dominance: float = 0.5,
    *,
    n_blocks: int | None = None,
    seed: int | np.random.Generator | None = 0,
) -> AffineOperator:
    """Random dominant system wrapped as a Jacobi fixed-point operator.

    ``n_blocks`` selects a uniform block decomposition (defaults to the
    scalar one); the returned operator carries its exact fixed point
    and contraction certificate.
    """
    M, c = random_dominant_system(dim, dominance, seed=seed)
    spec = None if n_blocks is None else BlockSpec.uniform(dim, n_blocks)
    return jacobi_operator(M, c, spec)


def make_jacobi_batch(
    dim: int,
    dominance: float = 0.5,
    *,
    n_blocks: int | None = None,
    seeds: "list[int | np.random.Generator | np.random.SeedSequence | None]",
) -> "list[AffineOperator]":
    """Batched :func:`make_jacobi_instance`, bit-identical per scenario.

    Stacks the instance generation (per-scenario draws in solo order,
    one vectorized rescale) and hands the ``(B, n, n)`` stack to
    :func:`~repro.operators.linear.jacobi_operator_batch`, which fills
    the fixed-point/contraction caches through one stacked gufunc call.
    """
    from repro.operators.linear import jacobi_operator_batch

    Ms, cs = random_dominant_system_batch(dim, dominance, seeds=seeds)
    spec = None if n_blocks is None else BlockSpec.uniform(dim, n_blocks)
    return jacobi_operator_batch(Ms, cs, spec)


def make_tridiagonal_batch(
    dim: int,
    off_diag: float = -1.0,
    diag: float = 4.0,
    *,
    seeds: "list[int | np.random.Generator | np.random.SeedSequence | None]",
) -> "list[AffineOperator]":
    """Batched ``jacobi_operator(*tridiagonal_system(...))`` construction.

    The matrix is deterministic (shared across the batch); only the
    right-hand side ``c`` is drawn, per scenario, in solo order.
    Bit-identical per scenario to building each instance alone.
    """
    from repro.operators.linear import jacobi_operator_batch

    if dim < 2:
        raise ValueError("tridiagonal_system needs dim >= 2")
    M = diag * np.eye(dim) + off_diag * (np.eye(dim, k=1) + np.eye(dim, k=-1))
    cs = np.empty((len(seeds), dim))
    for k, seed in enumerate(seeds):
        cs[k] = as_generator(seed).standard_normal(dim)
    Ms = np.broadcast_to(M, (len(seeds), dim, dim)).copy()
    return jacobi_operator_batch(Ms, cs, None)
