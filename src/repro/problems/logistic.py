"""L2-regularized logistic regression — the paper's ML motivation.

``f(x) = 1/m sum_h log(1 + exp(-z_h * y_h' x)) + (l2/2) ||x||^2``
with labels ``z_h in {-1, +1}``.  The log-loss Hessian is bounded by
``Y'Y / (4m)``, giving exact ``L``; the ridge term supplies ``mu``.
Pairs with an L1 regularizer for sparse logistic regression.
"""

from __future__ import annotations

import numpy as np

from repro.operators.proximal import L1Regularizer, ZeroRegularizer
from repro.problems.base import CompositeProblem, SmoothProblem
from repro.problems.datasets import ClassificationData
from repro.utils.validation import check_finite_array, check_positive, check_vector

__all__ = ["LogisticProblem", "batch_logistic", "make_logistic", "make_sparse_logistic"]


def _log1pexp(t: np.ndarray) -> np.ndarray:
    """Numerically stable ``log(1 + exp(t))``."""
    out = np.empty_like(t)
    pos = t > 0
    out[pos] = t[pos] + np.log1p(np.exp(-t[pos]))
    out[~pos] = np.log1p(np.exp(t[~pos]))
    return out


class LogisticProblem(SmoothProblem):
    """Strongly convex logistic loss with exact smoothness constants."""

    def __init__(self, features: np.ndarray, labels: np.ndarray, l2: float = 0.1) -> None:
        Y = check_finite_array(features, "features")
        if Y.ndim != 2:
            raise ValueError(f"features must be 2-D, got shape {Y.shape}")
        m, n = Y.shape
        z = check_vector(labels, "labels", dim=m)
        if not np.all(np.isin(z, (-1.0, 1.0))):
            raise ValueError("labels must be -1 or +1")
        l2 = check_positive(l2, "l2")
        gram = (Y.T @ Y) / m
        lam_max = float(np.linalg.eigvalsh(gram)[-1])
        super().__init__(n, l2, lam_max / 4.0 + l2)
        self.features = Y
        self.labels = z
        self.l2 = l2
        # Pre-scale rows by labels: margin_h = (z_h y_h)' x.
        self._A = Y * z[:, None]

    @classmethod
    def _from_precomputed(
        cls, Y: np.ndarray, z: np.ndarray, l2: float, lam_max: float
    ) -> "LogisticProblem":
        """Constructor taking the Gram spectral bound from a batched caller.

        :func:`batch_logistic` computes ``lam_max`` through one stacked
        ``eigvalsh`` gufunc over all instances' Gram matrices (the same
        LAPACK routine per matrix, so the value is bit-identical to the
        per-instance path); everything else mirrors ``__init__``.
        """
        self = object.__new__(cls)
        SmoothProblem.__init__(self, Y.shape[1], l2, lam_max / 4.0 + l2)
        self.features = Y
        self.labels = z
        self.l2 = l2
        self._A = Y * z[:, None]
        return self

    def objective(self, x: np.ndarray) -> float:
        x = np.asarray(x, dtype=np.float64)
        margins = self._A @ x
        loss = float(np.mean(_log1pexp(-margins)))
        return loss + 0.5 * self.l2 * float(x @ x)

    def _sigmoid_neg_margins(self, x: np.ndarray) -> np.ndarray:
        """``sigma(-margins) = 1/(1 + exp(margins))`` stably."""
        margins = self._A @ np.asarray(x, dtype=np.float64)
        out = np.empty_like(margins)
        pos = margins >= 0
        e = np.exp(-margins[pos])
        out[pos] = e / (1.0 + e)
        e2 = np.exp(margins[~pos])
        out[~pos] = 1.0 / (1.0 + e2)
        return out

    def gradient(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        s = self._sigmoid_neg_margins(x)
        return -(self._A.T @ s) / self._A.shape[0] + self.l2 * x

    def gradient_block(self, x: np.ndarray, sl: slice) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        s = self._sigmoid_neg_margins(x)
        return -(self._A[:, sl].T @ s) / self._A.shape[0] + self.l2 * x[sl]

    def hessian(self, x: np.ndarray) -> np.ndarray:
        s = self._sigmoid_neg_margins(x)
        w = s * (1.0 - s)
        m = self._A.shape[0]
        return (self._A.T * w) @ self._A / m + self.l2 * np.eye(self.dim)

    def accuracy(self, x: np.ndarray, features: np.ndarray, labels: np.ndarray) -> float:
        """Classification accuracy of sign(features @ x) against labels."""
        pred = np.sign(features @ np.asarray(x, dtype=np.float64))
        pred[pred == 0] = 1.0
        return float(np.mean(pred == labels))


def batch_logistic(
    datas: "list[ClassificationData]", l2: float = 0.1
) -> "list[CompositeProblem]":
    """Smooth logistic problems for many datasets, analysis batched.

    Bit-identical per dataset to ``[make_logistic(d, l2=l2) for d in
    datas]``: Gram matrices stay per-dataset two-dimensional BLAS
    products, and the spectral bounds come from one stacked
    ``eigvalsh`` call running the identical LAPACK routine per matrix.
    """
    l2 = check_positive(l2, "l2")
    checked: list[tuple[np.ndarray, np.ndarray]] = []
    grams = []
    for d in datas:
        Y = check_finite_array(d.features, "features")
        if Y.ndim != 2:
            raise ValueError(f"features must be 2-D, got shape {Y.shape}")
        z = check_vector(d.labels, "labels", dim=Y.shape[0])
        if not np.all(np.isin(z, (-1.0, 1.0))):
            raise ValueError("labels must be -1 or +1")
        checked.append((Y, z))
        grams.append((Y.T @ Y) / Y.shape[0])
    eig_stack = np.linalg.eigvalsh(np.stack(grams))
    return [
        CompositeProblem(
            LogisticProblem._from_precomputed(Y, z, l2, float(eig_stack[k][-1])),
            ZeroRegularizer(),
        )
        for k, (Y, z) in enumerate(checked)
    ]


def make_logistic(data: ClassificationData, l2: float = 0.1) -> CompositeProblem:
    """Smooth L2-regularized logistic regression (``g = 0``)."""
    return CompositeProblem(LogisticProblem(data.features, data.labels, l2=l2), ZeroRegularizer())


def make_sparse_logistic(
    data: ClassificationData, l1: float = 0.01, l2: float = 0.1
) -> CompositeProblem:
    """Sparse logistic regression: logistic + ridge smooth part, L1 prox."""
    return CompositeProblem(
        LogisticProblem(data.features, data.labels, l2=l2), L1Regularizer(l1)
    )
