"""Markov systems — the third application family of the survey.

Section III notes macro-iterations have been used "for applications
that range from numerical simulation and Markov systems to convex
optimization".  The classical asynchronous-friendly Markov computations
are fixed points of substochastic linear maps:

* **expected absorption cost**: for an absorbing chain with transient
  transition block ``Q`` (substochastic) and per-step cost ``r``, the
  expected total cost ``x`` solves ``x = Q x + r`` — an affine map
  whose ``|Q|`` has spectral radius < 1, hence a weighted-max-norm
  contraction and a valid totally asynchronous target;
* **discounted Markov reward / policy evaluation**: ``x = beta P x + r``
  with row-stochastic ``P`` and discount ``beta < 1`` — contraction
  factor exactly ``beta`` in the unweighted max norm (the asynchronous
  value-iteration setting of Bertsekas [3]).
"""

from __future__ import annotations

import numpy as np

from repro.operators.linear import AffineOperator
from repro.utils.norms import BlockSpec
from repro.utils.rng import as_generator
from repro.utils.validation import check_in_range, check_vector

__all__ = [
    "absorption_cost_operator",
    "discounted_value_operator",
    "random_absorbing_chain",
    "random_markov_chain",
]


def random_markov_chain(
    n_states: int,
    *,
    density: float = 0.5,
    seed: int | np.random.Generator | None = 0,
) -> np.ndarray:
    """Random row-stochastic transition matrix with given support density.

    Every row keeps a self-loop so no row is empty; remaining mass is
    spread over a random subset of targets.
    """
    if n_states < 2:
        raise ValueError("need at least 2 states")
    check_in_range(density, 0.0, 1.0, "density", lo_open=True)
    rng = as_generator(seed)
    P = np.zeros((n_states, n_states))
    for i in range(n_states):
        mask = rng.random(n_states) < density
        mask[i] = True
        weights = rng.random(n_states) * mask
        P[i] = weights / weights.sum()
    return P


def random_absorbing_chain(
    n_transient: int,
    n_absorbing: int = 1,
    *,
    absorb_prob: float = 0.1,
    seed: int | np.random.Generator | None = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Random absorbing chain: returns (Q, R).

    ``Q`` is the transient-to-transient block (strictly substochastic:
    every transient state leaks at least ``absorb_prob`` to the
    absorbing states), ``R`` the transient-to-absorbing block.
    """
    if n_transient < 1 or n_absorbing < 1:
        raise ValueError("need at least one transient and one absorbing state")
    check_in_range(absorb_prob, 0.0, 1.0, "absorb_prob", lo_open=True, hi_open=True)
    rng = as_generator(seed)
    Q = rng.random((n_transient, n_transient))
    R = rng.random((n_transient, n_absorbing)) + 1e-3
    # Normalize rows of [Q R] to 1, then guarantee the absorbing leak.
    for i in range(n_transient):
        total = Q[i].sum() + R[i].sum()
        Q[i] /= total
        R[i] /= total
        leak = R[i].sum()
        if leak < absorb_prob:
            scale = (1.0 - absorb_prob) / max(Q[i].sum(), 1e-300)
            Q[i] *= scale
            R[i] *= absorb_prob / leak
    return Q, R


def absorption_cost_operator(
    Q: np.ndarray,
    costs: np.ndarray,
    block_spec: BlockSpec | None = None,
) -> AffineOperator:
    """Fixed-point map ``x -> Q x + r`` for expected absorption cost.

    ``x_i`` is the expected total cost accumulated before absorption
    starting from transient state ``i``.  Strict substochasticity of
    every row (checked) gives a max-norm contraction, so asynchronous
    iterations converge under arbitrary admissible delays.
    """
    Q = np.asarray(Q, dtype=np.float64)
    if Q.ndim != 2 or Q.shape[0] != Q.shape[1]:
        raise ValueError(f"Q must be square, got shape {Q.shape}")
    if np.any(Q < 0):
        raise ValueError("Q must be nonnegative")
    row_sums = Q.sum(axis=1)
    if np.any(row_sums >= 1.0):
        raise ValueError(
            "every transient row must be strictly substochastic "
            f"(max row sum {row_sums.max():.6f})"
        )
    r = check_vector(costs, "costs", dim=Q.shape[0])
    return AffineOperator(Q, r, block_spec)


def discounted_value_operator(
    P: np.ndarray,
    rewards: np.ndarray,
    beta: float,
    block_spec: BlockSpec | None = None,
) -> AffineOperator:
    """Policy-evaluation map ``x -> beta P x + r`` (discounted rewards).

    For row-stochastic ``P`` and ``beta in (0, 1)`` this contracts in
    the unweighted max norm with factor exactly ``beta`` — asynchronous
    value iteration in the sense of [3].
    """
    P = np.asarray(P, dtype=np.float64)
    if P.ndim != 2 or P.shape[0] != P.shape[1]:
        raise ValueError(f"P must be square, got shape {P.shape}")
    if np.any(P < 0):
        raise ValueError("P must be nonnegative")
    if not np.allclose(P.sum(axis=1), 1.0, atol=1e-9):
        raise ValueError("P must be row-stochastic")
    check_in_range(beta, 0.0, 1.0, "beta", lo_open=True, hi_open=True)
    r = check_vector(rewards, "rewards", dim=P.shape[0])
    return AffineOperator(beta * P, r, block_spec)
