"""Convex separable network flow problems and their dual relaxation.

The paper's own application domain ([6], [8]): minimum-cost flow with
strictly convex separable arc costs,

    ``min_x  sum_a f_a(x_a)   s.t.  A x = b``

with ``A`` the node-arc incidence matrix and ``b`` the supply vector
(``sum_i b_i = 0``).  Quadratic arc costs
``f_a(x_a) = (w_a/2) x_a^2 + r_a x_a`` give a smooth dual in the node
prices ``p``:

    ``min_p  phi(p) = sum_a ((A'p)_a - r_a)^2 / (2 w_a) - b'p``

whose gradient is the *flow surplus* ``A x(p) - b`` with the primal
recovery ``x_a(p) = ((A'p)_a - r_a)/w_a``.  Each node's gradient
component only involves its incident arcs — the distributed relaxation
("price adjustment") method of Bertsekas & El Baz, and the setting in
which asynchronous convergence with unbounded delays was first proved
for optimization.

The dual Hessian ``A W^{-1} A'`` is the weighted graph Laplacian, which
is singular (constant shift of prices); we ground a reference node and
optimize over the remaining prices, making the problem mu-strongly
convex for connected networks.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.problems.base import CompositeProblem, SmoothProblem
from repro.operators.proximal import ZeroRegularizer
from repro.utils.rng import as_generator
from repro.utils.validation import check_vector

__all__ = ["FlowNetwork", "NetworkFlowDualProblem", "random_flow_network", "make_network_flow_dual"]


@dataclass(frozen=True)
class FlowNetwork:
    """A directed network with quadratic arc costs and node supplies.

    Attributes
    ----------
    n_nodes:
        Number of nodes.
    arcs:
        Array of shape ``(m, 2)``: ``arcs[a] = (tail, head)``.
    weights:
        Positive quadratic coefficients ``w_a``.
    linear:
        Linear coefficients ``r_a``.
    supplies:
        Node supplies ``b`` with ``sum(b) == 0``.
    """

    n_nodes: int
    arcs: np.ndarray
    weights: np.ndarray
    linear: np.ndarray
    supplies: np.ndarray

    def __post_init__(self) -> None:
        arcs = np.asarray(self.arcs, dtype=np.int64)
        if arcs.ndim != 2 or arcs.shape[1] != 2:
            raise ValueError(f"arcs must have shape (m, 2), got {arcs.shape}")
        if np.any(arcs < 0) or np.any(arcs >= self.n_nodes):
            raise ValueError("arc endpoints out of node range")
        if np.any(arcs[:, 0] == arcs[:, 1]):
            raise ValueError("self-loop arcs are not allowed")
        w = check_vector(self.weights, "weights", dim=arcs.shape[0])
        if np.any(w <= 0):
            raise ValueError("arc weights must be strictly positive")
        check_vector(self.linear, "linear", dim=arcs.shape[0])
        b = check_vector(self.supplies, "supplies", dim=self.n_nodes)
        if abs(float(np.sum(b))) > 1e-9 * max(1.0, float(np.max(np.abs(b)))):
            raise ValueError("supplies must sum to zero (balanced network)")
        object.__setattr__(self, "arcs", arcs)

    @property
    def n_arcs(self) -> int:
        return self.arcs.shape[0]

    def incidence_matrix(self) -> np.ndarray:
        """Dense node-arc incidence ``A``: +1 at the tail, -1 at the head."""
        A = np.zeros((self.n_nodes, self.n_arcs))
        A[self.arcs[:, 0], np.arange(self.n_arcs)] = 1.0
        A[self.arcs[:, 1], np.arange(self.n_arcs)] = -1.0
        return A

    def is_connected(self) -> bool:
        """Whether the underlying undirected graph is connected."""
        g = nx.Graph()
        g.add_nodes_from(range(self.n_nodes))
        g.add_edges_from(map(tuple, self.arcs))
        return nx.is_connected(g)

    def arc_cost(self, flows: np.ndarray) -> float:
        """Total primal cost ``sum_a (w_a/2) x_a^2 + r_a x_a``."""
        x = check_vector(flows, "flows", dim=self.n_arcs)
        return float(0.5 * np.sum(self.weights * x * x) + np.sum(self.linear * x))


class NetworkFlowDualProblem(SmoothProblem):
    """Grounded dual of the quadratic network flow problem.

    The decision variable is the reduced price vector
    ``p in R^{n_nodes - 1}`` (the reference node's price is fixed at
    zero).  ``objective``/``gradient`` evaluate the reduced dual
    ``phi``; :meth:`recover_flows` maps prices to primal flows and
    :meth:`surplus` reports the per-node conservation violation that
    drives the relaxation method.
    """

    def __init__(self, network: FlowNetwork, reference_node: int = 0) -> None:
        if not network.is_connected():
            raise ValueError("network must be connected for a strongly convex reduced dual")
        if not 0 <= reference_node < network.n_nodes:
            raise IndexError(f"reference_node {reference_node} out of range")
        self.network = network
        self.reference_node = int(reference_node)
        A = network.incidence_matrix()
        keep = [i for i in range(network.n_nodes) if i != reference_node]
        self._keep = np.array(keep, dtype=np.int64)
        self._A_red = A[self._keep, :]
        self._Winv = 1.0 / network.weights
        # Reduced Hessian: grounded weighted Laplacian.
        H = (self._A_red * self._Winv[None, :]) @ self._A_red.T
        eigs = np.linalg.eigvalsh(H)
        super().__init__(len(keep), float(eigs[0]), float(eigs[-1]))
        self._H = H
        self._b_red = network.supplies[self._keep]
        self._r = network.linear
        # Constant linear term of the gradient: A_red W^{-1} (-r) - b_red.
        self._g0 = -(self._A_red @ (self._Winv * self._r)) - self._b_red
        self._sol: np.ndarray | None = None

    # -- smooth problem contract ---------------------------------------
    def objective(self, p: np.ndarray) -> float:
        p = np.asarray(p, dtype=np.float64)
        t = self._A_red.T @ p  # (A'p) on arcs, reference price = 0
        resid = t - self._r
        return 0.5 * float(np.sum(self._Winv * resid * resid)) - float(self._b_red @ p)

    def gradient(self, p: np.ndarray) -> np.ndarray:
        p = np.asarray(p, dtype=np.float64)
        return self._H @ p + self._g0

    def gradient_block(self, p: np.ndarray, sl: slice) -> np.ndarray:
        p = np.asarray(p, dtype=np.float64)
        return self._H[sl, :] @ p + self._g0[sl]

    def hessian(self, p: np.ndarray) -> np.ndarray:
        return self._H.copy()

    def solution(self) -> np.ndarray | None:
        if self._sol is None:
            self._sol = np.linalg.solve(self._H, -self._g0)
        return self._sol.copy()

    # -- network-flow specifics ------------------------------------------
    def full_prices(self, p: np.ndarray) -> np.ndarray:
        """Embed reduced prices into all-node prices (reference = 0)."""
        p = check_vector(p, "p", dim=self.dim)
        full = np.zeros(self.network.n_nodes)
        full[self._keep] = p
        return full

    def recover_flows(self, p: np.ndarray) -> np.ndarray:
        """Primal flows ``x_a(p) = ((A'p)_a - r_a) / w_a``."""
        full = self.full_prices(p)
        A = self.network.incidence_matrix()
        t = A.T @ full
        return (t - self._r) * self._Winv

    def surplus(self, p: np.ndarray) -> np.ndarray:
        """Per-node conservation violation ``A x(p) - b`` (all nodes)."""
        flows = self.recover_flows(p)
        A = self.network.incidence_matrix()
        return A @ flows - self.network.supplies

    def primal_infeasibility(self, p: np.ndarray) -> float:
        """Max-norm flow-conservation violation at prices ``p``."""
        return float(np.max(np.abs(self.surplus(p))))


def random_flow_network(
    n_nodes: int,
    arc_density: float = 0.3,
    *,
    supply_scale: float = 1.0,
    weight_range: tuple[float, float] = (0.5, 2.0),
    seed: int | np.random.Generator | None = 0,
) -> FlowNetwork:
    """Random connected flow network with quadratic arc costs.

    A random spanning tree guarantees connectivity; extra arcs are
    added i.i.d. with probability ``arc_density``.  Supplies are
    centered Gaussian (balanced by construction).
    """
    if n_nodes < 2:
        raise ValueError("need at least 2 nodes")
    if not 0.0 <= arc_density <= 1.0:
        raise ValueError(f"arc_density must lie in [0, 1], got {arc_density}")
    rng = as_generator(seed)
    arcs: list[tuple[int, int]] = []
    # Random spanning tree (random attachment order).
    order = rng.permutation(n_nodes)
    for k in range(1, n_nodes):
        parent = order[rng.integers(0, k)]
        child = order[k]
        if rng.random() < 0.5:
            arcs.append((int(parent), int(child)))
        else:
            arcs.append((int(child), int(parent)))
    existing = set(arcs)
    for i in range(n_nodes):
        for j in range(i + 1, n_nodes):
            if (i, j) in existing or (j, i) in existing:
                continue
            if rng.random() < arc_density:
                arc = (i, j) if rng.random() < 0.5 else (j, i)
                arcs.append(arc)
                existing.add(arc)
    arcs_arr = np.array(arcs, dtype=np.int64)
    m = arcs_arr.shape[0]
    lo, hi = weight_range
    if not 0 < lo <= hi:
        raise ValueError(f"invalid weight_range {weight_range}")
    weights = rng.uniform(lo, hi, size=m)
    linear = rng.standard_normal(m)
    b = supply_scale * rng.standard_normal(n_nodes)
    b -= b.mean()
    return FlowNetwork(n_nodes, arcs_arr, weights, linear, b)


def make_network_flow_dual(
    n_nodes: int = 30,
    arc_density: float = 0.3,
    *,
    seed: int | np.random.Generator | None = 0,
) -> CompositeProblem:
    """Convenience builder: random network, grounded dual, no regularizer."""
    net = random_flow_network(n_nodes, arc_density, seed=seed)
    return CompositeProblem(NetworkFlowDualProblem(net), ZeroRegularizer())
