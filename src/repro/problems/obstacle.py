"""The obstacle problem on a 2-D grid ([26], numerical simulation).

Discretizing ``-Delta u >= f``, ``u >= psi``, complementarity, on a
regular grid with the 5-point stencil yields the linear complementarity
problem

    ``u >= psi,  M u >= c,  (u - psi)'(M u - c) = 0``

with ``M`` the (strictly diagonally dominant after scaling) discrete
Laplacian.  Projected Jacobi relaxation ``u <- max(psi, D^{-1}(c - R u))``
is an isotone max-norm contraction, so asynchronous sub-domain methods
converge totally asynchronously — the IBM SP4 experiments of [26]
studied exactly this with varying data-exchange frequencies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.operators.monotone import ProjectedAffineOperator
from repro.utils.norms import BlockSpec
from repro.utils.rng import as_generator

__all__ = ["ObstacleProblem", "make_obstacle_problem"]


@dataclass(frozen=True)
class ObstacleProblem:
    """Discretized obstacle problem data on an ``nx`` x ``ny`` grid.

    Attributes
    ----------
    nx, ny:
        Interior grid dimensions (Dirichlet boundary eliminated).
    M:
        Dense discrete-Laplacian system matrix of size ``nx*ny``.
    c:
        Load vector (from the force term ``f``).
    psi:
        Obstacle vector (lower bound on the solution).
    """

    nx: int
    ny: int
    M: np.ndarray
    c: np.ndarray
    psi: np.ndarray

    @property
    def dim(self) -> int:
        return self.nx * self.ny

    def projected_jacobi_operator(self, block_spec: BlockSpec | None = None) -> ProjectedAffineOperator:
        """The isotone fixed-point map ``u -> max(psi, D^{-1}(c - R u))``."""
        d = np.diag(self.M)
        R = self.M - np.diag(d)
        A = -R / d[:, None]
        b = self.c / d
        return ProjectedAffineOperator(A, b, self.psi, block_spec)

    def strip_decomposition(self, n_strips: int) -> BlockSpec:
        """Partition grid rows into ``n_strips`` horizontal sub-domains.

        Row-major ordering makes each strip a contiguous index range,
        which is the sub-domain decomposition of [26].
        """
        if not 1 <= n_strips <= self.ny:
            raise ValueError(f"need 1 <= n_strips <= ny={self.ny}, got {n_strips}")
        base, extra = divmod(self.ny, n_strips)
        sizes = tuple((base + (1 if s < extra else 0)) * self.nx for s in range(n_strips))
        return BlockSpec(sizes)

    def residual_complementarity(self, u: np.ndarray) -> float:
        """Natural LCP residual ``|| min(u - psi, M u - c) ||_inf``.

        Zero exactly at the solution; scale-robust against the large
        finite sentinel used for inactive (far-from-obstacle) nodes,
        unlike the raw complementarity product.
        """
        u = np.asarray(u, dtype=np.float64)
        slack = self.M @ u - self.c
        return float(np.max(np.abs(np.minimum(u - self.psi, slack))))


def make_obstacle_problem(
    nx: int = 16,
    ny: int = 16,
    *,
    force: float = -1.0,
    obstacle_height: float = -0.05,
    obstacle_radius: float = 0.3,
    reaction: float | None = None,
    seed: int | np.random.Generator | None = 0,
) -> ObstacleProblem:
    """Membrane over a spherical-cap obstacle under constant load.

    ``u`` is the membrane displacement with zero boundary values; the
    obstacle is a cap of height ``obstacle_height`` (negative = below
    the rest plane, so the membrane pushed down by ``force`` contacts
    it) and radius ``obstacle_radius`` centred in the unit square.

    ``reaction`` adds an elastic-foundation term ``k * u`` to the
    operator (``-Delta u + k u``), which makes the system *strictly*
    diagonally dominant so the projected Jacobi map carries an explicit
    max-norm contraction certificate — the interior rows of the pure
    Laplacian are only weakly dominant.  Defaults to 5% of the stencil
    diagonal; pass ``0.0`` for the pure membrane (still convergent in
    practice, but without the closed-form certificate).
    """
    if nx < 2 or ny < 2:
        raise ValueError("grid must be at least 2 x 2")
    rng = as_generator(seed)
    n = nx * ny
    hx, hy = 1.0 / (nx + 1), 1.0 / (ny + 1)
    stencil_diag = 2.0 / hx**2 + 2.0 / hy**2
    if reaction is None:
        reaction = 0.05 * stencil_diag
    if reaction < 0:
        raise ValueError(f"reaction must be >= 0, got {reaction}")
    # 5-point Laplacian plus reaction, row-major (iy * nx + ix).
    M = np.zeros((n, n))
    idx = lambda ix, iy: iy * nx + ix  # noqa: E731 - local index helper
    for iy in range(ny):
        for ix in range(nx):
            k = idx(ix, iy)
            M[k, k] = stencil_diag + reaction
            if ix > 0:
                M[k, idx(ix - 1, iy)] = -1.0 / hx**2
            if ix < nx - 1:
                M[k, idx(ix + 1, iy)] = -1.0 / hx**2
            if iy > 0:
                M[k, idx(ix, iy - 1)] = -1.0 / hy**2
            if iy < ny - 1:
                M[k, idx(ix, iy + 1)] = -1.0 / hy**2
    c = np.full(n, force, dtype=np.float64)
    # Small random roughness on the load keeps the contact set generic.
    c += 0.01 * abs(force) * rng.standard_normal(n)
    xs = (np.arange(nx) + 1) * hx
    ys = (np.arange(ny) + 1) * hy
    X, Y = np.meshgrid(xs, ys)  # shape (ny, nx), row-major flatten matches idx
    r2 = (X - 0.5) ** 2 + (Y - 0.5) ** 2
    cap = obstacle_height * np.maximum(1.0 - r2 / obstacle_radius**2, 0.0)
    psi = np.where(r2 <= obstacle_radius**2, cap, -np.inf * np.ones_like(cap))
    # Replace -inf with a deep finite floor (inactive constraint).
    psi = np.where(np.isfinite(psi), psi, -1e6)
    return ObstacleProblem(nx, ny, M, c, psi.ravel())
