"""Strongly convex quadratic problems ``f(x) = 0.5 x'Qx - c'x``.

The workhorse of the test and benchmark suites: ``mu`` and ``L`` are
exact eigenvalue bounds, the solution is a linear solve, block
gradients are cheap row-slices, and diagonal scaling lets us construct
instances that do (or deliberately do not) satisfy the weighted
max-norm contraction needed for totally asynchronous convergence.
"""

from __future__ import annotations

import numpy as np

from repro.problems.base import SmoothProblem
from repro.utils.rng import as_generator
from repro.utils.validation import check_finite_array, check_vector

__all__ = ["QuadraticProblem", "random_quadratic", "separable_quadratic", "laplacian_quadratic"]


class QuadraticProblem(SmoothProblem):
    """``f(x) = 0.5 x'Qx - c'x`` with SPD ``Q``.

    Parameters
    ----------
    Q:
        Symmetric positive definite matrix.
    c:
        Linear term.
    mu, lipschitz:
        Optional eigenvalue bounds; computed exactly when omitted.
    """

    def __init__(
        self,
        Q: np.ndarray,
        c: np.ndarray,
        mu: float | None = None,
        lipschitz: float | None = None,
    ) -> None:
        Q = check_finite_array(Q, "Q")
        if Q.ndim != 2 or Q.shape[0] != Q.shape[1]:
            raise ValueError(f"Q must be square, got shape {Q.shape}")
        if not np.allclose(Q, Q.T, atol=1e-10):
            raise ValueError("Q must be symmetric")
        c = check_vector(c, "c", dim=Q.shape[0])
        if mu is None or lipschitz is None:
            eigs = np.linalg.eigvalsh(Q)
            mu_v = float(eigs[0]) if mu is None else float(mu)
            L_v = float(eigs[-1]) if lipschitz is None else float(lipschitz)
        else:
            mu_v, L_v = float(mu), float(lipschitz)
        if mu_v <= 0:
            raise ValueError(f"Q must be positive definite (lambda_min = {mu_v:.3g})")
        super().__init__(Q.shape[0], mu_v, L_v)
        self.Q = Q
        self.c = c
        self._sol: np.ndarray | None = None

    def objective(self, x: np.ndarray) -> float:
        x = np.asarray(x, dtype=np.float64)
        return 0.5 * float(x @ (self.Q @ x)) - float(self.c @ x)

    def gradient(self, x: np.ndarray) -> np.ndarray:
        return self.Q @ np.asarray(x, dtype=np.float64) - self.c

    def gradient_block(self, x: np.ndarray, sl: slice) -> np.ndarray:
        return self.Q[sl, :] @ np.asarray(x, dtype=np.float64) - self.c[sl]

    def hessian(self, x: np.ndarray) -> np.ndarray:
        return self.Q.copy()

    def solution(self) -> np.ndarray | None:
        if self._sol is None:
            self._sol = np.linalg.solve(self.Q, self.c)
        return self._sol.copy()


def random_quadratic(
    dim: int,
    condition: float = 10.0,
    *,
    coupling: float = 1.0,
    seed: int | np.random.Generator | None = 0,
) -> QuadraticProblem:
    """Random SPD quadratic with prescribed condition number.

    ``coupling`` in ``[0, 1]`` interpolates between a diagonal matrix
    (fully separable — every coordinate independent, so async iteration
    is trivially convergent) and a dense random rotation of the
    spectrum (strong coordinate coupling).
    """
    if condition < 1.0:
        raise ValueError(f"condition must be >= 1, got {condition}")
    if not 0.0 <= coupling <= 1.0:
        raise ValueError(f"coupling must lie in [0, 1], got {coupling}")
    rng = as_generator(seed)
    eigs = np.geomspace(1.0, condition, dim)
    D = np.diag(eigs)
    if coupling == 0.0:
        Q = D
    else:
        H = rng.standard_normal((dim, dim))
        Qmat, _ = np.linalg.qr(H)
        rotated = Qmat @ D @ Qmat.T
        Q = (1.0 - coupling) * D + coupling * rotated
        Q = 0.5 * (Q + Q.T)
    c = rng.standard_normal(dim)
    return QuadraticProblem(Q, c)


def separable_quadratic(
    dim: int,
    *,
    mu: float = 1.0,
    lipschitz: float = 10.0,
    seed: int | np.random.Generator | None = 0,
) -> QuadraticProblem:
    """Diagonal (coordinate-separable) quadratic with spectrum in [mu, L].

    The literal reading of the paper's Section V assumption that ``f``
    is separable: the problem decouples by coordinate, and asynchronous
    iterations converge under arbitrary admissible delays.
    """
    rng = as_generator(seed)
    d = np.empty(dim)
    if dim == 1:
        d[0] = lipschitz
    else:
        d = np.geomspace(mu, lipschitz, dim)
    c = rng.standard_normal(dim)
    return QuadraticProblem(np.diag(d), c, mu=float(d.min()), lipschitz=float(d.max()))


def laplacian_quadratic(
    dim: int,
    *,
    regularization: float = 0.1,
    seed: int | np.random.Generator | None = 0,
) -> QuadraticProblem:
    """Path-graph Laplacian plus ridge: weakly coupled, diagonally dominant.

    ``Q = L_path + reg * I`` is strictly diagonally dominant, so both
    Richardson and Jacobi maps contract in the max norm — the textbook
    regime where totally asynchronous convergence is guaranteed.
    """
    if dim < 2:
        raise ValueError("laplacian_quadratic needs dim >= 2")
    rng = as_generator(seed)
    main = np.full(dim, 2.0)
    main[0] = main[-1] = 1.0
    Q = np.diag(main + regularization) - np.diag(np.ones(dim - 1), 1) - np.diag(np.ones(dim - 1), -1)
    c = rng.standard_normal(dim)
    return QuadraticProblem(Q, c)
