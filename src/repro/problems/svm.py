"""L2-regularized SVM with smoothed (Huberized) hinge loss.

The classical hinge ``max(0, 1 - z y'x)`` is non-smooth; to stay inside
the paper's Section V model (f smooth + g proximable) we use the
Huber-smoothed hinge

    ``h_delta(t) = 0                      t >= 1
                 = (1 - t)^2 / (2 delta)  1 - delta < t < 1
                 = 1 - t - delta/2        t <= 1 - delta``

which is ``1/delta``-smooth, so ``L = lam_max(Y'Y/m)/delta + l2`` and
``mu = l2``.
"""

from __future__ import annotations

import numpy as np

from repro.operators.proximal import ZeroRegularizer
from repro.problems.base import CompositeProblem, SmoothProblem
from repro.problems.datasets import ClassificationData
from repro.utils.validation import check_finite_array, check_positive, check_vector

__all__ = ["SmoothedHingeSVM", "make_svm"]


class SmoothedHingeSVM(SmoothProblem):
    """``f(x) = 1/m sum_h h_delta(margin_h) + (l2/2)||x||^2``."""

    def __init__(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        l2: float = 0.1,
        delta: float = 0.5,
    ) -> None:
        Y = check_finite_array(features, "features")
        if Y.ndim != 2:
            raise ValueError(f"features must be 2-D, got shape {Y.shape}")
        m, n = Y.shape
        z = check_vector(labels, "labels", dim=m)
        if not np.all(np.isin(z, (-1.0, 1.0))):
            raise ValueError("labels must be -1 or +1")
        l2 = check_positive(l2, "l2")
        delta = check_positive(delta, "delta")
        gram_top = float(np.linalg.eigvalsh((Y.T @ Y) / m)[-1])
        super().__init__(n, l2, gram_top / delta + l2)
        self.features = Y
        self.labels = z
        self.l2 = l2
        self.delta = delta
        self._A = Y * z[:, None]

    def _loss_terms(self, margins: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Per-sample loss values and derivatives w.r.t. the margin."""
        d = self.delta
        loss = np.zeros_like(margins)
        dloss = np.zeros_like(margins)
        quad = (margins > 1.0 - d) & (margins < 1.0)
        lin = margins <= 1.0 - d
        loss[quad] = (1.0 - margins[quad]) ** 2 / (2.0 * d)
        dloss[quad] = -(1.0 - margins[quad]) / d
        loss[lin] = 1.0 - margins[lin] - d / 2.0
        dloss[lin] = -1.0
        return loss, dloss

    def objective(self, x: np.ndarray) -> float:
        x = np.asarray(x, dtype=np.float64)
        margins = self._A @ x
        loss, _ = self._loss_terms(margins)
        return float(np.mean(loss)) + 0.5 * self.l2 * float(x @ x)

    def gradient(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        margins = self._A @ x
        _, dloss = self._loss_terms(margins)
        return (self._A.T @ dloss) / self._A.shape[0] + self.l2 * x

    def gradient_block(self, x: np.ndarray, sl: slice) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        margins = self._A @ x
        _, dloss = self._loss_terms(margins)
        return (self._A[:, sl].T @ dloss) / self._A.shape[0] + self.l2 * x[sl]


def make_svm(
    data: ClassificationData, l2: float = 0.1, delta: float = 0.5
) -> CompositeProblem:
    """Smoothed-hinge SVM as a composite problem with ``g = 0``."""
    return CompositeProblem(
        SmoothedHingeSVM(data.features, data.labels, l2=l2, delta=delta), ZeroRegularizer()
    )
