"""Runtime substrates: the simulated machine, the real threads, the fleet.

* :mod:`repro.runtime.backends` — the pluggable
  :class:`ExecutionBackend` registry: one solver definition, every
  engine (``exact``, ``flexible``, ``vectorized``, ``reference``,
  ``shared-memory``, plus algorithm plugins);
* :mod:`repro.runtime.simulator` — deterministic discrete-event
  simulation of processors + channels (the hardware substitute);
* :mod:`repro.runtime.shared_memory` — lock-free Hogwild-style
  threading backend on a shared NumPy iterate;
* :mod:`repro.runtime.fleet` — concurrent execution of declarative
  scenario grids (multi-seed, multi-regime experiment populations);
* :mod:`repro.runtime.sweep_store` — content-addressed on-disk sweep
  results (streaming writes, resumable grids, persisted traces).
"""

from repro.runtime.backends import (
    BackendRunResult,
    ExecutionBackend,
    ExecutionRequest,
    available_backends,
    backend_kind,
    default_backend,
    get_backend,
    register_backend,
    replay_trace,
)
from repro.runtime.fleet import (
    FleetResult,
    ScenarioResult,
    run_fleet,
    run_grid,
    run_scenario,
)
from repro.runtime.shared_memory import SharedMemoryAsyncRunner, SharedMemoryResult
from repro.runtime.sweep_store import SweepStore
from repro.runtime.simulator import (
    ChannelSpec,
    ConstantTime,
    DistributedSimulator,
    ExponentialTime,
    LinearGrowthTime,
    ParetoTime,
    ProcessorSpec,
    ReferenceSimulator,
    SimulationResult,
    UniformTime,
    shared_memory_network,
    two_cluster_grid,
    uniform_cluster,
    wide_area_network,
)

__all__ = [
    "BackendRunResult",
    "ChannelSpec",
    "ConstantTime",
    "DistributedSimulator",
    "ExecutionBackend",
    "ExecutionRequest",
    "ExponentialTime",
    "FleetResult",
    "LinearGrowthTime",
    "ParetoTime",
    "ProcessorSpec",
    "ReferenceSimulator",
    "ScenarioResult",
    "SharedMemoryAsyncRunner",
    "SharedMemoryResult",
    "SimulationResult",
    "SweepStore",
    "UniformTime",
    "available_backends",
    "backend_kind",
    "default_backend",
    "get_backend",
    "register_backend",
    "replay_trace",
    "run_fleet",
    "run_grid",
    "run_scenario",
    "shared_memory_network",
    "two_cluster_grid",
    "uniform_cluster",
    "wide_area_network",
]
