"""Runtime substrates: the simulated machine and the real threads.

* :mod:`repro.runtime.simulator` — deterministic discrete-event
  simulation of processors + channels (the hardware substitute);
* :mod:`repro.runtime.shared_memory` — lock-free Hogwild-style
  threading backend on a shared NumPy iterate.
"""

from repro.runtime.shared_memory import SharedMemoryAsyncRunner, SharedMemoryResult
from repro.runtime.simulator import (
    ChannelSpec,
    ConstantTime,
    DistributedSimulator,
    ExponentialTime,
    LinearGrowthTime,
    ParetoTime,
    ProcessorSpec,
    SimulationResult,
    UniformTime,
    shared_memory_network,
    two_cluster_grid,
    uniform_cluster,
    wide_area_network,
)

__all__ = [
    "ChannelSpec",
    "ConstantTime",
    "DistributedSimulator",
    "ExponentialTime",
    "LinearGrowthTime",
    "ParetoTime",
    "ProcessorSpec",
    "SharedMemoryAsyncRunner",
    "SharedMemoryResult",
    "SimulationResult",
    "UniformTime",
    "shared_memory_network",
    "two_cluster_grid",
    "uniform_cluster",
    "wide_area_network",
]
