"""The pluggable execution layer: one solver definition, every engine.

The paper's central claim is that one asynchronous iteration scheme
(Definition 1) describes runs on very different machines — a
mathematical ``(S, L)`` model, a simulated distributed machine, and
real lock-free shared memory.  This module makes that claim executable
as architecture: an :class:`ExecutionBackend` receives one uniform
:class:`ExecutionRequest` (operator, initial point, steering/delay
models or a machine description, stopping rule) and returns one uniform
:class:`BackendRunResult` carrying the realized
:class:`~repro.core.trace.IterationTrace` — whatever substrate actually
executed the iterations.

Built-in backends:

``exact``
    The Definition 1 engine (:class:`~repro.core.async_iteration.AsyncIterationEngine`):
    ``S`` and ``L`` are *prescribed* models, global iterations are
    serialization points.
``flexible``
    The Definition 3 engine with partial updates
    (:class:`~repro.core.flexible.FlexibleIterationEngine`).
``vectorized`` / ``reference``
    The event-driven machine simulators — the production engine and the
    frozen seed oracle — where ``(S, L)`` is *induced* by simulated
    processor/channel physics.
``shared-memory``
    Real Hogwild-style threads on a shared NumPy iterate
    (:class:`~repro.runtime.shared_memory.SharedMemoryAsyncRunner`),
    where ``(S, L)`` is induced by actual hardware scheduling.
``arock`` / ``dave-pg``
    Modern comparator algorithms ([32]/[30]) registered as
    ``algorithm``-kind plugins from their solver modules.

Backends self-describe via ``kind`` (``"model"`` needs steering+delays,
``"machine"`` runs on a processor/channel description, ``"algorithm"``
is a bespoke comparator loop) so the scenario layer, the fleet runner
and the ``python -m repro sweep --backend`` CLI can validate and
dispatch from one registry — a new engine (processes, GPU, remote
workers) is a ~50-line :func:`register_backend` plugin instead of a
fourth fork of the solver stack.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, ClassVar, Mapping, Sequence

import numpy as np

from repro.core.async_iteration import AsyncIterationEngine
from repro.core.flexible import FlexibleIterationEngine, InterpolatedPartials
from repro.core.replay import TraceReplayDelays, TraceReplaySteering
from repro.core.trace import IterationTrace, TraceHandle, TraceStore, save_trace
from repro.delays.base import DelayModel
from repro.operators.base import FixedPointOperator
from repro.runtime.shared_memory import SharedMemoryAsyncRunner
from repro.runtime.simulator.engine import DistributedSimulator
from repro.runtime.simulator.reference import ReferenceSimulator
from repro.steering.base import SteeringPolicy
from repro.utils.rng import as_generator

__all__ = [
    "BackendRunResult",
    "ExecutionBackend",
    "ExecutionRequest",
    "available_backends",
    "backend_kind",
    "default_backend",
    "get_backend",
    "register_backend",
    "replay_trace",
    "BACKEND_KINDS",
]

#: Valid backend kinds: prescribed-(S,L) engines, machine substrates,
#: and bespoke comparator algorithms.
BACKEND_KINDS = ("model", "machine", "algorithm")


@dataclass
class ExecutionRequest:
    """Everything an execution backend may need for one run.

    ``model``-kind backends consume ``steering``/``delays``;
    ``machine``-kind backends consume ``processors``/``channels``;
    ``algorithm``-kind backends take their ingredients from
    ``options`` (typically the :class:`~repro.problems.base.CompositeProblem`).
    Unused fields are simply ignored, so one request type serves every
    engine.

    Attributes
    ----------
    operator:
        The fixed-point map ``F`` (may be ``None`` for algorithm
        backends that work directly on a problem).
    x0:
        Initial iterate.
    max_iterations:
        Iteration budget (interpreted as the update budget by the
        shared-memory backend).
    tol:
        Stopping tolerance on the backend's residual.
    steering, delays:
        The prescribed ``S`` and ``L`` models (``model`` kind).
    processors, channels:
        The machine description (``machine`` kind); ``channels`` takes
        whatever the simulator constructor accepts.
    seed:
        Entropy for backend-internal randomness (simulator streams,
        default partial models, algorithm RNGs).
    faults:
        Optional :class:`~repro.runtime.simulator.faults.FaultModel`
        injected into simulator backends (``machine`` kind); ``None``
        keeps the fault-free fast path.  The shared-memory backend
        rejects it — real threads cannot honor simulated crash
        schedules.
    reference:
        Known fixed point for error tracking; ``None`` falls back to
        ``operator.fixed_point()`` where supported.
    options:
        Backend-specific extras (``residual_every``,
        ``record_messages``, ``partials``, ``n_workers``, ``problem``...).
        The streaming results layer reads the cross-backend trace
        options here: ``trace_sink`` (a
        :class:`~repro.core.trace.TraceStore` to record into),
        ``trace_spill_dir``/``trace_chunk_size`` (construct a spilling
        store), ``trace_path`` (persist the realized trace as ``.npz``)
        and ``materialize_trace`` (keep the in-memory trace on the
        result; default true).
    """

    operator: FixedPointOperator | None
    x0: np.ndarray
    max_iterations: int = 10_000
    tol: float = 1e-10
    steering: SteeringPolicy | None = None
    delays: DelayModel | None = None
    processors: Sequence[Any] | None = None
    channels: Any = None
    seed: Any = 0
    faults: Any = None
    reference: np.ndarray | None = None
    options: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class BackendRunResult:
    """Uniform outcome of any backend execution.

    Attributes
    ----------
    x:
        Final iterate.
    trace:
        Realized :class:`~repro.core.trace.IterationTrace` (``None``
        when the backend cannot produce one).
    converged:
        Whether the stopping tolerance was reached within budget.
    iterations:
        Global iterations performed (component updates for the
        shared-memory backend).
    final_residual:
        Backend's optimality measure at ``x``.
    final_time:
        Simulated time (simulators), wall-clock seconds (shared
        memory), or ``None`` for pure-math engines.
    trace_handle:
        :class:`~repro.core.trace.TraceHandle` naming the realized
        trace wherever it lives.  With ``options["trace_path"]`` the
        trace is saved there and — unless
        ``options["materialize_trace"]`` stays true — ``trace`` is
        ``None`` and the handle is the only (disk-backed) reference,
        so fleets of results don't pin every trace in RAM.
    stats:
        Backend-specific counters (message stats, constraint audits,
        per-worker updates...).
    raw:
        The backend-native result object, for analyses that need more
        than the uniform surface.
    """

    x: np.ndarray
    trace: IterationTrace | None
    converged: bool
    iterations: int
    final_residual: float
    final_time: float | None = None
    trace_handle: TraceHandle | None = None
    stats: dict[str, Any] = field(default_factory=dict)
    raw: Any = None


class ExecutionBackend(abc.ABC):
    """One way of executing an asynchronous iteration to completion.

    Subclasses set ``name`` and ``kind`` and implement
    :meth:`execute`; registering them with :func:`register_backend`
    makes them reachable from solvers, scenario specs, the fleet and
    the CLI by name.  ``requires`` names the request fields the backend
    cannot run without (checked by :meth:`validate`).
    """

    name: ClassVar[str]
    kind: ClassVar[str]
    requires: ClassVar[tuple[str, ...]] = ()
    required_options: ClassVar[tuple[str, ...]] = ()

    def validate(self, request: ExecutionRequest) -> None:
        """Raise ``ValueError`` when the request misses required fields/options."""
        for field_name in self.requires:
            if getattr(request, field_name) is None:
                raise ValueError(
                    f"backend {self.name!r} requires {field_name!r} on the request"
                )
        for opt in self.required_options:
            if opt not in request.options:
                raise ValueError(
                    f"backend {self.name!r} requires options[{opt!r}] on the request"
                )

    @abc.abstractmethod
    def execute(self, request: ExecutionRequest) -> BackendRunResult:
        """Run the iteration described by ``request`` to completion."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name!r} kind={self.kind!r}>"


# ----------------------------------------------------------------------
# Trace sinks and handles (the streaming results layer)
# ----------------------------------------------------------------------

def _trace_sink(request: ExecutionRequest) -> TraceStore | None:
    """The store a backend should inject into its engine, if any.

    ``options["trace_sink"]`` wins; ``trace_spill_dir`` /
    ``trace_chunk_size`` construct a (possibly disk-spilling) store;
    otherwise ``None`` lets the engine allocate its own.
    """
    opts = request.options
    sink = opts.get("trace_sink")
    if sink is not None:
        return sink
    spill = opts.get("trace_spill_dir")
    chunk = opts.get("trace_chunk_size")
    if spill is None and chunk is None:
        return None
    return TraceStore(
        request.operator.n_components,
        spill_dir=spill,
        chunk_size=None if chunk is None else int(chunk),
    )


def _package_trace(
    request: ExecutionRequest,
    trace: IterationTrace | None,
    sink: TraceStore | None = None,
) -> tuple[IterationTrace | None, TraceHandle | None]:
    """Apply the request's trace persistence options to a realized trace.

    Returns the ``(trace, trace_handle)`` pair for the
    :class:`BackendRunResult`: with ``options["trace_path"]`` the trace
    is written there (through ``sink`` when one recorded the run, so no
    second materialization happens) and, unless
    ``options["materialize_trace"]`` stays true, dropped from memory —
    the handle is then the only, disk-backed, reference.
    """
    if trace is None:
        return None, None
    opts = request.options
    path = opts.get("trace_path")
    if path is None:
        return trace, TraceHandle(trace=trace)
    saved = sink.save(path) if sink is not None else save_trace(path, trace)
    if bool(opts.get("materialize_trace", True)):
        return trace, TraceHandle(trace=trace, path=saved)
    return None, TraceHandle(path=saved)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

_REGISTRY: dict[str, ExecutionBackend] = {}
_builtins_loaded = False


def register_backend(cls: type[ExecutionBackend]) -> type[ExecutionBackend]:
    """Class decorator: instantiate and register an execution backend.

    The backend class must define ``name`` and a ``kind`` from
    :data:`BACKEND_KINDS` and be constructible without arguments.
    Re-registering a name replaces the previous entry (latest wins), so
    plugins can shadow built-ins deliberately.
    """
    name = getattr(cls, "name", None)
    kind = getattr(cls, "kind", None)
    if not isinstance(name, str) or not name:
        raise ValueError(f"backend class {cls.__name__} must define a nonempty name")
    if kind not in BACKEND_KINDS:
        raise ValueError(
            f"backend {name!r} has kind {kind!r}; must be one of {BACKEND_KINDS}"
        )
    _REGISTRY[name] = cls()
    return cls


def _ensure_builtins() -> None:
    """Import the modules that register non-core plugin backends.

    The comparator algorithms ([30]/[32]) live with their solvers and
    self-register on import; loading them lazily here keeps the
    runtime layer import-light and cycle-free.
    """
    global _builtins_loaded
    if _builtins_loaded:
        return
    import repro.solvers.arock  # noqa: F401  (registers "arock")
    import repro.solvers.dave_pg  # noqa: F401  (registers "dave-pg")

    # Latched only after the imports succeed, so a transient import
    # failure stays loudly reproducible instead of silently leaving
    # the algorithm backends unregistered for the process lifetime.
    _builtins_loaded = True


def get_backend(name: str) -> ExecutionBackend:
    """Look up a registered execution backend by name."""
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        from repro.utils.naming import unknown_name_message

        raise KeyError(unknown_name_message("backend", name, sorted(_REGISTRY))) from None


def available_backends(kind: str | None = None) -> tuple[str, ...]:
    """Registered backend names, optionally filtered by kind."""
    _ensure_builtins()
    if kind is not None and kind not in BACKEND_KINDS:
        raise KeyError(f"unknown backend kind {kind!r}; choose from {BACKEND_KINDS}")
    return tuple(
        sorted(n for n, b in _REGISTRY.items() if kind is None or b.kind == kind)
    )


def backend_kind(name: str) -> str:
    """The kind (``model``/``machine``/``algorithm``) of a registered backend."""
    return get_backend(name).kind


def default_backend(kind: str) -> str:
    """The canonical backend of one kind (``model`` -> exact engine...)."""
    defaults = {"model": "exact", "machine": "vectorized", "algorithm": "arock"}
    try:
        return defaults[kind]
    except KeyError:
        raise KeyError(f"unknown backend kind {kind!r}; choose from {BACKEND_KINDS}") from None


# ----------------------------------------------------------------------
# Model-kind backends: prescribed (S, L)
# ----------------------------------------------------------------------

@register_backend
class ExactBackend(ExecutionBackend):
    """Definition 1 executed exactly by the mathematical engine."""

    name = "exact"
    kind = "model"
    requires = ("operator", "steering", "delays")

    def execute(self, request: ExecutionRequest) -> BackendRunResult:
        self.validate(request)
        opts = request.options
        engine = AsyncIterationEngine(
            request.operator,
            request.steering,
            request.delays,
            reference=request.reference,
            residual_every=int(opts.get("residual_every", 1)),
        )
        sink = _trace_sink(request)
        res = engine.run(
            request.x0,
            max_iterations=request.max_iterations,
            tol=request.tol,
            track_errors=bool(opts.get("track_errors", True)),
            track_residuals=bool(opts.get("track_residuals", True)),
            meta=opts.get("meta"),
            sink=sink,
        )
        trace, handle = _package_trace(request, res.trace, sink)
        return BackendRunResult(
            x=res.x,
            trace=trace,
            converged=res.converged,
            iterations=res.iterations,
            final_residual=res.final_residual,
            final_time=None,
            trace_handle=handle,
            raw=res,
        )


@register_backend
class FlexibleBackend(ExecutionBackend):
    """Definition 3 engine: flexible communication with partial updates."""

    name = "flexible"
    kind = "model"
    requires = ("operator", "steering", "delays")

    def execute(self, request: ExecutionRequest) -> BackendRunResult:
        self.validate(request)
        opts = request.options
        partials = opts.get("partials")
        if partials is None:
            partials = InterpolatedPartials(seed=as_generator(request.seed))
        engine = FlexibleIterationEngine(
            request.operator,
            request.steering,
            request.delays,
            partials,
            reference=request.reference,
            residual_every=int(opts.get("residual_every", 1)),
        )
        sink = _trace_sink(request)
        res = engine.run(
            request.x0,
            max_iterations=request.max_iterations,
            tol=request.tol,
            track_errors=bool(opts.get("track_errors", True)),
            track_residuals=bool(opts.get("track_residuals", True)),
            check_constraint=bool(opts.get("check_constraint", True)),
            meta=opts.get("meta"),
            sink=sink,
        )
        trace, handle = _package_trace(request, res.trace, sink)
        return BackendRunResult(
            x=res.x,
            trace=trace,
            converged=res.converged,
            iterations=res.iterations,
            final_residual=res.final_residual,
            final_time=None,
            trace_handle=handle,
            stats={
                "constraint_checks": res.constraint_checks,
                "constraint_violations": res.constraint_violations,
                "worst_constraint_ratio": res.worst_constraint_ratio,
            },
            raw=res,
        )


# ----------------------------------------------------------------------
# Machine-kind backends: (S, L) induced by a substrate
# ----------------------------------------------------------------------

class _SimulatorBackend(ExecutionBackend):
    """Shared implementation of the two event-driven simulator backends."""

    kind = "machine"
    requires = ("operator", "processors")
    sim_cls: ClassVar[type]

    def execute(self, request: ExecutionRequest) -> BackendRunResult:
        self.validate(request)
        opts = request.options
        sim = self.sim_cls(
            request.operator,
            list(request.processors),
            channels=request.channels,
            reference=request.reference,
            seed=request.seed,
            faults=request.faults,
        )
        record_messages = bool(opts.get("record_messages", True))
        sink = _trace_sink(request)
        res = sim.run(
            request.x0,
            max_iterations=request.max_iterations,
            max_time=float(opts.get("max_time", float("inf"))),
            tol=request.tol,
            residual_every=int(opts.get("residual_every", 10)),
            record_messages=record_messages,
            sink=sink,
        )
        stats: dict[str, Any] = dict(res.stats)
        if record_messages:
            stats["message_stats"] = res.message_stats()
        iterations = res.trace.n_iterations
        trace, handle = _package_trace(request, res.trace, sink)
        return BackendRunResult(
            x=res.x,
            trace=trace,
            converged=res.converged,
            iterations=iterations,
            final_residual=res.final_residual,
            final_time=res.final_time,
            trace_handle=handle,
            stats=stats,
            raw=res,
        )


@register_backend
class VectorizedSimulatorBackend(_SimulatorBackend):
    """The production event loop (vectorized scatters, burst batching)."""

    name = "vectorized"
    sim_cls = DistributedSimulator


@register_backend
class ReferenceSimulatorBackend(_SimulatorBackend):
    """The frozen seed event loop — the behavioural oracle."""

    name = "reference"
    sim_cls = ReferenceSimulator


@register_backend
class BatchedLockstepBackend(_SimulatorBackend):
    """The event loop, advertised to the fleet's batched fast path.

    Solo execution delegates to the production event loop, so a single
    scenario on this backend is *definitionally* bit-identical to
    ``vectorized``.  What the name adds is intent: fleet chunks on this
    backend route through the scenario-batched lockstep engine
    (:mod:`repro.runtime.simulator.batched`), which replays the event
    loop's schedule for whole ``(N, dim)`` populations whenever the
    machine's timing is deterministic: per-processor constant compute
    durations sharing a common base period (the homogeneous
    ``lockstep`` archetype and the heterogeneous ``lockstep-tiered``
    both qualify) with lossless constant latency below the fastest
    phase — see :func:`~repro.runtime.simulator.batched.lockstep_plan`.
    Machines outside that family still run — the batch detects them via
    :class:`~repro.runtime.simulator.batched.LockstepIncompatible` and
    falls back to this solo path, keeping the backend total over every
    machine archetype like its siblings.
    """

    name = "batched-lockstep"
    sim_cls = DistributedSimulator


@register_backend
class SharedMemoryBackend(ExecutionBackend):
    """Real Hogwild-style threads on a shared NumPy iterate.

    ``max_iterations`` is the total component-update budget.  The
    worker count comes from ``options["n_workers"]``, falling back to
    the processor count when a machine description is attached to the
    request (so machine archetypes keep their meaning: only the
    processor *count* survives the trip to real threads), then to 4.
    The realized ``(S, L)`` trace is recorded from the actual commit
    order of the threads — genuinely hardware-induced steering and
    delays.
    """

    name = "shared-memory"
    kind = "machine"
    requires = ("operator",)

    def execute(self, request: ExecutionRequest) -> BackendRunResult:
        self.validate(request)
        if request.faults is not None:
            raise ValueError(
                "the shared-memory backend runs real threads and cannot "
                "honor a simulated fault model; use a simulator backend "
                "(vectorized/reference/batched-lockstep) for fault scenarios"
            )
        opts = request.options
        n_workers = opts.get("n_workers")
        if n_workers is None:
            n_workers = len(request.processors) if request.processors else 4
        n_workers = max(1, min(int(n_workers), request.operator.n_components))
        runner = SharedMemoryAsyncRunner(
            request.operator,
            n_workers=n_workers,
            worker_sleep=opts.get("worker_sleep", 0.0),
            monitor_interval=float(opts.get("monitor_interval", 0.005)),
        )
        sink = _trace_sink(request)
        res = runner.run(
            request.x0,
            max_updates=request.max_iterations,
            tol=request.tol,
            timeout=float(opts.get("timeout", 60.0)),
            record_trace=bool(opts.get("record_trace", True)),
            sink=sink,
        )
        trace, handle = _package_trace(request, res.trace, sink)
        return BackendRunResult(
            x=res.x,
            trace=trace,
            converged=res.converged,
            iterations=res.total_updates,
            final_residual=res.final_residual,
            final_time=res.wall_time,
            trace_handle=handle,
            stats={
                "total_updates": res.total_updates,
                "updates_per_worker": dict(res.updates_per_worker),
                "n_workers": n_workers,
                "residual_samples": len(res.residual_history),
            },
            raw=res,
        )


# ----------------------------------------------------------------------
# Trace replay: run a realized (S, L) through any model-kind backend
# ----------------------------------------------------------------------

def replay_trace(
    operator: FixedPointOperator,
    trace: IterationTrace,
    x0: np.ndarray,
    *,
    backend: str = "exact",
    options: Mapping[str, Any] | None = None,
) -> BackendRunResult:
    """Re-execute a realized ``(S, L)`` trace through a model backend.

    This is the cross-backend bridge the paper's Definition 1 promises:
    a trace produced by *any* substrate (simulated machine, real
    threads) is replayed as a prescribed-(S, L) run.  For substrates
    whose update semantics coincide with Definition 1 (one component
    per processor, single inner step) the replayed iterates are
    bit-identical to the original run — enforced by
    ``tests/runtime/test_backends.py`` and the determinism suite.
    """
    opts: dict[str, Any] = {"track_errors": False, "track_residuals": False}
    if options:
        opts.update(options)
    request = ExecutionRequest(
        operator=operator,
        x0=x0,
        max_iterations=trace.n_iterations,
        tol=0.0,
        steering=TraceReplaySteering(trace),
        delays=TraceReplayDelays(trace),
        options=opts,
    )
    chosen = get_backend(backend)
    if chosen.kind != "model":
        raise ValueError(
            f"replay needs a model-kind backend, got {backend!r} ({chosen.kind})"
        )
    return chosen.execute(request)
