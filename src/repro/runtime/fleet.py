"""The scenario fleet: concurrent execution of declarative scenario grids.

The paper's claims (async vs sync efficiency, flexible-communication
gain, robustness across delay regimes) are statistical — they hold
across many seeds, regimes and problem instances, never on a single
run.  The fleet runner is the machinery that makes such populations
cheap: hand it the :class:`~repro.scenarios.spec.ScenarioSpec` list of
a :class:`~repro.scenarios.spec.ScenarioGrid` and it executes every
scenario (concurrently when the hardware allows), collects one typed
:class:`ScenarioResult` each, and aggregates them into a
:class:`FleetResult` that the analysis layer, the benchmark harness and
``python -m repro sweep`` all consume.

:func:`run_grid` is the streaming entry point: given a
:class:`~repro.runtime.sweep_store.SweepStore` it persists one summary
row (and optionally the realized trace) per scenario *as workers
finish*, keyed by the spec's content hash — so a sweep killed at
scenario 180/200 resumes with ``run_grid(..., resume=store)`` and only
executes the missing twenty.

Determinism: every spec carries its own integer seed (spawned
independently by the grid), and results are returned in submission
order — so the ``FleetResult`` is bit-identical whether scenarios ran
serially, on a thread pool, on a process pool, or across an
interrupted-and-resumed pair of invocations.
"""

from __future__ import annotations

import functools
import json
import os
import pathlib
import shutil
import statistics
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import asdict, dataclass, field, replace
from typing import Any, Callable, Iterable, Sequence

import numpy as np

from repro.scenarios.spec import ScenarioSpec
from repro.utils.serialization import json_safe

__all__ = [
    "ScenarioResult",
    "FleetResult",
    "execute_scenario",
    "run_scenario",
    "run_fleet",
    "run_grid",
]

_EXECUTORS = ("auto", "serial", "thread", "process")

#: Metrics exposed by :meth:`FleetResult.group_medians` / ``to_rows``.
#: Boolean-valued metrics (``converged``) aggregate as rates, numeric
#: ones as medians.
METRIC_FIELDS = ("iterations", "converged", "final_residual", "final_error",
                 "sim_time", "time_to_tol", "wall_time")


@dataclass(frozen=True)
class ScenarioResult:
    """Outcome of one scenario (plain data, picklable).

    ``error`` holds the exception ``repr`` when the scenario crashed;
    every numeric field is then zero/None and ``converged`` is False.
    ``info`` carries the JSON-safe subset of the backend's run stats
    (constraint audits, message stats, per-worker update counts...) so
    solver extras survive persistence; ``trace_path`` points at the
    scenario's saved trace file when the sweep kept traces (``""``
    when traces were requested but the backend produced none, ``None``
    when they were never requested).
    """

    key: str
    spec: ScenarioSpec
    iterations: int = 0
    converged: bool = False
    final_residual: float = float("nan")
    final_error: float | None = None
    sim_time: float | None = None
    time_to_tol: float | None = None
    wall_time: float = 0.0
    error: str | None = None
    info: dict[str, Any] = field(default_factory=dict)
    trace_path: str | None = None

    @property
    def content_hash(self) -> str:
        """The spec's canonical content hash (the sweep-store key)."""
        return self.spec.content_hash

    # -- persistence --------------------------------------------------
    def to_json_dict(self) -> dict[str, Any]:
        """Plain-JSON record of this result (specs as field dicts).

        The spec persists as its canonical form — the same document
        its content hash digests — so a loaded result reconstructs a
        spec with the *same* content hash as the one that ran (plain
        ``json_safe`` would silently mangle array-valued params).
        """
        record = asdict(self)
        record["spec"] = self.spec.canonical()
        record["info"] = json_safe(self.info) or {}
        return json_safe(record)

    @classmethod
    def from_json_dict(cls, record: "dict[str, Any]") -> "ScenarioResult":
        """Rebuild a typed result from a :meth:`to_json_dict` record.

        The spec is re-validated against the current registries;
        records persisted before the ``info``/``trace_path`` fields
        existed load with empty defaults.
        """
        record = dict(record)
        spec = ScenarioSpec(**record.pop("spec"))
        return cls(spec=spec, **record)


@dataclass(frozen=True)
class FleetResult:
    """Aggregate outcome of one fleet execution.

    Results appear in submission order.  ``wall_time`` is the whole
    fleet's wall-clock duration, which with ``scenario_count`` yields
    the scenarios/sec throughput the perf harness tracks.
    """

    results: tuple[ScenarioResult, ...]
    wall_time: float
    executor: str
    max_workers: int

    # -- basic accessors ----------------------------------------------
    @property
    def scenario_count(self) -> int:
        return len(self.results)

    @property
    def scenarios_per_sec(self) -> float:
        if self.wall_time <= 0:
            return float("inf")
        return self.scenario_count / self.wall_time

    def ok(self) -> tuple[ScenarioResult, ...]:
        """Results that completed without raising."""
        return tuple(r for r in self.results if r.error is None)

    def failures(self) -> tuple[ScenarioResult, ...]:
        """Results whose scenario crashed (``error`` is the repr)."""
        return tuple(r for r in self.results if r.error is not None)

    def converged_fraction(self) -> float:
        """Fraction of non-failed scenarios that reached tolerance."""
        good = self.ok()
        if not good:
            return 0.0
        return sum(1 for r in good if r.converged) / len(good)

    # -- aggregation --------------------------------------------------
    def group_medians(
        self,
        by: Callable[[ScenarioResult], tuple[Any, ...]] | Sequence[str] = ("problem",),
        metrics: Sequence[str] = ("iterations", "final_residual"),
    ) -> dict[tuple[Any, ...], dict[str, float]]:
        """Median of each metric over groups of non-failed scenarios.

        ``by`` is either a key function on results or a sequence of
        :class:`~repro.scenarios.spec.ScenarioSpec` field names
        (e.g. ``("problem", "delays")``); metrics are drawn from
        ``METRIC_FIELDS``.  Boolean-valued metrics (``converged``)
        aggregate as the group's true-fraction — a well-defined rate —
        instead of a coerced float median; for numeric metrics,
        ``None``/non-finite values are skipped and a group whose values
        all vanish reports ``nan``.
        """
        if not callable(by):
            fields = tuple(by)
            by = lambda r: tuple(getattr(r.spec, f) for f in fields)  # noqa: E731
        groups: dict[tuple[Any, ...], list[ScenarioResult]] = {}
        for r in self.ok():
            groups.setdefault(by(r), []).append(r)
        out: dict[tuple[Any, ...], dict[str, float]] = {}
        for gkey in sorted(groups, key=repr):
            rows = groups[gkey]
            agg: dict[str, float] = {"count": float(len(rows))}
            for m in metrics:
                if m not in METRIC_FIELDS:
                    raise KeyError(f"unknown metric {m!r}; choose from {METRIC_FIELDS}")
                raw = [getattr(r, m) for r in rows if getattr(r, m) is not None]
                if raw and all(isinstance(v, (bool, np.bool_)) for v in raw):
                    agg[m] = sum(map(bool, raw)) / len(raw)
                    continue
                vals = [float(v) for v in raw if np.isfinite(v)]
                agg[m] = statistics.median(vals) if vals else float("nan")
            out[gkey] = agg
        return out

    def to_rows(
        self, metrics: Sequence[str] = ("iterations", "converged", "final_residual")
    ) -> list[list[Any]]:
        """One row per scenario: ``[key, *metrics]`` (for render_table)."""
        rows: list[list[Any]] = []
        for r in self.results:
            row: list[Any] = [r.key]
            for m in metrics:
                row.append("ERROR" if r.error is not None else getattr(r, m))
            rows.append(row)
        return rows

    def digest(self) -> str:
        """SHA-256 certificate over the deterministic per-scenario fields.

        Matches :meth:`repro.runtime.sweep_store.SweepStore.digest` for
        a store holding the same completed scenarios, so an in-memory
        fleet and its persisted twin certify equality without a store
        ever existing (failed scenarios are excluded from both sides).
        """
        from repro.runtime.sweep_store import digest_rows

        return digest_rows((r.content_hash, r) for r in self.ok())

    # -- persistence --------------------------------------------------
    def to_json(self) -> str:
        """JSON document with per-scenario records and fleet stats."""
        doc = {
            "executor": self.executor,
            "max_workers": self.max_workers,
            "wall_time": self.wall_time,
            "scenario_count": self.scenario_count,
            "scenarios_per_sec": self.scenarios_per_sec,
            "results": [r.to_json_dict() for r in self.results],
        }
        return json.dumps(doc, indent=2)

    @classmethod
    def from_json(cls, doc: "str | dict[str, Any]") -> "FleetResult":
        """Reconstruct a :class:`FleetResult` from :meth:`to_json` output.

        Accepts the JSON text or an already-parsed document.  Specs are
        rebuilt as real :class:`~repro.scenarios.spec.ScenarioSpec`
        objects (re-validated against the current registries), so a
        persisted sweep round-trips into the same typed API the live
        fleet returns — backend stats included (``info``).
        """
        if isinstance(doc, str):
            doc = json.loads(doc)
        results = tuple(ScenarioResult.from_json_dict(r) for r in doc["results"])
        return cls(
            results=results,
            wall_time=float(doc["wall_time"]),
            executor=str(doc["executor"]),
            max_workers=int(doc["max_workers"]),
        )


# ----------------------------------------------------------------------
# Scenario execution (top-level so process pools can pickle it)
# ----------------------------------------------------------------------

def run_scenario(
    spec: ScenarioSpec,
    *,
    trace_dir: "str | os.PathLike[str] | None" = None,
    spill_dir: "str | os.PathLike[str] | None" = None,
    trace_chunk_size: int | None = None,
) -> ScenarioResult:
    """Execute one scenario spec and summarize it as a :class:`ScenarioResult`.

    Never raises for scenario-level errors: crashes are captured in
    ``result.error`` so one bad grid point cannot sink a fleet.

    With ``trace_dir`` the realized trace is saved there as
    ``<content_hash>.npz`` (recorded through a disk-spilling
    :class:`~repro.core.trace.TraceStore` rooted at ``spill_dir`` when
    given, so even very long traces stay within O(chunk) RAM while
    recording); the summary then carries ``trace_path`` instead of any
    in-memory trace.  Workers write their own trace files, so nothing
    trace-sized ever crosses a process-pool boundary.
    """
    t0 = time.perf_counter()
    try:
        result = _run_scenario_inner(
            spec, trace_dir=trace_dir, spill_dir=spill_dir,
            trace_chunk_size=trace_chunk_size,
        )
    except Exception as exc:  # noqa: BLE001 - captured per scenario by design
        return ScenarioResult(
            key=spec.key, spec=spec, error=repr(exc),
            wall_time=time.perf_counter() - t0,
        )
    return result


def _run_scenario_inner(
    spec: ScenarioSpec,
    *,
    trace_dir: "str | os.PathLike[str] | None" = None,
    spill_dir: "str | os.PathLike[str] | None" = None,
    trace_chunk_size: int | None = None,
) -> ScenarioResult:
    summary, _ = execute_scenario(
        spec, trace_dir=trace_dir, spill_dir=spill_dir,
        trace_chunk_size=trace_chunk_size,
    )
    return summary


def execute_scenario(
    spec: ScenarioSpec,
    *,
    trace_dir: "str | os.PathLike[str] | None" = None,
    spill_dir: "str | os.PathLike[str] | None" = None,
    trace_chunk_size: int | None = None,
) -> "tuple[ScenarioResult, Any]":
    """Run one spec, returning ``(summary, backend_result)``.

    The second element is the full
    :class:`~repro.runtime.backends.BackendRunResult` — final iterate,
    realized trace, backend stats — for callers (``repro.solve``) that
    need more than the fleet's scalar summary.  Unlike
    :func:`run_scenario` this *raises* on scenario errors.
    """
    # Imported lazily: keeps fleet importable without dragging the
    # whole library into every worker before it is needed.
    from repro.analysis.rates import time_to_tolerance
    from repro.runtime import backends as _backends
    from repro.scenarios import registry

    t0 = time.perf_counter()
    backend = _backends.get_backend(spec.backend)
    seeds = spec.spawn_seeds()
    op = registry.make_problem(spec.problem, seeds[0], **spec.problem_params)
    n = op.n_components
    request = _backends.ExecutionRequest(
        operator=op,
        x0=np.zeros(op.dim),
        max_iterations=spec.max_iterations,
        tol=spec.tol,
        seed=seeds[1],
    )
    if backend.kind == "model":
        request.steering = registry.make_steering(
            spec.steering, n, seeds[1], **spec.steering_params
        )
        request.delays = registry.make_delays(spec.delays, n, seeds[2], **spec.delay_params)
        # Backend-internal randomness (e.g. flexible's default partial
        # model) gets its own stream, independent of the ingredients.
        request.seed = seeds[4]
    else:
        # Machine substrate: the archetype yields processors + channels
        # (the shared-memory backend keeps only the processor count).
        request.processors, request.channels = registry.make_machine(
            spec.machine, n, seeds[3], **spec.machine_params
        )
        request.options["record_messages"] = False
        # The fleet summarizes scalar outcomes; skip the per-update
        # trace recording of the shared-memory backend unless the
        # sweep is persisting traces.
        request.options["record_trace"] = trace_dir is not None

    content_hash = spec.content_hash
    scenario_spill: pathlib.Path | None = None
    trace_path: str | None = None
    if trace_dir is not None:
        path = pathlib.Path(trace_dir) / f"{content_hash}.npz"
        request.options["trace_path"] = path
        if spill_dir is not None:
            scenario_spill = pathlib.Path(spill_dir) / content_hash
            request.options["trace_spill_dir"] = scenario_spill
        if trace_chunk_size is not None:
            request.options["trace_chunk_size"] = int(trace_chunk_size)

    try:
        res = backend.execute(request)
    finally:
        if scenario_spill is not None:
            # The final .npz has everything; the spill chunks were
            # only the recording-time working set.
            shutil.rmtree(scenario_spill, ignore_errors=True)
    if trace_dir is not None:
        # "" = traces were requested but this backend produced none
        # (e.g. a shared-memory run with zero commits): the row is
        # complete, a re-run could never yield a trace.
        trace_path = (
            str(res.trace_handle.path) if res.trace_handle is not None else ""
        )

    trace = res.trace
    final_error = (
        float(trace.errors[-1])
        if trace is not None and trace.errors is not None
        else None
    )
    ttt = None
    if (
        spec.tol > 0
        and trace is not None
        and trace.residuals is not None
        and trace.times is not None
    ):
        ttt = time_to_tolerance(trace.residuals, trace.times, spec.tol)
    summary = ScenarioResult(
        key=spec.key,
        spec=spec,
        iterations=res.iterations,
        converged=res.converged,
        final_residual=float(res.final_residual),
        final_error=final_error,
        sim_time=None if res.final_time is None else float(res.final_time),
        time_to_tol=ttt,
        wall_time=time.perf_counter() - t0,
        info=json_safe(res.stats) or {},
        trace_path=trace_path,
    )
    return summary, res


# ----------------------------------------------------------------------
# Fleet execution
# ----------------------------------------------------------------------

def _resolve_executor(executor: str, max_workers: int | None) -> tuple[str, int]:
    if executor not in _EXECUTORS:
        raise ValueError(f"executor must be one of {_EXECUTORS}, got {executor!r}")
    cpus = os.cpu_count() or 1
    if executor == "auto":
        executor = "process" if cpus > 1 else "serial"
    # An explicit max_workers is honored as given; the default pool
    # width is the core count.
    workers = cpus if max_workers is None else max(1, max_workers)
    return executor, workers


def _execute_specs(
    indexed: "list[tuple[int, ScenarioSpec]]",
    runner: Callable[[ScenarioSpec], ScenarioResult],
    chosen: str,
    workers: int,
    on_result: Callable[[ScenarioResult], None] | None = None,
) -> "dict[int, ScenarioResult]":
    """Run ``(index, spec)`` pairs, invoking ``on_result`` as each finishes.

    Completion order drives the callback (that's what makes aggregation
    incremental); the returned mapping restores submission order.
    """
    out: dict[int, ScenarioResult] = {}
    if chosen == "serial" or len(indexed) <= 1:
        for idx, spec in indexed:
            r = runner(spec)
            out[idx] = r
            if on_result is not None:
                on_result(r)
        return out
    pool_cls = ThreadPoolExecutor if chosen == "thread" else ProcessPoolExecutor
    with pool_cls(max_workers=workers) as pool:
        pending = {pool.submit(runner, spec): idx for idx, spec in indexed}
        while pending:
            done, _ = wait(pending, return_when=FIRST_COMPLETED)
            for fut in done:
                idx = pending.pop(fut)
                r = fut.result()
                out[idx] = r
                if on_result is not None:
                    on_result(r)
    return out


def run_fleet(
    scenarios: Iterable[ScenarioSpec],
    *,
    executor: str = "auto",
    max_workers: int | None = None,
) -> FleetResult:
    """Execute a batch of scenarios and aggregate into a :class:`FleetResult`.

    Parameters
    ----------
    scenarios:
        Specs to run (typically ``grid.expand()``).
    executor:
        ``"serial"``, ``"thread"``, ``"process"``, or ``"auto"``
        (process pool on multi-core hosts, serial otherwise).  Results
        are identical across executors; only wall time changes.
    max_workers:
        Pool width cap (defaults to ``os.cpu_count()``).

    The per-scenario results keep submission order regardless of
    completion order.  For persistent/resumable sweeps use
    :func:`run_grid` with a :class:`~repro.runtime.sweep_store.SweepStore`.
    """
    specs = list(scenarios)
    chosen, workers = _resolve_executor(executor, max_workers)
    if chosen != "serial" and len(specs) <= 1:
        chosen = "serial"
    t0 = time.perf_counter()
    slots = _execute_specs(list(enumerate(specs)), run_scenario, chosen, workers)
    return FleetResult(
        results=tuple(slots[i] for i in range(len(specs))),
        wall_time=time.perf_counter() - t0,
        executor=chosen,
        max_workers=workers,
    )


def run_grid(
    grid_or_specs: Any,
    *,
    store: Any = None,
    resume: Any = None,
    keep_traces: bool = False,
    trace_chunk_size: int | None = None,
    executor: str = "auto",
    max_workers: int | None = None,
) -> FleetResult:
    """Execute a scenario grid with per-scenario persistence and resume.

    Parameters
    ----------
    grid_or_specs:
        A :class:`~repro.scenarios.spec.ScenarioGrid` or an iterable of
        specs.
    store:
        A :class:`~repro.runtime.sweep_store.SweepStore` or directory
        path.  When given, the manifest is written up front and one
        ``results/<content_hash>.json`` row lands *as each scenario
        finishes* (plus ``traces/<content_hash>.npz`` with
        ``keep_traces``), so a killed sweep loses at most the scenarios
        in flight.  ``None`` degrades to a plain in-memory fleet run.
    resume:
        A store (or path) holding a previous, possibly partial, run of
        the same scenarios.  Completed scenarios — recognized by
        content hash — are loaded instead of re-executed; because every
        spec carries its own independent seed, the resumed
        :class:`FleetResult` is bit-identical to an uninterrupted one.
        ``resume=True`` reuses ``store``.  A path that names no
        existing store raises ``FileNotFoundError`` (a typo must not
        silently re-run the whole sweep); with ``keep_traces``, rows
        whose trace file is missing are re-executed so the store ends
        up complete; resuming into a *different* ``store`` copies rows
        and traces over.
    keep_traces:
        Persist each scenario's realized trace into the store.  Traces
        record through a disk-spilling trace store and are saved (and
        dropped) inside the worker, so fleet memory stays bounded
        regardless of scenario count; the per-worker peak is the one
        trace each engine still materializes at end of run.
    trace_chunk_size:
        Rows per trace chunk for ``keep_traces`` recording (default
        :attr:`~repro.core.trace.TraceStore.DEFAULT_CHUNK_SIZE`).

    Returns the same :class:`FleetResult` a plain :func:`run_fleet`
    would have produced, with ``trace_path``/``info`` populated.
    """
    from repro.runtime.sweep_store import SweepStore
    from repro.scenarios.spec import ScenarioGrid

    if isinstance(grid_or_specs, ScenarioGrid):
        specs = list(grid_or_specs.expand())
    else:
        specs = list(grid_or_specs)

    if resume is True:
        if store is None:
            raise ValueError("resume=True requires a store")
        resume = store
    if resume is not None and not isinstance(resume, SweepStore) and store is not None:
        # Equivalent paths count as the same store, however spelled.
        store_root = store.root if isinstance(store, SweepStore) else pathlib.Path(store)
        if pathlib.Path(resume).resolve() == store_root.resolve():
            resume = store
    if resume is not None and not isinstance(resume, SweepStore):
        # A resume target must already exist: silently creating an
        # empty store from a typo'd path would re-execute the whole
        # sweep instead of erroring.
        resume = SweepStore(resume, create=False)
    if store is None and resume is not None:
        store = resume
    sweep: SweepStore | None = None
    if store is not None:
        sweep = store if isinstance(store, SweepStore) else SweepStore(store)
    if keep_traces and sweep is None:
        raise ValueError("keep_traces requires a store")
    resume_store: SweepStore | None = None
    if resume is not None:
        # Usually the same store; resuming *into* a different one is
        # allowed (completed rows and traces copy over, new rows land
        # in `store`).
        if resume is store or resume is sweep:
            resume_store = sweep
        else:
            same = resume.root.resolve() == sweep.root.resolve()
            resume_store = sweep if same else resume

    chosen, workers = _resolve_executor(executor, max_workers)
    t0 = time.perf_counter()

    slots: dict[int, ScenarioResult] = {}
    to_run: list[tuple[int, ScenarioSpec]] = []
    if resume_store is not None:
        for idx, spec in enumerate(specs):
            # One completeness rule, shared with the CLI banner: rows
            # from a traceless earlier run (or with a dangling trace
            # reference) re-run under keep_traces — results are
            # deterministic, so regenerating costs one scenario, not
            # correctness.
            loaded = resume_store.load_complete_result(
                spec, require_trace=keep_traces
            )
            h = spec.content_hash
            if loaded is None:
                to_run.append((idx, spec))
                continue
            if resume_store is not sweep:
                if resume_store.has_trace(h):
                    sweep.traces_dir.mkdir(parents=True, exist_ok=True)
                    shutil.copyfile(resume_store.trace_path(h), sweep.trace_path(h))
                    loaded = replace(loaded, trace_path=str(sweep.trace_path(h)))
                sweep.write_result(loaded)  # new store gets the full set
            slots[idx] = loaded
    else:
        to_run = list(enumerate(specs))

    runner: Callable[[ScenarioSpec], ScenarioResult] = run_scenario
    if sweep is not None:
        sweep.write_manifest(specs)
        if keep_traces:
            runner = functools.partial(
                run_scenario,
                trace_dir=sweep.traces_dir,
                spill_dir=sweep.tmp_dir,
                trace_chunk_size=trace_chunk_size,
            )

    on_result = None if sweep is None else sweep.write_result
    if chosen != "serial" and len(to_run) <= 1:
        chosen = "serial"
    slots.update(_execute_specs(to_run, runner, chosen, workers, on_result))

    fleet = FleetResult(
        results=tuple(slots[i] for i in range(len(specs))),
        wall_time=time.perf_counter() - t0,
        executor=chosen,
        max_workers=workers,
    )
    if sweep is not None:
        sweep.write_fleet(fleet)
    return fleet
