"""The scenario fleet: concurrent execution of declarative scenario grids.

The paper's claims (async vs sync efficiency, flexible-communication
gain, robustness across delay regimes) are statistical — they hold
across many seeds, regimes and problem instances, never on a single
run.  The fleet runner is the machinery that makes such populations
cheap: hand it the :class:`~repro.scenarios.spec.ScenarioSpec` list of
a :class:`~repro.scenarios.spec.ScenarioGrid` and it executes every
scenario (concurrently when the hardware allows), collects one typed
:class:`ScenarioResult` each, and aggregates them into a
:class:`FleetResult` that the analysis layer, the benchmark harness and
``python -m repro sweep`` all consume.

Determinism: every spec carries its own integer seed (spawned
independently by the grid), and results are returned in submission
order — so the ``FleetResult`` is bit-identical whether scenarios ran
serially, on a thread pool, or on a process pool.
"""

from __future__ import annotations

import json
import os
import statistics
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import asdict, dataclass
from typing import Any, Callable, Iterable, Sequence

import numpy as np

from repro.scenarios.spec import ScenarioSpec

__all__ = ["ScenarioResult", "FleetResult", "run_scenario", "run_fleet"]

_EXECUTORS = ("auto", "serial", "thread", "process")

#: Metrics exposed by :meth:`FleetResult.group_medians` / ``to_rows``.
METRIC_FIELDS = ("iterations", "final_residual", "final_error", "sim_time",
                 "time_to_tol", "wall_time")


@dataclass(frozen=True)
class ScenarioResult:
    """Outcome of one scenario (plain data, picklable).

    ``error`` holds the exception ``repr`` when the scenario crashed;
    every numeric field is then zero/None and ``converged`` is False.
    """

    key: str
    spec: ScenarioSpec
    iterations: int = 0
    converged: bool = False
    final_residual: float = float("nan")
    final_error: float | None = None
    sim_time: float | None = None
    time_to_tol: float | None = None
    wall_time: float = 0.0
    error: str | None = None


@dataclass(frozen=True)
class FleetResult:
    """Aggregate outcome of one fleet execution.

    Results appear in submission order.  ``wall_time`` is the whole
    fleet's wall-clock duration, which with ``scenario_count`` yields
    the scenarios/sec throughput the perf harness tracks.
    """

    results: tuple[ScenarioResult, ...]
    wall_time: float
    executor: str
    max_workers: int

    # -- basic accessors ----------------------------------------------
    @property
    def scenario_count(self) -> int:
        return len(self.results)

    @property
    def scenarios_per_sec(self) -> float:
        if self.wall_time <= 0:
            return float("inf")
        return self.scenario_count / self.wall_time

    def ok(self) -> tuple[ScenarioResult, ...]:
        """Results that completed without raising."""
        return tuple(r for r in self.results if r.error is None)

    def failures(self) -> tuple[ScenarioResult, ...]:
        """Results whose scenario crashed (``error`` is the repr)."""
        return tuple(r for r in self.results if r.error is not None)

    def converged_fraction(self) -> float:
        """Fraction of non-failed scenarios that reached tolerance."""
        good = self.ok()
        if not good:
            return 0.0
        return sum(1 for r in good if r.converged) / len(good)

    # -- aggregation --------------------------------------------------
    def group_medians(
        self,
        by: Callable[[ScenarioResult], tuple[Any, ...]] | Sequence[str] = ("problem",),
        metrics: Sequence[str] = ("iterations", "final_residual"),
    ) -> dict[tuple[Any, ...], dict[str, float]]:
        """Median of each metric over groups of non-failed scenarios.

        ``by`` is either a key function on results or a sequence of
        :class:`~repro.scenarios.spec.ScenarioSpec` field names
        (e.g. ``("problem", "delays")``); metrics are drawn from
        ``METRIC_FIELDS`` plus ``converged`` (reported as a fraction).
        ``None``/non-finite metric values are skipped; a group whose
        values all vanish reports ``nan``.
        """
        if not callable(by):
            fields = tuple(by)
            by = lambda r: tuple(getattr(r.spec, f) for f in fields)  # noqa: E731
        groups: dict[tuple[Any, ...], list[ScenarioResult]] = {}
        for r in self.ok():
            groups.setdefault(by(r), []).append(r)
        out: dict[tuple[Any, ...], dict[str, float]] = {}
        for gkey in sorted(groups, key=repr):
            rows = groups[gkey]
            agg: dict[str, float] = {"count": float(len(rows))}
            for m in metrics:
                if m == "converged":
                    agg[m] = sum(1 for r in rows if r.converged) / len(rows)
                    continue
                if m not in METRIC_FIELDS:
                    raise KeyError(f"unknown metric {m!r}; choose from {METRIC_FIELDS}")
                vals = [
                    float(getattr(r, m))
                    for r in rows
                    if getattr(r, m) is not None and np.isfinite(getattr(r, m))
                ]
                agg[m] = statistics.median(vals) if vals else float("nan")
            out[gkey] = agg
        return out

    def to_rows(
        self, metrics: Sequence[str] = ("iterations", "converged", "final_residual")
    ) -> list[list[Any]]:
        """One row per scenario: ``[key, *metrics]`` (for render_table)."""
        rows: list[list[Any]] = []
        for r in self.results:
            row: list[Any] = [r.key]
            for m in metrics:
                row.append("ERROR" if r.error is not None else getattr(r, m))
            rows.append(row)
        return rows

    # -- persistence --------------------------------------------------
    def to_json(self) -> str:
        """JSON document with per-scenario records and fleet stats."""
        doc = {
            "executor": self.executor,
            "max_workers": self.max_workers,
            "wall_time": self.wall_time,
            "scenario_count": self.scenario_count,
            "scenarios_per_sec": self.scenarios_per_sec,
            "results": [asdict(r) for r in self.results],
        }

        def _default(o: Any) -> Any:
            if isinstance(o, (np.floating, np.integer)):
                return o.item()
            raise TypeError(f"not JSON serializable: {type(o)}")

        return json.dumps(doc, indent=2, default=_default)

    @classmethod
    def from_json(cls, doc: "str | dict[str, Any]") -> "FleetResult":
        """Reconstruct a :class:`FleetResult` from :meth:`to_json` output.

        Accepts the JSON text or an already-parsed document.  Specs are
        rebuilt as real :class:`~repro.scenarios.spec.ScenarioSpec`
        objects (re-validated against the current registries), so a
        persisted sweep round-trips into the same typed API the live
        fleet returns.
        """
        if isinstance(doc, str):
            doc = json.loads(doc)
        results = []
        for record in doc["results"]:
            record = dict(record)
            spec = ScenarioSpec(**record.pop("spec"))
            results.append(ScenarioResult(spec=spec, **record))
        return cls(
            results=tuple(results),
            wall_time=float(doc["wall_time"]),
            executor=str(doc["executor"]),
            max_workers=int(doc["max_workers"]),
        )


# ----------------------------------------------------------------------
# Scenario execution (top-level so process pools can pickle it)
# ----------------------------------------------------------------------

def run_scenario(spec: ScenarioSpec) -> ScenarioResult:
    """Execute one scenario spec and summarize it as a :class:`ScenarioResult`.

    Never raises for scenario-level errors: crashes are captured in
    ``result.error`` so one bad grid point cannot sink a fleet.
    """
    t0 = time.perf_counter()
    try:
        result = _run_scenario_inner(spec)
    except Exception as exc:  # noqa: BLE001 - captured per scenario by design
        return ScenarioResult(
            key=spec.key, spec=spec, error=repr(exc),
            wall_time=time.perf_counter() - t0,
        )
    return result


def _run_scenario_inner(spec: ScenarioSpec) -> ScenarioResult:
    # Imported lazily: keeps fleet importable without dragging the
    # whole library into every worker before it is needed.
    from repro.analysis.rates import time_to_tolerance
    from repro.runtime import backends as _backends
    from repro.scenarios import registry

    t0 = time.perf_counter()
    backend = _backends.get_backend(spec.backend)
    seeds = spec.spawn_seeds()
    op = registry.make_problem(spec.problem, seeds[0], **spec.problem_params)
    n = op.n_components
    request = _backends.ExecutionRequest(
        operator=op,
        x0=np.zeros(op.dim),
        max_iterations=spec.max_iterations,
        tol=spec.tol,
        seed=seeds[1],
    )
    if backend.kind == "model":
        request.steering = registry.make_steering(
            spec.steering, n, seeds[1], **spec.steering_params
        )
        request.delays = registry.make_delays(spec.delays, n, seeds[2], **spec.delay_params)
        # Backend-internal randomness (e.g. flexible's default partial
        # model) gets its own stream, independent of the ingredients.
        request.seed = seeds[4]
    else:
        # Machine substrate: the archetype yields processors + channels
        # (the shared-memory backend keeps only the processor count).
        request.processors, request.channels = registry.make_machine(
            spec.machine, n, seeds[3], **spec.machine_params
        )
        request.options["record_messages"] = False
        # The fleet summarizes scalar outcomes; skip the per-update
        # trace recording of the shared-memory backend.
        request.options["record_trace"] = False
    res = backend.execute(request)

    trace = res.trace
    final_error = (
        float(trace.errors[-1])
        if trace is not None and trace.errors is not None
        else None
    )
    ttt = None
    if (
        spec.tol > 0
        and trace is not None
        and trace.residuals is not None
        and trace.times is not None
    ):
        ttt = time_to_tolerance(trace.residuals, trace.times, spec.tol)
    return ScenarioResult(
        key=spec.key,
        spec=spec,
        iterations=res.iterations,
        converged=res.converged,
        final_residual=float(res.final_residual),
        final_error=final_error,
        sim_time=None if res.final_time is None else float(res.final_time),
        time_to_tol=ttt,
        wall_time=time.perf_counter() - t0,
    )


# ----------------------------------------------------------------------
# Fleet execution
# ----------------------------------------------------------------------

def _resolve_executor(executor: str, max_workers: int | None) -> tuple[str, int]:
    if executor not in _EXECUTORS:
        raise ValueError(f"executor must be one of {_EXECUTORS}, got {executor!r}")
    cpus = os.cpu_count() or 1
    if executor == "auto":
        executor = "process" if cpus > 1 else "serial"
    # An explicit max_workers is honored as given; the default pool
    # width is the core count.
    workers = cpus if max_workers is None else max(1, max_workers)
    return executor, workers


def run_fleet(
    scenarios: Iterable[ScenarioSpec],
    *,
    executor: str = "auto",
    max_workers: int | None = None,
) -> FleetResult:
    """Execute a batch of scenarios and aggregate into a :class:`FleetResult`.

    Parameters
    ----------
    scenarios:
        Specs to run (typically ``grid.expand()``).
    executor:
        ``"serial"``, ``"thread"``, ``"process"``, or ``"auto"``
        (process pool on multi-core hosts, serial otherwise).  Results
        are identical across executors; only wall time changes.
    max_workers:
        Pool width cap (defaults to ``os.cpu_count()``).

    The per-scenario results keep submission order regardless of
    completion order.
    """
    specs = list(scenarios)
    chosen, workers = _resolve_executor(executor, max_workers)
    t0 = time.perf_counter()
    if chosen == "serial" or len(specs) <= 1:
        results = [run_scenario(s) for s in specs]
        chosen = "serial"
    else:
        pool_cls = ThreadPoolExecutor if chosen == "thread" else ProcessPoolExecutor
        with pool_cls(max_workers=workers) as pool:
            results = list(pool.map(run_scenario, specs))
    return FleetResult(
        results=tuple(results),
        wall_time=time.perf_counter() - t0,
        executor=chosen,
        max_workers=workers,
    )
