"""The scenario fleet: concurrent execution of declarative scenario grids.

The paper's claims (async vs sync efficiency, flexible-communication
gain, robustness across delay regimes) are statistical — they hold
across many seeds, regimes and problem instances, never on a single
run.  The fleet runner is the machinery that makes such populations
cheap: hand it the :class:`~repro.scenarios.spec.ScenarioSpec` list of
a :class:`~repro.scenarios.spec.ScenarioGrid` and it executes every
scenario (concurrently when the hardware allows), collects one typed
:class:`ScenarioResult` each, and aggregates them into a
:class:`FleetResult` that the analysis layer, the benchmark harness and
``python -m repro sweep`` all consume.

:func:`run_grid` is the streaming entry point: given a
:class:`~repro.runtime.sweep_store.SweepStore` it persists one summary
row (and optionally the realized trace) per scenario *as workers
finish*, keyed by the spec's content hash — so a sweep killed at
scenario 180/200 resumes with ``run_grid(..., resume=store)`` and only
executes the missing twenty.

Pool dispatch is *chunked*: specs are packed into per-task chunks
balanced by expected cost (``chunk_size="auto"`` targets about
``4 × workers`` tasks), so one pickle/IPC round-trip amortizes over
many scenarios and a pool ``initializer`` pre-imports the registries
and backends once per worker instead of once per task.  Grids of many
small scenarios stop being dominated by dispatch overhead; results
still stream to the store per scenario.

Determinism: every spec carries its own integer seed (spawned
independently by the grid), and results are returned in submission
order — so the ``FleetResult`` is bit-identical whether scenarios ran
serially, on a thread pool, on a process pool, chunked or per-task, or
across an interrupted-and-resumed pair of invocations.
"""

from __future__ import annotations

import functools
import heapq
import json
import math
import os
import pathlib
import shutil
import statistics
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import asdict, dataclass, field, replace
from typing import Any, Callable, Iterable, Sequence

import numpy as np

from repro.scenarios.spec import ScenarioSpec
from repro.utils.serialization import json_safe, strict_finite

__all__ = [
    "CACHE_ENV_VAR",
    "ScenarioResult",
    "FleetResult",
    "execute_scenario",
    "run_scenario",
    "run_fleet",
    "run_grid",
]

_EXECUTORS = ("auto", "serial", "thread", "process")

#: Environment variable naming the default cross-study result cache
#: directory consulted by :func:`run_grid` when ``cache=`` is unset.
CACHE_ENV_VAR = "REPRO_SWEEP_CACHE"

#: Metrics exposed by :meth:`FleetResult.group_medians` / ``to_rows``.
#: Boolean-valued metrics (``converged``) aggregate as rates, numeric
#: ones as medians.
METRIC_FIELDS = ("iterations", "converged", "final_residual", "final_error",
                 "sim_time", "time_to_tol", "wall_time")

#: ScenarioResult fields that may legitimately hold non-finite floats
#: (a diverged residual is ``inf``, a crashed row's is ``nan``).  They
#: persist as the JSON-string sentinels below — strictly valid JSON
#: that still round-trips the inf/nan distinction exactly, unlike a
#: lossy ``null``.
_NONFINITE_FIELDS = ("final_residual", "final_error", "sim_time", "time_to_tol")
_NONFINITE_SENTINELS = {"NaN": float("nan"), "Infinity": float("inf"),
                        "-Infinity": float("-inf")}


def _encode_nonfinite(value: Any) -> Any:
    """Non-finite float -> its JSON-string sentinel; all else unchanged."""
    if isinstance(value, float) and not math.isfinite(value):
        if math.isnan(value):
            return "NaN"
        return "Infinity" if value > 0 else "-Infinity"
    return value


def _decode_nonfinite(value: Any) -> Any:
    """Inverse of :func:`_encode_nonfinite` (sentinel string -> float)."""
    if isinstance(value, str):
        return _NONFINITE_SENTINELS.get(value, value)
    return value


@dataclass(frozen=True)
class ScenarioResult:
    """Outcome of one scenario (plain data, picklable).

    ``error`` holds the exception ``repr`` when the scenario crashed;
    every numeric field is then zero/None and ``converged`` is False.
    ``info`` carries the JSON-safe subset of the backend's run stats
    (constraint audits, message stats, per-worker update counts...) so
    solver extras survive persistence; ``trace_path`` points at the
    scenario's saved trace file when the sweep kept traces (``""``
    when traces were requested but the backend produced none, ``None``
    when they were never requested).
    """

    key: str
    spec: ScenarioSpec
    iterations: int = 0
    converged: bool = False
    final_residual: float = float("nan")
    final_error: float | None = None
    sim_time: float | None = None
    time_to_tol: float | None = None
    wall_time: float = 0.0
    error: str | None = None
    info: dict[str, Any] = field(default_factory=dict)
    trace_path: str | None = None

    @property
    def content_hash(self) -> str:
        """The spec's canonical content hash (the sweep-store key)."""
        return self.spec.content_hash

    # -- persistence --------------------------------------------------
    def to_json_dict(self) -> dict[str, Any]:
        """Strict-JSON record of this result (specs as field dicts).

        The spec persists as its canonical form — the same document
        its content hash digests — so a loaded result reconstructs a
        spec with the *same* content hash as the one that ran (plain
        ``json_safe`` would silently mangle array-valued params).
        Non-finite floats persist without the non-standard
        ``NaN``/``Infinity`` literals: the summary fields that
        legitimately go non-finite (a diverged residual is ``inf``, a
        crashed one ``nan``) use string sentinels that restore the
        exact value on load, and anything non-finite buried in the
        free-form ``info`` stats becomes ``null`` — either way the
        record stays valid for strict JSON parsers, not just Python's.
        """
        record = asdict(self)
        record["spec"] = self.spec.canonical()
        record["info"] = json_safe(self.info) or {}
        for f in _NONFINITE_FIELDS:
            record[f] = _encode_nonfinite(record[f])
        return strict_finite(json_safe(record))

    @classmethod
    def from_json_dict(cls, record: "dict[str, Any]") -> "ScenarioResult":
        """Rebuild a typed result from a :meth:`to_json_dict` record.

        The spec is re-validated against the current registries;
        records persisted before the ``info``/``trace_path`` fields
        existed load with empty defaults.  Non-finite sentinels
        (``"NaN"``/``"Infinity"``/``"-Infinity"``) restore to the
        exact float they encoded; a legacy ``final_residual: null``
        restores as ``nan`` so the field keeps its ``float`` type.
        """
        record = dict(record)
        spec = ScenarioSpec(**record.pop("spec"))
        for f in _NONFINITE_FIELDS:
            if f in record:
                record[f] = _decode_nonfinite(record[f])
        if record.get("final_residual") is None:
            record["final_residual"] = float("nan")
        return cls(spec=spec, **record)


def _group_medians(
    rows: "Iterable[Any]",
    by: "Callable[[Any], tuple[Any, ...]] | Sequence[str]",
    metrics: "Sequence[str]",
) -> "dict[tuple[Any, ...], dict[str, float]]":
    """Median of each metric over groups of non-failed rows.

    The one grouping implementation behind both
    :meth:`FleetResult.group_medians` (in-memory results) and
    :meth:`repro.runtime.sweep_store.StoreFleetView.group_medians`
    (rows streamed from a packed store) — ``rows`` only needs the
    metric attributes, ``spec`` and ``error``, so it accepts
    :class:`ScenarioResult` and :class:`~repro.runtime.sweep_store.RowView`
    alike.  Failed rows are skipped; only the grouped rows are held,
    never materialized result objects.
    """
    # Validate metric names before grouping: a typo must raise even
    # on an empty or all-failed fleet (zero groups would otherwise
    # skip the loop and pass silently).
    for m in metrics:
        if m not in METRIC_FIELDS:
            raise KeyError(f"unknown metric {m!r}; choose from {METRIC_FIELDS}")
    if not callable(by):
        fields = tuple(by)
        by = lambda r: tuple(getattr(r.spec, f) for f in fields)  # noqa: E731
    # Accumulate raw metric values, never the row objects themselves:
    # streamed rows must be droppable as soon as they're binned, or a
    # million-row group would pin a million RowViews.
    counts: dict[tuple[Any, ...], int] = {}
    values: dict[tuple[Any, ...], list[list[Any]]] = {}
    for r in rows:
        if r.error is not None:
            continue
        gkey = by(r)
        counts[gkey] = counts.get(gkey, 0) + 1
        vals = values.get(gkey)
        if vals is None:
            vals = values[gkey] = [[] for _ in metrics]
        for j, m in enumerate(metrics):
            v = getattr(r, m)
            if v is not None:
                vals[j].append(v)
    out: dict[tuple[Any, ...], dict[str, float]] = {}
    for gkey in sorted(counts, key=repr):
        agg: dict[str, float] = {"count": float(counts[gkey])}
        for j, m in enumerate(metrics):
            raw = values[gkey][j]
            if raw and all(isinstance(v, (bool, np.bool_)) for v in raw):
                agg[m] = sum(map(bool, raw)) / len(raw)
                continue
            vals_f = [float(v) for v in raw if np.isfinite(v)]
            agg[m] = statistics.median(vals_f) if vals_f else float("nan")
        out[gkey] = agg
    return out


@dataclass(frozen=True)
class FleetResult:
    """Aggregate outcome of one fleet execution.

    Results appear in submission order.  ``wall_time`` is the whole
    fleet's wall-clock duration, which with ``scenario_count`` yields
    the scenarios/sec throughput the perf harness tracks.
    """

    results: tuple[ScenarioResult, ...]
    wall_time: float
    executor: str
    max_workers: int

    # -- basic accessors ----------------------------------------------
    @property
    def scenario_count(self) -> int:
        return len(self.results)

    @property
    def scenarios_per_sec(self) -> float:
        """Throughput; ``0.0`` whenever no rate is measurable.

        That covers the empty fleet (no work, no rate) *and* a
        zero-duration aggregate — e.g. a grid satisfied entirely from a
        resume store or cross-study cache, whose reassembled rows can
        sum to ``wall_time == 0.0``.  Reporting ``0.0`` instead of
        ``inf`` keeps the value a plain JSON number, so
        :meth:`to_json` stays strictly valid and round-trips.
        """
        if self.scenario_count == 0 or self.wall_time <= 0:
            return 0.0
        return self.scenario_count / self.wall_time

    def ok(self) -> tuple[ScenarioResult, ...]:
        """Results that completed without raising."""
        return tuple(r for r in self.results if r.error is None)

    def failures(self) -> tuple[ScenarioResult, ...]:
        """Results whose scenario crashed (``error`` is the repr)."""
        return tuple(r for r in self.results if r.error is not None)

    def converged_fraction(self) -> float:
        """Fraction of non-failed scenarios that reached tolerance."""
        good = self.ok()
        if not good:
            return 0.0
        return sum(1 for r in good if r.converged) / len(good)

    # -- aggregation --------------------------------------------------
    def group_medians(
        self,
        by: Callable[[ScenarioResult], tuple[Any, ...]] | Sequence[str] = ("problem",),
        metrics: Sequence[str] = ("iterations", "final_residual"),
    ) -> dict[tuple[Any, ...], dict[str, float]]:
        """Median of each metric over groups of non-failed scenarios.

        ``by`` is either a key function on results or a sequence of
        :class:`~repro.scenarios.spec.ScenarioSpec` field names
        (e.g. ``("problem", "delays")``); metrics are drawn from
        ``METRIC_FIELDS``.  Boolean-valued metrics (``converged``)
        aggregate as the group's true-fraction — a well-defined rate —
        instead of a coerced float median; for numeric metrics,
        ``None``/non-finite values are skipped and a group whose values
        all vanish reports ``nan``.
        """
        return _group_medians(self.results, by, metrics)

    def to_rows(
        self, metrics: Sequence[str] = ("iterations", "converged", "final_residual")
    ) -> list[list[Any]]:
        """One row per scenario: ``[key, *metrics]`` (for render_table)."""
        rows: list[list[Any]] = []
        for r in self.results:
            row: list[Any] = [r.key]
            for m in metrics:
                row.append("ERROR" if r.error is not None else getattr(r, m))
            rows.append(row)
        return rows

    def digest(self) -> str:
        """SHA-256 certificate over the deterministic per-scenario fields.

        Matches :meth:`repro.runtime.sweep_store.SweepStore.digest` for
        a store holding the same completed scenarios, so an in-memory
        fleet and its persisted twin certify equality without a store
        ever existing (failed scenarios are excluded from both sides).
        """
        from repro.runtime.sweep_store import digest_rows

        return digest_rows((r.content_hash, r) for r in self.ok())

    # -- persistence --------------------------------------------------
    def to_json(self) -> str:
        """Strictly valid JSON document with per-scenario records and stats.

        Non-finite values (an unknown throughput, a failed row's
        ``nan`` residual) serialize as ``null``, never as the
        non-standard ``NaN``/``Infinity`` literals — the document must
        parse under ``json.loads`` with a strict ``parse_constant``
        and under non-Python consumers.
        """
        doc = {
            "executor": self.executor,
            "max_workers": self.max_workers,
            "wall_time": self.wall_time,
            "scenario_count": self.scenario_count,
            "scenarios_per_sec": self.scenarios_per_sec,
            "results": [r.to_json_dict() for r in self.results],
        }
        return json.dumps(strict_finite(doc), indent=2, allow_nan=False)

    @classmethod
    def from_json(cls, doc: "str | dict[str, Any]") -> "FleetResult":
        """Reconstruct a :class:`FleetResult` from :meth:`to_json` output.

        Accepts the JSON text or an already-parsed document.  Specs are
        rebuilt as real :class:`~repro.scenarios.spec.ScenarioSpec`
        objects (re-validated against the current registries), so a
        persisted sweep round-trips into the same typed API the live
        fleet returns — backend stats included (``info``).
        """
        if isinstance(doc, str):
            doc = json.loads(doc)
        results = tuple(ScenarioResult.from_json_dict(r) for r in doc["results"])
        # Documents written before scenarios_per_sec went finite could
        # hold "wall_time": null (a non-finite value nulled by the
        # strict-JSON encoder); restore it as 0.0 rather than crashing.
        wall_time = doc["wall_time"]
        return cls(
            results=results,
            wall_time=0.0 if wall_time is None else float(wall_time),
            executor=str(doc["executor"]),
            max_workers=int(doc["max_workers"]),
        )


# ----------------------------------------------------------------------
# Scenario execution (top-level so process pools can pickle it)
# ----------------------------------------------------------------------

def run_scenario(
    spec: ScenarioSpec,
    *,
    trace_dir: "str | os.PathLike[str] | None" = None,
    spill_dir: "str | os.PathLike[str] | None" = None,
    trace_chunk_size: int | None = None,
) -> ScenarioResult:
    """Execute one scenario spec and summarize it as a :class:`ScenarioResult`.

    Never raises for scenario-level errors: crashes are captured in
    ``result.error`` so one bad grid point cannot sink a fleet.

    With ``trace_dir`` the realized trace is saved there as
    ``<content_hash>.npz`` (recorded through a disk-spilling
    :class:`~repro.core.trace.TraceStore` rooted at ``spill_dir`` when
    given, so even very long traces stay within O(chunk) RAM while
    recording); the summary then carries ``trace_path`` instead of any
    in-memory trace.  Workers write their own trace files, so nothing
    trace-sized ever crosses a process-pool boundary.
    """
    t0 = time.perf_counter()
    try:
        result = _run_scenario_inner(
            spec, trace_dir=trace_dir, spill_dir=spill_dir,
            trace_chunk_size=trace_chunk_size,
        )
    except Exception as exc:  # noqa: BLE001 - captured per scenario by design
        return ScenarioResult(
            key=spec.key, spec=spec, error=repr(exc),
            wall_time=time.perf_counter() - t0,
        )
    return result


def _run_scenario_inner(
    spec: ScenarioSpec,
    *,
    trace_dir: "str | os.PathLike[str] | None" = None,
    spill_dir: "str | os.PathLike[str] | None" = None,
    trace_chunk_size: int | None = None,
) -> ScenarioResult:
    summary, _ = execute_scenario(
        spec, trace_dir=trace_dir, spill_dir=spill_dir,
        trace_chunk_size=trace_chunk_size,
    )
    return summary


def execute_scenario(
    spec: ScenarioSpec,
    *,
    trace_dir: "str | os.PathLike[str] | None" = None,
    spill_dir: "str | os.PathLike[str] | None" = None,
    trace_chunk_size: int | None = None,
) -> "tuple[ScenarioResult, Any]":
    """Run one spec, returning ``(summary, backend_result)``.

    The second element is the full
    :class:`~repro.runtime.backends.BackendRunResult` — final iterate,
    realized trace, backend stats — for callers (``repro.solve``) that
    need more than the fleet's scalar summary.  Unlike
    :func:`run_scenario` this *raises* on scenario errors.
    """
    # Imported lazily: keeps fleet importable without dragging the
    # whole library into every worker before it is needed.
    from repro.analysis.rates import time_to_tolerance
    from repro.runtime import backends as _backends
    from repro.scenarios import registry

    t0 = time.perf_counter()
    backend = _backends.get_backend(spec.backend)
    seeds = spec.spawn_seeds()
    op = registry.make_problem(spec.problem, seeds[0], **spec.problem_params)
    n = op.n_components
    request = _backends.ExecutionRequest(
        operator=op,
        x0=np.zeros(op.dim),
        max_iterations=spec.max_iterations,
        tol=spec.tol,
        seed=seeds[1],
    )
    if backend.kind == "model":
        request.steering = registry.make_steering(
            spec.steering, n, seeds[1], **spec.steering_params
        )
        request.delays = registry.make_delays(spec.delays, n, seeds[2], **spec.delay_params)
        # Backend-internal randomness (e.g. flexible's default partial
        # model) gets its own stream, independent of the ingredients.
        request.seed = seeds[4]
    else:
        # Machine substrate: the archetype yields processors + channels
        # (the shared-memory backend keeps only the processor count).
        request.processors, request.channels = registry.make_machine(
            spec.machine, n, seeds[3], **spec.machine_params
        )
        n_procs = len(request.processors)
        if spec.topology != "native":
            # An explicit channel graph replaces the archetype's fabric.
            topo = registry.make_topology(
                spec.topology, n_procs, seeds[6], **spec.topology_params
            )
            if topo is not None:
                request.channels = topo
        if spec.fault != "none":
            request.faults = registry.make_fault(
                spec.fault, n_procs, seeds[5], **spec.fault_params
            )
        request.options["record_messages"] = False
        # The fleet summarizes scalar outcomes; skip the per-update
        # trace recording of the shared-memory backend unless the
        # sweep is persisting traces.
        request.options["record_trace"] = trace_dir is not None

    content_hash = spec.content_hash
    scenario_spill: pathlib.Path | None = None
    trace_path: str | None = None
    if trace_dir is not None:
        path = pathlib.Path(trace_dir) / f"{content_hash}.npz"
        request.options["trace_path"] = path
        if spill_dir is not None:
            scenario_spill = pathlib.Path(spill_dir) / content_hash
            request.options["trace_spill_dir"] = scenario_spill
        if trace_chunk_size is not None:
            request.options["trace_chunk_size"] = int(trace_chunk_size)

    try:
        res = backend.execute(request)
    finally:
        if scenario_spill is not None:
            # The final .npz has everything; the spill chunks were
            # only the recording-time working set.
            shutil.rmtree(scenario_spill, ignore_errors=True)
    if trace_dir is not None:
        # "" = traces were requested but this backend produced none
        # (e.g. a shared-memory run with zero commits): the row is
        # complete, a re-run could never yield a trace.
        trace_path = (
            str(res.trace_handle.path) if res.trace_handle is not None else ""
        )

    trace = res.trace
    final_error = (
        float(trace.errors[-1])
        if trace is not None and trace.errors is not None
        else None
    )
    ttt = None
    if (
        spec.tol > 0
        and trace is not None
        and trace.residuals is not None
        and trace.times is not None
    ):
        ttt = time_to_tolerance(trace.residuals, trace.times, spec.tol)
    summary = ScenarioResult(
        key=spec.key,
        spec=spec,
        iterations=res.iterations,
        converged=res.converged,
        final_residual=float(res.final_residual),
        final_error=final_error,
        sim_time=None if res.final_time is None else float(res.final_time),
        time_to_tol=ttt,
        wall_time=time.perf_counter() - t0,
        info=json_safe(res.stats) or {},
        trace_path=trace_path,
    )
    return summary, res


# ----------------------------------------------------------------------
# Fleet execution
# ----------------------------------------------------------------------

def _resolve_executor(executor: str, max_workers: int | None) -> tuple[str, int]:
    if executor not in _EXECUTORS:
        raise ValueError(f"executor must be one of {_EXECUTORS}, got {executor!r}")
    # Same rule, same message as api.config.ExecutionSpec: a zero or
    # negative pool width is a caller error, not a request for 1.
    if max_workers is not None and max_workers < 1:
        raise ValueError(f"max_workers must be >= 1, got {max_workers}")
    cpus = os.cpu_count() or 1
    if executor == "auto":
        executor = "process" if cpus > 1 else "serial"
    # An explicit max_workers is honored as given; the default pool
    # width is the core count.
    workers = cpus if max_workers is None else max_workers
    return executor, workers


#: ``chunk_size="auto"`` packs the specs into about this many tasks
#: per pool worker — few enough to amortize pickle/IPC round-trips,
#: many enough that one slow chunk cannot idle the rest of the pool.
_AUTO_CHUNKS_PER_WORKER = 4


def _worker_init() -> None:
    """Pool initializer: import the heavy modules once per worker.

    Every scenario needs the backend registry, the ingredient
    registries and the rate-fit helpers; importing them at worker
    startup (instead of lazily inside the first task) takes the import
    cost out of every chunk's critical path.
    """
    import repro.analysis.rates  # noqa: F401
    import repro.runtime.backends  # noqa: F401
    import repro.scenarios.registry  # noqa: F401


def _check_chunk_size(chunk_size: "int | str") -> "int | str":
    if chunk_size == "auto":
        return chunk_size
    if isinstance(chunk_size, bool) or not isinstance(chunk_size, int):
        raise ValueError(f'chunk_size must be "auto" or a positive int, got {chunk_size!r}')
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    return chunk_size


def _spec_cost(spec: ScenarioSpec) -> float:
    """Expected-cost proxy for chunk balancing.

    The dominant per-scenario cost is iterations of the problem's
    update map, so the iteration budget is the packing weight (cf. the
    bar-charts packing view of batch balancing: pack by height, not by
    bar count).  Exact runtimes differ across problems, but a proxy
    only has to keep one chunk from hoarding all the long scenarios.
    """
    return float(spec.max_iterations)


def _pack_chunks(
    indexed: "list[tuple[int, ScenarioSpec]]",
    chunk_size: "int | str",
    workers: int,
) -> "list[list[tuple[int, ScenarioSpec]]]":
    """Pack ``(index, spec)`` pairs into cost-balanced dispatch chunks.

    ``"auto"`` targets ``_AUTO_CHUNKS_PER_WORKER × workers`` chunks; an
    explicit ``chunk_size`` is a *hard* upper bound on scenarios per
    chunk (a full chunk stops accepting, whatever its cost — callers
    cap chunk size to bound per-task memory and kill-loss granularity).
    Packing is greedy longest-processing-time: specs sorted by
    descending :func:`_spec_cost` land in the currently lightest chunk,
    so heterogeneous budgets spread instead of stacking into one
    straggler task.  Within a chunk, submission order is restored —
    the store sees rows in a deterministic order per chunk.
    """
    capacity = None
    if chunk_size == "auto":
        n_chunks = min(len(indexed), _AUTO_CHUNKS_PER_WORKER * max(1, workers))
    else:
        capacity = chunk_size
        n_chunks = min(len(indexed), math.ceil(len(indexed) / chunk_size))
    if n_chunks <= 1:
        return [list(indexed)] if indexed else []
    chunks: list[list[tuple[int, ScenarioSpec]]] = [[] for _ in range(n_chunks)]
    heap = [(0.0, b) for b in range(n_chunks)]
    heapq.heapify(heap)
    # Sort by cost descending, submission index ascending — fully
    # deterministic, so the chunk layout (and thus store write order
    # within a chunk) never depends on dict/hash ordering.
    for idx, spec in sorted(indexed, key=lambda p: (-_spec_cost(p[1]), p[0])):
        load, b = heapq.heappop(heap)
        chunks[b].append((idx, spec))
        if capacity is None or len(chunks[b]) < capacity:
            # A chunk at explicit capacity leaves the heap for good;
            # total capacity is >= the spec count by construction, so
            # the heap never runs dry.
            heapq.heappush(heap, (load + _spec_cost(spec), b))
    for chunk in chunks:
        chunk.sort(key=lambda p: p[0])
    return [c for c in chunks if c]


def _run_chunk(
    runner: Callable[[ScenarioSpec], ScenarioResult],
    specs: "list[ScenarioSpec]",
    batch: bool = False,
    jit: "bool | None" = None,
) -> "list[ScenarioResult]":
    """Execute one dispatch chunk inside a worker (top-level: picklable).

    With ``batch``, homogeneous runs of specs inside the chunk (same
    problem shape, models, machine kind and iteration budget — see
    :func:`~repro.runtime.simulator.batched.run_scenario_batch`) advance
    through one lockstep batched call instead of ``len(specs)`` solo
    calls; everything unbatchable, and any batch that fails mid-flight,
    still goes through ``runner`` one spec at a time.  Results are
    bit-identical either way.  ``jit`` forwards the compiled-kernel
    switch (``None``: defer to ``REPRO_JIT``).
    """
    if batch and len(specs) > 1:
        from repro.runtime.simulator.batched import run_scenario_batch

        return run_scenario_batch(specs, solo=runner, jit=jit)
    return [runner(spec) for spec in specs]


def _execute_specs(
    indexed: "list[tuple[int, ScenarioSpec]]",
    runner: Callable[[ScenarioSpec], ScenarioResult],
    chosen: str,
    workers: int,
    on_result: Callable[[ScenarioResult], None] | None = None,
    chunk_size: "int | str" = "auto",
    batch: bool = False,
    jit: "bool | None" = None,
) -> "dict[int, ScenarioResult]":
    """Run ``(index, spec)`` pairs, invoking ``on_result`` as each finishes.

    Pool executors dispatch cost-balanced *chunks* (one future per
    chunk, see :func:`_pack_chunks`), so per-task pickle/IPC overhead
    amortizes over many scenarios; ``on_result`` still fires once per
    scenario, in completion order of the chunks.  The returned mapping
    restores submission order.  With ``batch``, each chunk routes its
    homogeneous spec groups through the lockstep batched engine
    (:func:`_run_chunk`); the serial path then also runs chunk by chunk
    so store streaming keeps its per-chunk cadence instead of waiting
    on the whole grid.
    """
    out: dict[int, ScenarioResult] = {}
    if chosen == "serial" or len(indexed) <= 1:
        if batch and len(indexed) > 1:
            for chunk in _pack_chunks(indexed, chunk_size, workers):
                for (idx, _), r in zip(
                    chunk, _run_chunk(runner, [spec for _, spec in chunk], True, jit)
                ):
                    out[idx] = r
                    if on_result is not None:
                        on_result(r)
            return out
        for idx, spec in indexed:
            r = runner(spec)
            out[idx] = r
            if on_result is not None:
                on_result(r)
        return out
    pool_cls = ThreadPoolExecutor if chosen == "thread" else ProcessPoolExecutor
    chunks = _pack_chunks(indexed, chunk_size, workers)
    with pool_cls(max_workers=workers, initializer=_worker_init) as pool:
        pending = {
            pool.submit(
                _run_chunk, runner, [spec for _, spec in chunk], batch, jit
            ): chunk
            for chunk in chunks
        }
        while pending:
            done, _ = wait(pending, return_when=FIRST_COMPLETED)
            for fut in done:
                chunk = pending.pop(fut)
                for (idx, _), r in zip(chunk, fut.result()):
                    out[idx] = r
                    if on_result is not None:
                        on_result(r)
    return out


def run_fleet(
    scenarios: Iterable[ScenarioSpec],
    *,
    executor: str = "auto",
    max_workers: int | None = None,
    chunk_size: "int | str" = "auto",
    batch: bool = True,
    jit: "bool | None" = None,
) -> FleetResult:
    """Execute a batch of scenarios and aggregate into a :class:`FleetResult`.

    Parameters
    ----------
    scenarios:
        Specs to run (typically ``grid.expand()``).
    executor:
        ``"serial"``, ``"thread"``, ``"process"``, or ``"auto"``
        (process pool on multi-core hosts, serial otherwise).  Results
        are identical across executors; only wall time changes.
    max_workers:
        Pool width cap (defaults to ``os.cpu_count()``).
    chunk_size:
        Scenarios per dispatched pool task.  ``"auto"`` (default)
        packs cost-balanced chunks targeting about 4 tasks per worker;
        an explicit int bounds the chunk size (``1`` restores per-task
        dispatch).  Results are bit-identical either way.
    batch:
        Route homogeneous spec groups inside each chunk through the
        scenario-batched lockstep engine
        (:mod:`repro.runtime.simulator.batched`) instead of one solo
        call per scenario.  On (default), this changes throughput only:
        batched results are bit-identical per scenario, and anything
        the batched engine cannot take falls back to solo execution.
    jit:
        Compiled-kernel switch for the batched engine (see
        :mod:`repro.runtime.simulator.kernels`).  ``None`` (default)
        defers to the ``REPRO_JIT`` environment variable; ``True``
        requests the numba kernel (auto-disabled, with the reason
        recorded, when numba is missing or the bit-identity probe
        fails); ``False`` pins the numpy path.

    The per-scenario results keep submission order regardless of
    completion order.  For persistent/resumable sweeps use
    :func:`run_grid` with a :class:`~repro.runtime.sweep_store.SweepStore`.
    """
    specs = list(scenarios)
    chosen, workers = _resolve_executor(executor, max_workers)
    chunk_size = _check_chunk_size(chunk_size)
    if chosen != "serial" and len(specs) <= 1:
        chosen = "serial"
    t0 = time.perf_counter()
    slots = _execute_specs(
        list(enumerate(specs)), run_scenario, chosen, workers,
        chunk_size=chunk_size, batch=batch, jit=jit,
    )
    return FleetResult(
        results=tuple(slots[i] for i in range(len(specs))),
        wall_time=time.perf_counter() - t0,
        executor=chosen,
        max_workers=workers,
    )


def _resolve_cache(cache: Any, sweep: Any, resume_store: Any) -> Any:
    """``cache=`` argument -> an open cache store, or ``None``.

    ``None`` consults the ``REPRO_SWEEP_CACHE`` environment variable;
    ``False`` disables caching outright (the spelled-out opt-out for
    environments where the variable is exported globally).  The cache
    is an ordinary content-addressed :class:`SweepStore` directory —
    created on first use, never given a manifest — so any finished
    sweep store also works as a cache.  A cache that aliases the run's
    own store (or resume source) is dropped: those are already
    consulted, and double-writing rows to the same files would be pure
    churn.
    """
    from repro.runtime.sweep_store import SweepStore

    if cache is False:
        return None
    if cache is None:
        env = os.environ.get(CACHE_ENV_VAR, "").strip()
        if not env:
            return None
        cache = env
    if not isinstance(cache, SweepStore):
        cache = SweepStore(cache)
    for other in (sweep, resume_store):
        if other is not None and cache.root.resolve() == other.root.resolve():
            return None
    return cache


def _adopt_row(src: Any, sweep: Any, loaded: ScenarioResult) -> ScenarioResult:
    """Copy a row completed in ``src`` (resume source, cache, shard) into ``sweep``.

    The trace file (when present) is copied — atomically, since stores
    and caches are shared between hosts — and the row's ``trace_path``
    re-pointed, so the destination store is self-contained: deleting
    the source later cannot dangle it.
    """
    from repro.runtime.sweep_store import _atomic_copy

    h = loaded.content_hash
    if sweep is None:
        return loaded
    if src.has_trace(h):
        sweep.traces_dir.mkdir(parents=True, exist_ok=True)
        _atomic_copy(src.trace_path(h), sweep.trace_path(h))
        loaded = replace(loaded, trace_path=str(sweep.trace_path(h)))
    sweep.write_result(loaded)
    return loaded


def run_grid(
    grid_or_specs: Any,
    *,
    store: Any = None,
    resume: Any = None,
    cache: Any = None,
    keep_traces: bool = False,
    trace_chunk_size: int | None = None,
    executor: str = "auto",
    max_workers: int | None = None,
    chunk_size: "int | str" = "auto",
    batch: bool = True,
    jit: "bool | None" = None,
) -> FleetResult:
    """Execute a scenario grid with per-scenario persistence and resume.

    Parameters
    ----------
    grid_or_specs:
        A :class:`~repro.scenarios.spec.ScenarioGrid` or an iterable of
        specs.
    store:
        A :class:`~repro.runtime.sweep_store.SweepStore` or directory
        path.  When given, the manifest is written up front and one
        ``results/<content_hash>.json`` row lands *as each scenario
        finishes* (plus ``traces/<content_hash>.npz`` with
        ``keep_traces``), so a killed sweep loses at most the scenarios
        in flight.  ``None`` degrades to a plain in-memory fleet run.
    resume:
        A store (or path) holding a previous, possibly partial, run of
        the same scenarios.  Completed scenarios — recognized by
        content hash — are loaded instead of re-executed; because every
        spec carries its own independent seed, the resumed
        :class:`FleetResult` is bit-identical to an uninterrupted one.
        ``resume=True`` reuses ``store``.  A path that names no
        existing store raises ``FileNotFoundError`` (a typo must not
        silently re-run the whole sweep); with ``keep_traces``, rows
        whose trace file is missing are re-executed so the store ends
        up complete; resuming into a *different* ``store`` copies rows
        and traces over.
    cache:
        Cross-study result cache: a content-addressed store (path or
        :class:`~repro.runtime.sweep_store.SweepStore`) consulted *by
        content hash* before any scenario executes — after ``resume``
        — and written back as scenarios finish, so any scenario ever
        completed through the same cache resolves instantly in every
        later study.  ``None`` (default) consults the
        ``REPRO_SWEEP_CACHE`` environment variable; ``False`` disables
        caching.  Cache hits satisfy the same completeness rule as
        resume (a ``keep_traces`` run only accepts rows whose trace is
        cached too) and are bit-identical to executing: the digest of
        a cached sweep equals the cold one.
    keep_traces:
        Persist each scenario's realized trace into the store.  Traces
        record through a disk-spilling trace store and are saved (and
        dropped) inside the worker, so fleet memory stays bounded
        regardless of scenario count; the per-worker peak is the one
        trace each engine still materializes at end of run.
    trace_chunk_size:
        Rows per trace chunk for ``keep_traces`` recording (default
        :attr:`~repro.core.trace.TraceStore.DEFAULT_CHUNK_SIZE`).
    chunk_size:
        Scenarios per dispatched pool task (``"auto"``: cost-balanced
        chunks, about 4 tasks per worker; ``1``: per-task dispatch).
    batch:
        Batch homogeneous spec groups through the lockstep engine (see
        :func:`run_fleet`); bit-identical, throughput only.  Forced off
        by ``keep_traces`` — the batched engine summarizes scalars and
        records no traces, and a trace-keeping sweep must get a trace
        file per row.
    jit:
        Compiled-kernel switch for the batched engine (see
        :func:`run_fleet`); ``None`` defers to ``REPRO_JIT``.

    Returns the same :class:`FleetResult` a plain :func:`run_fleet`
    would have produced, with ``trace_path``/``info`` populated.
    """
    from repro.runtime.sweep_store import SweepStore
    from repro.scenarios.spec import ScenarioGrid

    if isinstance(grid_or_specs, ScenarioGrid):
        specs = list(grid_or_specs.expand())
    else:
        specs = list(grid_or_specs)

    if resume is True:
        if store is None:
            raise ValueError("resume=True requires a store")
        resume = store
    if resume is not None and not isinstance(resume, SweepStore) and store is not None:
        # Equivalent paths count as the same store, however spelled.
        store_root = store.root if isinstance(store, SweepStore) else pathlib.Path(store)
        if pathlib.Path(resume).resolve() == store_root.resolve():
            resume = store
    if resume is not None and not isinstance(resume, SweepStore):
        # A resume target must already exist: silently creating an
        # empty store from a typo'd path would re-execute the whole
        # sweep instead of erroring.
        resume = SweepStore(resume, create=False)
    if store is None and resume is not None:
        store = resume
    sweep: SweepStore | None = None
    if store is not None:
        sweep = store if isinstance(store, SweepStore) else SweepStore(store)
    if keep_traces and sweep is None:
        raise ValueError("keep_traces requires a store")
    resume_store: SweepStore | None = None
    if resume is not None:
        # Usually the same store; resuming *into* a different one is
        # allowed (completed rows and traces copy over, new rows land
        # in `store`).
        if resume is store or resume is sweep:
            resume_store = sweep
        else:
            same = resume.root.resolve() == sweep.root.resolve()
            resume_store = sweep if same else resume
    cache_store: SweepStore | None = _resolve_cache(cache, sweep, resume_store)

    chosen, workers = _resolve_executor(executor, max_workers)
    chunk_size = _check_chunk_size(chunk_size)
    t0 = time.perf_counter()

    # Lookup order: the resume store first (it is this sweep's own
    # history), then the cross-study cache.  Both apply the one
    # completeness rule (load_complete_result), so a keep_traces run
    # never accepts a traceless cached row.
    cache_done: set[str] = cache_store.completed() if cache_store is not None else set()
    slots: dict[int, ScenarioResult] = {}
    to_run: list[tuple[int, ScenarioSpec]] = []
    for idx, spec in enumerate(specs):
        h = spec.content_hash
        loaded = None
        if resume_store is not None:
            loaded = resume_store.load_complete_result(spec, require_trace=keep_traces)
            if loaded is not None and resume_store is not sweep:
                loaded = _adopt_row(resume_store, sweep, loaded)
        if loaded is None and cache_store is not None and h in cache_done:
            loaded = cache_store.load_complete_result(spec, require_trace=keep_traces)
            if loaded is not None:
                loaded = _adopt_row(cache_store, sweep, loaded)
        if loaded is None:
            to_run.append((idx, spec))
            continue
        if cache_store is not None and h not in cache_done:
            # Resume-loaded rows seed the cache too: "completed
            # anywhere" includes completed before the cache existed.
            # Traces ride along (via the same adopt path), so later
            # keep_traces studies can hit these rows as well.
            _adopt_row(sweep if sweep is not None else resume_store,
                       cache_store, loaded)
            cache_done.add(h)
        slots[idx] = loaded

    runner: Callable[[ScenarioSpec], ScenarioResult] = run_scenario
    if sweep is not None:
        sweep.write_manifest(specs)
        if keep_traces:
            runner = functools.partial(
                run_scenario,
                trace_dir=sweep.traces_dir,
                spill_dir=sweep.tmp_dir,
                trace_chunk_size=trace_chunk_size,
            )

    sinks: list[Callable[[ScenarioResult], None]] = []
    if sweep is not None:
        sinks.append(sweep.write_result)
    if cache_store is not None:
        def _cache_write(r: ScenarioResult) -> None:
            # Write-back: the scenario is now "completed somewhere",
            # so every later study sharing this cache skips it.  Kept
            # traces ride along (copied atomically, trace_path
            # re-pointed into the cache) so keep_traces runs hit too.
            if r.error is not None:
                return  # failures never count as completed work
            if sweep is not None:
                _adopt_row(sweep, cache_store, r)
            else:
                cache_store.write_result(r)
        sinks.append(_cache_write)

    def _fanout(r: ScenarioResult) -> None:
        for sink in sinks:
            sink(r)

    on_result = _fanout if sinks else None
    if chosen != "serial" and len(to_run) <= 1:
        chosen = "serial"
    slots.update(
        _execute_specs(
            to_run, runner, chosen, workers, on_result,
            chunk_size=chunk_size, batch=batch and not keep_traces, jit=jit,
        )
    )

    # Seal any in-flight append-log rows into packed batches now that
    # the sweep is done — readers work either way, but sealed stores
    # digest/merge at full columnar speed.
    for store in (sweep, cache_store):
        if store is not None and hasattr(store, "flush"):
            store.flush()

    fleet = FleetResult(
        results=tuple(slots[i] for i in range(len(specs))),
        wall_time=time.perf_counter() - t0,
        executor=chosen,
        max_workers=workers,
    )
    if sweep is not None:
        sweep.write_fleet(fleet)
    return fleet
