"""Real shared-memory asynchronous backend (Hogwild-style threads).

The simulator models a machine; this module *is* one, at laptop scale:
worker threads relax the components they own directly against a shared
NumPy iterate with no locks and no synchronization — the shared-memory
limit of the paper's model (data exchange "via writing in a shared
memory", Section II).  Python's GIL serializes bytecode, so this
backend demonstrates correctness of lock-free asynchronous iterations
and measures update throughput, not true parallel speedup (NumPy kernels
release the GIL, so there is still some overlap); wall-clock scaling
claims belong to the simulator.

Remark 3 of the paper (asynchronous training of large ML models) is
exercised by running :class:`SharedMemoryAsyncRunner` on the logistic
regression problems of :mod:`repro.problems.logistic`.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.trace import IterationTrace, TraceStore, resolve_sink
from repro.operators.base import FixedPointOperator
from repro.utils.validation import check_vector

__all__ = ["SharedMemoryResult", "SharedMemoryAsyncRunner"]


@dataclass
class SharedMemoryResult:
    """Outcome of a shared-memory asynchronous run.

    Attributes
    ----------
    x:
        Final shared iterate.
    converged:
        Whether the residual monitor hit the tolerance.
    total_updates:
        Component updates performed across all workers.
    updates_per_worker:
        Update counts keyed by worker id.
    wall_time:
        Elapsed wall-clock seconds.
    residual_history:
        ``(time, residual)`` samples from the monitor thread.
    final_residual:
        Fixed-point residual at the final iterate.
    trace:
        Realized ``(S, L)`` trace of the run when recording was
        requested (``None`` otherwise).  Commit order serializes the
        lock-free updates into global iterations; labels are the
        per-component versions each worker's snapshot held, so the
        trace is the hardware-induced instance of Definition 1.
    """

    x: np.ndarray
    converged: bool
    total_updates: int
    updates_per_worker: dict[int, int]
    wall_time: float
    residual_history: list[tuple[float, float]] = field(default_factory=list)
    final_residual: float = float("nan")
    trace: IterationTrace | None = None


class SharedMemoryAsyncRunner:
    """Lock-free multithreaded asynchronous fixed-point iteration.

    Parameters
    ----------
    operator:
        The fixed-point map; ``apply_block`` must be thread-safe for
        concurrent reads (all operators in this library are: they only
        read problem data and the iterate).
    n_workers:
        Number of threads; components are dealt round-robin.
    worker_sleep:
        Optional per-update sleep (seconds) injecting heterogeneity:
        scalar, or one value per worker (slow workers model load
        imbalance).
    monitor_interval:
        Residual sampling period (seconds) of the monitor thread.
    """

    def __init__(
        self,
        operator: FixedPointOperator,
        n_workers: int = 4,
        *,
        worker_sleep: float | list[float] = 0.0,
        monitor_interval: float = 0.005,
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        n = operator.n_components
        if n_workers > n:
            raise ValueError(
                f"n_workers {n_workers} exceeds component count {n}"
            )
        self.operator = operator
        self.n_workers = int(n_workers)
        if isinstance(worker_sleep, (int, float)):
            self._sleeps = [float(worker_sleep)] * self.n_workers
        else:
            if len(worker_sleep) != self.n_workers:
                raise ValueError(
                    f"worker_sleep must have {self.n_workers} entries, got {len(worker_sleep)}"
                )
            self._sleeps = [float(s) for s in worker_sleep]
        if any(s < 0 for s in self._sleeps):
            raise ValueError("worker_sleep values must be >= 0")
        if monitor_interval <= 0:
            raise ValueError(f"monitor_interval must be positive, got {monitor_interval}")
        self.monitor_interval = float(monitor_interval)
        self._partition = [
            tuple(range(w, n, self.n_workers)) for w in range(self.n_workers)
        ]

    def run(
        self,
        x0: np.ndarray,
        *,
        max_updates: int = 100_000,
        tol: float = 1e-8,
        timeout: float = 60.0,
        record_trace: bool = False,
        sink: TraceStore | None = None,
    ) -> SharedMemoryResult:
        """Run until tolerance, update budget or timeout.

        The shared iterate is read and written without locks; the
        monitor thread samples the residual and raises the stop flag.
        With ``record_trace`` every commit also logs its global
        iteration number (the order in which the shared counter was
        drawn) and the per-component version labels its snapshot held,
        yielding a realized :class:`~repro.core.trace.IterationTrace`.
        Labels are exact under the commit serialization (a snapshot can
        only hold versions committed strictly before the reader's own
        commit number), but the value/label pairing of *other*
        components is best-effort under races — that inconsistency is
        the Hogwild model, not a recording bug.
        """
        x0 = check_vector(x0, "x0", dim=self.operator.dim)
        if max_updates < 1:
            raise ValueError(f"max_updates must be >= 1, got {max_updates}")
        shared = x0.copy()
        n = self.operator.n_components
        spec = self.operator.block_spec
        stop = threading.Event()
        update_counter = itertools.count()
        counts = [0] * self.n_workers
        history: list[tuple[float, float]] = []
        # Per-component version labels (last committed global iteration)
        # and the commit log; list.append and single-element ndarray
        # writes are atomic under the GIL.
        labels_shared = np.zeros(n, dtype=np.int64)
        commits: list[tuple[int, int, np.ndarray]] = []
        # All workers are released together once every thread is up, so
        # a small update budget cannot be consumed by the first thread
        # before the others have even been scheduled.
        start_gate = threading.Event()
        t_start = time.perf_counter()

        def worker(wid: int) -> None:
            comps = self._partition[wid]
            sleep = self._sleeps[wid]
            yield_gil = self.n_workers > 1
            k = 0
            start_gate.wait()
            while not stop.is_set():
                comp = comps[k % len(comps)]
                k += 1
                # Inconsistent read of the shared iterate (Hogwild): the
                # vector may be mid-write elsewhere; that *is* the model.
                local = shared.copy()
                label_snap = labels_shared.copy() if record_trace else None
                new_block = self.operator.apply_block(local, comp)
                shared[spec.slice(comp)] = new_block
                counts[wid] += 1
                total = next(update_counter)
                if record_trace:
                    # Global iteration numbers are 1-based draw order;
                    # every label in the snapshot was committed before
                    # this draw, so label <= j - 1 holds by construction.
                    j = total + 1
                    labels_shared[comp] = j
                    commits.append((j, comp, label_snap))
                if total + 1 >= max_updates:
                    stop.set()
                # Real Hogwild cores interleave at instruction granularity;
                # under the GIL a thread would otherwise hog a whole 5 ms
                # quantum (thousands of updates), starving its peers on
                # small budgets.  sleep(0) yields the GIL after every
                # commit, modelling fine-grained hardware interleaving
                # (pointless with a single worker, so skipped there).
                if sleep > 0.0:
                    time.sleep(sleep)
                elif yield_gil:
                    time.sleep(0)

        def monitor() -> None:
            while not stop.is_set():
                res = self.operator.residual(shared.copy())
                history.append((time.perf_counter() - t_start, res))
                if res < tol:
                    stop.set()
                    return
                if time.perf_counter() - t_start > timeout:
                    stop.set()
                    return
                time.sleep(self.monitor_interval)

        threads = [
            threading.Thread(target=worker, args=(w,), daemon=True)
            for w in range(self.n_workers)
        ]
        mon = threading.Thread(target=monitor, daemon=True)
        for t in threads:
            t.start()
        mon.start()
        start_gate.set()
        for t in threads:
            t.join()
        mon.join()
        wall = time.perf_counter() - t_start
        final = shared.copy()
        final_res = self.operator.residual(final)
        trace: IterationTrace | None = None
        if record_trace and commits:
            owners = np.arange(n, dtype=np.int64) % self.n_workers
            builder = resolve_sink(sink, n, owners=owners)
            builder.meta["backend"] = "shared-memory"
            builder.meta["n_workers"] = self.n_workers
            for _, comp, label_snap in sorted(commits, key=lambda c: c[0]):
                builder.record((comp,), label_snap)
            trace = builder.build()
        return SharedMemoryResult(
            x=final,
            converged=final_res < tol,
            total_updates=sum(counts),
            updates_per_worker={w: counts[w] for w in range(self.n_workers)},
            wall_time=wall,
            residual_history=history,
            final_residual=final_res,
            trace=trace,
        )
