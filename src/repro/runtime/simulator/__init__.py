"""Discrete-event simulator of parallel/distributed asynchronous machines.

The hardware substitute for the paper's historical testbeds: seeded,
deterministic, and emitting the same :class:`~repro.core.trace.IterationTrace`
the mathematical engines produce, so every theoretical object
(macro-iterations, epochs, Theorem 1 bounds, admissibility) is
measurable on simulated hardware runs.
"""

from repro.runtime.simulator.batched import (
    LockstepIncompatible,
    batchable,
    run_scenario_batch,
)
from repro.runtime.simulator.channel import ChannelSpec, ChannelState
from repro.runtime.simulator.engine import DistributedSimulator
from repro.runtime.simulator.faults import (
    ChaosFault,
    CrashRestart,
    FaultLog,
    FaultModel,
    FaultState,
    Limplock,
    LossyChannel,
    ReorderingChannel,
    clique_topology,
    ring_topology,
    star_topology,
    two_tier_topology,
)
from repro.runtime.simulator.network import (
    shared_memory_network,
    two_cluster_grid,
    uniform_cluster,
    wide_area_network,
)
from repro.runtime.simulator.processor import ProcessorSpec
from repro.runtime.simulator.records import MessageRecord, PhaseRecord, SimulationResult
from repro.runtime.simulator.reference import ReferenceSimulator
from repro.runtime.simulator.timing import (
    ConstantTime,
    DurationModel,
    ExponentialTime,
    LinearGrowthTime,
    ParetoTime,
    UniformTime,
)

__all__ = [
    "ChannelSpec",
    "ChannelState",
    "ChaosFault",
    "ConstantTime",
    "CrashRestart",
    "DistributedSimulator",
    "DurationModel",
    "ExponentialTime",
    "FaultLog",
    "FaultModel",
    "FaultState",
    "Limplock",
    "LinearGrowthTime",
    "LockstepIncompatible",
    "LossyChannel",
    "MessageRecord",
    "ParetoTime",
    "PhaseRecord",
    "ProcessorSpec",
    "ReferenceSimulator",
    "ReorderingChannel",
    "SimulationResult",
    "UniformTime",
    "batchable",
    "clique_topology",
    "ring_topology",
    "run_scenario_batch",
    "shared_memory_network",
    "star_topology",
    "two_cluster_grid",
    "two_tier_topology",
    "uniform_cluster",
    "wide_area_network",
]
