"""Scenario-batched lockstep execution of homogeneous spec groups.

The fleet's per-scenario cost floor is Python dispatch: one
:func:`~repro.runtime.fleet.run_scenario` call per grid point pays for
backend lookup, engine construction, trace bookkeeping and per-iteration
interpreter overhead even when the scenario itself is six floats wide
and four iterations deep.  The paper's delay-regime sweeps are exactly
such populations — thousands of *same-shape* scenarios differing only
in their RNG seed — so this module stacks N of them into ``(N, dim)``
arrays and advances all N through one shared iteration loop.

Two substrates batch:

* **engine-kind, ``exact`` backend** — Definition 1's global iteration
  *is* the lockstep clock: every scenario advances one ``j`` per round.
* **simulator-kind, lockstep-compatible machines** — machines whose
  timing consumes no randomness (per-processor constant compute
  durations sharing a common base period, constant lossless channel
  latency below the fastest phase, single inner steps) induce a
  value-independent event schedule.  A value-free replay of the event
  loop's heap (:func:`_lockstep_schedule`) transcribes that schedule
  once per group; the batch then executes the resulting op-list —
  snapshot, deliver, commit — over ``(P, N, dim)`` state.

Phase 2 pushes the remaining per-scenario floor out of the batch path:

* **batched construction** — homogeneous groups build their operators
  through :func:`repro.scenarios.registry.build_batch` (stacked RNG
  draws per chunk, one stacked LAPACK/gufunc analysis pass), falling
  back to per-spec factories for families without a batched twin;
* **wider whitelist** — even-odd steering and the deterministic
  log/power delay-growth families join the shared-model fast path, and
  ``lockstep_plan`` admits per-processor constant durations with a
  common period (e.g. the ``lockstep-tiered`` archetype) instead of one
  all-equal duration;
* **compiled kernel** — an optional numba implementation of the fused
  gather-update-residual loop (:mod:`repro.runtime.simulator.kernels`),
  behind ``REPRO_JIT`` / ``ExecutionSpec.jit``, probe-verified for
  bit-identity at resolve time and auto-disabled when numba is absent.

Three invariants make the results *bit-identical* to solo runs:

1. **RNG stream preservation** — every scenario keeps the exact
   ingredient objects a solo run would build from its own
   :meth:`~repro.scenarios.spec.ScenarioSpec.spawn_seeds`; stochastic
   steering/delay models are stepped per scenario, in the same call
   order, on the same per-scenario streams; batched factories draw each
   scenario's stream in solo order from its own SeedSequence child.
   Deterministic models (cyclic/block/even-odd steering, zero/constant/
   log-growth/power delays) are evaluated once per iteration and shared
   across the batch.
2. **No cross-scenario arithmetic** — matvecs
   (``apply_block``/``apply``) stay per-scenario calls (batched GEMM is
   not bit-equal to N GEMVs); only element gathers/scatters and
   max-based norms — which are exact under any regrouping — vectorize
   across the batch.
3. **Divergence masking** — a scenario that terminates (tolerance
   reached, budget exhausted) freezes: its final state is snapshotted
   and it stops consuming its streams, exactly where the solo loop
   would have stopped, while the rest of the batch continues.

Batches are grouped by :attr:`ScenarioSpec.batch_key` (the canonical
identity minus the seed), so every member shares problem shape, model
ingredients, backend, budget and tolerance.  Anything unbatchable — and
any batch that raises mid-flight — falls back to the solo runner, so
batching can change throughput but never results.
"""

from __future__ import annotations

import heapq
import itertools
import time
from typing import TYPE_CHECKING, Any, Callable, Sequence

import numpy as np

if TYPE_CHECKING:  # registry -> simulator package -> here: keep lazy
    from repro.scenarios.spec import ScenarioSpec

__all__ = [
    "LockstepIncompatible",
    "batchable",
    "construction_seconds",
    "run_scenario_batch",
]

#: History memory cap per engine batch: ``(J+1, B, dim)`` float64 slabs
#: are windowed so one batch never allocates more than this.
_MAX_BATCH_BYTES = 64 * 2**20

#: Steering policies whose active sets depend only on ``j`` — shared
#: across the batch instead of stepped per scenario.
_DETERMINISTIC_STEERING: tuple[type, ...] = ()
#: Delay models whose labels depend only on ``j``.
_DETERMINISTIC_DELAYS: tuple[type, ...] = ()


def _det_classes() -> "tuple[tuple[type, ...], tuple[type, ...]]":
    """Lazy import of the deterministic model whitelists (no import cycles).

    A class is admissible here iff its registry factory consumes no
    per-scenario randomness *and* its outputs are pure functions of
    ``j`` — then the head spec's instance is interchangeable with every
    scenario's own.  ``BaudetSqrtDelay`` is deterministic per instance
    but its factory draws the slow set from the scenario stream, so it
    stays on the per-scenario path.
    """
    global _DETERMINISTIC_STEERING, _DETERMINISTIC_DELAYS
    if not _DETERMINISTIC_STEERING:
        from repro.delays.bounded import ConstantDelay, ZeroDelay
        from repro.delays.unbounded import LogGrowthDelay, PowerGrowthDelay
        from repro.steering.policies import (
            AllComponents,
            BlockCyclic,
            CyclicSingle,
            EvenOddSweeps,
        )

        _DETERMINISTIC_STEERING = (
            AllComponents, CyclicSingle, BlockCyclic, EvenOddSweeps,
        )
        _DETERMINISTIC_DELAYS = (
            ZeroDelay, ConstantDelay, LogGrowthDelay, PowerGrowthDelay,
        )
    return _DETERMINISTIC_STEERING, _DETERMINISTIC_DELAYS


class LockstepIncompatible(ValueError):
    """A machine description cannot be executed as deterministic lockstep rounds."""


#: Cumulative wall seconds batches spent constructing problems, models
#: and operator analysis (read by the bench harness to attribute
#: construction overhead; meaningful under the serial executor only).
_construction_seconds = 0.0


def construction_seconds() -> float:
    """Total in-process wall time batches spent in per-scenario setup."""
    return _construction_seconds


def _spawn_seeds(spec: ScenarioSpec, count: int) -> "list[Any]":
    """First ``count`` of the spec's five child seeds, skipping the rest.

    ``SeedSequence.spawn(k)`` children are prefix-stable: child ``i``
    is keyed by ``spawn_key == (i,)`` regardless of ``k``, so spawning
    only the streams a batch actually consumes yields the same seed
    objects :meth:`ScenarioSpec.spawn_seeds` would return at those
    positions, for a fraction of the hashing cost.
    """
    return np.random.SeedSequence(spec.seed).spawn(count)


# ----------------------------------------------------------------------
# Eligibility and grouping
# ----------------------------------------------------------------------

#: Simulator backends whose solo semantics the lockstep replay
#: reproduces (the two event-loop twins and the batched front itself).
_SIM_BACKENDS = ("vectorized", "reference", "batched-lockstep")


def batchable(spec: ScenarioSpec) -> bool:
    """Whether ``spec`` is *eligible* for batched execution.

    Engine scenarios batch on the ``exact`` backend (the ``flexible``
    engine draws backend-internal randomness per update and stays
    solo).  Simulator scenarios are eligible on the event-loop
    backends; whether their machine really is lockstep-compatible is
    only decidable after building it, so that check happens inside the
    batch (incompatible groups fall back to solo, once per group).
    """
    if spec.kind == "engine":
        return spec.backend == "exact"
    return spec.backend in _SIM_BACKENDS


def _fast_key(spec: ScenarioSpec) -> "tuple[Any, ...]":
    """Cheap stand-in for :attr:`ScenarioSpec.batch_key` in the hot path.

    ``repr`` of the param dicts is order-sensitive where the canonical
    JSON is not, so two equal-content specs built with different dict
    orderings may land in *separate* groups — a lost batching
    opportunity, never a wrong merge (distinct contents never repr
    equal).  Grids enumerate params identically, so in practice the
    partition matches ``batch_key`` at a fraction of its cost.
    """
    return (
        spec.problem, spec.kind, spec.steering, spec.delays, spec.machine,
        spec.fault, spec.topology,
        spec.backend, int(spec.max_iterations), float(spec.tol),
        repr(spec.problem_params), repr(spec.steering_params),
        repr(spec.delay_params), repr(spec.machine_params),
        repr(spec.fault_params), repr(spec.topology_params),
    )


def _group(specs: Sequence[ScenarioSpec]) -> "list[list[int]]":
    """Indices of ``specs`` grouped by homogeneity key, order preserved."""
    groups: dict[Any, list[int]] = {}
    order: list[Any] = []
    for i, spec in enumerate(specs):
        key = _fast_key(spec) if batchable(spec) else f"solo:{i}"
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(i)
    return [groups[k] for k in order]


def run_scenario_batch(
    specs: Sequence[ScenarioSpec],
    *,
    solo: "Callable[[ScenarioSpec], Any] | None" = None,
    jit: "bool | None" = None,
) -> "list[Any]":
    """Execute a chunk of specs, batching homogeneous groups in lockstep.

    Results come back in input order and are bit-identical (per
    scenario) to ``[solo(s) for s in specs]`` — groups of fewer than
    two batchable specs, ineligible specs, and any group whose batch
    raises run through ``solo`` (default
    :func:`~repro.runtime.fleet.run_scenario`).  ``jit`` forwards the
    compiled-kernel switch (``None`` defers to ``REPRO_JIT``; the
    kernel only engages when numba is present and the resolve-time
    bit-identity probe passes — see
    :mod:`repro.runtime.simulator.kernels`).  This is the unit the
    fleet's chunk dispatch routes through one worker task.
    """
    if solo is None:
        from repro.runtime.fleet import run_scenario as solo  # type: ignore[no-redef]

    out: list[Any] = [None] * len(specs)
    for indices in _group(specs):
        group = [specs[i] for i in indices]
        results: "list[Any] | None" = None
        if len(group) >= 2 and batchable(group[0]):
            try:
                if group[0].kind == "engine":
                    results = _run_engine_batch(group, jit=jit)
                else:
                    results = _run_lockstep_batch(group)
            except Exception:  # noqa: BLE001 - solo is the behavioural oracle
                results = None
        if results is None:
            results = [solo(s) for s in group]
        for i, r in zip(indices, results):
            out[i] = r
    return out


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------

def _precompute_analysis(ops: "Sequence[Any]") -> None:
    """Batch the operators' lazy LAPACK work when the family supports it.

    Purely a scheduling change: the stacked gufunc calls run the same
    routine per matrix, so cached values match the lazy path bit for
    bit (see :meth:`AffineOperator.precompute_batch`).
    """
    from repro.operators.linear import AffineOperator

    if all(type(op) is AffineOperator for op in ops):
        AffineOperator.precompute_batch(list(ops))


def _build_problems(specs: Sequence[ScenarioSpec]) -> "list[Any]":
    """Operators for one homogeneous group, batch-constructed when possible.

    :func:`repro.scenarios.registry.build_batch` stacks the instance
    generation for whitelisted families (each scenario's stream drawn
    in solo order from its own SeedSequence child, so results are
    bit-identical to per-spec builds); families without a batched twin
    construct one spec at a time exactly as before.
    """
    from repro.scenarios import registry

    ops = registry.build_batch(list(specs))
    if ops is None:
        ops = [
            registry.make_problem(
                spec.problem, _spawn_seeds(spec, 1)[0], **spec.problem_params
            )
            for spec in specs
        ]
    return ops


def _comp_of_elem(block_spec: Any, dim: int) -> np.ndarray:
    """Element index -> owning component index."""
    owners = np.empty(dim, dtype=np.intp)
    for i in range(block_spec.n_blocks):
        sl = block_spec.slice(i)
        owners[sl.start: sl.stop] = i
    return owners


class _BatchedNorm:
    """Vectorized twin of N per-scenario :class:`WeightedMaxNorm` calls.

    Weighted block-max norms are eligible for cross-scenario batching
    because every operation — ``abs``, per-block ``maximum.reduceat``,
    elementwise division by the (per-scenario) weights, and the final
    max — is bit-exact under regrouping.  ``None`` when any norm is not
    a plain :class:`~repro.utils.norms.WeightedMaxNorm` or the block
    structures differ (callers then loop the norm objects).
    """

    def __init__(self, spec: Any, weights: np.ndarray) -> None:
        self._spec = spec
        self._weights = weights  # (B, n_blocks)

    @classmethod
    def build(cls, norms: "Sequence[Any]") -> "_BatchedNorm | None":
        from repro.utils.norms import WeightedMaxNorm

        if any(type(nm) is not WeightedMaxNorm for nm in norms):
            return None
        spec = norms[0].spec
        for nm in norms[1:]:
            if nm.spec.n_blocks != spec.n_blocks or not np.array_equal(
                nm.spec._starts, spec._starts
            ):
                return None
        return cls(spec, np.stack([nm.weights for nm in norms]))

    @classmethod
    def build_from_ops(cls, ops: "Sequence[Any]") -> "_BatchedNorm | None":
        """Like :meth:`build` on ``[op.norm() for op in ops]``, but reading
        :class:`AffineOperator` contraction caches directly — same weight
        values without constructing ``B`` norm objects."""
        from repro.operators.linear import AffineOperator

        if not all(
            type(op) is AffineOperator and op._contraction_computed for op in ops
        ):
            return cls.build([op.norm() for op in ops])
        spec = ops[0].block_spec
        starts = spec._starts
        for op in ops[1:]:
            if not np.array_equal(op.block_spec._starts, starts):
                return cls.build([op.norm() for op in ops])
        weights = np.empty((len(ops), spec.n_blocks))
        ones = np.ones(spec.n_blocks)
        for k, op in enumerate(ops):
            # Mirrors AffineOperator.norm(): Perron weights when the
            # contraction exists on scalar blocks, uniform otherwise.
            if op._contraction is None or not spec.is_scalar:
                weights[k] = ones
            else:
                weights[k] = op._contraction[1]
        return cls(spec, weights)

    def __call__(self, X: np.ndarray, rows: "np.ndarray | None" = None) -> np.ndarray:
        """Per-row norms of ``X`` (``(B', dim)``); ``rows`` selects weights."""
        W = self._weights if rows is None else self._weights[rows]
        A = np.asarray(X, dtype=np.float64)
        if self._spec.is_scalar:
            A = np.abs(A)
        else:
            # block_euclidean_norms, row-wise: same sequential reduceat
            # sums per segment, so bits match the 1-D evaluation.
            A = np.sqrt(np.add.reduceat(A * A, self._spec._starts[:-1], axis=1))
        return (A / W).max(axis=1)


def _build_residual(ops: "Sequence[Any]", batched_norm: "_BatchedNorm | None"):
    """Per-scenario residual evaluator, vectorizing the norm when exact.

    When the operator type keeps the base-class residual definition
    (``||F(x) - x||_u``) and the norm batches, residuals for many rows
    evaluate as per-scenario ``apply`` calls (matvecs stay solo) plus
    one batched norm.  Otherwise every row is a plain
    ``op.residual(x)`` call — always bit-identical, just slower.
    """
    from repro.operators.base import FixedPointOperator

    plain = all(
        type(op).residual is FixedPointOperator.residual for op in ops
    )
    if plain and batched_norm is not None:
        def residuals(X: np.ndarray, rows: np.ndarray) -> np.ndarray:
            V = np.empty_like(X)
            for k, b in enumerate(rows):
                V[k] = ops[b].apply(X[k]) - X[k]
            return batched_norm(V, rows)
    else:
        def residuals(X: np.ndarray, rows: np.ndarray) -> np.ndarray:
            return np.array(
                [ops[b].residual(X[k]) for k, b in enumerate(rows)], dtype=np.float64
            )
    return residuals


def _summaries(
    specs: Sequence[ScenarioSpec],
    ops: "Sequence[Any]",
    refs: "Sequence[Any]",
    batched_norm: "_BatchedNorm | None",
    x_final: np.ndarray,
    iterations: np.ndarray,
    converged: np.ndarray,
    residuals: np.ndarray,
    sim_time: "np.ndarray | None",
    time_to_tol: "Sequence[Any] | None",
    info: "Sequence[dict[str, Any]] | None",
    wall_each: float,
) -> "list[Any]":
    """Assemble per-scenario :class:`ScenarioResult` rows from batch state."""
    from repro.runtime.fleet import ScenarioResult

    B = len(specs)
    # Final error ||x - x*||_u, exactly the last entry of the solo
    # trace's error series.  Batched when the norm allows, per-scenario
    # norm calls otherwise; None wherever there is no reference.
    errors: list[float | None] = [None] * B
    have_ref = [b for b in range(B) if refs[b] is not None]
    if have_ref:
        D = np.stack([x_final[b] - refs[b] for b in have_ref])
        if batched_norm is not None:
            vals = batched_norm(D, np.asarray(have_ref))
            for k, b in enumerate(have_ref):
                errors[b] = float(vals[k])
        else:
            for k, b in enumerate(have_ref):
                errors[b] = float(ops[b].norm()(D[k]))

    out = []
    for b, spec in enumerate(specs):
        out.append(
            ScenarioResult(
                key=spec.key,
                spec=spec,
                iterations=int(iterations[b]),
                converged=bool(converged[b]),
                final_residual=float(residuals[b]),
                final_error=errors[b],
                sim_time=None if sim_time is None else float(sim_time[b]),
                time_to_tol=None if time_to_tol is None else time_to_tol[b],
                wall_time=wall_each,
                info=dict(info[b]) if info is not None else {},
                trace_path=None,
            )
        )
    return out


# ----------------------------------------------------------------------
# Engine-kind batches: Definition 1 in lockstep over j
# ----------------------------------------------------------------------

def _run_engine_batch(
    specs: Sequence[ScenarioSpec], jit: "bool | None" = None
) -> "list[Any]":
    """Run one homogeneous group of ``exact``-backend engine scenarios.

    Replicates :meth:`AsyncIterationEngine.run` (with the fleet's
    request: ``x0 = 0``, ``residual_every = 1``, no trace sink) for all
    scenarios under one iteration counter.  The dense history slab
    ``H[j]`` holds the full iterate after iteration ``j`` — the full
    iterate at label ``m`` *is* every component's most recent value at
    or before ``m``, so one fancy gather reproduces
    ``VectorHistory.assemble`` exactly.

    When the compiled kernel is active (``jit``) and the group is
    kernel-shaped — shared deterministic steering, scalar blocks,
    :class:`AffineOperator` stack, plain residual — the whole window
    loop runs fused in :mod:`~repro.runtime.simulator.kernels`;
    otherwise the numpy loop below executes unchanged.
    """
    from repro.delays.base import DelayModel
    from repro.operators.base import FixedPointOperator
    from repro.operators.linear import AffineOperator
    from repro.scenarios import registry

    global _construction_seconds
    t0 = time.perf_counter()
    B = len(specs)
    head = specs[0]
    J = head.max_iterations
    tol = head.tol
    det_steer, det_delay = _det_classes()

    ops = _build_problems(specs)
    n = ops[0].n_components

    # Deterministic model classes hold no per-scenario stream (outputs
    # are pure functions of j, constructors draw nothing), so the first
    # spec's instance serves the whole batch — solo runs build B
    # identical copies.  Seed children are spawned per scenario only
    # for the streams actually consumed (steering = child 1, delays =
    # child 2; prefix-stable spawning keeps them bit-equal to solo).
    steerings: list[Any] = []
    delay_models: list[Any] = []
    shared_steering = shared_delays = False
    for bi, spec in enumerate(specs):
        if bi == 0:
            seeds = _spawn_seeds(spec, 3)
            st = registry.make_steering(spec.steering, n, seeds[1], **spec.steering_params)
            dl = registry.make_delays(spec.delays, n, seeds[2], **spec.delay_params)
            shared_steering = isinstance(st, det_steer)
            shared_delays = isinstance(dl, det_delay)
        else:
            if shared_steering and shared_delays:
                st = steerings[0]
                dl = delay_models[0]
            elif shared_steering:
                st = steerings[0]
                dl = registry.make_delays(
                    spec.delays, n, _spawn_seeds(spec, 3)[2], **spec.delay_params
                )
            elif shared_delays:
                st = registry.make_steering(
                    spec.steering, n, _spawn_seeds(spec, 2)[1], **spec.steering_params
                )
                dl = delay_models[0]
            else:
                seeds = _spawn_seeds(spec, 3)
                st = registry.make_steering(spec.steering, n, seeds[1], **spec.steering_params)
                dl = registry.make_delays(spec.delays, n, seeds[2], **spec.delay_params)
        st.reset()
        dl.reset()
        steerings.append(st)
        delay_models.append(dl)

    # Stochastic delay models that keep the base-class ``labels`` can
    # batch their per-iteration clipping: raw delays are drawn per
    # scenario on its own stream (same call order as solo), then one
    # vectorized clip replaces B Python-level label conversions.
    batch_labels = not shared_delays and all(
        type(m).labels is DelayModel.labels for m in delay_models
    )

    dim = ops[0].dim
    for op in ops[1:]:
        if op.dim != dim or op.n_components != n:
            raise LockstepIncompatible(
                "operators in one batch group must share their shape; got "
                f"dim {op.dim} vs {dim}"
            )
    block = ops[0].block_spec
    slices = [block.slice(i) for i in range(n)]
    comp_map = _comp_of_elem(block, dim)
    elem_range = np.arange(dim, dtype=np.intp)
    _precompute_analysis(ops)
    refs = [op.fixed_point() for op in ops]
    batched_norm = _BatchedNorm.build_from_ops(ops)
    residual_of = _build_residual(ops, batched_norm)
    _construction_seconds += time.perf_counter() - t0

    # Compiled-kernel eligibility: the kernel reproduces exactly the
    # shared-steering scalar-block AffineOperator loop (probe-verified
    # bit-identity); everything else keeps the numpy path.
    kern = None
    if jit is not False:
        from repro.runtime.simulator.kernels import resolve_kernel

        kern = resolve_kernel(jit)
    plain_residual = all(
        type(op).residual is FixedPointOperator.residual for op in ops
    )
    use_kernel = (
        kern is not None
        and shared_steering
        and (shared_delays or batch_labels)
        and block.is_scalar
        and all(type(op) is AffineOperator for op in ops)
        and (tol == 0.0 or (plain_residual and batched_norm is not None))
    )
    act_flat = act_off = None
    if use_kernel:
        sets = []
        off = [0]
        for j in range(1, J + 1):
            S = steerings[0].active_set(j)
            if len(S) == 0:
                raise RuntimeError(f"steering produced empty S_{j}")
            sets.append(np.asarray(S, dtype=np.int64))
            off.append(off[-1] + len(S))
        act_flat = np.concatenate(sets)
        act_off = np.asarray(off, dtype=np.int64)

    # Window the batch so the (J+1, B, dim) history slab stays bounded.
    window = max(2, int(_MAX_BATCH_BYTES // ((J + 1) * dim * 8)))

    X_parts: list[np.ndarray] = []
    it_parts: list[np.ndarray] = []
    cv_parts: list[np.ndarray] = []
    fr_parts: list[np.ndarray] = []
    for w0 in range(0, B, window):
        wB = min(B, w0 + window) - w0

        H = np.zeros((J + 1, wB, dim))  # H[0] = x0 = 0, the fleet's start
        iterations = np.full(wB, 0, dtype=np.int64)
        converged = np.zeros(wB, dtype=bool)
        x_final = np.zeros((wB, dim))

        if use_kernel:
            # Labels precompute consumes each stochastic model's stream
            # in solo per-j order; draws past a row's freeze point are
            # simply discarded with the model, as in a solo early stop.
            labels_elem = np.empty((J, wB, dim), dtype=np.int64)
            for j in range(1, J + 1):
                if shared_delays:
                    labels_elem[j - 1] = delay_models[w0].labels(j)[comp_map][None, :]
                else:
                    d = np.stack(
                        [delay_models[w0 + k].raw_delays(j) for k in range(wB)]
                    ).astype(np.int64, copy=False)
                    if d.shape[1] != n or np.any(d < 0):
                        raise RuntimeError("raw_delays contract violation")
                    labels_elem[j - 1] = np.clip((j - 1) - d, 0, j - 1)[:, comp_map]
            A_stack = np.stack([ops[w0 + k].A for k in range(wB)])
            b_stack = np.stack([ops[w0 + k].b for k in range(wB)])
            W = (
                batched_norm._weights[w0: w0 + wB]
                if batched_norm is not None
                else np.ones((wB, dim))
            )
            kern(
                H, A_stack, b_stack, act_flat, act_off, labels_elem,
                float(tol), W, iterations, converged, x_final,
            )
        else:
            flatH = H.reshape(-1)
            live = list(range(wB))
            final_res = np.zeros(wB)
            j_done = 0

            for j in range(1, J + 1):
                j_done = j
                live_arr = np.asarray(live, dtype=np.intp)
                # Labels l_i(j): shared when the model is a pure function
                # of j, stepped on each scenario's own stream otherwise.
                if shared_delays:
                    lab = delay_models[w0 + live[0]].labels(j)
                    elem_lab = lab[comp_map][None, :]
                elif batch_labels:
                    d = np.stack(
                        [delay_models[w0 + b].raw_delays(j) for b in live]
                    ).astype(np.int64, copy=False)
                    if d.shape[1] != n or np.any(d < 0):
                        raise RuntimeError("raw_delays contract violation")
                    elem_lab = np.clip((j - 1) - d, 0, j - 1)[:, comp_map]
                else:
                    lab_mat = np.stack(
                        [delay_models[w0 + b].labels(j) for b in live]
                    )
                    elem_lab = lab_mat[:, comp_map]
                gather = (elem_lab * wB + live_arr[:, None]) * dim + elem_range
                delayed = flatH[gather.reshape(-1)].reshape(len(live), dim)

                H[j] = H[j - 1]
                if shared_steering:
                    S = steerings[w0 + live[0]].active_set(j)
                    if len(S) == 0:
                        raise RuntimeError(f"steering produced empty S_{j}")
                    for k, b in enumerate(live):
                        row = delayed[k]
                        hb = H[j, b]
                        for i in S:
                            hb[slices[i]] = ops[w0 + b].apply_block(row, i)
                else:
                    for k, b in enumerate(live):
                        S = steerings[w0 + b].active_set(j)
                        if len(S) == 0:
                            raise RuntimeError(f"steering produced empty S_{j}")
                        row = delayed[k]
                        hb = H[j, b]
                        for i in S:
                            hb[slices[i]] = ops[w0 + b].apply_block(row, i)

                if tol > 0.0:
                    # residual_every = 1 (the exact backend's fleet default):
                    # the stopping test sees a fresh residual every j.
                    res = residual_of(H[j, live_arr], live_arr + w0)
                    frozen = []
                    for k, b in enumerate(live):
                        if res[k] < tol:
                            converged[b] = True
                            iterations[b] = j
                            x_final[b] = H[j, b]
                            final_res[b] = res[k]
                            frozen.append(b)
                    if frozen:
                        live = [b for b in live if b not in set(frozen)]
                        if not live:
                            break

            if live:
                live_arr = np.asarray(live, dtype=np.intp)
                iterations[live_arr] = j_done
                x_final[live_arr] = H[j_done, live_arr]

        # Solo recomputes the residual at the final iterate even when
        # the loop already measured it (same call, same bits).
        all_rows = np.arange(wB, dtype=np.intp)
        final_res = residual_of(x_final, all_rows + w0)

        X_parts.append(x_final)
        it_parts.append(iterations)
        cv_parts.append(converged)
        fr_parts.append(final_res)

    wall_each = (time.perf_counter() - t0) / B
    return _summaries(
        list(specs), ops, refs, batched_norm,
        np.concatenate(X_parts), np.concatenate(it_parts),
        np.concatenate(cv_parts), np.concatenate(fr_parts),
        None, None, None, wall_each,
    )


# ----------------------------------------------------------------------
# Simulator-kind batches: deterministic lockstep schedules
# ----------------------------------------------------------------------

#: Named in every ``lockstep_plan`` rejection so callers know what the
#: fast path *does* admit next to what their machine violated.
_ADMISSIBLE = (
    "admissible for lockstep batching: ConstantTime compute (constant per "
    "processor, every duration an integer multiple of a common base round "
    "duration), single inner steps without partial publishing / read "
    "refreshing / think time, and lossless ConstantTime channel latency "
    "strictly below the fastest compute duration; deterministic steering "
    "(all/cyclic/block-cyclic/even-odd) and delay models (zero/constant/"
    "log-growth/power) additionally share one instance per batch; fault "
    "injection and topology overrides are excluded (fault='none', "
    "topology='native')"
)


class _LockstepPlan:
    """Validated schedule structure of a lockstep-compatible machine."""

    __slots__ = ("P", "components", "computes", "latencies", "n_peers")

    def __init__(
        self,
        P: int,
        components: "list[tuple[int, ...]]",
        computes: "list[float]",
        latencies: "dict[tuple[int, int], float]",
        n_peers: int,
    ) -> None:
        self.P = P
        self.components = components
        self.computes = computes
        self.latencies = latencies
        self.n_peers = n_peers

    @property
    def compute(self) -> float:
        """The base round duration (fastest processor's phase length)."""
        return min(self.computes)

    def matches(self, other: "_LockstepPlan") -> bool:
        return (
            self.components == other.components
            and self.computes == other.computes
            and self.latencies == other.latencies
        )


def lockstep_plan(processors: "Sequence[Any]", channels: Any) -> _LockstepPlan:
    """Validate that a machine induces a deterministic lockstep schedule.

    Requirements (each named on failure, alongside the admissible
    alternatives): every processor computes in :class:`ConstantTime` —
    durations may differ per processor but must all be integer
    multiples of the fastest one (the common base period) — with a
    single inner step and no partial publishing, read refreshing or
    think time; every channel is lossless :class:`ConstantTime` latency
    strictly below the base period.  Under these, the event schedule is
    value- and RNG-independent: commit order, commit times and message
    arrivals are fixed by the durations alone, so one value-free replay
    of the event loop (:func:`_lockstep_schedule`) serves every
    scenario in the batch.
    """
    from repro.runtime.simulator.channel import ChannelSpec
    from repro.runtime.simulator.timing import ConstantTime

    if not processors:
        raise LockstepIncompatible("lockstep needs at least one processor")
    computes: list[float] = []
    for pid, ps in enumerate(processors):
        if type(ps.compute_time) is not ConstantTime:
            raise LockstepIncompatible(
                f"processor {pid} compute_time must be ConstantTime, got "
                f"{type(ps.compute_time).__name__}; {_ADMISSIBLE}"
            )
        computes.append(float(ps.compute_time.value))
        if ps.inner_steps != 1:
            raise LockstepIncompatible(
                f"processor {pid} inner_steps must be 1, got {ps.inner_steps}; "
                f"{_ADMISSIBLE}"
            )
        if ps.publish_partials or ps.refresh_reads:
            raise LockstepIncompatible(
                f"processor {pid} uses flexible communication "
                f"(publish_partials/refresh_reads); {_ADMISSIBLE}"
            )
        if ps.think_time is not None:
            raise LockstepIncompatible(
                f"processor {pid} has think_time; {_ADMISSIBLE}"
            )
    base = min(computes)
    if base <= 0.0:
        raise LockstepIncompatible(
            f"compute durations must be positive, got {base}; {_ADMISSIBLE}"
        )
    for pid, c in enumerate(computes):
        ratio = c / base
        if abs(ratio - round(ratio)) > 1e-9:
            raise LockstepIncompatible(
                f"processor {pid} compute_time {c} is not an integer multiple "
                f"of the base round duration {base}; {_ADMISSIBLE}"
            )

    P = len(processors)
    if isinstance(channels, ChannelSpec) or channels is None:
        pair_specs = {
            (s, d): (channels if channels is not None else ChannelSpec())
            for s in range(P) for d in range(P) if s != d
        }
    else:
        fallback = ChannelSpec()
        pair_specs = {
            (s, d): channels.get((s, d), fallback)
            for s in range(P) for d in range(P) if s != d
        }
    latencies: dict[tuple[int, int], float] = {}
    for pair, cs in pair_specs.items():
        if type(cs.latency) is not ConstantTime:
            raise LockstepIncompatible(
                f"channel {pair} latency must be ConstantTime, got "
                f"{type(cs.latency).__name__}; {_ADMISSIBLE}"
            )
        if cs.drop_prob != 0.0:
            raise LockstepIncompatible(
                f"channel {pair} has drop_prob {cs.drop_prob}; {_ADMISSIBLE}"
            )
        if not cs.latency.value < base:
            raise LockstepIncompatible(
                f"channel {pair} latency {cs.latency.value} must be strictly "
                f"below the base round duration {base}; {_ADMISSIBLE}"
            )
        latencies[pair] = float(cs.latency.value)
    return _LockstepPlan(
        P, [tuple(ps.components) for ps in processors], computes, latencies, P - 1
    )


#: Op-list opcodes emitted by the schedule replay.
_OP_SNAP, _OP_DELIVER, _OP_COMMIT = 0, 1, 2


def _lockstep_schedule(
    plan: _LockstepPlan, max_iterations: int
) -> "list[tuple[int, int, int, int, float]]":
    """Value-free replay of :meth:`DistributedSimulator.run`'s event loop.

    Transcribes the heap mechanics exactly — priming in pid order,
    ``(t, seq)`` tie-breaking, per-destination burst pushes in
    ascending-destination order before the next phase start, identical
    float time arithmetic (``start + duration``, ``end + latency``) —
    for a machine admitted by :func:`lockstep_plan`, whose schedule is
    value-independent.  Returns ops ``(opcode, a, b, j, t)``:

    * ``(_OP_SNAP, pid, -, -, -)`` — phase start: snapshot the view;
    * ``(_OP_DELIVER, dst, src, -, -)`` — a burst arrives: overwrite
      ``dst``'s view of ``src``'s components (the latest-label mask is
      always all-true here: labels strictly increase per sender and
      constant-latency FIFO channels deliver in order);
    * ``(_OP_COMMIT, pid, -, j, end)`` — the phase completes as global
      iteration ``j`` at time ``end``.

    The replay stops where every solo run has certainly stopped: at
    commit ``j = max_iterations`` (tolerance stops are per scenario and
    earlier; value-independence makes the schedule prefix identical).
    """
    heap: "list[tuple[float, int, int, int]]" = []
    seq = itertools.count()
    ops: "list[tuple[int, int, int, int, float]]" = []
    heappush = heapq.heappush
    heappop = heapq.heappop

    def start_phase(pid: int, t: float) -> None:
        ops.append((_OP_SNAP, pid, 0, 0, 0.0))
        heappush(heap, (t + plan.computes[pid], next(seq), 1, pid))

    for pid in range(plan.P):
        start_phase(pid, 0.0)

    j = 0
    while heap:
        t, _, kind, a = heappop(heap)
        if kind == 0:  # delivery: a encodes dst * P + src
            ops.append((_OP_DELIVER, a // plan.P, a % plan.P, 0, 0.0))
            continue
        pid = a
        j += 1
        end = t
        ops.append((_OP_COMMIT, pid, 0, j, end))
        for dst in range(plan.P):
            if dst != pid:
                heappush(
                    heap,
                    (end + plan.latencies[(pid, dst)], next(seq), 0, dst * plan.P + pid),
                )
        if j >= max_iterations:
            break
        start_phase(pid, end)
    return ops


#: The simulator backends' stopping-test cadence (see
#: ``_SimulatorBackend.execute``): residuals refresh every 10 commits.
_SIM_RESIDUAL_EVERY = 10

#: Machine archetypes whose factories consume no per-scenario RNG, so
#: one build (and one plan) serves the whole batch.
_DETERMINISTIC_MACHINES = ("lockstep", "lockstep-tiered")


def _run_lockstep_batch(specs: Sequence[ScenarioSpec]) -> "list[Any]":
    """Run one homogeneous group of lockstep-machine simulator scenarios.

    Executes the value-free schedule from :func:`_lockstep_schedule`
    over ``(P, B, dim)`` state: snapshots and deliveries are batched
    scatters, commits run each live scenario's Gauss-Seidel
    ``apply_block`` phase on its snapshot row.  Residual cadence
    (every ``10`` commits or at the budget), convergence-carry
    semantics, message counts and the residual/time series feeding
    ``time_to_tol`` all follow ``DistributedSimulator.run`` with the
    fleet's options (``record_messages=False``, ``residual_every=10``,
    ``max_time=inf``); a scenario that stops (tolerance or budget)
    freezes at its own commit while the rest continue down the shared
    schedule.

    Fault-bearing groups are rejected by name up front: injected
    crashes, limping and message fates perturb the event schedule
    per scenario, so the whole premise of one shared value-free replay
    fails.  The rejection is a :class:`LockstepIncompatible` naming the
    offending spec and the admissible alternative, and
    :func:`run_scenario_batch` routes the group through the solo event
    loop — which executes faults exactly.
    """
    from repro.analysis.rates import time_to_tolerance
    from repro.scenarios import registry

    global _construction_seconds
    t0 = time.perf_counter()
    B = len(specs)
    head = specs[0]
    # _fast_key puts fault/topology in the group identity, so the head
    # speaks for every member.
    if head.fault != "none":
        raise LockstepIncompatible(
            f"scenario {head.key!r} injects fault {head.fault!r}: fault "
            "events (crashes, limping, message fates) make the event "
            f"schedule scenario-dependent; {_ADMISSIBLE}"
        )
    if head.topology != "native":
        raise LockstepIncompatible(
            f"scenario {head.key!r} overrides channels with topology "
            f"{head.topology!r}, which the shared value-free schedule "
            f"replay does not model; {_ADMISSIBLE}"
        )
    max_iterations = head.max_iterations
    tol = head.tol

    ops_list = _build_problems(specs)
    n = ops_list[0].n_components
    share_machine = head.machine in _DETERMINISTIC_MACHINES
    plans: list[_LockstepPlan] = []
    for spec in specs:
        if share_machine and plans:
            plans.append(plans[0])
        else:
            procs, channels = registry.make_machine(
                spec.machine, n, _spawn_seeds(spec, 4)[3], **spec.machine_params
            )
            plans.append(lockstep_plan(procs, channels))

    plan = plans[0]
    dim = ops_list[0].dim
    for op, pl in zip(ops_list, plans):
        if op.dim != dim or op.n_components != n or not pl.matches(plan):
            raise LockstepIncompatible("batch group mixes machine shapes")

    block = ops_list[0].block_spec
    slices = [block.slice(i) for i in range(n)]
    elem_idx = [np.arange(s.start, s.stop, dtype=np.intp) for s in slices]
    own_elems = [
        np.concatenate([elem_idx[c] for c in comps]) for comps in plan.components
    ]
    _precompute_analysis(ops_list)
    refs = [op.fixed_point() for op in ops_list]
    batched_norm = _BatchedNorm.build_from_ops(ops_list)
    residual_of = _build_residual(ops_list, batched_norm)
    all_rows = np.arange(B, dtype=np.intp)
    _construction_seconds += time.perf_counter() - t0

    P = plan.P
    msgs_per_commit = [plan.n_peers * len(comps) for comps in plan.components]
    schedule = _lockstep_schedule(plan, max_iterations)

    # Per-processor views and in-flight phase snapshots; one payload
    # buffer per sender (its next burst is only created after every
    # previous arrival, since latency < base round duration).
    V = np.zeros((P, B, dim))
    S = np.zeros((P, B, dim))
    payloads = [np.zeros((B, oe.size)) for oe in own_elems]
    global_x = np.zeros((B, dim))
    x_final = np.zeros((B, dim))
    iterations = np.zeros(B, dtype=np.int64)
    converged = np.zeros(B, dtype=bool)
    final_time = np.zeros(B)
    messages_sent = np.zeros(B, dtype=np.int64)

    # The event loop computes the initial residual unconditionally; it
    # seeds the carried stopping value and the trace's residual series.
    last_res = residual_of(global_x, all_rows) if tol > 0.0 else None
    res_series: "list[list[float]] | None" = None
    time_series: "list[list[float]] | None" = None
    if tol > 0.0:
        res_series = [[float(last_res[b])] for b in range(B)]
        time_series = [[] for _ in range(B)]

    live = list(range(B))
    live_arr = np.asarray(live, dtype=np.intp)
    for op in schedule:
        if not live:
            break
        code, a, b_, j, end_t = op
        if code == _OP_SNAP:
            S[a][live_arr] = V[a][live_arr]
            continue
        if code == _OP_DELIVER:
            oe = own_elems[b_]
            V[a][np.ix_(live_arr, oe)] = payloads[b_][live_arr]
            continue
        pid = a
        oe = own_elems[pid]
        for b in live:
            snap = S[pid][b]
            for comp in plan.components[pid]:
                # Gauss-Seidel within the phase, as in the event loop.
                snap[slices[comp]] = ops_list[b].apply_block(snap, comp)
        committed = S[pid][np.ix_(live_arr, oe)]
        payloads[pid][live_arr] = committed
        V[pid][np.ix_(live_arr, oe)] = committed
        global_x[np.ix_(live_arr, oe)] = committed
        messages_sent[live_arr] += msgs_per_commit[pid]

        if tol > 0.0 and (j % _SIM_RESIDUAL_EVERY == 0 or j >= max_iterations):
            last_res[live_arr] = residual_of(global_x[live_arr], live_arr)
        frozen: list[int] = []
        for b in live:
            if tol > 0.0:
                res_series[b].append(float(last_res[b]))
                time_series[b].append(end_t)
            if tol > 0.0 and last_res[b] < tol:
                converged[b] = True
            elif j < max_iterations:
                continue
            iterations[b] = j
            x_final[b] = global_x[b]
            final_time[b] = end_t
            frozen.append(b)
        if frozen:
            dead = set(frozen)
            live = [b for b in live if b not in dead]
            live_arr = np.asarray(live, dtype=np.intp)

    final_res = residual_of(x_final, all_rows)
    ttt: list[Any] = [None] * B
    if tol > 0.0:
        for b in range(B):
            ttt[b] = time_to_tolerance(
                np.asarray(res_series[b]), np.asarray(time_series[b]), tol
            )
    info = [
        {
            "messages_sent": float(messages_sent[b]),
            "messages_dropped": 0.0,
            "phases_completed": float(iterations[b]),
        }
        for b in range(B)
    ]

    wall_each = (time.perf_counter() - t0) / B
    return _summaries(
        list(specs), ops_list, refs, batched_norm, x_final, iterations, converged,
        final_res, final_time, ttt, info, wall_each,
    )
