"""Scenario-batched lockstep execution of homogeneous spec groups.

The fleet's per-scenario cost floor is Python dispatch: one
:func:`~repro.runtime.fleet.run_scenario` call per grid point pays for
backend lookup, engine construction, trace bookkeeping and per-iteration
interpreter overhead even when the scenario itself is six floats wide
and four iterations deep.  The paper's delay-regime sweeps are exactly
such populations — thousands of *same-shape* scenarios differing only
in their RNG seed — so this module stacks N of them into ``(N, dim)``
arrays and advances all N through one shared iteration loop.

Two substrates batch:

* **engine-kind, ``exact`` backend** — Definition 1's global iteration
  *is* the lockstep clock: every scenario advances one ``j`` per round.
* **simulator-kind, lockstep-compatible machines** — machines whose
  timing consumes no randomness (constant compute ``c``, constant
  channel latency ``0 < l < c``, no loss, single inner steps) induce a
  value-independent event schedule: all ``P`` processors commit once
  per round in pid order, and every phase reads its own components one
  round stale and remote components two rounds stale.  The recurrence
  below replays that schedule directly, round by round, without a heap.

Three invariants make the results *bit-identical* to solo runs:

1. **RNG stream preservation** — every scenario keeps the exact
   ingredient objects a solo run would build from its own
   :meth:`~repro.scenarios.spec.ScenarioSpec.spawn_seeds`; stochastic
   steering/delay models are stepped per scenario, in the same call
   order, on the same per-scenario streams.  Deterministic models
   (cyclic steering, zero/constant delays) are evaluated once per
   iteration and shared across the batch.
2. **No cross-scenario arithmetic** — matvecs
   (``apply_block``/``apply``) stay per-scenario calls (batched GEMM is
   not bit-equal to N GEMVs); only element gathers/scatters and
   max-based norms — which are exact under any regrouping — vectorize
   across the batch.
3. **Divergence masking** — a scenario that terminates (tolerance
   reached, budget exhausted) freezes: its final state is snapshotted
   and it stops consuming its streams, exactly where the solo loop
   would have stopped, while the rest of the batch continues.

Batches are grouped by :attr:`ScenarioSpec.batch_key` (the canonical
identity minus the seed), so every member shares problem shape, model
ingredients, backend, budget and tolerance.  Anything unbatchable — and
any batch that raises mid-flight — falls back to the solo runner, so
batching can change throughput but never results.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Any, Callable, Sequence

import numpy as np

if TYPE_CHECKING:  # registry -> simulator package -> here: keep lazy
    from repro.scenarios.spec import ScenarioSpec

__all__ = [
    "LockstepIncompatible",
    "batchable",
    "run_scenario_batch",
]

#: History memory cap per engine batch: ``(J+1, B, dim)`` float64 slabs
#: are windowed so one batch never allocates more than this.
_MAX_BATCH_BYTES = 64 * 2**20

#: Steering policies whose active sets depend only on ``j`` — shared
#: across the batch instead of stepped per scenario.
_DETERMINISTIC_STEERING: tuple[type, ...] = ()
#: Delay models whose labels depend only on ``j``.
_DETERMINISTIC_DELAYS: tuple[type, ...] = ()


def _det_classes() -> "tuple[tuple[type, ...], tuple[type, ...]]":
    """Lazy import of the deterministic model whitelists (no import cycles)."""
    global _DETERMINISTIC_STEERING, _DETERMINISTIC_DELAYS
    if not _DETERMINISTIC_STEERING:
        from repro.delays.bounded import ConstantDelay, ZeroDelay
        from repro.steering.policies import AllComponents, BlockCyclic, CyclicSingle

        _DETERMINISTIC_STEERING = (AllComponents, CyclicSingle, BlockCyclic)
        _DETERMINISTIC_DELAYS = (ZeroDelay, ConstantDelay)
    return _DETERMINISTIC_STEERING, _DETERMINISTIC_DELAYS


class LockstepIncompatible(ValueError):
    """A machine description cannot be executed as deterministic lockstep rounds."""


def _spawn_seeds(spec: ScenarioSpec, count: int) -> "list[Any]":
    """First ``count`` of the spec's five child seeds, skipping the rest.

    ``SeedSequence.spawn(k)`` children are prefix-stable: child ``i``
    is keyed by ``spawn_key == (i,)`` regardless of ``k``, so spawning
    only the streams a batch actually consumes yields the same seed
    objects :meth:`ScenarioSpec.spawn_seeds` would return at those
    positions, for a fraction of the hashing cost.
    """
    return np.random.SeedSequence(spec.seed).spawn(count)


# ----------------------------------------------------------------------
# Eligibility and grouping
# ----------------------------------------------------------------------

#: Simulator backends whose solo semantics the lockstep recurrence
#: reproduces (the two event-loop twins and the batched front itself).
_SIM_BACKENDS = ("vectorized", "reference", "batched-lockstep")


def batchable(spec: ScenarioSpec) -> bool:
    """Whether ``spec`` is *eligible* for batched execution.

    Engine scenarios batch on the ``exact`` backend (the ``flexible``
    engine draws backend-internal randomness per update and stays
    solo).  Simulator scenarios are eligible on the event-loop
    backends; whether their machine really is lockstep-compatible is
    only decidable after building it, so that check happens inside the
    batch (incompatible groups fall back to solo, once per group).
    """
    if spec.kind == "engine":
        return spec.backend == "exact"
    return spec.backend in _SIM_BACKENDS


def _fast_key(spec: ScenarioSpec) -> "tuple[Any, ...]":
    """Cheap stand-in for :attr:`ScenarioSpec.batch_key` in the hot path.

    ``repr`` of the param dicts is order-sensitive where the canonical
    JSON is not, so two equal-content specs built with different dict
    orderings may land in *separate* groups — a lost batching
    opportunity, never a wrong merge (distinct contents never repr
    equal).  Grids enumerate params identically, so in practice the
    partition matches ``batch_key`` at a fraction of its cost.
    """
    return (
        spec.problem, spec.kind, spec.steering, spec.delays, spec.machine,
        spec.backend, int(spec.max_iterations), float(spec.tol),
        repr(spec.problem_params), repr(spec.steering_params),
        repr(spec.delay_params), repr(spec.machine_params),
    )


def _group(specs: Sequence[ScenarioSpec]) -> "list[list[int]]":
    """Indices of ``specs`` grouped by homogeneity key, order preserved."""
    groups: dict[Any, list[int]] = {}
    order: list[Any] = []
    for i, spec in enumerate(specs):
        key = _fast_key(spec) if batchable(spec) else f"solo:{i}"
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(i)
    return [groups[k] for k in order]


def run_scenario_batch(
    specs: Sequence[ScenarioSpec],
    *,
    solo: "Callable[[ScenarioSpec], Any] | None" = None,
) -> "list[Any]":
    """Execute a chunk of specs, batching homogeneous groups in lockstep.

    Results come back in input order and are bit-identical (per
    scenario) to ``[solo(s) for s in specs]`` — groups of fewer than
    two batchable specs, ineligible specs, and any group whose batch
    raises run through ``solo`` (default
    :func:`~repro.runtime.fleet.run_scenario`).  This is the unit the
    fleet's chunk dispatch routes through one worker task.
    """
    if solo is None:
        from repro.runtime.fleet import run_scenario as solo  # type: ignore[no-redef]

    out: list[Any] = [None] * len(specs)
    for indices in _group(specs):
        group = [specs[i] for i in indices]
        results: "list[Any] | None" = None
        if len(group) >= 2 and batchable(group[0]):
            try:
                if group[0].kind == "engine":
                    results = _run_engine_batch(group)
                else:
                    results = _run_lockstep_batch(group)
            except Exception:  # noqa: BLE001 - solo is the behavioural oracle
                results = None
        if results is None:
            results = [solo(s) for s in group]
        for i, r in zip(indices, results):
            out[i] = r
    return out


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------

def _precompute_analysis(ops: "Sequence[Any]") -> None:
    """Batch the operators' lazy LAPACK work when the family supports it.

    Purely a scheduling change: the stacked gufunc calls run the same
    routine per matrix, so cached values match the lazy path bit for
    bit (see :meth:`AffineOperator.precompute_batch`).
    """
    from repro.operators.linear import AffineOperator

    if all(type(op) is AffineOperator for op in ops):
        AffineOperator.precompute_batch(list(ops))


def _comp_of_elem(block_spec: Any, dim: int) -> np.ndarray:
    """Element index -> owning component index."""
    owners = np.empty(dim, dtype=np.intp)
    for i in range(block_spec.n_blocks):
        sl = block_spec.slice(i)
        owners[sl.start: sl.stop] = i
    return owners


class _BatchedNorm:
    """Vectorized twin of N per-scenario :class:`WeightedMaxNorm` calls.

    Weighted block-max norms are eligible for cross-scenario batching
    because every operation — ``abs``, per-block ``maximum.reduceat``,
    elementwise division by the (per-scenario) weights, and the final
    max — is bit-exact under regrouping.  ``None`` when any norm is not
    a plain :class:`~repro.utils.norms.WeightedMaxNorm` or the block
    structures differ (callers then loop the norm objects).
    """

    def __init__(self, spec: Any, weights: np.ndarray) -> None:
        self._spec = spec
        self._weights = weights  # (B, n_blocks)

    @classmethod
    def build(cls, norms: "Sequence[Any]") -> "_BatchedNorm | None":
        from repro.utils.norms import WeightedMaxNorm

        if any(type(nm) is not WeightedMaxNorm for nm in norms):
            return None
        spec = norms[0].spec
        for nm in norms[1:]:
            if nm.spec.n_blocks != spec.n_blocks or not np.array_equal(
                nm.spec._starts, spec._starts
            ):
                return None
        return cls(spec, np.stack([nm.weights for nm in norms]))

    @classmethod
    def build_from_ops(cls, ops: "Sequence[Any]") -> "_BatchedNorm | None":
        """Like :meth:`build` on ``[op.norm() for op in ops]``, but reading
        :class:`AffineOperator` contraction caches directly — same weight
        values without constructing ``B`` norm objects."""
        from repro.operators.linear import AffineOperator

        if not all(
            type(op) is AffineOperator and op._contraction_computed for op in ops
        ):
            return cls.build([op.norm() for op in ops])
        spec = ops[0].block_spec
        starts = spec._starts
        for op in ops[1:]:
            if not np.array_equal(op.block_spec._starts, starts):
                return cls.build([op.norm() for op in ops])
        weights = np.empty((len(ops), spec.n_blocks))
        ones = np.ones(spec.n_blocks)
        for k, op in enumerate(ops):
            # Mirrors AffineOperator.norm(): Perron weights when the
            # contraction exists on scalar blocks, uniform otherwise.
            if op._contraction is None or not spec.is_scalar:
                weights[k] = ones
            else:
                weights[k] = op._contraction[1]
        return cls(spec, weights)

    def __call__(self, X: np.ndarray, rows: "np.ndarray | None" = None) -> np.ndarray:
        """Per-row norms of ``X`` (``(B', dim)``); ``rows`` selects weights."""
        W = self._weights if rows is None else self._weights[rows]
        A = np.asarray(X, dtype=np.float64)
        if self._spec.is_scalar:
            A = np.abs(A)
        else:
            # block_euclidean_norms, row-wise: same sequential reduceat
            # sums per segment, so bits match the 1-D evaluation.
            A = np.sqrt(np.add.reduceat(A * A, self._spec._starts[:-1], axis=1))
        return (A / W).max(axis=1)


def _build_residual(ops: "Sequence[Any]", batched_norm: "_BatchedNorm | None"):
    """Per-scenario residual evaluator, vectorizing the norm when exact.

    When the operator type keeps the base-class residual definition
    (``||F(x) - x||_u``) and the norm batches, residuals for many rows
    evaluate as per-scenario ``apply`` calls (matvecs stay solo) plus
    one batched norm.  Otherwise every row is a plain
    ``op.residual(x)`` call — always bit-identical, just slower.
    """
    from repro.operators.base import FixedPointOperator

    plain = all(
        type(op).residual is FixedPointOperator.residual for op in ops
    )
    if plain and batched_norm is not None:
        def residuals(X: np.ndarray, rows: np.ndarray) -> np.ndarray:
            V = np.empty_like(X)
            for k, b in enumerate(rows):
                V[k] = ops[b].apply(X[k]) - X[k]
            return batched_norm(V, rows)
    else:
        def residuals(X: np.ndarray, rows: np.ndarray) -> np.ndarray:
            return np.array(
                [ops[b].residual(X[k]) for k, b in enumerate(rows)], dtype=np.float64
            )
    return residuals


def _summaries(
    specs: Sequence[ScenarioSpec],
    ops: "Sequence[Any]",
    refs: "Sequence[Any]",
    batched_norm: "_BatchedNorm | None",
    x_final: np.ndarray,
    iterations: np.ndarray,
    converged: np.ndarray,
    residuals: np.ndarray,
    sim_time: "np.ndarray | None",
    time_to_tol: "Sequence[Any] | None",
    info: "Sequence[dict[str, Any]] | None",
    wall_each: float,
) -> "list[Any]":
    """Assemble per-scenario :class:`ScenarioResult` rows from batch state."""
    from repro.runtime.fleet import ScenarioResult

    B = len(specs)
    # Final error ||x - x*||_u, exactly the last entry of the solo
    # trace's error series.  Batched when the norm allows, per-scenario
    # norm calls otherwise; None wherever there is no reference.
    errors: list[float | None] = [None] * B
    have_ref = [b for b in range(B) if refs[b] is not None]
    if have_ref:
        D = np.stack([x_final[b] - refs[b] for b in have_ref])
        if batched_norm is not None:
            vals = batched_norm(D, np.asarray(have_ref))
            for k, b in enumerate(have_ref):
                errors[b] = float(vals[k])
        else:
            for k, b in enumerate(have_ref):
                errors[b] = float(ops[b].norm()(D[k]))

    out = []
    for b, spec in enumerate(specs):
        out.append(
            ScenarioResult(
                key=spec.key,
                spec=spec,
                iterations=int(iterations[b]),
                converged=bool(converged[b]),
                final_residual=float(residuals[b]),
                final_error=errors[b],
                sim_time=None if sim_time is None else float(sim_time[b]),
                time_to_tol=None if time_to_tol is None else time_to_tol[b],
                wall_time=wall_each,
                info=dict(info[b]) if info is not None else {},
                trace_path=None,
            )
        )
    return out


# ----------------------------------------------------------------------
# Engine-kind batches: Definition 1 in lockstep over j
# ----------------------------------------------------------------------

def _run_engine_batch(specs: Sequence[ScenarioSpec]) -> "list[Any]":
    """Run one homogeneous group of ``exact``-backend engine scenarios.

    Replicates :meth:`AsyncIterationEngine.run` (with the fleet's
    request: ``x0 = 0``, ``residual_every = 1``, no trace sink) for all
    scenarios under one iteration counter.  The dense history slab
    ``H[j]`` holds the full iterate after iteration ``j`` — the full
    iterate at label ``m`` *is* every component's most recent value at
    or before ``m``, so one fancy gather reproduces
    ``VectorHistory.assemble`` exactly.
    """
    from repro.scenarios import registry

    t0 = time.perf_counter()
    B = len(specs)
    head = specs[0]
    J = head.max_iterations
    tol = head.tol
    det_steer, det_delay = _det_classes()

    # Deterministic model classes hold no per-scenario stream (outputs
    # are pure functions of j, constructors draw nothing), so the first
    # spec's instance serves the whole batch — solo runs build B
    # identical copies.
    ops: list[Any] = []
    steerings: list[Any] = []
    delay_models: list[Any] = []
    shared_steering = shared_delays = False
    for bi, spec in enumerate(specs):
        seeds = _spawn_seeds(spec, 3)  # problem / steering / delays streams
        op = registry.make_problem(spec.problem, seeds[0], **spec.problem_params)
        n = op.n_components
        if bi == 0:
            st = registry.make_steering(spec.steering, n, seeds[1], **spec.steering_params)
            dl = registry.make_delays(spec.delays, n, seeds[2], **spec.delay_params)
            shared_steering = isinstance(st, det_steer)
            shared_delays = isinstance(dl, det_delay)
        else:
            st = steerings[0] if shared_steering else registry.make_steering(
                spec.steering, n, seeds[1], **spec.steering_params
            )
            dl = delay_models[0] if shared_delays else registry.make_delays(
                spec.delays, n, seeds[2], **spec.delay_params
            )
        st.reset()
        dl.reset()
        ops.append(op)
        steerings.append(st)
        delay_models.append(dl)

    dim = ops[0].dim
    n = ops[0].n_components
    for op in ops[1:]:
        if op.dim != dim or op.n_components != n:
            raise LockstepIncompatible(
                "operators in one batch group must share their shape; got "
                f"dim {op.dim} vs {dim}"
            )
    block = ops[0].block_spec
    slices = [block.slice(i) for i in range(n)]
    comp_map = _comp_of_elem(block, dim)
    elem_range = np.arange(dim, dtype=np.intp)
    _precompute_analysis(ops)
    refs = [op.fixed_point() for op in ops]
    batched_norm = _BatchedNorm.build_from_ops(ops)
    residual_of = _build_residual(ops, batched_norm)

    # Window the batch so the (J+1, B, dim) history slab stays bounded.
    window = max(2, int(_MAX_BATCH_BYTES // ((J + 1) * dim * 8)))

    X_parts: list[np.ndarray] = []
    it_parts: list[np.ndarray] = []
    cv_parts: list[np.ndarray] = []
    fr_parts: list[np.ndarray] = []
    for w0 in range(0, B, window):
        wB = min(B, w0 + window) - w0

        H = np.zeros((J + 1, wB, dim))  # H[0] = x0 = 0, the fleet's start
        flatH = H.reshape(-1)
        live = list(range(wB))
        iterations = np.full(wB, 0, dtype=np.int64)
        converged = np.zeros(wB, dtype=bool)
        x_final = np.zeros((wB, dim))
        final_res = np.zeros(wB)
        j_done = 0

        for j in range(1, J + 1):
            j_done = j
            live_arr = np.asarray(live, dtype=np.intp)
            # Labels l_i(j): shared when the model is a pure function
            # of j, stepped on each scenario's own stream otherwise.
            if shared_delays:
                lab = delay_models[w0 + live[0]].labels(j)
                elem_lab = lab[comp_map][None, :]
            else:
                lab_mat = np.stack(
                    [delay_models[w0 + b].labels(j) for b in live]
                )
                elem_lab = lab_mat[:, comp_map]
            gather = (elem_lab * wB + live_arr[:, None]) * dim + elem_range
            delayed = flatH[gather.reshape(-1)].reshape(len(live), dim)

            H[j] = H[j - 1]
            if shared_steering:
                S = steerings[w0 + live[0]].active_set(j)
                if len(S) == 0:
                    raise RuntimeError(f"steering produced empty S_{j}")
                for k, b in enumerate(live):
                    row = delayed[k]
                    hb = H[j, b]
                    for i in S:
                        hb[slices[i]] = ops[w0 + b].apply_block(row, i)
            else:
                for k, b in enumerate(live):
                    S = steerings[w0 + b].active_set(j)
                    if len(S) == 0:
                        raise RuntimeError(f"steering produced empty S_{j}")
                    row = delayed[k]
                    hb = H[j, b]
                    for i in S:
                        hb[slices[i]] = ops[w0 + b].apply_block(row, i)

            if tol > 0.0:
                # residual_every = 1 (the exact backend's fleet default):
                # the stopping test sees a fresh residual every j.
                res = residual_of(H[j, live_arr], live_arr + w0)
                frozen = []
                for k, b in enumerate(live):
                    if res[k] < tol:
                        converged[b] = True
                        iterations[b] = j
                        x_final[b] = H[j, b]
                        final_res[b] = res[k]
                        frozen.append(b)
                if frozen:
                    live = [b for b in live if b not in set(frozen)]
                    if not live:
                        break

        if live:
            live_arr = np.asarray(live, dtype=np.intp)
            iterations[live_arr] = j_done
            x_final[live_arr] = H[j_done, live_arr]
        # Solo recomputes the residual at the final iterate even when
        # the loop already measured it (same call, same bits).
        all_rows = np.arange(wB, dtype=np.intp)
        final_res = residual_of(x_final, all_rows + w0)

        X_parts.append(x_final)
        it_parts.append(iterations)
        cv_parts.append(converged)
        fr_parts.append(final_res)

    wall_each = (time.perf_counter() - t0) / B
    return _summaries(
        list(specs), ops, refs, batched_norm,
        np.concatenate(X_parts), np.concatenate(it_parts),
        np.concatenate(cv_parts), np.concatenate(fr_parts),
        None, None, None, wall_each,
    )


# ----------------------------------------------------------------------
# Simulator-kind batches: deterministic lockstep rounds
# ----------------------------------------------------------------------

class _LockstepPlan:
    """Validated round structure of a lockstep-compatible machine."""

    __slots__ = ("P", "components", "compute", "n_peers")

    def __init__(self, P: int, components: "list[tuple[int, ...]]",
                 compute: float, n_peers: int) -> None:
        self.P = P
        self.components = components
        self.compute = compute
        self.n_peers = n_peers


def lockstep_plan(processors: "Sequence[Any]", channels: Any) -> _LockstepPlan:
    """Validate that a machine induces deterministic lockstep rounds.

    Requirements (each named on failure): every processor computes in
    :class:`ConstantTime` with one shared duration ``c``, runs a single
    inner step with no partial publishing, read refreshing or think
    time; every channel is lossless :class:`ConstantTime` latency
    ``0 < l < c``.  Under these, the event schedule is value- and
    RNG-independent: all ``P`` processors commit at ``t = r·c`` (pid
    order), and all round-``r`` messages arrive strictly inside
    ``(r·c, (r+1)·c)`` — own reads are one round stale, remote reads
    two rounds stale, every round, every scenario.
    """
    from repro.runtime.simulator.channel import ChannelSpec
    from repro.runtime.simulator.timing import ConstantTime

    if not processors:
        raise LockstepIncompatible("lockstep needs at least one processor")
    compute = None
    for pid, ps in enumerate(processors):
        if type(ps.compute_time) is not ConstantTime:
            raise LockstepIncompatible(
                f"processor {pid} compute_time must be ConstantTime, got "
                f"{type(ps.compute_time).__name__}"
            )
        if compute is None:
            compute = ps.compute_time.value
        elif ps.compute_time.value != compute:
            raise LockstepIncompatible(
                f"processor {pid} compute_time {ps.compute_time.value} breaks the "
                f"shared round duration {compute}"
            )
        if ps.inner_steps != 1:
            raise LockstepIncompatible(
                f"processor {pid} inner_steps must be 1, got {ps.inner_steps}"
            )
        if ps.publish_partials or ps.refresh_reads:
            raise LockstepIncompatible(
                f"processor {pid} uses flexible communication "
                "(publish_partials/refresh_reads)"
            )
        if ps.think_time is not None:
            raise LockstepIncompatible(f"processor {pid} has think_time")

    P = len(processors)
    if isinstance(channels, ChannelSpec) or channels is None:
        pair_specs = {
            (s, d): (channels if channels is not None else ChannelSpec())
            for s in range(P) for d in range(P) if s != d
        }
    else:
        fallback = ChannelSpec()
        pair_specs = {
            (s, d): channels.get((s, d), fallback)
            for s in range(P) for d in range(P) if s != d
        }
    for pair, cs in pair_specs.items():
        if type(cs.latency) is not ConstantTime:
            raise LockstepIncompatible(
                f"channel {pair} latency must be ConstantTime, got "
                f"{type(cs.latency).__name__}"
            )
        if cs.drop_prob != 0.0:
            raise LockstepIncompatible(f"channel {pair} has drop_prob {cs.drop_prob}")
        if not cs.latency.value < compute:
            raise LockstepIncompatible(
                f"channel {pair} latency {cs.latency.value} must be strictly "
                f"below the round duration {compute}"
            )
    return _LockstepPlan(
        P, [tuple(ps.components) for ps in processors], float(compute), P - 1
    )


#: The simulator backends' stopping-test cadence (see
#: ``_SimulatorBackend.execute``): residuals refresh every 10 commits.
_SIM_RESIDUAL_EVERY = 10


def _run_lockstep_batch(specs: Sequence[ScenarioSpec]) -> "list[Any]":
    """Run one homogeneous group of lockstep-machine simulator scenarios.

    Replays the event loop's round structure (see :func:`lockstep_plan`)
    per scenario without a heap: round ``r`` commits iteration
    ``j = (r-1)·P + pid + 1`` at time ``r·c`` from a snapshot whose own
    components are round ``r-1`` values and whose remote components are
    round ``r-2`` values.  Residual cadence, convergence-carry
    semantics, message counts and the residual/time series feeding
    ``time_to_tol`` all follow ``DistributedSimulator.run`` with the
    fleet's options (``record_messages=False``, ``residual_every=10``,
    ``max_time=inf``).
    """
    from repro.analysis.rates import time_to_tolerance
    from repro.scenarios import registry

    t0 = time.perf_counter()
    B = len(specs)
    head = specs[0]
    max_iterations = head.max_iterations
    tol = head.tol

    # The built-in "lockstep" archetype consumes no machine RNG, so one
    # build serves the batch; unknown machine factories rebuild per
    # scenario in case construction drew from the per-spec stream.
    share_machine = head.machine == "lockstep"
    ops: list[Any] = []
    plans: list[_LockstepPlan] = []
    for spec in specs:
        seeds = _spawn_seeds(spec, 4)  # problem stream + machine stream
        op = registry.make_problem(spec.problem, seeds[0], **spec.problem_params)
        if share_machine and plans:
            plans.append(plans[0])
        else:
            procs, channels = registry.make_machine(
                spec.machine, op.n_components, seeds[3], **spec.machine_params
            )
            plans.append(lockstep_plan(procs, channels))
        ops.append(op)

    plan = plans[0]
    dim = ops[0].dim
    n = ops[0].n_components
    for op, pl in zip(ops, plans):
        if op.dim != dim or op.n_components != n or pl.components != plan.components:
            raise LockstepIncompatible("batch group mixes machine shapes")

    block = ops[0].block_spec
    slices = [block.slice(i) for i in range(n)]
    elem_idx = [np.arange(s.start, s.stop, dtype=np.intp) for s in slices]
    own_elems = [
        np.concatenate([elem_idx[c] for c in comps]) for comps in plan.components
    ]
    _precompute_analysis(ops)
    refs = [op.fixed_point() for op in ops]
    batched_norm = _BatchedNorm.build_from_ops(ops)
    residual_of = _build_residual(ops, batched_norm)
    all_rows = np.arange(B, dtype=np.intp)

    P = plan.P
    c = plan.compute
    msgs_per_commit = [plan.n_peers * len(comps) for comps in plan.components]

    # Committed full iterates: V1 after round r-1, V2 after round r-2.
    V1 = np.zeros((B, dim))
    V2 = np.zeros((B, dim))
    global_x = np.zeros((B, dim))
    x_final = np.zeros((B, dim))
    iterations = np.zeros(B, dtype=np.int64)
    converged = np.zeros(B, dtype=bool)
    final_time = np.zeros(B)
    messages_sent = np.zeros(B, dtype=np.int64)

    # The event loop computes the initial residual unconditionally; it
    # seeds the carried stopping value and the trace's residual series.
    last_res = residual_of(global_x, all_rows) if tol > 0.0 else None
    res_series: "list[list[float]] | None" = None
    time_series: "list[list[float]] | None" = None
    if tol > 0.0:
        res_series = [[float(last_res[b])] for b in range(B)]
        time_series = [[] for _ in range(B)]

    live = list(range(B))
    r = 0
    while live:
        r += 1
        end_t = r * c
        for pid in range(P):
            if not live:
                break
            live_arr = np.asarray(live, dtype=np.intp)
            oe = own_elems[pid]
            # Phase snapshots: own components one round stale, remote
            # components two rounds stale (messages of round r-1 land
            # after these phases started).
            snaps = V2[live_arr].copy()
            snaps[:, oe] = V1[live_arr][:, oe]
            for k, b in enumerate(live):
                snap = snaps[k]
                for comp in plan.components[pid]:
                    # Gauss-Seidel within the phase, as in the event loop.
                    snap[slices[comp]] = ops[b].apply_block(snap, comp)
            global_x[live_arr[:, None], oe[None, :]] = snaps[:, oe]

            frozen: list[int] = []
            check_rows = []
            for b in live:
                j = int(iterations[b]) + 1
                iterations[b] = j
                messages_sent[b] += msgs_per_commit[pid]
                if tol > 0.0 and (j % _SIM_RESIDUAL_EVERY == 0 or j >= max_iterations):
                    check_rows.append(b)
            if check_rows:
                ck = np.asarray(check_rows, dtype=np.intp)
                fresh = residual_of(global_x[ck], ck)
                for k, b in enumerate(check_rows):
                    last_res[b] = fresh[k]
            for b in live:
                j = int(iterations[b])
                if tol > 0.0:
                    res_series[b].append(float(last_res[b]))
                    time_series[b].append(end_t)
                if tol > 0.0 and last_res[b] < tol:
                    converged[b] = True
                elif j < max_iterations:
                    continue
                x_final[b] = global_x[b]
                final_time[b] = end_t
                frozen.append(b)
            if frozen:
                dead = set(frozen)
                live = [b for b in live if b not in dead]
        if live:
            live_arr = np.asarray(live, dtype=np.intp)
            V2[live_arr] = V1[live_arr]
            V1[live_arr] = global_x[live_arr]

    final_res = residual_of(x_final, all_rows)
    ttt: list[Any] = [None] * B
    if tol > 0.0:
        for b in range(B):
            ttt[b] = time_to_tolerance(
                np.asarray(res_series[b]), np.asarray(time_series[b]), tol
            )
    info = [
        {
            "messages_sent": float(messages_sent[b]),
            "messages_dropped": 0.0,
            "phases_completed": float(iterations[b]),
        }
        for b in range(B)
    ]

    wall_each = (time.perf_counter() - t0) / B
    return _summaries(
        list(specs), ops, refs, batched_norm, x_final, iterations, converged,
        final_res, final_time, ttt, info, wall_each,
    )
