"""Message channels: latency, loss, FIFO or reordering delivery.

A channel carries component-update messages between two processors.
Three properties matter to asynchronous convergence theory and all are
modelled:

* **latency** — a :class:`~repro.runtime.simulator.timing.DurationModel`;
  random latency with non-FIFO delivery produces *out-of-order
  messages*;
* **FIFO enforcement** — when on, delivery times are monotonized so
  messages arrive in send order (TCP-like); when off, a message can
  overtake an earlier one (UDP-like / multi-path);
* **loss** — messages dropped with probability ``drop_prob``;
  admissible as long as later messages keep flowing (the paper's
  remark that transient faults are covered by newer messages).

The receiver's *application policy* lives here too:
``apply = "latest_label"`` discards stale messages by tag (the safe
implementation), while ``apply = "overwrite"`` applies whatever
arrives last (untagged DMA/put-style writes) — the mode that produces
genuinely non-monotone label sequences.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.runtime.simulator.timing import ConstantTime, DurationModel
from repro.utils.validation import check_probability

__all__ = ["ChannelSpec", "ChannelState"]


@dataclass(frozen=True)
class ChannelSpec:
    """Configuration of a directed channel between two processors.

    Attributes
    ----------
    latency:
        Duration model for message transit times.
    fifo:
        Enforce in-order delivery (monotonized arrival times).
    drop_prob:
        Probability a message is silently lost.
    apply:
        Receiver policy: ``"latest_label"`` (tag-checked) or
        ``"overwrite"`` (last-arrival-wins).
    """

    latency: DurationModel = ConstantTime(0.05)
    fifo: bool = True
    drop_prob: float = 0.0
    apply: str = "latest_label"

    def __post_init__(self) -> None:
        check_probability(self.drop_prob, "drop_prob")
        if self.apply not in ("latest_label", "overwrite"):
            raise ValueError(
                f"apply must be 'latest_label' or 'overwrite', got {self.apply!r}"
            )

    @staticmethod
    def shared_memory() -> "ChannelSpec":
        """Near-zero-latency reliable channel (shared-memory writes)."""
        return ChannelSpec(latency=ConstantTime(1e-9), fifo=True, drop_prob=0.0)

    @staticmethod
    def lossy_reordering(
        latency: DurationModel,
        drop_prob: float = 0.05,
        apply: str = "overwrite",
    ) -> "ChannelSpec":
        """A UDP-like channel: random latency, reordering, loss."""
        return ChannelSpec(latency=latency, fifo=False, drop_prob=drop_prob, apply=apply)


class ChannelState:
    """Runtime state of one directed channel (owns its RNG stream)."""

    def __init__(self, spec: ChannelSpec, rng: np.random.Generator) -> None:
        self.spec = spec
        self.rng = rng
        self._sent = 0
        self._dropped = 0
        self._last_delivery_time = -np.inf

    @property
    def messages_sent(self) -> int:
        """Messages offered to the channel (including dropped ones)."""
        return self._sent

    @property
    def messages_dropped(self) -> int:
        """Messages lost to ``drop_prob``."""
        return self._dropped

    def delivery_time(self, send_time: float) -> float | None:
        """Arrival time for a message sent at ``send_time``.

        Returns ``None`` when the message is dropped.  FIFO channels
        monotonize arrival times so order is preserved; non-FIFO
        channels return raw ``send + latency`` and may reorder.
        """
        self._sent += 1
        if self.spec.drop_prob > 0.0 and self.rng.random() < self.spec.drop_prob:
            self._dropped += 1
            return None
        t = send_time + self.spec.latency.sample(self._sent, self.rng)
        if self.spec.fifo:
            t = max(t, self._last_delivery_time)
            self._last_delivery_time = t
        return t

    def delivery_times(self, send_time: float, count: int) -> "float | np.ndarray":
        """Arrival times for ``count`` messages sent together at ``send_time``.

        Bit-identical to ``count`` sequential :meth:`delivery_time`
        calls (dropped messages are ``nan``); lossless channels whose
        latency model supports stream-equivalent batch sampling take a
        vectorized fast path, everything else falls back to the loop.
        A scalar float return means every message arrives at exactly
        that time (the constant-latency case, returned without any
        array work).  The simulator sends one burst per (phase event,
        destination) through this, which is the channel-layer half of
        its hot-path batching.
        """
        if self.spec.drop_prob == 0.0 and type(self.spec.latency) is ConstantTime:
            # Sequential FIFO monotonization of equal raw arrivals
            # yields one shared arrival: max(send + value, last).
            self._sent += count
            # Coerced so callers can rely on a builtin float (send_time
            # may arrive as a numpy scalar from a DurationModel).
            t = float(send_time + self.spec.latency.value)
            if self.spec.fifo:
                if t < self._last_delivery_time:
                    t = self._last_delivery_time
                self._last_delivery_time = t
            return t
        if count == 1:
            t = self.delivery_time(send_time)
            return np.array([np.nan if t is None else t])
        if self.spec.drop_prob == 0.0:
            # No per-message drop draws interleave with latency draws,
            # so a batched latency sample consumes the rng identically.
            lat = self.spec.latency.sample_batch(self._sent + 1, count, self.rng)
            if lat is not None:
                self._sent += count
                t = send_time + lat
                if self.spec.fifo:
                    np.maximum(t, self._last_delivery_time, out=t)
                    np.maximum.accumulate(t, out=t)
                    self._last_delivery_time = float(t[-1])
                return t
        out = np.empty(count, dtype=np.float64)
        for i in range(count):
            a = self.delivery_time(send_time)
            out[i] = np.nan if a is None else a
        return out
