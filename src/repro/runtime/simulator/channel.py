"""Message channels: latency, loss, FIFO or reordering delivery.

A channel carries component-update messages between two processors.
Three properties matter to asynchronous convergence theory and all are
modelled:

* **latency** — a :class:`~repro.runtime.simulator.timing.DurationModel`;
  random latency with non-FIFO delivery produces *out-of-order
  messages*;
* **FIFO enforcement** — when on, delivery times are monotonized so
  messages arrive in send order (TCP-like); when off, a message can
  overtake an earlier one (UDP-like / multi-path);
* **loss** — messages dropped with probability ``drop_prob``;
  admissible as long as later messages keep flowing (the paper's
  remark that transient faults are covered by newer messages).

The receiver's *application policy* lives here too:
``apply = "latest_label"`` discards stale messages by tag (the safe
implementation), while ``apply = "overwrite"`` applies whatever
arrives last (untagged DMA/put-style writes) — the mode that produces
genuinely non-monotone label sequences.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.runtime.simulator.timing import ConstantTime, DurationModel
from repro.utils.validation import check_probability

__all__ = ["ChannelSpec", "ChannelState"]


@dataclass(frozen=True)
class ChannelSpec:
    """Configuration of a directed channel between two processors.

    Attributes
    ----------
    latency:
        Duration model for message transit times.
    fifo:
        Enforce in-order delivery (monotonized arrival times).
    drop_prob:
        Probability a message is silently lost.
    apply:
        Receiver policy: ``"latest_label"`` (tag-checked) or
        ``"overwrite"`` (last-arrival-wins).
    """

    latency: DurationModel = ConstantTime(0.05)
    fifo: bool = True
    drop_prob: float = 0.0
    apply: str = "latest_label"

    def __post_init__(self) -> None:
        check_probability(self.drop_prob, "drop_prob")
        if self.apply not in ("latest_label", "overwrite"):
            raise ValueError(
                f"apply must be 'latest_label' or 'overwrite', got {self.apply!r}"
            )

    @staticmethod
    def shared_memory() -> "ChannelSpec":
        """Near-zero-latency reliable channel (shared-memory writes)."""
        return ChannelSpec(latency=ConstantTime(1e-9), fifo=True, drop_prob=0.0)

    @staticmethod
    def lossy_reordering(
        latency: DurationModel,
        drop_prob: float = 0.05,
        apply: str = "overwrite",
    ) -> "ChannelSpec":
        """A UDP-like channel: random latency, reordering, loss."""
        return ChannelSpec(latency=latency, fifo=False, drop_prob=drop_prob, apply=apply)


class ChannelState:
    """Runtime state of one directed channel (owns its RNG stream)."""

    def __init__(self, spec: ChannelSpec, rng: np.random.Generator) -> None:
        self.spec = spec
        self.rng = rng
        self._sent = 0
        self._dropped = 0
        self._last_delivery_time = -np.inf

    @property
    def messages_sent(self) -> int:
        """Messages offered to the channel (including dropped ones)."""
        return self._sent

    @property
    def messages_dropped(self) -> int:
        """Messages lost to ``drop_prob``."""
        return self._dropped

    def delivery_time(self, send_time: float) -> float | None:
        """Arrival time for a message sent at ``send_time``.

        Returns ``None`` when the message is dropped.  FIFO channels
        monotonize arrival times so order is preserved; non-FIFO
        channels return raw ``send + latency`` and may reorder.
        """
        self._sent += 1
        if self.spec.drop_prob > 0.0 and self.rng.random() < self.spec.drop_prob:
            self._dropped += 1
            return None
        t = send_time + self.spec.latency.sample(self._sent, self.rng)
        if self.spec.fifo:
            t = max(t, self._last_delivery_time)
            self._last_delivery_time = t
        return t
