"""The discrete-event simulator of a parallel/distributed machine.

This is the hardware substitute (see DESIGN.md): processors with
heterogeneous phase durations execute updating phases on the components
they own, exchanging values over channels with latency, loss and
possible reordering.  Completed phases are serialized by completion
time into the global iteration sequence of Definition 1, producing an
:class:`~repro.core.trace.IterationTrace` whose ``(S, L)`` is *induced
by the physics* rather than prescribed — exactly how the paper's
mathematical model abstracts a running machine.

Semantics (matching Figure 1/2 of the paper):

* a phase *reads* its input data when it starts (snapshot semantics);
  with ``refresh_reads`` remote components are re-read before each
  inner step (flexible communication, receiving side);
* the phase's result is *committed and communicated at completion*,
  when it receives the next global iteration number ``j``;
* with ``publish_partials`` the inner iterates are sent to peers
  before completion (partial updates — the hatched arrows);
* a message carries (component, value, label); receivers either apply
  by tag (``latest_label``) or last-arrival-wins (``overwrite`` — the
  genuinely out-of-order mode);
* the labels recorded for iteration ``j`` are, per component, the
  label of the *oldest* version consumed by the phase (conservative,
  so condition (a) and the macro-iteration construction stay sound
  even when inner steps refreshed their reads).

The event loop is the *vectorized* implementation: component slices,
per-processor owned/remote element indices and destination channel
lists are precomputed once, remote refreshes and phase commits are
single fancy-indexed scatters, and each sent value is copied once and
shared (read-only) across all destination payloads.  Event order and
every per-channel/per-processor RNG draw are identical to the frozen
:class:`~repro.runtime.simulator.reference.ReferenceSimulator`, so
results are bit-for-bit reproducible against the seed implementation
(``tests/runtime/test_determinism.py`` enforces this).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Mapping

import numpy as np

from repro.core.trace import TraceStore, resolve_sink
from repro.operators.base import FixedPointOperator
from repro.runtime.simulator.channel import ChannelSpec, ChannelState
from repro.runtime.simulator.faults.base import (
    FaultModel,
    FaultState,
    max_staleness as _max_staleness,
)
from repro.runtime.simulator.processor import ProcessorSpec
from repro.runtime.simulator.records import MessageRecord, PhaseRecord, SimulationResult
from repro.utils.rng import as_generator, spawn_generators
from repro.utils.validation import check_vector

__all__ = ["DistributedSimulator"]


class _PhaseState:
    """Mutable bookkeeping of one in-flight updating phase."""

    __slots__ = ("index", "start", "duration", "snapshot", "min_labels", "steps_done")

    def __init__(
        self,
        index: int,
        start: float,
        duration: float,
        snapshot: np.ndarray,
        min_labels: np.ndarray,
    ) -> None:
        self.index = index
        self.start = start
        self.duration = duration
        self.snapshot = snapshot
        self.min_labels = min_labels
        self.steps_done = 0


class DistributedSimulator:
    """Event-driven simulation of asynchronous iterations on a machine.

    Parameters
    ----------
    operator:
        The fixed-point map whose block spec defines components.
    processors:
        One :class:`ProcessorSpec` per processor; their owned
        components must partition ``{0, ..., n-1}``.
    channels:
        Either a single :class:`ChannelSpec` used for every ordered
        processor pair, or a mapping ``(src, dst) -> ChannelSpec``
        (missing pairs fall back to ``default_channel``).
    default_channel:
        Fallback spec when ``channels`` is a partial mapping.
    reference:
        Known fixed point for error tracking (defaults to the
        operator's, when available).
    seed:
        Master seed; every processor and channel gets an independent
        child stream, so runs are bit-reproducible.
    faults:
        Optional :class:`~repro.runtime.simulator.faults.FaultModel`
        injecting crashes, stragglers and per-message channel fates.
        The model draws from its *own* seed streams, so ``faults=None``
        runs are bit-identical to a build without the fault layer.
    """

    def __init__(
        self,
        operator: FixedPointOperator,
        processors: list[ProcessorSpec],
        *,
        channels: ChannelSpec | Mapping[tuple[int, int], ChannelSpec] | None = None,
        default_channel: ChannelSpec | None = None,
        reference: np.ndarray | None = None,
        seed: int | np.random.Generator | None = 0,
        faults: "FaultModel | None" = None,
    ) -> None:
        self.operator = operator
        self.faults = faults
        self.processors = list(processors)
        n = operator.n_components
        owned: list[int] = []
        for spec in self.processors:
            owned.extend(spec.components)
        if sorted(owned) != list(range(n)):
            raise ValueError(
                "processor components must partition all components "
                f"{{0..{n - 1}}}; got {sorted(owned)}"
            )
        self._owners = np.empty(n, dtype=np.int64)
        for pid, spec in enumerate(self.processors):
            for c in spec.components:
                self._owners[c] = pid

        P = len(self.processors)
        master = as_generator(seed)
        streams = spawn_generators(master, P + P * P)
        self._proc_rng = streams[:P]
        chan_rngs = streams[P:]
        if channels is None or isinstance(channels, ChannelSpec):
            base = channels if isinstance(channels, ChannelSpec) else (
                default_channel if default_channel is not None else ChannelSpec()
            )
            chan_map: dict[tuple[int, int], ChannelSpec] = {}
            for s in range(P):
                for d in range(P):
                    if s != d:
                        chan_map[(s, d)] = base
        else:
            fallback = default_channel if default_channel is not None else ChannelSpec()
            chan_map = {}
            for s in range(P):
                for d in range(P):
                    if s != d:
                        chan_map[(s, d)] = channels.get((s, d), fallback)
        self._channels: dict[tuple[int, int], ChannelState] = {}
        k = 0
        for s in range(P):
            for d in range(P):
                if s != d:
                    self._channels[(s, d)] = ChannelState(chan_map[(s, d)], chan_rngs[k])
                k += 1

        # -- precomputed hot-path indices (the vectorization) ----------
        block = operator.block_spec
        self._slices: list[slice] = [block.slice(c) for c in range(n)]
        elem_idx = [np.arange(s.start, s.stop, dtype=np.intp) for s in self._slices]
        self._own_comps: list[np.ndarray] = []
        self._own_elems: list[np.ndarray] = []
        self._own_sizes: list[np.ndarray] = []
        self._remote_comps: list[np.ndarray] = []
        self._remote_elems: list[np.ndarray] = []
        self._dsts: list[list[tuple[int, ChannelState, str]]] = []
        for pid, spec in enumerate(self.processors):
            oc = np.asarray(spec.components, dtype=np.intp)
            rc = np.asarray(
                [c for c in range(n) if c not in set(spec.components)], dtype=np.intp
            )
            self._own_comps.append(oc)
            self._remote_comps.append(rc)
            self._own_elems.append(
                np.concatenate([elem_idx[c] for c in oc])
                if oc.size
                else np.empty(0, dtype=np.intp)
            )
            self._own_sizes.append(np.asarray([elem_idx[c].size for c in oc], dtype=np.intp))
            self._remote_elems.append(
                np.concatenate([elem_idx[c] for c in rc])
                if rc.size
                else np.empty(0, dtype=np.intp)
            )
            self._dsts.append(
                [
                    (d, self._channels[(pid, d)], self._channels[(pid, d)].spec.apply)
                    for d in range(P)
                    if d != pid
                ]
            )

        if reference is None:
            reference = operator.fixed_point()
        self.reference = (
            None
            if reference is None
            else check_vector(reference, "reference", dim=operator.dim)
        )

    # ------------------------------------------------------------------
    def run(
        self,
        x0: np.ndarray,
        *,
        max_iterations: int = 10_000,
        max_time: float = float("inf"),
        tol: float = 0.0,
        residual_every: int = 10,
        record_messages: bool = True,
        sink: TraceStore | None = None,
    ) -> SimulationResult:
        """Simulate until tolerance, iteration budget or time horizon.

        ``tol`` tests the fixed-point residual of the *global committed
        iterate* every ``residual_every`` completed phases (``0``
        disables the test and runs out the budget).  ``sink`` injects
        the trace store the run records into (e.g. a disk-spilling
        :class:`~repro.core.trace.TraceStore`).
        """
        x0 = check_vector(x0, "x0", dim=self.operator.dim)
        if max_iterations < 1:
            raise ValueError(f"max_iterations must be >= 1, got {max_iterations}")
        if residual_every < 1:
            raise ValueError(f"residual_every must be >= 1, got {residual_every}")
        norm = self.operator.norm()
        P = len(self.processors)
        n = self.operator.n_components
        slices = self._slices
        apply_block = self.operator.apply_block

        # Per-processor local state.
        views = [x0.copy() for _ in range(P)]
        view_labels = [np.zeros(n, dtype=np.int64) for _ in range(P)]
        phase_states: list[_PhaseState | None] = [None] * P
        phase_counts = [0] * P

        # Fault layer: per-run state with its own seed streams.  All
        # hooks below hide behind `fstate is not None`, so fault-free
        # runs draw nothing extra and stay bit-identical to the
        # pre-fault goldens.
        fstate: FaultState | None = (
            self.faults.start(P) if self.faults is not None else None
        )
        fates_active = fstate is not None and fstate.affects_channels
        down = [False] * P

        # Global committed state (owner-authoritative).
        global_x = x0.copy()
        global_labels = np.zeros(n, dtype=np.int64)

        builder = resolve_sink(sink, n, owners=self._owners.copy())
        track_err = self.reference is not None
        err0 = norm(x0 - self.reference) if track_err else None
        res0 = self.operator.residual(x0)
        builder.record_initial(error=err0, residual=res0)

        phases: list[PhaseRecord] = []
        messages: list[MessageRecord] = []
        heap: list[tuple[float, int, str, tuple]] = []
        seq = itertools.count()
        heappush = heapq.heappush
        heappop = heapq.heappop

        def start_phase(pid: int, t: float) -> None:
            ps = self.processors[pid]
            phase_counts[pid] += 1
            dur = ps.compute_time.sample(phase_counts[pid], self._proc_rng[pid])
            crash_at = rejoin_at = None
            if fstate is not None:
                dur, crash_at, rejoin_at = fstate.on_phase_start(pid, t, dur)
            state = _PhaseState(
                index=phase_counts[pid],
                start=t,
                duration=dur,
                snapshot=views[pid].copy(),
                min_labels=view_labels[pid].copy(),
            )
            phase_states[pid] = state
            step_dt = dur / ps.inner_steps
            heappush(heap, (t + step_dt, next(seq), "step", (pid, state.index)))
            if crash_at is not None:
                heappush(heap, (crash_at, next(seq), "crash", (pid, state.index, rejoin_at)))

        def send_burst(
            pid: int, snapshot: np.ndarray, labels_arr: np.ndarray, t: float, partial: bool
        ) -> None:
            """Send every owned component of ``pid`` to all peers at once.

            One channel batch per destination computes all arrival
            times; destinations whose messages all arrive together get
            a single batched heap event carrying one shared payload
            copy, the rest fall back to per-component events.  Channel
            draw order, message-log order and heap ordering semantics
            are identical to per-component sends (bursts occupy a
            contiguous sequence-number window, batches to different
            destinations commute, and the per-destination component
            order is preserved inside each batch).
            """
            comps = self.processors[pid].components
            m = len(comps)
            dsts = self._dsts[pid]
            # A float entry means "all m messages arrive at exactly
            # this time" (constant-latency fast path, no array work).
            arrs = [chan.delivery_times(t, m) for _, chan, _ in dsts]
            if fates_active:
                # Per-message fault fates on each (src, dst) pair: one
                # batched 2m-uniform draw per destination consumes the
                # pair stream exactly like the reference's m sequential
                # per-message draws, and unequal realized arrivals
                # simply route the burst down the per-component path.
                faulted = []
                for di, (dst, _, _) in enumerate(dsts):
                    arr = arrs[di]
                    drop, extra = fstate.message_fates(pid, dst, m)
                    if isinstance(arr, float):
                        arr = np.full(m, arr)
                    fstate.log.fault_drops += int(
                        np.count_nonzero(drop & ~np.isnan(arr))
                    )
                    arr = arr + extra
                    arr[drop] = np.nan
                    faulted.append(arr)
                arrs = faulted
            if record_messages:
                for i, c in enumerate(comps):
                    label_i = int(labels_arr[i])
                    for di, (dst, _, _) in enumerate(dsts):
                        arr = arrs[di]
                        a = arr if isinstance(arr, float) else arr[i]
                        messages.append(
                            MessageRecord(
                                pid, dst, c, label_i, t,
                                None if a != a else float(a), partial,
                            )
                        )
            payload: np.ndarray | None = None
            percomp: dict[int, np.ndarray] = {}
            for di, (dst, _, apply_policy) in enumerate(dsts):
                arr = arrs[di]
                if isinstance(arr, float):
                    arrival = arr
                else:
                    first = arr[0]
                    if first != first or not (arr == first).all():
                        for i, c in enumerate(comps):
                            a = arr[i]
                            if a != a:  # dropped (nan)
                                continue
                            value = percomp.get(c)
                            if value is None:
                                value = snapshot[slices[c]].copy()
                                percomp[c] = value
                            heappush(
                                heap,
                                (
                                    float(a),
                                    next(seq),
                                    "msg",
                                    (dst, c, value, int(labels_arr[i]), partial, apply_policy),
                                ),
                            )
                        continue
                    arrival = float(first)
                if payload is None:
                    # Fancy indexing already materializes a fresh array.
                    payload = snapshot[self._own_elems[pid]]
                heappush(
                    heap,
                    (
                        arrival,
                        next(seq),
                        "bmsg",
                        (dst, pid, payload, labels_arr, partial, apply_policy),
                    ),
                )

        # Prime all processors at t = 0.
        for pid in range(P):
            start_phase(pid, 0.0)

        iteration = 0
        converged = False
        last_residual = res0
        final_time = 0.0

        while heap:
            t, _, kind, payload = heappop(heap)
            if t > max_time:
                final_time = max_time
                break
            final_time = t
            if kind == "msg":
                dst, comp, value, label, partial, apply_policy = payload
                if down[dst]:
                    fstate.log.downtime_drops += 1
                    continue
                vl = view_labels[dst]
                if apply_policy == "overwrite":
                    # Last-arrival-wins: an old message can replace newer
                    # data — the genuinely out-of-order regime.
                    views[dst][slices[comp]] = value
                    vl[comp] = label
                else:
                    # Tag-checked application; partials tie-break in
                    # favour of the (fresher-than-its-label) partial.
                    if (partial and label >= vl[comp]) or (not partial and label > vl[comp]):
                        views[dst][slices[comp]] = value
                        vl[comp] = label
                continue
            if kind == "bmsg":
                # A whole burst (all components of one sender, equal
                # arrival) applied in one vectorized scatter.  The
                # components are distinct, so the per-message apply
                # rules commute and batching preserves semantics.
                dst, src, bpayload, labels_arr, partial, apply_policy = payload
                if down[dst]:
                    fstate.log.downtime_drops += len(self._own_comps[src])
                    continue
                vl = view_labels[dst]
                ocomps = self._own_comps[src]
                oelems = self._own_elems[src]
                if apply_policy == "overwrite":
                    views[dst][oelems] = bpayload
                    vl[ocomps] = labels_arr
                else:
                    cur = vl[ocomps]
                    mask = (labels_arr >= cur) if partial else (labels_arr > cur)
                    if mask.all():
                        views[dst][oelems] = bpayload
                        vl[ocomps] = labels_arr
                    elif mask.any():
                        emask = np.repeat(mask, self._own_sizes[src])
                        idx = oelems[emask]
                        views[dst][idx] = bpayload[emask]
                        vl[ocomps[mask]] = labels_arr[mask]
                continue

            if kind == "crash":
                # Processor dies mid-phase: the in-flight phase (its
                # commit, sends, and pending step events) is lost, and
                # messages arriving before the repair are dropped.
                pid, pindex, rejoin_at = payload
                state = phase_states[pid]
                if state is None or state.index != pindex:
                    continue
                phase_states[pid] = None
                down[pid] = True
                fstate.log.crashes += 1
                fstate.log.record("crash", t, pid)
                heappush(heap, (rejoin_at, next(seq), "repair", (pid,)))
                continue
            if kind == "repair":
                (pid,) = payload
                down[pid] = False
                fstate.log.repairs += 1
                fstate.log.record("repair", t, pid)
                # Restart from the (stale) local view — newer peer
                # messages keep flowing, so labels stay admissible.
                start_phase(pid, t)
                continue

            pid, pindex = payload
            ps = self.processors[pid]
            state = phase_states[pid]
            if state is None or state.index != pindex:
                continue  # stale step event of a crashed phase
            state.steps_done += 1
            k = state.steps_done

            if ps.refresh_reads and k > 1:
                # Pull fresher remote data into the working snapshot:
                # one gather/scatter over the precomputed remote-element
                # index instead of a per-component Python loop.
                relems = self._remote_elems[pid]
                rcomps = self._remote_comps[pid]
                state.snapshot[relems] = views[pid][relems]
                state.min_labels[rcomps] = np.minimum(
                    state.min_labels[rcomps], view_labels[pid][rcomps]
                )

            # One inner iteration on the owned components (Gauss-Seidel
            # within the phase: later components see earlier updates).
            snap = state.snapshot
            for c in ps.components:
                snap[slices[c]] = apply_block(snap, c)

            if k < ps.inner_steps:
                if ps.publish_partials:
                    t_pub = state.start + k * state.duration / ps.inner_steps
                    # Fancy indexing copies, so the labels the burst
                    # carries are frozen at publish time.
                    send_burst(pid, snap, view_labels[pid][self._own_comps[pid]], t_pub, True)
                heappush(
                    heap,
                    (
                        state.start + (k + 1) * state.duration / ps.inner_steps,
                        next(seq),
                        "step",
                        (pid, state.index),
                    ),
                )
                continue

            # Phase completion: assign the next global iteration number.
            iteration += 1
            j = iteration
            end = state.start + state.duration
            oelems = self._own_elems[pid]
            ocomps = self._own_comps[pid]
            committed = snap[oelems]
            views[pid][oelems] = committed
            view_labels[pid][ocomps] = j
            global_x[oelems] = committed
            global_labels[ocomps] = j
            send_burst(pid, snap, np.full(len(ps.components), j, dtype=np.int64), end, False)
            phases.append(
                PhaseRecord(
                    processor=pid,
                    iteration=j,
                    start=state.start,
                    end=end,
                    components=ps.components,
                    inner_steps=ps.inner_steps,
                )
            )

            err = norm(global_x - self.reference) if track_err else None
            if j % residual_every == 0 or j >= max_iterations:
                last_residual = self.operator.residual(global_x)
            builder.record(
                ps.components, state.min_labels, error=err, residual=last_residual, time=end
            )

            if tol > 0.0 and last_residual < tol:
                converged = True
                break
            if j >= max_iterations:
                break

            next_start = end
            if ps.think_time is not None:
                next_start += ps.think_time.sample(phase_counts[pid], self._proc_rng[pid])
            start_phase(pid, next_start)

        final_res = self.operator.residual(global_x)
        stats: dict[str, float] = {
            "messages_sent": float(sum(c.messages_sent for c in self._channels.values())),
            "messages_dropped": float(
                sum(c.messages_dropped for c in self._channels.values())
            ),
            "phases_completed": float(len(phases)),
        }
        trace = builder.build()
        if fstate is not None:
            stats.update(fstate.log.summary())
            stats["fault_max_staleness"] = _max_staleness(trace)
        return SimulationResult(
            x=global_x.copy(),
            trace=trace,
            phases=phases,
            messages=messages,
            final_time=final_time,
            converged=converged,
            final_residual=final_res,
            stats=stats,
        )
