"""Fault injection for the discrete-event machine simulators.

The paper's unbounded-delay convergence theory is a statement about
*unreliable* hardware; this package makes the unreliability explicit
and sweepable.  :mod:`~repro.runtime.simulator.faults.base` defines the
:class:`FaultModel`/:class:`FaultState`/:class:`FaultLog` contract both
engines honor, :mod:`~repro.runtime.simulator.faults.models` the
concrete regimes (crash/restart, limplock stragglers, lossy and
reordering channels, and their chaos composite), and
:mod:`~repro.runtime.simulator.faults.topology` the explicit cluster
channel graphs (clique, star, ring, two-tier racks).  The scenario
registry exposes them as the ``fault`` and ``topology`` grid axes.
"""

from repro.runtime.simulator.faults.base import (
    FaultLog,
    FaultModel,
    FaultState,
    max_staleness,
)
from repro.runtime.simulator.faults.models import (
    ChaosFault,
    CrashRestart,
    Limplock,
    LossyChannel,
    ReorderingChannel,
)
from repro.runtime.simulator.faults.topology import (
    clique_topology,
    ring_topology,
    star_topology,
    two_tier_topology,
)

__all__ = [
    "ChaosFault",
    "CrashRestart",
    "FaultLog",
    "FaultModel",
    "FaultState",
    "Limplock",
    "LossyChannel",
    "ReorderingChannel",
    "clique_topology",
    "max_staleness",
    "ring_topology",
    "star_topology",
    "two_tier_topology",
]
