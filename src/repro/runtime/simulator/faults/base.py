"""Fault-injection core: models, per-run state, and the fault log.

A :class:`FaultModel` is plain configuration plus a seed; calling
:meth:`FaultModel.start` materializes a :class:`FaultState` holding the
model's *own* RNG streams and a fresh :class:`FaultLog`.  Both
simulator engines (:class:`~repro.runtime.simulator.engine.DistributedSimulator`
and the frozen :class:`~repro.runtime.simulator.reference.ReferenceSimulator`)
consult the state through exactly two hooks, so fault semantics stay
enforceably bit-identical across engines:

* :meth:`FaultState.on_phase_start` — called once when a processor
  begins a phase; may inflate the duration (limplock) and/or schedule a
  mid-phase crash with a repair time (crash/restart);
* :meth:`FaultState.message_fates` — called once per (src, dst) burst;
  returns a per-message drop mask and extra-latency vector layered on
  top of whatever the base :class:`~repro.runtime.simulator.channel.ChannelSpec`
  produced (lossy / reordering channels).

Determinism contract
--------------------
The fault layer never touches the simulator's master seed: its streams
spawn from the model's own :class:`numpy.random.SeedSequence`, so a
fault-free run draws *nothing* from the fault layer and stays
bit-identical to the pre-fault golden digests.  Streams are keyed
per-processor (consumed in that processor's phase-start order, which
both engines realize identically) and per-ordered-(src, dst) pair
(consumed in per-pair send order, which both engines also realize
identically even though their *global* send loops differ).  Every hook
draws a fixed number of uniforms regardless of outcome, so one
realized event can never shift later draws.

:meth:`FaultModel.start` is idempotent: it re-derives the child
streams from a fresh copy of the seed sequence, so running the same
model through both engines (or resuming a killed sweep) replays the
exact same fault schedule.
"""

from __future__ import annotations

import numpy as np

__all__ = ["FaultLog", "FaultModel", "FaultState", "max_staleness"]


def max_staleness(trace) -> int:
    """Largest realized delay ``(j - 1) - L_i(j)`` over a trace's (S, L).

    Row ``j`` of the trace's label matrix holds the labels iteration
    ``j + 1`` consumed, each at most ``j`` (condition (a)); the
    difference is exactly the realized per-read staleness the fault
    log reports.
    """
    J = trace.n_iterations
    if not J:
        return 0
    iters = np.arange(J, dtype=np.int64).reshape(-1, 1)
    return int((iters - trace.labels).max())


class FaultLog:
    """Mutable record of realized fault events for one simulation run.

    Counters are plain ints so they survive strict-JSON round-trips
    and pack into the sweep store's int64 columns; ``events`` keeps the
    ``(kind, time, processor)`` tuples for analysis and tests.
    """

    __slots__ = (
        "crashes",
        "repairs",
        "fault_drops",
        "downtime_drops",
        "limp_episodes",
        "events",
    )

    def __init__(self) -> None:
        self.crashes = 0
        self.repairs = 0
        self.fault_drops = 0
        self.downtime_drops = 0
        self.limp_episodes = 0
        self.events: list[tuple[str, float, int]] = []

    def record(self, kind: str, time: float, pid: int) -> None:
        self.events.append((kind, float(time), int(pid)))

    def summary(self) -> dict[str, int]:
        """The int counters carried into ``SimulationResult.stats``."""
        return {
            "fault_crashes": int(self.crashes),
            "fault_repairs": int(self.repairs),
            "fault_drops": int(self.fault_drops),
            "fault_downtime_drops": int(self.downtime_drops),
            "fault_limp_episodes": int(self.limp_episodes),
        }


class FaultModel:
    """Base fault model: pure configuration plus its own seed.

    Subclasses override :meth:`phase_plan` (processor-side faults) and
    — with ``affects_channels = True`` — :meth:`message_fates`
    (channel-side faults).  The base implementation injects nothing, so
    an unsubclassed model is a structural no-op.
    """

    #: Whether :meth:`message_fates` must be consulted per burst.  The
    #: engines keep their scalar fast paths when this is False.
    affects_channels: bool = False

    def __init__(self, *, seed: "int | np.random.SeedSequence" = 0) -> None:
        self.seed = seed

    def start(self, n_processors: int) -> "FaultState":
        """Fresh per-run state (streams + log); idempotent per model."""
        return FaultState(self, n_processors)

    # -- hooks (rng is the per-processor / per-pair stream) ------------
    def phase_plan(
        self, rng: np.random.Generator, log: FaultLog, pid: int, t: float,
        duration: float,
    ) -> "tuple[float, float | None, float | None]":
        """``(duration, crash_at, rejoin_at)`` for a phase starting at ``t``.

        ``crash_at`` (strictly inside the possibly inflated phase) and
        ``rejoin_at`` are ``None`` when the phase survives.  Must draw
        a fixed number of uniforms per call for a given ``pid``.
        """
        return float(duration), None, None

    def message_fates(
        self, rng: np.random.Generator, count: int
    ) -> "tuple[np.ndarray, np.ndarray]":
        """``(drop_mask, extra_latency)`` for ``count`` messages on one pair.

        Must consume exactly ``2 * count`` uniforms so batched (engine)
        and sequential (reference) calls read the same stream.
        """
        raise NotImplementedError(
            f"{type(self).__name__} sets affects_channels but does not "
            "implement message_fates"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} seed={self.seed!r}>"


def _uniform_pairs(rng: np.random.Generator, count: int) -> "tuple[np.ndarray, np.ndarray]":
    """Two interleaved uniform vectors from ``2 * count`` sequential draws.

    ``rng.random(2 * count)`` consumes the stream exactly like
    ``count`` sequential ``rng.random(2)`` calls, so the engine's
    per-burst batch and the reference's per-message draws coincide.
    """
    u = rng.random(2 * count)
    return u[0::2], u[1::2]


class FaultState:
    """Per-run fault state: spawned RNG streams plus the live log.

    One state drives one simulation run.  Streams come from a *copy* of
    the model's seed sequence (spawning mutates a ``SeedSequence``'s
    child counter, and :meth:`FaultModel.start` must be idempotent so
    both engines replay the identical fault schedule).
    """

    __slots__ = ("model", "log", "_proc_rng", "_pair_rng", "_P")

    def __init__(self, model: FaultModel, n_processors: int) -> None:
        P = int(n_processors)
        if P < 1:
            raise ValueError(f"n_processors must be >= 1, got {n_processors}")
        base = model.seed
        if isinstance(base, np.random.SeedSequence):
            base = np.random.SeedSequence(base.entropy, spawn_key=base.spawn_key)
        else:
            base = np.random.SeedSequence(base)
        children = base.spawn(P + P * P)
        self.model = model
        self.log = FaultLog()
        self._P = P
        self._proc_rng = [np.random.Generator(np.random.PCG64(c)) for c in children[:P]]
        self._pair_rng = [np.random.Generator(np.random.PCG64(c)) for c in children[P:]]

    @property
    def affects_channels(self) -> bool:
        return self.model.affects_channels

    def on_phase_start(
        self, pid: int, t: float, duration: float
    ) -> "tuple[float, float | None, float | None]":
        """Delegate to the model with processor ``pid``'s own stream."""
        return self.model.phase_plan(self._proc_rng[pid], self.log, pid, t, duration)

    def message_fates(
        self, src: int, dst: int, count: int
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Per-message ``(drop_mask, extra_latency)`` on the (src, dst) stream."""
        return self.model.message_fates(self._pair_rng[src * self._P + dst], count)
