"""Concrete fault models: crash/restart, limplock, lossy/reordering channels.

Each model draws a *fixed* number of uniforms per hook call (see
:mod:`repro.runtime.simulator.faults.base`), so realized faults never
shift later draws and both simulator engines replay identical fault
schedules.  Crash and repair times come from continuous draws, so fault
events almost surely never tie with message arrivals or phase
boundaries on the event heap.
"""

from __future__ import annotations

import numpy as np

from repro.runtime.simulator.faults.base import FaultLog, FaultModel, _uniform_pairs
from repro.utils.validation import check_probability

__all__ = ["ChaosFault", "CrashRestart", "Limplock", "LossyChannel", "ReorderingChannel"]


def _crash_draw(
    rng: np.random.Generator, t: float, duration: float, crash_rate: float,
    repair_mean: float,
) -> "tuple[float | None, float | None]":
    """Three-uniform crash draw: whether, when, and how long the repair.

    A phase of length ``d`` crashes with probability ``1 - exp(-rate*d)``
    (a Poisson death clock); the crash lands uniformly inside the phase
    and the repair delay is exponential with mean ``repair_mean``.
    Always consumes exactly three uniforms.
    """
    u = rng.random(3)
    if u[0] >= -np.expm1(-crash_rate * duration):
        return None, None
    crash_at = t + u[1] * duration
    rejoin_at = crash_at + repair_mean * -np.log1p(-u[2])
    return float(crash_at), float(rejoin_at)


class CrashRestart(FaultModel):
    """Processors die mid-phase and rejoin after a repair delay.

    A crash discards the in-flight phase (its commit and sends never
    happen), marks the processor down — messages arriving while down
    are lost — and schedules a repair after an exponential delay, at
    which point the processor restarts a phase from its (now stale)
    local view.  Admissibility is preserved: labels stay conservative
    and peers keep sending newer updates the survivor applies on
    rejoin.
    """

    def __init__(
        self, *, crash_rate: float = 0.02, repair_mean: float = 5.0,
        seed: "int | np.random.SeedSequence" = 0,
    ) -> None:
        super().__init__(seed=seed)
        if crash_rate < 0:
            raise ValueError(f"crash_rate must be >= 0, got {crash_rate}")
        if repair_mean <= 0:
            raise ValueError(f"repair_mean must be > 0, got {repair_mean}")
        self.crash_rate = crash_rate
        self.repair_mean = repair_mean

    def phase_plan(
        self, rng: np.random.Generator, log: FaultLog, pid: int, t: float,
        duration: float,
    ) -> "tuple[float, float | None, float | None]":
        crash_at, rejoin_at = _crash_draw(
            rng, t, duration, self.crash_rate, self.repair_mean
        )
        return float(duration), crash_at, rejoin_at


class Limplock(FaultModel):
    """A straggler whose phases run ``factor`` times slower.

    Permanent by default (every phase of the straggler degrades);
    with ``episodic=True`` each of the straggler's phases limps
    independently with probability ``episode_prob`` — the
    slow-but-not-dead regime of HDFS limplock studies.
    """

    def __init__(
        self, *, straggler: int = 0, factor: float = 8.0, episodic: bool = False,
        episode_prob: float = 0.25, seed: "int | np.random.SeedSequence" = 0,
    ) -> None:
        super().__init__(seed=seed)
        if straggler < 0:
            raise ValueError(f"straggler must be >= 0, got {straggler}")
        if factor < 1.0:
            raise ValueError(f"factor must be >= 1, got {factor}")
        check_probability(episode_prob, "episode_prob")
        self.straggler = straggler
        self.factor = factor
        self.episodic = episodic
        self.episode_prob = episode_prob

    def phase_plan(
        self, rng: np.random.Generator, log: FaultLog, pid: int, t: float,
        duration: float,
    ) -> "tuple[float, float | None, float | None]":
        if pid != self.straggler:
            return float(duration), None, None
        if self.episodic and rng.random() >= self.episode_prob:
            return float(duration), None, None
        log.limp_episodes += 1
        log.record("limp", t, pid)
        return float(duration * self.factor), None, None


class LossyChannel(FaultModel):
    """Per-message Bernoulli drops layered on every channel.

    Admissible in the paper's sense as long as later messages keep
    flowing: a dropped update is superseded by fresher ones.
    """

    affects_channels = True

    def __init__(
        self, *, drop_prob: float = 0.05, seed: "int | np.random.SeedSequence" = 0,
    ) -> None:
        super().__init__(seed=seed)
        check_probability(drop_prob, "drop_prob")
        self.drop_prob = drop_prob

    def message_fates(
        self, rng: np.random.Generator, count: int
    ) -> "tuple[np.ndarray, np.ndarray]":
        u_drop, _ = _uniform_pairs(rng, count)
        return u_drop < self.drop_prob, np.zeros(count)


class ReorderingChannel(FaultModel):
    """Random extra latency on a fraction of messages (reordering).

    A hit message is delayed by an exponential extra latency *after*
    any FIFO monotonization of the base channel, so it can overtake or
    be overtaken — genuinely out-of-order delivery on top of any
    :class:`~repro.runtime.simulator.channel.ChannelSpec`.
    """

    affects_channels = True

    def __init__(
        self, *, delay_prob: float = 0.3, extra_mean: float = 1.0,
        seed: "int | np.random.SeedSequence" = 0,
    ) -> None:
        super().__init__(seed=seed)
        check_probability(delay_prob, "delay_prob")
        if extra_mean <= 0:
            raise ValueError(f"extra_mean must be > 0, got {extra_mean}")
        self.delay_prob = delay_prob
        self.extra_mean = extra_mean

    def message_fates(
        self, rng: np.random.Generator, count: int
    ) -> "tuple[np.ndarray, np.ndarray]":
        u_hit, u_lat = _uniform_pairs(rng, count)
        extra = np.where(
            u_hit < self.delay_prob, -self.extra_mean * np.log1p(-u_lat), 0.0
        )
        return np.zeros(count, dtype=bool), extra


class ChaosFault(FaultModel):
    """Compound regime: crashes + a permanent limplock straggler + lossy
    jittered channels — the everything-goes-wrong scenario the
    ``FAULT_GOLDEN`` determinism digest pins.

    Phase draws: the straggler's duration inflates first (no draw),
    then the crash clock draws its fixed three uniforms against the
    inflated duration.  Message draws: every message draws (drop,
    extra-latency); survivors always carry the exponential jitter.
    """

    affects_channels = True

    def __init__(
        self, *, crash_rate: float = 0.01, repair_mean: float = 4.0,
        straggler: int = 0, limp_factor: float = 4.0, drop_prob: float = 0.05,
        extra_mean: float = 0.5, seed: "int | np.random.SeedSequence" = 0,
    ) -> None:
        super().__init__(seed=seed)
        if crash_rate < 0:
            raise ValueError(f"crash_rate must be >= 0, got {crash_rate}")
        if repair_mean <= 0:
            raise ValueError(f"repair_mean must be > 0, got {repair_mean}")
        if straggler < 0:
            raise ValueError(f"straggler must be >= 0, got {straggler}")
        if limp_factor < 1.0:
            raise ValueError(f"limp_factor must be >= 1, got {limp_factor}")
        check_probability(drop_prob, "drop_prob")
        if extra_mean <= 0:
            raise ValueError(f"extra_mean must be > 0, got {extra_mean}")
        self.crash_rate = crash_rate
        self.repair_mean = repair_mean
        self.straggler = straggler
        self.limp_factor = limp_factor
        self.drop_prob = drop_prob
        self.extra_mean = extra_mean

    def phase_plan(
        self, rng: np.random.Generator, log: FaultLog, pid: int, t: float,
        duration: float,
    ) -> "tuple[float, float | None, float | None]":
        if pid == self.straggler:
            log.limp_episodes += 1
            duration = duration * self.limp_factor
        crash_at, rejoin_at = _crash_draw(
            rng, t, duration, self.crash_rate, self.repair_mean
        )
        return float(duration), crash_at, rejoin_at

    def message_fates(
        self, rng: np.random.Generator, count: int
    ) -> "tuple[np.ndarray, np.ndarray]":
        u_drop, u_lat = _uniform_pairs(rng, count)
        return u_drop < self.drop_prob, -self.extra_mean * np.log1p(-u_lat)
