"""Cluster topologies: explicit channel graphs instead of implicit all-to-all.

Each generator returns a *total* ``(src, dst) -> ChannelSpec`` map over
every ordered processor pair — no link is missing, so the paper's
totality condition (every component keeps being updated and
communicated) is structural, with latencies shaped by the graph:

* ``clique`` — flat all-to-all at one latency (the baseline fabric);
* ``star`` — spokes reach the hub in one latency, each other in two
  (store-and-forward through the hub, modelled as doubled latency);
* ``ring`` — latency proportional to hop distance around the ring;
* ``two-tier`` — rack-scoped fast links, slower inter-rack uplinks
  (the classic datacenter fabric).

Generators are deterministic given their parameters (the ``seed``
wiring argument exists for registry-signature uniformity), so a
topology never perturbs any RNG stream: fault-free, topology-bearing
scenarios stay bit-identical across engines and resumes.
"""

from __future__ import annotations

from repro.runtime.simulator.channel import ChannelSpec
from repro.runtime.simulator.timing import ConstantTime
from repro.utils.validation import check_positive

__all__ = [
    "clique_topology",
    "ring_topology",
    "star_topology",
    "two_tier_topology",
]

ChannelMap = "dict[tuple[int, int], ChannelSpec]"


def _pairs(n_processors: int):
    if n_processors < 1:
        raise ValueError(f"n_processors must be >= 1, got {n_processors}")
    for s in range(n_processors):
        for d in range(n_processors):
            if s != d:
                yield s, d


def clique_topology(n_processors: int, *, latency: float = 0.05) -> ChannelMap:
    """Flat all-to-all: every ordered pair at one constant latency."""
    check_positive(latency, "latency")
    spec = ChannelSpec(latency=ConstantTime(latency))
    return {(s, d): spec for s, d in _pairs(n_processors)}


def star_topology(
    n_processors: int, *, latency: float = 0.05, hub: int = 0
) -> ChannelMap:
    """Hub-and-spoke: hub links at ``latency``, spoke-spoke at twice that."""
    check_positive(latency, "latency")
    if not 0 <= hub < n_processors:
        raise ValueError(f"hub must be in [0, {n_processors}), got {hub}")
    direct = ChannelSpec(latency=ConstantTime(latency))
    relayed = ChannelSpec(latency=ConstantTime(2.0 * latency))
    return {
        (s, d): direct if hub in (s, d) else relayed
        for s, d in _pairs(n_processors)
    }


def ring_topology(n_processors: int, *, latency: float = 0.05) -> ChannelMap:
    """Ring: latency scales with hop distance (shorter way around)."""
    check_positive(latency, "latency")
    out = {}
    for s, d in _pairs(n_processors):
        hops = min(abs(s - d), n_processors - abs(s - d))
        out[(s, d)] = ChannelSpec(latency=ConstantTime(latency * hops))
    return out


def two_tier_topology(
    n_processors: int, *, rack_size: int = 2, intra_latency: float = 0.02,
    inter_latency: float = 0.5,
) -> ChannelMap:
    """Two-tier rack fabric: fast within a rack, slow across racks."""
    if rack_size < 1:
        raise ValueError(f"rack_size must be >= 1, got {rack_size}")
    check_positive(intra_latency, "intra_latency")
    check_positive(inter_latency, "inter_latency")
    fast = ChannelSpec(latency=ConstantTime(intra_latency))
    slow = ChannelSpec(latency=ConstantTime(inter_latency))
    return {
        (s, d): fast if s // rack_size == d // rack_size else slow
        for s, d in _pairs(n_processors)
    }
