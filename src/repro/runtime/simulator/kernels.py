"""Optional compiled inner kernel for the batched lockstep engine.

The batched engine's hot loop — gather delayed rows, update the active
components, test residuals — is plain numpy plus a Python-level loop
over scenarios.  When `numba <https://numba.pydata.org>`_ is installed
and the user opts in (``REPRO_JIT=1`` or ``ExecutionSpec.jit=True``),
this module compiles a fused version of that loop and hands it to
:mod:`repro.runtime.simulator.batched`.

Three guarantees keep the switch safe:

* **Opt-in** — with ``REPRO_JIT`` unset and no explicit ``jit=True``,
  nothing here ever imports numba; tier-1 stays dependency-free.
* **Auto-disable** — a missing numba wheel, a compilation error, or a
  kernel whose outputs are not *bit-identical* to the numpy path all
  disable the JIT (reason recorded, numpy path used) instead of
  failing the run.
* **Probe before trust** — the compiled kernel must reproduce a
  reference fixture bit for bit on *this* host before it is used.  BLAS
  row-slice matvecs and scalar dots agree on every platform we have
  measured, but the probe makes that an empirical precondition, not an
  assumption.

:func:`_engine_kernel_py` is deliberately plain Python (loops and
``np.dot`` only) so it both compiles under ``numba.njit`` and executes
as-is in environments without numba — the bit-identity tests run it
interpreted, pinning the kernel's semantics independently of wheels.
"""

from __future__ import annotations

import os
from typing import Any, Callable

import numpy as np

__all__ = [
    "jit_requested",
    "jit_status",
    "resolve_kernel",
]

#: Truthy spellings accepted for ``REPRO_JIT``.
_TRUTHY = ("1", "true", "on", "yes")

_status: dict[str, Any] = {
    "enabled": False,
    "backend": None,
    "reason": "not requested",
}

#: One-shot resolution cache: ``None`` = not resolved yet, otherwise a
#: 1-tuple holding the kernel callable or ``None`` (disabled).
_resolved: "tuple[Callable[..., int] | None] | None" = None


def jit_requested(override: "bool | None" = None) -> bool:
    """Whether the JIT path is requested (explicit flag wins over env)."""
    if override is not None:
        return bool(override)
    return os.environ.get("REPRO_JIT", "").strip().lower() in _TRUTHY


def jit_status() -> dict[str, Any]:
    """Introspection snapshot: ``{"enabled", "backend", "reason"}``.

    ``reason`` explains a disabled JIT (not requested, numba missing,
    compilation failure, probe mismatch) — the nightly CI job logs it
    so a silently skipped JIT run is visible in the build output.
    """
    return dict(_status)


def resolve_kernel(override: "bool | None" = None) -> "Callable[..., int] | None":
    """The compiled engine kernel, or ``None`` (use the numpy path).

    Resolution happens at most once per process: import numba, compile
    :func:`_engine_kernel_py`, and run the bit-identity probe.  Any
    failure records its reason in :func:`jit_status` and pins the
    result to ``None``, so a fleet of batches asks exactly once.
    """
    global _resolved
    if not jit_requested(override):
        if _status["reason"] == "not requested":
            _status.update(enabled=False, backend=None, reason="not requested")
        return None
    if _resolved is None:
        _resolved = (_compile_and_probe(),)
    return _resolved[0]


def _compile_and_probe() -> "Callable[..., int] | None":
    try:
        import numba
    except Exception as exc:  # noqa: BLE001 - any import failure disables
        _status.update(
            enabled=False, backend=None,
            reason=f"numba not importable: {exc!r}",
        )
        return None
    try:
        kernel = numba.njit(cache=False)(_engine_kernel_py)
        ok = _probe(kernel)  # first call also triggers compilation
    except Exception as exc:  # noqa: BLE001 - compilation errors disable
        _status.update(
            enabled=False, backend=None,
            reason=f"numba compilation failed: {exc!r}",
        )
        return None
    if not ok:
        _status.update(
            enabled=False, backend=None,
            reason="bit-identity probe failed: compiled kernel diverges "
            "from the numpy path on this host",
        )
        return None
    _status.update(
        enabled=True, backend=f"numba {getattr(numba, '__version__', '?')}",
        reason="probe passed",
    )
    return kernel


# ----------------------------------------------------------------------
# The kernel (numba-compilable, plain-Python-executable)
# ----------------------------------------------------------------------

def _engine_kernel_py(
    H: np.ndarray,          # (J+1, B, dim) float64; H[0] = x0
    A: np.ndarray,          # (B, dim, dim) float64 operator stack
    bvec: np.ndarray,       # (B, dim) float64 offsets
    act_flat: np.ndarray,   # int64, concatenated active sets for j = 1..J
    act_off: np.ndarray,    # (J+1,) int64, iteration j's set = act_flat[act_off[j-1]:act_off[j]]
    labels_elem: np.ndarray,  # (J, B, dim) int64 element labels per iteration
    tol: float,
    W: np.ndarray,          # (B, dim) float64 norm weights (scalar blocks)
    iterations: np.ndarray,  # (B,) int64 out
    converged: np.ndarray,  # (B,) bool out
    x_final: np.ndarray,    # (B, dim) float64 out
) -> int:
    """Fused gather-update-residual loop over a scenario batch.

    Semantics mirror ``_run_engine_batch``'s numpy window loop exactly:
    scalar blocks, shared deterministic steering (one active set per
    iteration), :class:`AffineOperator` updates, plain residual
    ``max_e |F(x) - x|_e / w_e`` tested every iteration when
    ``tol > 0``, converged rows frozen where the solo loop would stop.
    Per-element updates use 1-D dots (bit-equal to the row-slice
    matvecs ``apply_block`` issues — verified by the resolve-time
    probe); full-iterate residual matvecs use the same 2-D ``np.dot``
    BLAS call as ``AffineOperator.apply``.  Returns the last iteration
    index executed.
    """
    J = H.shape[0] - 1
    B = H.shape[1]
    dim = H.shape[2]
    alive = np.ones(B, dtype=np.bool_)
    n_alive = B
    j_done = 0
    row = np.empty(dim, dtype=np.float64)
    for j in range(1, J + 1):
        j_done = j
        H[j, :, :] = H[j - 1, :, :]
        for b in range(B):
            if not alive[b]:
                continue
            for e in range(dim):
                row[e] = H[labels_elem[j - 1, b, e], b, e]
            for s in range(act_off[j - 1], act_off[j]):
                i = act_flat[s]
                H[j, b, i] = np.dot(A[b, i], row) + bvec[b, i]
        if tol > 0.0:
            for b in range(B):
                if not alive[b]:
                    continue
                x = H[j, b]
                r = np.dot(A[b], x) + bvec[b] - x
                m = 0.0
                for e in range(dim):
                    v = abs(r[e]) / W[b, e]
                    if v > m:
                        m = v
                if m < tol:
                    converged[b] = True
                    iterations[b] = j
                    x_final[b, :] = H[j, b, :]
                    alive[b] = False
                    n_alive -= 1
            if n_alive == 0:
                break
    for b in range(B):
        if alive[b]:
            iterations[b] = j_done
            x_final[b, :] = H[j_done, b, :]
    return j_done


# ----------------------------------------------------------------------
# Bit-identity probe
# ----------------------------------------------------------------------

def _reference_loop(
    H: np.ndarray,
    A: np.ndarray,
    bvec: np.ndarray,
    act_flat: np.ndarray,
    act_off: np.ndarray,
    labels_elem: np.ndarray,
    tol: float,
    W: np.ndarray,
    iterations: np.ndarray,
    converged: np.ndarray,
    x_final: np.ndarray,
) -> int:
    """The numpy path's arithmetic, expression for expression.

    Updates are row-slice matvecs (``A[b, i:i+1, :] @ row``) exactly as
    :meth:`AffineOperator.apply_block` computes them; residuals are 2-D
    matvecs plus the batched weighted max norm.  The probe compares the
    compiled kernel against this, so any BLAS discrepancy on the
    running host disables the JIT instead of corrupting results.
    """
    J = H.shape[0] - 1
    B = H.shape[1]
    dim = H.shape[2]
    flatH = H.reshape(-1)
    elem_range = np.arange(dim, dtype=np.intp)
    live = list(range(B))
    j_done = 0
    for j in range(1, J + 1):
        j_done = j
        live_arr = np.asarray(live, dtype=np.intp)
        elem_lab = labels_elem[j - 1, live_arr]
        gather = (elem_lab * B + live_arr[:, None]) * dim + elem_range
        delayed = flatH[gather.reshape(-1)].reshape(len(live), dim)
        H[j] = H[j - 1]
        S = act_flat[act_off[j - 1]: act_off[j]]
        for k, b in enumerate(live):
            row = delayed[k]
            hb = H[j, b]
            for i in S:
                hb[i: i + 1] = A[b, i: i + 1, :] @ row + bvec[b, i: i + 1]
        if tol > 0.0:
            X = H[j, live_arr]
            V = np.empty_like(X)
            for k, b in enumerate(live):
                V[k] = A[b] @ X[k] + bvec[b] - X[k]
            res = (np.abs(V) / W[live_arr]).max(axis=1)
            frozen = []
            for k, b in enumerate(live):
                if res[k] < tol:
                    converged[b] = True
                    iterations[b] = j
                    x_final[b] = H[j, b]
                    frozen.append(b)
            if frozen:
                live = [b for b in live if b not in set(frozen)]
                if not live:
                    break
    for b in live:
        iterations[b] = j_done
        x_final[b] = H[j_done, b]
    return j_done


def _probe_fixture(seed: int = 0, B: int = 3, dim: int = 5, J: int = 8):
    """A small contractive batch with nontrivial delays and steering."""
    rng = np.random.default_rng(seed)
    A = rng.standard_normal((B, dim, dim))
    A /= 1.5 * np.abs(A).sum(axis=2, keepdims=True)  # max-norm contractive
    bvec = rng.standard_normal((B, dim))
    H = np.zeros((J + 1, B, dim))
    H[0] = rng.standard_normal((B, dim))
    sets = []
    off = [0]
    for j in range(1, J + 1):
        size = int(rng.integers(1, dim + 1))
        sets.append(np.sort(rng.choice(dim, size=size, replace=False)).astype(np.int64))
        off.append(off[-1] + size)
    act_flat = np.concatenate(sets)
    act_off = np.asarray(off, dtype=np.int64)
    labels_elem = np.empty((J, B, dim), dtype=np.int64)
    for j in range(1, J + 1):
        labels_elem[j - 1] = rng.integers(0, j, size=(B, dim))
    W = rng.uniform(0.5, 2.0, size=(B, dim))
    return H, A, bvec, act_flat, act_off, labels_elem, W


def _probe(kernel: Callable[..., int]) -> bool:
    """Run the kernel against the reference twin; True iff bits agree."""
    for tol in (0.0, 0.3):
        H, A, bvec, act_flat, act_off, labels_elem, W = _probe_fixture()
        B, dim = H.shape[1], H.shape[2]
        out_k = (np.zeros(B, dtype=np.int64), np.zeros(B, dtype=bool), np.zeros((B, dim)))
        out_r = (np.zeros(B, dtype=np.int64), np.zeros(B, dtype=bool), np.zeros((B, dim)))
        Hk = H.copy()
        jk = kernel(Hk, A, bvec, act_flat, act_off, labels_elem, tol, W, *out_k)
        jr = _reference_loop(H, A, bvec, act_flat, act_off, labels_elem, tol, W, *out_r)
        if jk != jr or not np.array_equal(Hk, H):
            return False
        for a, b in zip(out_k, out_r):
            if not np.array_equal(a, b):
                return False
    return True
