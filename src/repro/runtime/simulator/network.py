"""Network presets: channel maps for common platform archetypes.

The paper's experimental history spans shared-memory supercomputers
(Cray T3E SHMEM put/get), clusters (Grid5000 multi-network) and
planetary-scale grids (PlanetLab, nodes on different continents).
These helpers build the corresponding ``(src, dst) -> ChannelSpec``
maps for the simulator.
"""

from __future__ import annotations

import numpy as np

from repro.runtime.simulator.channel import ChannelSpec
from repro.runtime.simulator.timing import ConstantTime, ExponentialTime, UniformTime
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive

__all__ = [
    "shared_memory_network",
    "uniform_cluster",
    "wide_area_network",
    "two_cluster_grid",
]


def shared_memory_network(n_processors: int) -> dict[tuple[int, int], ChannelSpec]:
    """All pairs near-zero latency, reliable, FIFO (one-sided put/get)."""
    spec = ChannelSpec.shared_memory()
    return {
        (s, d): spec
        for s in range(n_processors)
        for d in range(n_processors)
        if s != d
    }


def uniform_cluster(
    n_processors: int,
    latency: float = 0.05,
    jitter: float = 0.0,
) -> dict[tuple[int, int], ChannelSpec]:
    """Homogeneous cluster interconnect; optional exponential jitter.

    With jitter and FIFO off a message can overtake its predecessor —
    the benign out-of-order regime of a multi-path fabric.
    """
    check_positive(latency, "latency")
    if jitter < 0:
        raise ValueError(f"jitter must be >= 0, got {jitter}")
    if jitter == 0.0:
        spec = ChannelSpec(latency=ConstantTime(latency), fifo=True)
    else:
        spec = ChannelSpec(latency=ExponentialTime(jitter, offset=latency), fifo=False)
    return {
        (s, d): spec
        for s in range(n_processors)
        for d in range(n_processors)
        if s != d
    }


def wide_area_network(
    n_processors: int,
    *,
    base_latency: float = 0.5,
    spread: float = 2.0,
    drop_prob: float = 0.02,
    overwrite: bool = True,
    seed: int | np.random.Generator | None = 0,
) -> dict[tuple[int, int], ChannelSpec]:
    """PlanetLab-style WAN: heterogeneous latencies, loss, reordering.

    Each ordered pair gets its own latency scale drawn from
    ``Uniform[base, base * spread]``; channels are non-FIFO and lossy,
    and (by default) apply messages in arrival order — the regime where
    label sequences are genuinely non-monotone.
    """
    check_positive(base_latency, "base_latency")
    if spread < 1.0:
        raise ValueError(f"spread must be >= 1, got {spread}")
    rng = as_generator(seed)
    apply = "overwrite" if overwrite else "latest_label"
    out: dict[tuple[int, int], ChannelSpec] = {}
    for s in range(n_processors):
        for d in range(n_processors):
            if s == d:
                continue
            scale = float(rng.uniform(base_latency, base_latency * spread))
            out[(s, d)] = ChannelSpec(
                latency=UniformTime(0.5 * scale, 1.5 * scale),
                fifo=False,
                drop_prob=drop_prob,
                apply=apply,
            )
    return out


def two_cluster_grid(
    n_processors: int,
    *,
    intra_latency: float = 0.02,
    inter_latency: float = 1.0,
    jitter: float = 0.1,
) -> dict[tuple[int, int], ChannelSpec]:
    """Grid5000-style two-site grid: fast intra-site, slow inter-site.

    Processors ``0 .. n/2-1`` form site A, the rest site B; inter-site
    channels carry the long latency plus exponential jitter (non-FIFO).
    """
    check_positive(intra_latency, "intra_latency")
    check_positive(inter_latency, "inter_latency")
    half = n_processors // 2
    fast = ChannelSpec(latency=ConstantTime(intra_latency), fifo=True)
    slow = ChannelSpec(
        latency=ExponentialTime(max(jitter, 1e-12), offset=inter_latency), fifo=False
    )
    out: dict[tuple[int, int], ChannelSpec] = {}
    for s in range(n_processors):
        for d in range(n_processors):
            if s == d:
                continue
            same = (s < half) == (d < half)
            out[(s, d)] = fast if same else slow
    return out
