"""Processor specifications for the simulated machine.

A processor owns a disjoint set of components of the iterate vector
and repeatedly executes *updating phases*: read local data, compute
(possibly several inner iterations), commit, communicate.  Phase
durations come from a :class:`~repro.runtime.simulator.timing.DurationModel`;
heterogeneous models across processors create the load imbalance the
paper's efficiency claims are about.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.runtime.simulator.timing import ConstantTime, DurationModel

__all__ = ["ProcessorSpec"]


@dataclass(frozen=True)
class ProcessorSpec:
    """Static configuration of one simulated processor.

    Attributes
    ----------
    components:
        Component indices this processor updates (disjoint across
        processors; the union must cover all components).
    compute_time:
        Duration model of one updating phase.
    inner_steps:
        Inner iterations per phase (``s >= 1``); with ``s > 1`` the
        phase evaluates the approximate operator ``T^s`` of
        Definition 3's generating process.
    publish_partials:
        Send the current inner iterate to peers after every inner step
        before the last — the partial updates (hatched arrows) of
        Figure 2.  Requires ``inner_steps > 1`` to have any effect.
    refresh_reads:
        Re-read remote components from the live local view before each
        inner step (instead of freezing them at phase start) — the
        receiving half of flexible communication: phases "immediately
        take benefit of partial updates".
    think_time:
        Optional idle gap between phases (defaults to none).
    """

    components: tuple[int, ...]
    compute_time: DurationModel = ConstantTime(1.0)
    inner_steps: int = 1
    publish_partials: bool = False
    refresh_reads: bool = False
    think_time: DurationModel | None = None

    def __post_init__(self) -> None:
        comps = tuple(sorted(set(int(c) for c in self.components)))
        if len(comps) == 0:
            raise ValueError("a processor must own at least one component")
        if len(comps) != len(self.components):
            raise ValueError("duplicate components in processor spec")
        object.__setattr__(self, "components", comps)
        if self.inner_steps < 1:
            raise ValueError(f"inner_steps must be >= 1, got {self.inner_steps}")
        if self.publish_partials and self.inner_steps < 2:
            raise ValueError("publish_partials requires inner_steps >= 2")

    @property
    def flexible(self) -> bool:
        """Whether this processor uses any flexible-communication feature."""
        return self.publish_partials or self.refresh_reads
