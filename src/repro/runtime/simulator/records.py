"""Event records of a simulated run (for analysis and Figure 1/2 rendering).

Besides the mathematical :class:`~repro.core.trace.IterationTrace`, the
simulator keeps the *physical* story: when each updating phase started
and ended on which processor, which messages (full updates and partial
updates) travelled when between which processors.  The reporting layer
turns these into the ASCII timelines that reproduce Figures 1 and 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.trace import IterationTrace

__all__ = ["PhaseRecord", "MessageRecord", "SimulationResult"]


@dataclass(frozen=True)
class PhaseRecord:
    """One updating phase on one processor.

    Attributes
    ----------
    processor:
        Executing processor id.
    iteration:
        Global iteration number assigned at completion (1-based).
    start, end:
        Simulated start/completion times.
    components:
        Components updated by the phase.
    inner_steps:
        Number of inner iterations performed.
    """

    processor: int
    iteration: int
    start: float
    end: float
    components: tuple[int, ...]
    inner_steps: int


@dataclass(frozen=True)
class MessageRecord:
    """One component-value message between processors.

    ``partial`` marks flexible-communication partial updates (the
    hatched arrows of Figure 2); ``label`` is the global iteration the
    value is tagged with (for partials: the not-yet-completed phase's
    predecessor label).  ``arrival`` is ``None`` for dropped messages.
    """

    src: int
    dst: int
    component: int
    label: int
    send_time: float
    arrival: float | None
    partial: bool


@dataclass
class SimulationResult:
    """Everything a simulated asynchronous run produced.

    Attributes
    ----------
    x:
        Final global iterate (owners' committed values).
    trace:
        The mathematical ``(S, L)`` trace (feeds macro/epoch analysis).
    phases:
        Physical phase records in completion order.
    messages:
        All messages in send order.
    final_time:
        Simulated time at which the run stopped.
    converged:
        Whether the stopping tolerance was met.
    final_residual:
        Fixed-point residual of ``x``.
    stats:
        Free-form counters (messages sent/dropped, partials, ...).
    """

    x: np.ndarray
    trace: IterationTrace
    phases: list[PhaseRecord]
    messages: list[MessageRecord]
    final_time: float
    converged: bool
    final_residual: float
    stats: dict[str, float] = field(default_factory=dict)

    def phases_of(self, processor: int) -> list[PhaseRecord]:
        """Phase records of one processor, in time order."""
        return [p for p in self.phases if p.processor == processor]

    def updates_per_processor(self) -> dict[int, int]:
        """Completed phase counts keyed by processor."""
        out: dict[int, int] = {}
        for p in self.phases:
            out[p.processor] = out.get(p.processor, 0) + 1
        return out

    def message_stats(self) -> dict[str, int]:
        """Counters over the message log."""
        total = len(self.messages)
        dropped = sum(1 for m in self.messages if m.arrival is None)
        partial = sum(1 for m in self.messages if m.partial)
        reordered = 0
        by_pair: dict[tuple[int, int], float] = {}
        for m in self.messages:
            if m.arrival is None:
                continue
            key = (m.src, m.dst)
            last = by_pair.get(key)
            if last is not None and m.arrival < last:
                reordered += 1
            by_pair[key] = max(last, m.arrival) if last is not None else m.arrival
        return {
            "total": total,
            "dropped": dropped,
            "partial": partial,
            "reordered_arrivals": reordered,
        }
