"""Frozen reference implementation of the distributed-machine simulator.

This is the original, straight-line event loop of
:class:`~repro.runtime.simulator.engine.DistributedSimulator`, kept
verbatim as a *behavioural oracle*: the vectorized engine must produce
bit-identical :class:`~repro.runtime.simulator.records.SimulationResult`
objects for every seed, machine and channel regime.  The determinism
regression suite (``tests/runtime/test_determinism.py``) runs both
implementations side by side, and ``benchmarks/bench_fleet_throughput.py``
uses this class as the sequential baseline the fleet runner is measured
against.

Do not optimize this module — its value is that it never changes.
See ``engine.py`` for the semantics documentation; the two modules
implement the same contract.  The fault-injection hooks are the one
sanctioned *semantic extension* since the freeze: they were added to
both engines in lockstep (the contract itself grew), hide entirely
behind ``faults=None``, and the pre-fault golden digests still pin the
fault-free behaviour bit for bit.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Mapping

import numpy as np

from repro.core.trace import TraceStore, resolve_sink
from repro.operators.base import FixedPointOperator
from repro.runtime.simulator.channel import ChannelSpec, ChannelState
from repro.runtime.simulator.faults.base import (
    FaultModel,
    FaultState,
    max_staleness as _max_staleness,
)
from repro.runtime.simulator.processor import ProcessorSpec
from repro.runtime.simulator.records import MessageRecord, PhaseRecord, SimulationResult
from repro.utils.rng import as_generator, spawn_generators
from repro.utils.validation import check_vector

__all__ = ["ReferenceSimulator"]


class _PhaseState:
    """Mutable bookkeeping of one in-flight updating phase."""

    __slots__ = ("index", "start", "duration", "snapshot", "min_labels", "steps_done")

    def __init__(
        self,
        index: int,
        start: float,
        duration: float,
        snapshot: np.ndarray,
        min_labels: np.ndarray,
    ) -> None:
        self.index = index
        self.start = start
        self.duration = duration
        self.snapshot = snapshot
        self.min_labels = min_labels
        self.steps_done = 0


class ReferenceSimulator:
    """The seed (pre-vectorization) event loop, kept as an oracle.

    Parameters
    ----------
    operator:
        The fixed-point map whose block spec defines components.
    processors:
        One :class:`ProcessorSpec` per processor; their owned
        components must partition ``{0, ..., n-1}``.
    channels:
        Either a single :class:`ChannelSpec` used for every ordered
        processor pair, or a mapping ``(src, dst) -> ChannelSpec``
        (missing pairs fall back to ``default_channel``).
    default_channel:
        Fallback spec when ``channels`` is a partial mapping.
    reference:
        Known fixed point for error tracking (defaults to the
        operator's, when available).
    seed:
        Master seed; every processor and channel gets an independent
        child stream, so runs are bit-reproducible.
    faults:
        Optional :class:`~repro.runtime.simulator.faults.FaultModel`;
        the fault semantics are a contract extension applied to both
        engines identically (the fault layer draws from its own seed
        streams, so ``faults=None`` behaviour is unchanged).
    """

    def __init__(
        self,
        operator: FixedPointOperator,
        processors: list[ProcessorSpec],
        *,
        channels: ChannelSpec | Mapping[tuple[int, int], ChannelSpec] | None = None,
        default_channel: ChannelSpec | None = None,
        reference: np.ndarray | None = None,
        seed: int | np.random.Generator | None = 0,
        faults: "FaultModel | None" = None,
    ) -> None:
        self.operator = operator
        self.faults = faults
        self.processors = list(processors)
        n = operator.n_components
        owned: list[int] = []
        for spec in self.processors:
            owned.extend(spec.components)
        if sorted(owned) != list(range(n)):
            raise ValueError(
                "processor components must partition all components "
                f"{{0..{n - 1}}}; got {sorted(owned)}"
            )
        self._owners = np.empty(n, dtype=np.int64)
        for pid, spec in enumerate(self.processors):
            for c in spec.components:
                self._owners[c] = pid

        P = len(self.processors)
        master = as_generator(seed)
        streams = spawn_generators(master, P + P * P)
        self._proc_rng = streams[:P]
        chan_rngs = streams[P:]
        if channels is None or isinstance(channels, ChannelSpec):
            base = channels if isinstance(channels, ChannelSpec) else (
                default_channel if default_channel is not None else ChannelSpec()
            )
            chan_map: dict[tuple[int, int], ChannelSpec] = {}
            for s in range(P):
                for d in range(P):
                    if s != d:
                        chan_map[(s, d)] = base
        else:
            fallback = default_channel if default_channel is not None else ChannelSpec()
            chan_map = {}
            for s in range(P):
                for d in range(P):
                    if s != d:
                        chan_map[(s, d)] = channels.get((s, d), fallback)
        self._channels: dict[tuple[int, int], ChannelState] = {}
        k = 0
        for s in range(P):
            for d in range(P):
                if s != d:
                    self._channels[(s, d)] = ChannelState(chan_map[(s, d)], chan_rngs[k])
                k += 1

        if reference is None:
            reference = operator.fixed_point()
        self.reference = (
            None
            if reference is None
            else check_vector(reference, "reference", dim=operator.dim)
        )

    # ------------------------------------------------------------------
    def run(
        self,
        x0: np.ndarray,
        *,
        max_iterations: int = 10_000,
        max_time: float = float("inf"),
        tol: float = 0.0,
        residual_every: int = 10,
        record_messages: bool = True,
        sink: TraceStore | None = None,
    ) -> SimulationResult:
        """Simulate until tolerance, iteration budget or time horizon.

        ``tol`` tests the fixed-point residual of the *global committed
        iterate* every ``residual_every`` completed phases (``0``
        disables the test and runs out the budget).  ``sink`` injects
        the trace store the run records into.
        """
        x0 = check_vector(x0, "x0", dim=self.operator.dim)
        if max_iterations < 1:
            raise ValueError(f"max_iterations must be >= 1, got {max_iterations}")
        if residual_every < 1:
            raise ValueError(f"residual_every must be >= 1, got {residual_every}")
        spec = self.operator.block_spec
        norm = self.operator.norm()
        P = len(self.processors)
        n = spec.n_blocks

        # Per-processor local state.
        views = [x0.copy() for _ in range(P)]
        view_labels = [np.zeros(n, dtype=np.int64) for _ in range(P)]
        phase_states: list[_PhaseState | None] = [None] * P
        phase_counts = [0] * P

        # Fault layer (mirrors engine.py exactly; no draws when absent).
        fstate: FaultState | None = (
            self.faults.start(P) if self.faults is not None else None
        )
        fates_active = fstate is not None and fstate.affects_channels
        down = [False] * P

        # Global committed state (owner-authoritative).
        global_x = x0.copy()
        global_labels = np.zeros(n, dtype=np.int64)

        builder = resolve_sink(sink, n, owners=self._owners.copy())
        track_err = self.reference is not None
        err0 = norm(x0 - self.reference) if track_err else None
        res0 = self.operator.residual(x0)
        builder.record_initial(error=err0, residual=res0)

        phases: list[PhaseRecord] = []
        messages: list[MessageRecord] = []
        heap: list[tuple[float, int, str, tuple]] = []
        seq = itertools.count()

        def schedule(t: float, kind: str, payload: tuple) -> None:
            heapq.heappush(heap, (t, next(seq), kind, payload))

        def start_phase(pid: int, t: float) -> None:
            ps = self.processors[pid]
            phase_counts[pid] += 1
            dur = ps.compute_time.sample(phase_counts[pid], self._proc_rng[pid])
            crash_at = rejoin_at = None
            if fstate is not None:
                dur, crash_at, rejoin_at = fstate.on_phase_start(pid, t, dur)
            state = _PhaseState(
                index=phase_counts[pid],
                start=t,
                duration=dur,
                snapshot=views[pid].copy(),
                min_labels=view_labels[pid].copy(),
            )
            phase_states[pid] = state
            step_dt = dur / ps.inner_steps
            schedule(t + step_dt, "step", (pid, state.index))
            if crash_at is not None:
                schedule(crash_at, "crash", (pid, state.index, rejoin_at))

        def send_component(
            pid: int, comp: int, value: np.ndarray, label: int, t: float, partial: bool
        ) -> None:
            for dst in range(P):
                if dst == pid:
                    continue
                chan = self._channels[(pid, dst)]
                arrival = chan.delivery_time(t)
                if fates_active:
                    # One per-message fault fate on the (pid, dst)
                    # stream; drawn even when the base channel already
                    # dropped the message, so the stream stays aligned
                    # with the engine's per-burst batch draws.
                    drop, extra = fstate.message_fates(pid, dst, 1)
                    if drop[0]:
                        if arrival is not None:
                            fstate.log.fault_drops += 1
                        arrival = None
                    elif arrival is not None:
                        arrival = float(arrival + extra[0])
                if record_messages:
                    messages.append(
                        MessageRecord(pid, dst, comp, label, t, arrival, partial)
                    )
                if arrival is not None:
                    schedule(
                        arrival,
                        "msg",
                        (dst, comp, value.copy(), label, partial, chan.spec.apply),
                    )

        # Prime all processors at t = 0.
        for pid in range(P):
            start_phase(pid, 0.0)

        iteration = 0
        converged = False
        last_residual = res0
        final_time = 0.0

        while heap:
            t, _, kind, payload = heapq.heappop(heap)
            if t > max_time:
                final_time = max_time
                break
            final_time = t
            if kind == "msg":
                dst, comp, value, label, partial, apply_policy = payload
                if down[dst]:
                    fstate.log.downtime_drops += 1
                    continue
                vl = view_labels[dst]
                if apply_policy == "overwrite":
                    # Last-arrival-wins: an old message can replace newer
                    # data — the genuinely out-of-order regime.
                    views[dst][spec.slice(comp)] = value
                    vl[comp] = label
                else:
                    # Tag-checked application; partials tie-break in
                    # favour of the (fresher-than-its-label) partial.
                    if (partial and label >= vl[comp]) or (not partial and label > vl[comp]):
                        views[dst][spec.slice(comp)] = value
                        vl[comp] = label
                continue

            if kind == "crash":
                # Processor dies mid-phase: the in-flight phase (its
                # commit, sends, and pending step events) is lost, and
                # messages arriving before the repair are dropped.
                pid, pindex, rejoin_at = payload
                state = phase_states[pid]
                if state is None or state.index != pindex:
                    continue
                phase_states[pid] = None
                down[pid] = True
                fstate.log.crashes += 1
                fstate.log.record("crash", t, pid)
                schedule(rejoin_at, "repair", (pid,))
                continue
            if kind == "repair":
                (pid,) = payload
                down[pid] = False
                fstate.log.repairs += 1
                fstate.log.record("repair", t, pid)
                # Restart from the (stale) local view — newer peer
                # messages keep flowing, so labels stay admissible.
                start_phase(pid, t)
                continue

            pid, pindex = payload
            ps = self.processors[pid]
            state = phase_states[pid]
            if state is None or state.index != pindex:
                continue  # stale step event of a crashed phase
            state.steps_done += 1
            k = state.steps_done

            if ps.refresh_reads and k > 1:
                # Pull fresher remote data into the working snapshot.
                own = set(ps.components)
                for c in range(n):
                    if c in own:
                        continue
                    state.snapshot[spec.slice(c)] = views[pid][spec.slice(c)]
                    state.min_labels[c] = min(state.min_labels[c], view_labels[pid][c])

            # One inner iteration on the owned components (Gauss-Seidel
            # within the phase: later components see earlier updates).
            for c in ps.components:
                new_block = self.operator.apply_block(state.snapshot, c)
                state.snapshot[spec.slice(c)] = new_block

            if k < ps.inner_steps:
                if ps.publish_partials:
                    for c in ps.components:
                        send_component(
                            pid,
                            c,
                            state.snapshot[spec.slice(c)],
                            int(view_labels[pid][c]),
                            state.start + k * state.duration / ps.inner_steps,
                            True,
                        )
                schedule(
                    state.start + (k + 1) * state.duration / ps.inner_steps,
                    "step",
                    (pid, state.index),
                )
                continue

            # Phase completion: assign the next global iteration number.
            iteration += 1
            j = iteration
            end = state.start + state.duration
            used_labels = state.min_labels.copy()
            for c in ps.components:
                sl = spec.slice(c)
                val = state.snapshot[sl]
                views[pid][sl] = val
                view_labels[pid][c] = j
                global_x[sl] = val
                global_labels[c] = j
                send_component(pid, c, val, j, end, False)
            phases.append(
                PhaseRecord(
                    processor=pid,
                    iteration=j,
                    start=state.start,
                    end=end,
                    components=ps.components,
                    inner_steps=ps.inner_steps,
                )
            )

            err = norm(global_x - self.reference) if track_err else None
            if j % residual_every == 0 or j >= max_iterations:
                last_residual = self.operator.residual(global_x)
            builder.record(
                ps.components, used_labels, error=err, residual=last_residual, time=end
            )

            if tol > 0.0 and last_residual < tol:
                converged = True
                break
            if j >= max_iterations:
                break

            next_start = end
            if ps.think_time is not None:
                next_start += ps.think_time.sample(phase_counts[pid], self._proc_rng[pid])
            start_phase(pid, next_start)

        final_res = self.operator.residual(global_x)
        stats: dict[str, float] = {
            "messages_sent": float(sum(c.messages_sent for c in self._channels.values())),
            "messages_dropped": float(
                sum(c.messages_dropped for c in self._channels.values())
            ),
            "phases_completed": float(len(phases)),
        }
        trace = builder.build()
        if fstate is not None:
            stats.update(fstate.log.summary())
            stats["fault_max_staleness"] = _max_staleness(trace)
        return SimulationResult(
            x=global_x.copy(),
            trace=trace,
            phases=phases,
            messages=messages,
            final_time=final_time,
            converged=converged,
            final_residual=final_res,
            stats=stats,
        )
