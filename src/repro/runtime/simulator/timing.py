"""Compute-time and latency models for the simulated machine.

The simulator replaces the paper's historical testbeds (Tnode, Cray
T3E, IBM SP4, Grid5000) with explicit stochastic models of how long an
updating phase takes on each processor and how long a message spends
in each channel.  All models are deterministic functions of a seeded
generator; heterogeneity across processors is the lever behind the
load-imbalance experiments, and :class:`LinearGrowthTime` realizes the
paper's Baudet example (the k-th phase of the slow processor takes k
time units, producing sqrt(j) delay growth).
"""

from __future__ import annotations

import abc

import numpy as np

from repro.utils.validation import check_nonnegative, check_positive

__all__ = [
    "DurationModel",
    "ConstantTime",
    "UniformTime",
    "ExponentialTime",
    "ParetoTime",
    "LinearGrowthTime",
]


class DurationModel(abc.ABC):
    """Produces strictly positive durations, indexed by occurrence number."""

    @abc.abstractmethod
    def sample(self, k: int, rng: np.random.Generator) -> float:
        """Duration of the ``k``-th occurrence (``k = 1, 2, ...``)."""

    def sample_batch(
        self, first: int, count: int, rng: np.random.Generator
    ) -> np.ndarray | None:
        """Durations of occurrences ``first .. first + count - 1``, or ``None``.

        A non-``None`` return MUST be bit-identical to ``count``
        sequential :meth:`sample` calls (same values, same ``rng``
        stream consumption) — the simulator batches channel draws
        through this and its determinism guarantee depends on it.
        Models without a provably stream-equivalent batch form return
        ``None`` (the default) and the caller falls back to the loop.
        """
        return None

    def mean(self) -> float:
        """Long-run mean duration (``inf`` when it grows without bound)."""
        raise NotImplementedError


class ConstantTime(DurationModel):
    """Every occurrence takes exactly ``value`` time units."""

    def __init__(self, value: float) -> None:
        self.value = check_positive(value, "value")

    def sample(self, k: int, rng: np.random.Generator) -> float:
        return self.value

    def sample_batch(
        self, first: int, count: int, rng: np.random.Generator
    ) -> np.ndarray:
        return np.full(count, self.value)

    def mean(self) -> float:
        return self.value


class UniformTime(DurationModel):
    """Durations i.i.d. uniform on ``[lo, hi]``."""

    def __init__(self, lo: float, hi: float) -> None:
        lo = check_positive(lo, "lo")
        hi = check_positive(hi, "hi")
        if hi < lo:
            raise ValueError(f"need lo <= hi, got [{lo}, {hi}]")
        self.lo, self.hi = lo, hi

    def sample(self, k: int, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.lo, self.hi))

    def sample_batch(
        self, first: int, count: int, rng: np.random.Generator
    ) -> np.ndarray:
        # ``Generator.uniform(size=n)`` consumes the stream exactly like
        # n scalar draws (verified by tests/runtime/test_determinism.py).
        return rng.uniform(self.lo, self.hi, size=count)

    def mean(self) -> float:
        return 0.5 * (self.lo + self.hi)


class ExponentialTime(DurationModel):
    """Durations i.i.d. ``offset + Exp(mean_extra)`` (memoryless jitter)."""

    def __init__(self, mean_extra: float, offset: float = 0.0) -> None:
        self.mean_extra = check_positive(mean_extra, "mean_extra")
        self.offset = check_nonnegative(offset, "offset")
        if self.offset == 0.0 and self.mean_extra == 0.0:
            raise ValueError("duration must be strictly positive")

    def sample(self, k: int, rng: np.random.Generator) -> float:
        return self.offset + float(rng.exponential(self.mean_extra))

    def mean(self) -> float:
        return self.offset + self.mean_extra


class ParetoTime(DurationModel):
    """Heavy-tailed durations ``scale * (1 + Pareto(alpha))``.

    ``alpha <= 1`` has infinite mean — the stress regime where a
    synchronous method's per-round time is dominated by stragglers.
    """

    def __init__(self, alpha: float, scale: float = 1.0) -> None:
        self.alpha = check_positive(alpha, "alpha")
        self.scale = check_positive(scale, "scale")

    def sample(self, k: int, rng: np.random.Generator) -> float:
        return self.scale * (1.0 + float(rng.pareto(self.alpha)))

    def mean(self) -> float:
        if self.alpha <= 1.0:
            return float("inf")
        return self.scale * (1.0 + 1.0 / (self.alpha - 1.0))


class LinearGrowthTime(DurationModel):
    """The Baudet example: the ``k``-th occurrence takes ``k * unit`` time.

    A processor with this model slows down forever; against a
    unit-speed peer, the peer's values age as ``sqrt(j)`` in iteration
    count — unbounded delays satisfying condition (b).
    """

    def __init__(self, unit: float = 1.0) -> None:
        self.unit = check_positive(unit, "unit")

    def sample(self, k: int, rng: np.random.Generator) -> float:
        if k < 1:
            raise ValueError(f"occurrence index must be >= 1, got {k}")
        return self.unit * k

    def sample_batch(
        self, first: int, count: int, rng: np.random.Generator
    ) -> np.ndarray:
        if first < 1:
            raise ValueError(f"occurrence index must be >= 1, got {first}")
        return self.unit * np.arange(first, first + count, dtype=np.float64)

    def mean(self) -> float:
        return float("inf")
