"""Content-addressed on-disk results of one scenario sweep.

A :class:`SweepStore` is a plain directory the fleet runner streams
into — the durable half of the results layer:

.. code-block:: text

    <root>/
      manifest.json            # scenario hashes + canonical specs, in order
      results/<hash>.json      # one summary row per completed scenario
      traces/<hash>.npz        # optional realized traces (keep_traces)
      tmp/<hash>/chunk_*.npz   # spill working set while a trace records
      fleet.json               # the aggregate FleetResult document

Every file is keyed by the scenario's canonical
:attr:`~repro.scenarios.spec.ScenarioSpec.content_hash`, so the store
is *content-addressed*: a resumed sweep (or a different grid that
happens to share scenarios) recognizes completed work by identity, not
by position.  Result rows are written atomically (tmp + rename) as
workers finish — killing a sweep mid-flight never corrupts the store,
and ``run_grid(..., resume=store)`` completes exactly the missing
scenarios.

The analysis layer reads the same directory back:
:meth:`fleet_result` reassembles the typed
:class:`~repro.runtime.fleet.FleetResult`, :meth:`load_trace`
materializes a persisted trace, and :meth:`digest` condenses the
deterministic fields of every completed row into one SHA-256 — the
equality certificate between an interrupted-and-resumed sweep and an
uninterrupted one.

Content addressing is also what makes stores *composable*:
:meth:`merge` recombines the per-host stores of a sharded grid
(``ScenarioGrid.shard``) into one store whose digest matches a
single-host run bit for bit, and any store doubles as the cross-study
result cache ``run_grid(cache=...)`` consults before executing a
scenario.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
from typing import TYPE_CHECKING, Any, Iterable, Sequence

from repro.core.trace import IterationTrace, load_trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.fleet import FleetResult, ScenarioResult
    from repro.scenarios.spec import ScenarioSpec

__all__ = ["SweepStore", "DIGEST_FIELDS", "digest_rows"]

_MANIFEST = "manifest.json"
_FLEET = "fleet.json"

#: ScenarioResult fields that are functions of the spec alone (for
#: deterministic backends) — wall-clock fields are excluded.
DIGEST_FIELDS = (
    "iterations", "converged", "final_residual", "final_error",
    "sim_time", "time_to_tol",
)


def digest_rows(pairs: "Iterable[tuple[str, ScenarioResult]]") -> str:
    """SHA-256 over ``(content_hash, deterministic fields)`` pairs.

    The one digest algorithm shared by :meth:`SweepStore.digest` and
    :meth:`repro.runtime.fleet.FleetResult.digest`, so a live fleet and
    a store that persisted the same scenarios certify equality.  Pairs
    are hashed in content-hash order, making the digest independent of
    completion/enumeration order.
    """
    from repro.runtime.fleet import _encode_nonfinite

    h = hashlib.sha256()
    for ch, row in sorted(pairs, key=lambda p: p[0]):
        # Non-finite values canonicalize to the same string sentinels
        # the store persists (and restores exactly), so a live row
        # with an inf/nan field and its store-loaded twin hash
        # identically — and inf stays distinct from nan.
        payload = {
            f: _encode_nonfinite(getattr(row, f)) for f in DIGEST_FIELDS
        }
        h.update(ch.encode())
        h.update(json.dumps(payload, sort_keys=True, allow_nan=False).encode())
    return h.hexdigest()


def _atomic_write(path: pathlib.Path, text: str) -> None:
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text)
    os.replace(tmp, path)


def _atomic_copy(src: pathlib.Path, dst: pathlib.Path) -> None:
    """Copy ``src`` to ``dst`` without ever exposing a torn file.

    Store and cache directories are shared between hosts/processes by
    design, and a reader recognizes a trace by the file *existing* —
    so the copy must appear atomically, exactly like row writes
    (tmp + rename), or a concurrent sweep could adopt a half-written
    ``.npz``.
    """
    import shutil

    tmp = dst.with_name(dst.name + ".tmp")
    shutil.copyfile(src, tmp)
    os.replace(tmp, dst)


class SweepStore:
    """Directory-backed, content-addressed persistence of a sweep."""

    FORMAT_VERSION = 1

    def __init__(self, root: "str | os.PathLike[str]", *, create: bool = True) -> None:
        self.root = pathlib.Path(root)
        self.results_dir = self.root / "results"
        self.traces_dir = self.root / "traces"
        self.tmp_dir = self.root / "tmp"
        if create:
            self.results_dir.mkdir(parents=True, exist_ok=True)
            self.traces_dir.mkdir(parents=True, exist_ok=True)
            self.tmp_dir.mkdir(parents=True, exist_ok=True)
        elif not (self.root / _MANIFEST).is_file():
            # An existing-but-unrelated directory is as wrong as a
            # missing one: opening it as a store would silently re-run
            # a whole sweep (and scatter store files into it).  The
            # manifest is written before any scenario executes, so
            # every real store — however early it was killed — has one.
            raise FileNotFoundError(
                f"no sweep store at {self.root} (missing {_MANIFEST})"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SweepStore root={str(self.root)!r} completed={len(self.completed())}>"

    # -- paths ---------------------------------------------------------
    def result_path(self, content_hash: str) -> pathlib.Path:
        return self.results_dir / f"{content_hash}.json"

    def trace_path(self, content_hash: str) -> pathlib.Path:
        return self.traces_dir / f"{content_hash}.npz"

    # -- manifest ------------------------------------------------------
    def write_manifest(self, specs: "Sequence[ScenarioSpec]") -> pathlib.Path:
        """Persist the sweep's scenario list (hashes + canonical specs).

        The manifest freezes submission order, which is what makes the
        store self-describing: :meth:`fleet_result` and :meth:`digest`
        iterate scenarios in manifest order, so their output matches
        the live fleet's regardless of completion interleaving.
        """
        doc = {
            "format_version": self.FORMAT_VERSION,
            "scenario_count": len(specs),
            "scenarios": [
                {"hash": s.content_hash, "key": s.key, "spec": s.canonical()}
                for s in specs
            ],
        }
        path = self.root / _MANIFEST
        _atomic_write(path, json.dumps(doc, indent=2))
        # A new manifest starts a new sweep: a fleet.json left over from
        # a previous (smaller/older) run would otherwise shadow the
        # fresh per-scenario rows in fleet_result() if this run dies
        # before writing its own aggregate.
        (self.root / _FLEET).unlink(missing_ok=True)
        return path

    def read_manifest(self) -> dict[str, Any]:
        """The manifest document (raises when the store has none)."""
        return json.loads((self.root / _MANIFEST).read_text())

    def manifest_hashes(self) -> list[str]:
        """Scenario content hashes in submission order."""
        return [s["hash"] for s in self.read_manifest()["scenarios"]]

    # -- per-scenario rows ---------------------------------------------
    def completed(self) -> set[str]:
        """Content hashes that already have a persisted summary row."""
        return {p.stem for p in self.results_dir.glob("*.json")}

    def write_result(self, result: "ScenarioResult") -> pathlib.Path:
        """Atomically persist one scenario's summary row.

        Failed scenarios (``result.error`` set) are *not* persisted as
        completed work — a resumed sweep retries them.
        """
        path = self.result_path(result.content_hash)
        if result.error is not None:
            return path
        _atomic_write(
            path, json.dumps(result.to_json_dict(), indent=2, allow_nan=False)
        )
        return path

    def load_result(self, spec: "ScenarioSpec") -> "ScenarioResult | None":
        """The persisted row for ``spec``, or ``None`` when absent."""
        from repro.runtime.fleet import ScenarioResult

        path = self.result_path(spec.content_hash)
        if not path.is_file():
            return None
        return ScenarioResult.from_json_dict(json.loads(path.read_text()))

    def load_result_by_hash(self, content_hash: str) -> "ScenarioResult | None":
        from repro.runtime.fleet import ScenarioResult

        path = self.result_path(content_hash)
        if not path.is_file():
            return None
        return ScenarioResult.from_json_dict(json.loads(path.read_text()))

    def load_complete_result(
        self, spec: "ScenarioSpec", *, require_trace: bool = False
    ) -> "ScenarioResult | None":
        """The persisted row for ``spec`` iff it counts as *complete*.

        This is THE completeness rule — ``run_grid``'s resume loop and
        the CLI's "N/M already complete" banner both call it, so they
        cannot drift apart.  Without ``require_trace`` a persisted row
        is complete.  With it, a row is additionally required to
        account for its trace: ``trace_path`` unset means the row
        predates trace-keeping (re-run to record one); a set-but-empty
        ``trace_path`` means the run kept traces and the backend
        legitimately produced none (complete — re-running could never
        help); a non-empty ``trace_path`` must have its file present.
        """
        row = self.load_result(spec)
        if row is None:
            return None
        if require_trace:
            if row.trace_path is None:
                return None
            if row.trace_path and not self.has_trace(spec.content_hash):
                return None  # dangling reference
        return row

    # -- traces --------------------------------------------------------
    def has_trace(self, content_hash: str) -> bool:
        return self.trace_path(content_hash).is_file()

    def load_trace(self, spec_or_hash: "ScenarioSpec | str") -> IterationTrace:
        """Materialize a persisted trace by spec or content hash."""
        h = spec_or_hash if isinstance(spec_or_hash, str) else spec_or_hash.content_hash
        return load_trace(self.trace_path(h))

    # -- aggregates ----------------------------------------------------
    def write_fleet(self, fleet: "FleetResult") -> pathlib.Path:
        path = self.root / _FLEET
        _atomic_write(path, fleet.to_json())
        return path

    def fleet_result(self) -> "FleetResult":
        """Reassemble the typed :class:`~repro.runtime.fleet.FleetResult`.

        Prefers the final ``fleet.json`` aggregate; for an interrupted
        or merged sweep (no aggregate yet) the completed per-scenario
        rows are stitched together in manifest order, so partial stores
        are still fully analyzable.  The stitched fleet's ``wall_time``
        is the *sum* of the rows' wall times — the real cumulative
        compute the store holds — never a fabricated ``0.0`` (which
        would make ``scenarios_per_sec`` infinite and its JSON
        non-standard).
        """
        from repro.runtime.fleet import FleetResult

        final = self.root / _FLEET
        if final.is_file():
            return FleetResult.from_json(final.read_text())
        results = []
        for h in self.manifest_hashes():
            r = self.load_result_by_hash(h)
            if r is not None:
                results.append(r)
        return FleetResult(
            results=tuple(results),
            wall_time=float(sum(r.wall_time for r in results)),
            executor="store",
            max_workers=0,
        )

    # -- merging -------------------------------------------------------
    def merge(self, *stores: "SweepStore | str | os.PathLike[str]") -> "SweepStore":
        """Combine shard stores into this one (rows, traces, manifest).

        The sharding workflow's recombine step: ``k`` hosts each run
        ``grid.shard(k, i)`` into their own store, then one host merges
        them — ``SweepStore(out).merge(shard0, shard1, ...)`` — and the
        merged store's :meth:`digest` is bit-identical to a single-host
        run of the whole grid (row digests are content-addressed and
        hash-ordered, so neither shard assignment nor merge order can
        leak into the certificate).

        Every shard's manifest entries are unioned in order (this
        store's own manifest first, when it has one; duplicate content
        hashes keep their first occurrence), completed rows and traces
        are copied in, and copied rows are re-pointed at this store's
        trace files so the merged store is self-contained.  Merging is
        idempotent and incremental: re-merging a shard, or merging a
        later, more complete version of it, only fills in what is
        missing.
        """
        from repro.runtime.fleet import _adopt_row

        opened = [
            s if isinstance(s, SweepStore) else SweepStore(s, create=False)
            for s in stores
        ]
        scenarios: list[dict[str, Any]] = []
        seen: set[str] = set()
        if (self.root / _MANIFEST).is_file():
            scenarios = list(self.read_manifest()["scenarios"])
            seen = {s["hash"] for s in scenarios}
        for shard in opened:
            for entry in shard.read_manifest()["scenarios"]:
                if entry["hash"] not in seen:
                    seen.add(entry["hash"])
                    scenarios.append(entry)
            done = self.completed()
            for h in shard.manifest_hashes():
                if h in done:
                    continue
                row = shard.load_result_by_hash(h)
                if row is not None:
                    _adopt_row(shard, self, row)
        doc = {
            "format_version": self.FORMAT_VERSION,
            "scenario_count": len(scenarios),
            "scenarios": scenarios,
        }
        _atomic_write(self.root / _MANIFEST, json.dumps(doc, indent=2))
        # Any pre-merge fleet.json aggregates fewer scenarios than the
        # merged manifest describes; drop it so fleet_result() stitches
        # the full row set instead.
        (self.root / _FLEET).unlink(missing_ok=True)
        return self

    # -- determinism ---------------------------------------------------
    #: Shared with FleetResult.digest (see module-level DIGEST_FIELDS).
    DIGEST_FIELDS = DIGEST_FIELDS

    def digest(self, hashes: "Iterable[str] | None" = None) -> str:
        """SHA-256 over the deterministic fields of completed rows.

        Two stores that ran the same scenarios — in one shot, or killed
        and resumed, serially or on any executor — produce the same
        digest; it is the cheap equality check the resume tests and the
        benchmark harness pin.  The default scope is the manifest's
        scenario list (falling back to every row on manifest-less
        stores), so rows left behind by a *different* grid that reused
        the directory don't pollute the certificate.  The algorithm is
        :func:`digest_rows`, shared with
        :meth:`~repro.runtime.fleet.FleetResult.digest`.
        """
        if hashes is None:
            try:
                hashes = self.manifest_hashes()
            except FileNotFoundError:
                hashes = self.completed()
        rows = []
        for ch in hashes:
            row = self.load_result_by_hash(ch)
            if row is not None:
                rows.append((ch, row))
        return digest_rows(rows)
