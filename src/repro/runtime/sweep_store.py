"""Content-addressed on-disk results of one scenario sweep.

A :class:`SweepStore` is a plain directory the fleet runner streams
into — the durable half of the results layer.  Stores come in two
layouts sharing one API and one digest algorithm:

.. code-block:: text

    packed (default, format_version 2 — scales to millions of rows)
    <root>/
      manifest.json              # {format_version, layout, prefix_len, prefixes}
      shards/<pp>/manifest.json  # the shard's scenario entries (+ global index)
      shards/<pp>/batch-<fp>.npz # columnar summary rows, content-hash order
      shards/<pp>/batch-<fp>.json# sidecar: key/spec/info/trace_path per row
      shards/<pp>/log/<hash>.json# append-log: in-flight rows not yet sealed
      traces/<hash>.npz          # optional realized traces (keep_traces)
      tmp/<hash>/chunk_*.npz     # spill working set while a trace records
      fleet.json                 # the aggregate FleetResult document
      merge_log.json             # fingerprints of source units already merged

    flat (legacy, format_version 1 — read/written forever, migratable)
    <root>/
      manifest.json              # scenario hashes + canonical specs, in order
      results/<hash>.json        # one summary row per completed scenario
      traces/<hash>.npz ; tmp/ ; fleet.json

Every row is keyed by the scenario's canonical
:attr:`~repro.scenarios.spec.ScenarioSpec.content_hash`, so the store
is *content-addressed*: a resumed sweep (or a different grid that
happens to share scenarios) recognizes completed work by identity, not
by position.  In the packed layout rows first land as one atomic
append-log file each (``shards/<pp>/log/<hash>.json`` — exactly the
legacy row document), and a shard's log is *sealed* into a columnar
batch once it reaches ``batch_rows`` entries: the npz holds the
summary columns (hash, iterations, converged, residual/error/times
with None-masks, wall_time) in content-hash order and the JSON sidecar
carries the irregular remainder (key, canonical spec, ``info``,
``trace_path``).  Killing a sweep between log write and seal loses
nothing — logs are complete rows, and readers overlay logs over
batches — so kill/resume stays bit-identical.

Aggregation is *streaming*: :meth:`digest` folds the digest columns of
one shard's batches at a time (never materializing
:class:`~repro.runtime.fleet.ScenarioResult` objects, never reading
sidecars), :meth:`iter_rows` yields lightweight :class:`RowView` rows
in global hash order one shard at a time, and :meth:`fleet_view`
wraps the store in a lazy :class:`StoreFleetView` whose report-facing
surface (``group_medians``, ``scenario_count``, ``wall_time``,
``digest``) never holds the full row set in memory.

Digest preservation: the packed digest is byte-identical to the flat
one because every value round-trips exactly — float64 summary columns
restore the same doubles the JSON documents carried (npz is lossless
and ``json.dumps`` of a given double is deterministic), the non-finite
string sentinels (``"NaN"``/``"Infinity"``/``"-Infinity"``) decode and
re-encode to themselves, and ``None`` optional fields are preserved
through explicit mask columns.

Content addressing is also what makes stores *composable*:
:meth:`merge` recombines the per-host stores of a sharded grid
(``ScenarioGrid.shard``) into one store whose digest matches a
single-host run bit for bit — and is O(changed): each source shard
unit is fingerprinted (its completed hashes + trace markers) into
``merge_log.json``, so re-merging an unchanged shard skips it without
reading a single row.  Any store doubles as the cross-study result
cache ``run_grid(cache=...)`` consults before executing a scenario.
Legacy flat stores upgrade in place via :meth:`migrate`
(``python -m repro store migrate``), with a digest-equality check and
rollback on mismatch.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import shutil
from collections import OrderedDict
from typing import TYPE_CHECKING, Any, Iterable, Iterator, Sequence

import numpy as np

from repro.core.trace import IterationTrace, load_trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.fleet import FleetResult, ScenarioResult
    from repro.scenarios.spec import ScenarioSpec

__all__ = [
    "SweepStore",
    "StoreFleetView",
    "RowView",
    "DIGEST_FIELDS",
    "digest_rows",
]

_MANIFEST = "manifest.json"
_FLEET = "fleet.json"
_MERGE_LOG = "merge_log.json"

#: First hex chars of the content hash naming a shard directory.  One
#: hex char (16 shards) keeps per-file overheads (npz opens, shard
#: manifest reads) off the digest/merge critical path at 10⁴–10⁵ rows
#: while still bounding any one directory to ~500 entries per million
#: rows; stores persist their own ``prefix_len`` in the manifest
#: header, so the default only governs brand-new stores.
DEFAULT_PREFIX_LEN = 1
#: Log rows per shard before they are sealed into a columnar batch.
DEFAULT_BATCH_ROWS = 256
#: Decoded batches kept hot (LRU) for random access.
_BATCH_CACHE_SIZE = 16
#: Total decoded rows the LRU may pin.  Batch sizes vary wildly (a
#: merge adopts whole shards as single batches), so the cache trims on
#: rows, not entries — streaming aggregates stay O(one shard's working
#: set) however the rows are batched.
_BATCH_CACHE_ROWS = 4096

#: ScenarioResult fields that are functions of the spec alone (for
#: deterministic backends) — wall-clock fields are excluded.
DIGEST_FIELDS = (
    "iterations", "converged", "final_residual", "final_error",
    "sim_time", "time_to_tol",
)

#: Summary fields that may legitimately be ``None`` on a row; packed
#: batches store them as a float column plus a ``<field>_none`` mask.
_OPTIONAL_FIELDS = ("final_error", "sim_time", "time_to_tol")

#: Fault-log counters lifted out of each row's ``info`` dict into int64
#: batch columns (0 for fault-free rows), so fault-intensity analytics
#: scan columns instead of parsing sidecar JSON.  Purely additive: the
#: digest reads only the ``hash``/``digest_json`` members, row documents
#: reconstruct ``info`` from the sidecar, and batches written before
#: these columns existed load unchanged.
_FAULT_FIELDS = ("fault_crashes", "fault_drops", "fault_limp_episodes")


def digest_rows(pairs: "Iterable[tuple[str, ScenarioResult]]") -> str:
    """SHA-256 over ``(content_hash, deterministic fields)`` pairs.

    The one digest algorithm shared by :meth:`SweepStore.digest` and
    :meth:`repro.runtime.fleet.FleetResult.digest`, so a live fleet and
    a store that persisted the same scenarios certify equality.  Pairs
    are hashed in content-hash order, making the digest independent of
    completion/enumeration order.
    """
    from repro.runtime.fleet import _encode_nonfinite

    h = hashlib.sha256()
    for ch, row in sorted(pairs, key=lambda p: p[0]):
        # Non-finite values canonicalize to the same string sentinels
        # the store persists (and restores exactly), so a live row
        # with an inf/nan field and its store-loaded twin hash
        # identically — and inf stays distinct from nan.
        payload = {
            f: _encode_nonfinite(getattr(row, f)) for f in DIGEST_FIELDS
        }
        h.update(ch.encode())
        h.update(json.dumps(payload, sort_keys=True, allow_nan=False).encode())
    return h.hexdigest()


def _atomic_write(path: pathlib.Path, text: str) -> None:
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text)
    os.replace(tmp, path)


def _atomic_copy(src: pathlib.Path, dst: pathlib.Path) -> None:
    """Copy ``src`` to ``dst`` without ever exposing a torn file.

    Store and cache directories are shared between hosts/processes by
    design, and a reader recognizes a trace by the file *existing* —
    so the copy must appear atomically, exactly like row writes
    (tmp + rename), or a concurrent sweep could adopt a half-written
    ``.npz``.
    """
    tmp = dst.with_name(dst.name + ".tmp")
    shutil.copyfile(src, tmp)
    os.replace(tmp, dst)


def _atomic_savez(path: pathlib.Path, arrays: "dict[str, np.ndarray]") -> None:
    # np.savez appends ".npz" to bare path names but not to open file
    # objects — write through a handle so the tmp name stays exact.
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as fh:
        np.savez(fh, **arrays)
    os.replace(tmp, path)


def _payload_from_doc(doc: "dict[str, Any]") -> "dict[str, Any]":
    """Digest payload straight from a persisted row document.

    Matches :func:`digest_rows` on the loaded row byte for byte: the
    document already carries the encoded forms (sentinel strings,
    ``null`` optionals), and a legacy ``final_residual: null`` loads
    as ``nan`` hence re-encodes as ``"NaN"``.
    """
    fr = doc.get("final_residual")
    return {
        "iterations": int(doc.get("iterations", 0)),
        "converged": bool(doc.get("converged", False)),
        "final_residual": "NaN" if fr is None else fr,
        "final_error": doc.get("final_error"),
        "sim_time": doc.get("sim_time"),
        "time_to_tol": doc.get("time_to_tol"),
    }


class _SpecView:
    """Attribute access over a canonical spec document.

    Stands in for :class:`~repro.scenarios.spec.ScenarioSpec` on
    streamed rows: grouping keys (``spec.problem``, ``spec.delays``…)
    resolve straight from the persisted canonical dict, skipping
    registry re-validation — the per-row cost that makes materializing
    10⁶ real specs prohibitive.
    """

    __slots__ = ("_doc",)

    def __init__(self, doc: "dict[str, Any]") -> None:
        self._doc = doc

    def __getattr__(self, name: str) -> Any:
        try:
            return self._doc[name]
        except KeyError:
            raise AttributeError(name) from None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_SpecView({self._doc!r})"


class RowView:
    """One persisted row decoded for streaming aggregation.

    Carries exactly the fields the aggregate consumers touch —
    metrics, ``spec`` (as :class:`_SpecView`), ``info``,
    ``trace_path`` — with non-finite sentinels restored to floats,
    so ``group_medians``/``rates`` treat it like a
    :class:`~repro.runtime.fleet.ScenarioResult` without one ever
    being constructed.  Persisted rows are never failures, so
    ``error`` is always ``None``.
    """

    __slots__ = (
        "content_hash", "key", "spec", "iterations", "converged",
        "final_residual", "final_error", "sim_time", "time_to_tol",
        "wall_time", "error", "info", "trace_path",
    )

    def __init__(self, content_hash: str, doc: "dict[str, Any]") -> None:
        from repro.runtime.fleet import _decode_nonfinite

        self.content_hash = content_hash
        self.key = doc.get("key")
        self.spec = _SpecView(doc.get("spec") or {})
        self.iterations = int(doc.get("iterations", 0))
        self.converged = bool(doc.get("converged", False))
        fr = doc.get("final_residual")
        self.final_residual = (
            float("nan") if fr is None else float(_decode_nonfinite(fr))
        )
        for f in _OPTIONAL_FIELDS:
            v = doc.get(f)
            setattr(self, f, None if v is None else float(_decode_nonfinite(v)))
        self.wall_time = float(doc.get("wall_time", 0.0))
        self.error = None
        self.info = doc.get("info") or {}
        self.trace_path = doc.get("trace_path")


class StoreFleetView:
    """Lazy, streaming stand-in for a store's ``FleetResult``.

    Presents the aggregate surface the report/analysis layer consumes
    (``results``, ``ok``, ``group_medians``, ``scenario_count``,
    ``wall_time``, ``digest``…) while reading rows one shard at a
    time — a 10⁶-row study report peaks at one shard's worth of
    memory.  ``wall_time`` is the *sum* of row wall times (cumulative
    compute, as for any store-reassembled fleet) and ``executor`` is
    ``"store"``, matching :meth:`SweepStore.fleet_result`'s stitched
    path.  :meth:`materialize` yields the eager twin when positional
    results are genuinely needed.
    """

    executor = "store"
    max_workers = 0

    def __init__(self, store: "SweepStore") -> None:
        self.store = store
        self._counts: "tuple[int, float] | None" = None

    # -- rows ----------------------------------------------------------
    @property
    def results(self) -> "_RowIterable":
        return _RowIterable(self.store)

    def ok(self) -> "Iterator[RowView]":
        # Failed scenarios are never persisted: every stored row is ok.
        return self.store.iter_rows()

    def failures(self) -> tuple:
        return ()

    # -- stats ---------------------------------------------------------
    def _stats(self) -> "tuple[int, float]":
        if self._counts is None:
            self._counts = self.store._stats()
        return self._counts

    @property
    def scenario_count(self) -> int:
        return self._stats()[0]

    @property
    def wall_time(self) -> float:
        return self._stats()[1]

    @property
    def scenarios_per_sec(self) -> float:
        n, wall = self._stats()
        if n == 0 or wall <= 0:
            return 0.0
        return n / wall

    def converged_fraction(self) -> float:
        n = 0
        good = 0
        for row in self.store.iter_rows():
            n += 1
            good += bool(row.converged)
        return good / n if n else 0.0

    # -- aggregation ---------------------------------------------------
    def group_medians(
        self,
        by: "Any" = ("problem",),
        metrics: "Sequence[str]" = ("iterations", "final_residual"),
    ) -> "dict[tuple[Any, ...], dict[str, float]]":
        from repro.runtime.fleet import _group_medians

        return _group_medians(self.store.iter_rows(), by, metrics)

    def digest(self) -> str:
        return self.store.digest()

    # -- materialization (only when positions/JSON are really needed) --
    def materialize(self) -> "FleetResult":
        return self.store.fleet_result()

    def to_rows(self, metrics: "Sequence[str]" = ("iterations", "converged",
                                                  "final_residual")) -> list:
        return self.materialize().to_rows(metrics)

    def to_json(self) -> str:
        return self.materialize().to_json()


class _RowIterable:
    """Re-iterable over a store's rows (a fresh scan per ``iter()``)."""

    def __init__(self, store: "SweepStore") -> None:
        self._store = store

    def __iter__(self) -> "Iterator[RowView]":
        return self._store.iter_rows()


class SweepStore:
    """Directory-backed, content-addressed persistence of a sweep."""

    #: Current (packed) manifest format; flat stores keep writing v1.
    FORMAT_VERSION = 2
    FLAT_FORMAT_VERSION = 1

    def __init__(
        self,
        root: "str | os.PathLike[str]",
        *,
        create: bool = True,
        layout: "str | None" = None,
        batch_rows: "int | None" = None,
        prefix_len: "int | None" = None,
    ) -> None:
        self.root = pathlib.Path(root)
        self.results_dir = self.root / "results"
        self.shards_dir = self.root / "shards"
        self.traces_dir = self.root / "traces"
        self.tmp_dir = self.root / "tmp"
        self.batch_rows = (
            DEFAULT_BATCH_ROWS if batch_rows is None else int(batch_rows)
        )
        self.prefix_len = (
            DEFAULT_PREFIX_LEN if prefix_len is None else int(prefix_len)
        )
        if layout not in (None, "flat", "packed"):
            raise ValueError(f"unknown store layout {layout!r}")
        detected = self._detect_layout()
        # An existing store's on-disk layout always wins; the kwarg
        # only chooses the format of a brand-new directory.
        self.layout = detected if detected is not None else (layout or "packed")
        if self.layout == "packed" and (self.root / _MANIFEST).is_file():
            # Shard addressing must match how the store was written,
            # whatever this instance was constructed with.
            try:
                header = json.loads((self.root / _MANIFEST).read_text())
                self.prefix_len = int(header.get("prefix_len", self.prefix_len))
            except (ValueError, TypeError, json.JSONDecodeError):
                pass
        elif (
            self.layout == "packed"
            and prefix_len is None
            and self.shards_dir.is_dir()
        ):
            # Manifest-less packed directories (result caches) carry no
            # header; infer the addressing from the shard directories
            # themselves so a cache written under one default re-opens
            # correctly under another.
            for p in self.shards_dir.iterdir():
                name = p.name
                if p.is_dir() and name and all(
                    c in "0123456789abcdef" for c in name
                ):
                    self.prefix_len = len(name)
                    break
        if create:
            self.traces_dir.mkdir(parents=True, exist_ok=True)
            self.tmp_dir.mkdir(parents=True, exist_ok=True)
            if self.layout == "flat":
                self.results_dir.mkdir(parents=True, exist_ok=True)
            else:
                self.shards_dir.mkdir(parents=True, exist_ok=True)
        elif not (self.root / _MANIFEST).is_file():
            # An existing-but-unrelated directory is as wrong as a
            # missing one: opening it as a store would silently re-run
            # a whole sweep (and scatter store files into it).  The
            # manifest is written before any scenario executes, so
            # every real store — however early it was killed — has one.
            raise FileNotFoundError(
                f"no sweep store at {self.root} (missing {_MANIFEST})"
            )
        # Satellite of the scale refactor: the completed-hash set is
        # consulted once per scenario on the resume hot path, so it is
        # computed once and maintained by write_result/merge instead of
        # re-scanning the directory/index per call.
        self._completed: "set[str] | None" = None
        # hash -> (batch path, row index) per shard, for random access.
        self._shard_maps: "dict[str, dict[str, tuple[pathlib.Path, int]]]" = {}
        # LRU of decoded batches: path -> [columns dict, sidecar rows].
        self._batch_cache: "OrderedDict[pathlib.Path, list]" = OrderedDict()
        # Unsealed log-row counts per shard prefix.
        self._pending: "dict[str, int]" = {}

    def _detect_layout(self) -> "str | None":
        manifest = self.root / _MANIFEST
        if manifest.is_file():
            try:
                version = int(json.loads(manifest.read_text()).get(
                    "format_version", self.FLAT_FORMAT_VERSION))
            except (ValueError, TypeError, json.JSONDecodeError):
                version = self.FLAT_FORMAT_VERSION
            return "packed" if version >= 2 else "flat"
        if self.results_dir.is_dir():
            return "flat"
        if self.shards_dir.is_dir():
            return "packed"
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SweepStore root={str(self.root)!r} layout={self.layout} "
            f"completed={len(self.completed())}>"
        )

    def invalidate_caches(self) -> None:
        """Drop in-memory indexes (after out-of-band directory changes)."""
        self._completed = None
        self._shard_maps.clear()
        self._batch_cache.clear()
        self._pending.clear()

    # -- paths ---------------------------------------------------------
    def result_path(self, content_hash: str) -> pathlib.Path:
        """The flat layout's per-row file (undefined on packed stores)."""
        if self.layout != "flat":
            raise ValueError(
                "result_path() is only defined on flat stores; packed rows "
                "live in columnar batches — use load_result_by_hash()/"
                "discard_result()"
            )
        return self.results_dir / f"{content_hash}.json"

    def trace_path(self, content_hash: str) -> pathlib.Path:
        return self.traces_dir / f"{content_hash}.npz"

    def _prefix(self, content_hash: str) -> str:
        return content_hash[: self.prefix_len]

    def _shard_dir(self, prefix: str) -> pathlib.Path:
        return self.shards_dir / prefix

    def _log_path(self, content_hash: str) -> pathlib.Path:
        return self._shard_dir(self._prefix(content_hash)) / "log" / (
            f"{content_hash}.json"
        )

    def _log_paths(self, prefix: str) -> "list[pathlib.Path]":
        d = self._shard_dir(prefix) / "log"
        return sorted(d.glob("*.json")) if d.is_dir() else []

    def _batch_paths(self, prefix: str) -> "list[pathlib.Path]":
        d = self._shard_dir(prefix)
        return sorted(d.glob("batch-*.npz")) if d.is_dir() else []

    def _shard_prefixes(self) -> "list[str]":
        if not self.shards_dir.is_dir():
            return []
        if self.prefix_len == 0:
            # Single-shard store: everything lives in shards/ itself
            # (and shards/log), so there are no prefix subdirectories.
            return [""]
        return sorted(
            p.name for p in self.shards_dir.iterdir()
            if p.is_dir() and len(p.name) == self.prefix_len
        )

    # -- manifest ------------------------------------------------------
    def write_manifest(self, specs: "Sequence[ScenarioSpec]") -> pathlib.Path:
        """Persist the sweep's scenario list (hashes + canonical specs).

        The manifest freezes submission order, which is what makes the
        store self-describing: :meth:`fleet_result` and :meth:`digest`
        iterate scenarios in manifest order, so their output matches
        the live fleet's regardless of completion interleaving.  On
        packed stores the entries are sharded by content-hash prefix
        (one index file per shard plus a small top-level header), so
        scoped reads never parse the whole scenario list at once.
        """
        entries = [
            {"hash": s.content_hash, "key": s.key, "spec": s.canonical()}
            for s in specs
        ]
        path = self._write_manifest_entries(entries)
        # A new manifest starts a new sweep: a fleet.json left over from
        # a previous (smaller/older) run would otherwise shadow the
        # fresh per-scenario rows in fleet_result() if this run dies
        # before writing its own aggregate.  Merge fingerprints describe
        # the previous scenario scope, so they reset too.
        (self.root / _FLEET).unlink(missing_ok=True)
        (self.root / _MERGE_LOG).unlink(missing_ok=True)
        return path

    def _write_manifest_entries(
        self, entries: "list[dict[str, Any]]"
    ) -> pathlib.Path:
        path = self.root / _MANIFEST
        if self.layout == "flat":
            doc = {
                "format_version": self.FLAT_FORMAT_VERSION,
                "scenario_count": len(entries),
                "scenarios": entries,
            }
            _atomic_write(path, json.dumps(doc, indent=2))
            return path
        by_prefix: "dict[str, list[dict[str, Any]]]" = {}
        for index, entry in enumerate(entries):
            shard_entry = {"index": index, "hash": entry["hash"],
                           "key": entry["key"], "spec": entry["spec"]}
            by_prefix.setdefault(self._prefix(entry["hash"]), []).append(
                shard_entry
            )
        # Stale shard manifests from a previous (different) sweep would
        # otherwise leak scenarios back into the reconstructed list.
        if self.shards_dir.is_dir():
            for old in self.shards_dir.glob(f"*/{_MANIFEST}"):
                if old.parent.name not in by_prefix:
                    old.unlink(missing_ok=True)
        for prefix in sorted(by_prefix):
            d = self._shard_dir(prefix)
            d.mkdir(parents=True, exist_ok=True)
            _atomic_write(
                d / _MANIFEST,
                json.dumps({"scenarios": by_prefix[prefix]}),
            )
        doc = {
            "format_version": self.FORMAT_VERSION,
            "layout": "packed",
            "prefix_len": self.prefix_len,
            "scenario_count": len(entries),
            "prefixes": sorted(by_prefix),
        }
        _atomic_write(path, json.dumps(doc, indent=2))
        return path

    def _manifest_entries(self) -> "list[dict[str, Any]]":
        """Packed manifest entries in submission order (with ``index``)."""
        header = json.loads((self.root / _MANIFEST).read_text())
        entries: "list[dict[str, Any]]" = []
        for prefix in header.get("prefixes", []):
            shard_manifest = self._shard_dir(prefix) / _MANIFEST
            if shard_manifest.is_file():
                entries.extend(json.loads(shard_manifest.read_text())["scenarios"])
        entries.sort(key=lambda e: e.get("index", 0))
        return entries

    def read_manifest(self) -> "dict[str, Any]":
        """The manifest document (raises when the store has none).

        Packed stores reconstruct the legacy shape — ``scenario_count``
        plus ``scenarios`` in submission order — from the sharded index
        files, so manifest consumers (merge, tests, tooling) read both
        layouts identically.
        """
        if self.layout == "flat":
            return json.loads((self.root / _MANIFEST).read_text())
        header = json.loads((self.root / _MANIFEST).read_text())
        scenarios = [
            {"hash": e["hash"], "key": e["key"], "spec": e["spec"]}
            for e in self._manifest_entries()
        ]
        return {
            "format_version": header.get("format_version", self.FORMAT_VERSION),
            "layout": "packed",
            "prefix_len": header.get("prefix_len", self.prefix_len),
            "scenario_count": header.get("scenario_count", len(scenarios)),
            "scenarios": scenarios,
        }

    def manifest_hashes(self) -> "list[str]":
        """Scenario content hashes in submission order."""
        if self.layout == "flat":
            return [s["hash"] for s in self.read_manifest()["scenarios"]]
        return [e["hash"] for e in self._manifest_entries()]

    # -- per-scenario rows ---------------------------------------------
    def completed(self) -> "set[str]":
        """Content hashes that already have a persisted summary row.

        Computed once (from the row files / batch indexes) and then
        maintained in memory by :meth:`write_result`, :meth:`merge` and
        :meth:`discard_result`; callers receive a copy, so mutating the
        returned set never corrupts the cache.
        """
        if self._completed is None:
            if self.layout == "flat":
                if self.results_dir.is_dir():
                    self._completed = {
                        p.stem for p in self.results_dir.glob("*.json")
                    }
                else:
                    self._completed = set()
            else:
                comp: "set[str]" = set()
                for prefix in self._shard_prefixes():
                    for bp in self._batch_paths(prefix):
                        comp.update(self._batch_hashes(bp))
                    for lp in self._log_paths(prefix):
                        comp.add(lp.stem)
                self._completed = comp
        return set(self._completed)

    def write_result(self, result: "ScenarioResult") -> pathlib.Path:
        """Atomically persist one scenario's summary row.

        Failed scenarios (``result.error`` set) are *not* persisted as
        completed work — a resumed sweep retries them.  Packed stores
        append the row to the shard's log (the same JSON document the
        flat layout writes) and seal the log into a columnar batch once
        it reaches ``batch_rows`` entries.
        """
        h = result.content_hash
        if self.layout == "flat":
            path = self.result_path(h)
            if result.error is not None:
                return path
            _atomic_write(
                path,
                json.dumps(result.to_json_dict(), indent=2, allow_nan=False),
            )
            if self._completed is not None:
                self._completed.add(h)
            return path
        path = self._log_path(h)
        if result.error is not None:
            return path
        prefix = self._prefix(h)
        path.parent.mkdir(parents=True, exist_ok=True)
        _atomic_write(
            path, json.dumps(result.to_json_dict(), indent=2, allow_nan=False)
        )
        if self._completed is not None:
            self._completed.add(h)
        if prefix not in self._pending:
            self._pending[prefix] = len(self._log_paths(prefix))
        else:
            self._pending[prefix] += 1
        if self._pending[prefix] >= self.batch_rows:
            self._seal_prefix(prefix)
        return path

    def flush(self) -> None:
        """Seal every shard's outstanding log rows into batches.

        A no-op on flat stores.  Not required for correctness (readers
        overlay logs over batches), only for read efficiency — the
        fleet runner calls it once at end of sweep.
        """
        if self.layout != "packed":
            return
        for prefix in self._shard_prefixes():
            if self._log_paths(prefix):
                self._seal_prefix(prefix)

    def _seal_prefix(self, prefix: str) -> None:
        logs = self._log_docs(prefix)
        self._pending[prefix] = 0
        if not logs:
            return
        docs = sorted(logs.items())
        self._write_batch(prefix, docs)
        log_dir = self._shard_dir(prefix) / "log"
        for h, _ in docs:
            (log_dir / f"{h}.json").unlink(missing_ok=True)

    def _write_batch(
        self, prefix: str, docs: "list[tuple[str, dict[str, Any]]]"
    ) -> pathlib.Path:
        """Write one columnar batch (sidecar first, then npz).

        ``docs`` must be sorted by content hash.  The sidecar lands
        before the npz: a batch *exists* only once its npz does, so a
        crash in between leaves an orphan sidecar that the eventual
        re-seal simply overwrites (same rows, same fingerprint name).
        """
        from repro.runtime.fleet import _decode_nonfinite

        hashes = [h for h, _ in docs]
        fp = hashlib.sha256("".join(hashes).encode()).hexdigest()[:12]
        n = len(docs)
        meta_rows = []
        arrays: "dict[str, np.ndarray]" = {
            "hash": np.array([h.encode() for h in hashes]),
            "iterations": np.zeros(n, np.int64),
            "converged": np.zeros(n, bool),
            "final_residual": np.zeros(n, np.float64),
            "wall_time": np.zeros(n, np.float64),
            # The exact bytes digest_rows() would hash for each row,
            # precomputed once at pack time: digest() then reads two
            # npz members per batch and never re-serializes a row.
            # (JSON text contains no NUL bytes, so the S dtype's
            # trailing-NUL stripping cannot corrupt a blob.)
            "digest_json": np.array([
                json.dumps(
                    _payload_from_doc(doc), sort_keys=True, allow_nan=False
                ).encode()
                for _, doc in docs
            ]),
        }
        for f in _OPTIONAL_FIELDS:
            arrays[f] = np.zeros(n, np.float64)
            arrays[f + "_none"] = np.zeros(n, bool)
        for f in _FAULT_FIELDS:
            arrays[f] = np.zeros(n, np.int64)
        for i, (h, doc) in enumerate(docs):
            info = doc.get("info") or {}
            meta_rows.append({
                "key": doc.get("key"),
                "spec": doc.get("spec"),
                "info": info,
                "trace_path": doc.get("trace_path"),
            })
            arrays["iterations"][i] = int(doc.get("iterations", 0))
            arrays["converged"][i] = bool(doc.get("converged", False))
            fr = doc.get("final_residual")
            arrays["final_residual"][i] = (
                float("nan") if fr is None else float(_decode_nonfinite(fr))
            )
            arrays["wall_time"][i] = float(doc.get("wall_time", 0.0))
            for f in _OPTIONAL_FIELDS:
                v = doc.get(f)
                if v is None:
                    arrays[f + "_none"][i] = True
                else:
                    arrays[f][i] = float(_decode_nonfinite(v))
            for f in _FAULT_FIELDS:
                arrays[f][i] = int(info.get(f, 0))
        d = self._shard_dir(prefix)
        d.mkdir(parents=True, exist_ok=True)
        npz = d / f"batch-{fp}.npz"
        _atomic_write(
            npz.with_suffix(".json"),
            json.dumps({"rows": meta_rows}, allow_nan=False),
        )
        _atomic_savez(npz, arrays)
        self._batch_cache.pop(npz, None)
        self._shard_maps.pop(prefix, None)
        return npz

    def _append_batch(
        self, prefix: str, docs: "dict[str, dict[str, Any]]"
    ) -> None:
        """Adopt foreign row documents as one new batch (merge path)."""
        if not docs:
            return
        self._write_batch(prefix, sorted(docs.items()))
        if self._completed is not None:
            self._completed.update(docs)

    # -- batch decoding (LRU-cached) -----------------------------------
    def _batch_entry(self, path: pathlib.Path) -> list:
        entry = self._batch_cache.get(path)
        if entry is None:
            entry = [None, None]
            self._batch_cache[path] = entry
            while len(self._batch_cache) > _BATCH_CACHE_SIZE:
                self._batch_cache.popitem(last=False)
        else:
            self._batch_cache.move_to_end(path)
        return entry

    def _batch_cols(self, path: pathlib.Path) -> "dict[str, np.ndarray]":
        entry = self._batch_entry(path)
        if entry[0] is None:
            with np.load(path) as z:
                entry[0] = {k: z[k] for k in z.files}
            self._trim_batch_cache()
        return entry[0]

    def _batch_meta(self, path: pathlib.Path) -> "list[dict[str, Any]]":
        entry = self._batch_entry(path)
        if entry[1] is None:
            entry[1] = json.loads(path.with_suffix(".json").read_text())["rows"]
            self._trim_batch_cache()
        return entry[1]

    @staticmethod
    def _entry_rows(entry: list) -> int:
        if entry[0] is not None:
            return len(entry[0]["hash"])
        if entry[1] is not None:
            return len(entry[1])
        return 0

    def _trim_batch_cache(self) -> None:
        """Evict oldest batches past the row budget (keep the newest)."""
        total = sum(self._entry_rows(e) for e in self._batch_cache.values())
        while total > _BATCH_CACHE_ROWS and len(self._batch_cache) > 1:
            _, evicted = self._batch_cache.popitem(last=False)
            total -= self._entry_rows(evicted)

    def _batch_hashes(self, path: pathlib.Path) -> "list[str]":
        entry = self._batch_cache.get(path)
        if entry is not None and entry[0] is not None:
            return [h.decode() for h in entry[0]["hash"]]
        # Only the hash member decompresses (npz members load lazily).
        with np.load(path) as z:
            return [h.decode() for h in z["hash"]]

    def _shard_map(
        self, prefix: str
    ) -> "dict[str, tuple[pathlib.Path, int]]":
        m = self._shard_maps.get(prefix)
        if m is None:
            m = {}
            for bp in self._batch_paths(prefix):
                for i, h in enumerate(self._batch_hashes(bp)):
                    m[h] = (bp, i)
            self._shard_maps[prefix] = m
        return m

    def _doc_from_batch(self, path: pathlib.Path, i: int) -> "dict[str, Any]":
        """Reconstruct the row document batch row ``i`` was packed from."""
        from repro.runtime.fleet import _encode_nonfinite

        cols = self._batch_cols(path)
        meta = self._batch_meta(path)[i]
        doc: "dict[str, Any]" = {
            "key": meta["key"],
            "spec": meta["spec"],
            "iterations": int(cols["iterations"][i]),
            "converged": bool(cols["converged"][i]),
            "final_residual": _encode_nonfinite(float(cols["final_residual"][i])),
            "wall_time": float(cols["wall_time"][i]),
            "error": None,
            "info": meta["info"],
            "trace_path": meta["trace_path"],
        }
        for f in _OPTIONAL_FIELDS:
            doc[f] = (
                None if cols[f + "_none"][i]
                else _encode_nonfinite(float(cols[f][i]))
            )
        return doc

    def _log_docs(self, prefix: str) -> "dict[str, dict[str, Any]]":
        return {
            p.stem: json.loads(p.read_text()) for p in self._log_paths(prefix)
        }

    def _shard_docs(self, prefix: str) -> "dict[str, dict[str, Any]]":
        """All of one shard's row documents (logs overlay batches)."""
        docs: "dict[str, dict[str, Any]]" = {}
        for bp in self._batch_paths(prefix):
            for i, h in enumerate(self._batch_hashes(bp)):
                docs[h] = self._doc_from_batch(bp, i)
        docs.update(self._log_docs(prefix))
        return docs

    # -- row loading ---------------------------------------------------
    def load_result(self, spec: "ScenarioSpec") -> "ScenarioResult | None":
        """The persisted row for ``spec``, or ``None`` when absent."""
        return self.load_result_by_hash(spec.content_hash)

    def load_result_by_hash(self, content_hash: str) -> "ScenarioResult | None":
        from repro.runtime.fleet import ScenarioResult

        doc = self._load_doc(content_hash)
        if doc is None:
            return None
        return ScenarioResult.from_json_dict(doc)

    def _load_doc(self, content_hash: str) -> "dict[str, Any] | None":
        if self.layout == "flat":
            path = self.result_path(content_hash)
            if not path.is_file():
                return None
            return json.loads(path.read_text())
        log = self._log_path(content_hash)
        if log.is_file():
            return json.loads(log.read_text())
        entry = self._shard_map(self._prefix(content_hash)).get(content_hash)
        if entry is None:
            return None
        return self._doc_from_batch(*entry)

    def load_complete_result(
        self, spec: "ScenarioSpec", *, require_trace: bool = False
    ) -> "ScenarioResult | None":
        """The persisted row for ``spec`` iff it counts as *complete*.

        This is THE completeness rule — ``run_grid``'s resume loop and
        the CLI's "N/M already complete" banner both call it, so they
        cannot drift apart.  Without ``require_trace`` a persisted row
        is complete.  With it, a row is additionally required to
        account for its trace: ``trace_path`` unset means the row
        predates trace-keeping (re-run to record one); a set-but-empty
        ``trace_path`` means the run kept traces and the backend
        legitimately produced none (complete — re-running could never
        help); a non-empty ``trace_path`` must have its file present.
        """
        row = self.load_result(spec)
        if row is None:
            return None
        if require_trace:
            if row.trace_path is None:
                return None
            if row.trace_path and not self.has_trace(spec.content_hash):
                return None  # dangling reference
        return row

    def discard_result(self, content_hash: str) -> None:
        """Remove one persisted row (both layouts; missing rows no-op).

        The kill-simulation counterpart of :meth:`write_result`: tests
        and tooling drop a row to force its re-execution.  On packed
        stores a logged row unlinks directly; a sealed row rewrites its
        batch without it (new fingerprint name, old pair removed).
        Merge fingerprints are invalidated — the store's content no
        longer matches what they certified.
        """
        if self.layout == "flat":
            self.result_path(content_hash).unlink(missing_ok=True)
        else:
            prefix = self._prefix(content_hash)
            log = self._log_path(content_hash)
            if log.is_file():
                log.unlink()
                if prefix in self._pending and self._pending[prefix] > 0:
                    self._pending[prefix] -= 1
            else:
                entry = self._shard_map(prefix).get(content_hash)
                if entry is None:
                    if self._completed is not None:
                        self._completed.discard(content_hash)
                    return
                bp, _ = entry
                rest = {
                    h: self._doc_from_batch(bp, i)
                    for i, h in enumerate(self._batch_hashes(bp))
                    if h != content_hash
                }
                bp.unlink(missing_ok=True)
                bp.with_suffix(".json").unlink(missing_ok=True)
                self._batch_cache.pop(bp, None)
                self._shard_maps.pop(prefix, None)
                if rest:
                    self._write_batch(prefix, sorted(rest.items()))
        if self._completed is not None:
            self._completed.discard(content_hash)
        (self.root / _MERGE_LOG).unlink(missing_ok=True)

    # -- traces --------------------------------------------------------
    def has_trace(self, content_hash: str) -> bool:
        return self.trace_path(content_hash).is_file()

    def load_trace(self, spec_or_hash: "ScenarioSpec | str") -> IterationTrace:
        """Materialize a persisted trace by spec or content hash."""
        h = spec_or_hash if isinstance(spec_or_hash, str) else spec_or_hash.content_hash
        return load_trace(self.trace_path(h))

    # -- streaming iteration -------------------------------------------
    def _scope(self, hashes: "Iterable[str] | None") -> "set[str]":
        if hashes is None:
            try:
                hashes = self.manifest_hashes()
            except FileNotFoundError:
                hashes = self.completed()
        return set(hashes)

    def _scope_by_prefix(self, scope: "set[str]") -> "dict[str, list[str]]":
        by_prefix: "dict[str, list[str]]" = {}
        for h in scope:
            by_prefix.setdefault(self._prefix(h), []).append(h)
        for hs in by_prefix.values():
            hs.sort()
        return by_prefix

    def iter_row_docs(
        self, hashes: "Iterable[str] | None" = None
    ) -> "Iterator[tuple[str, dict[str, Any]]]":
        """Yield ``(content_hash, row document)`` in global hash order.

        Scope defaults to the manifest (falling back to every row on
        manifest-less stores).  Packed stores stream one shard at a
        time — sorted prefixes of sorted in-prefix hashes *is* the
        global hash order, so peak memory is one shard's documents.
        """
        scope = self._scope(hashes)
        if self.layout == "flat":
            for h in sorted(scope):
                path = self.result_path(h)
                if path.is_file():
                    yield h, json.loads(path.read_text())
            return
        by_prefix = self._scope_by_prefix(scope)
        for prefix in sorted(by_prefix):
            docs = self._shard_docs(prefix)
            for h in by_prefix[prefix]:
                doc = docs.get(h)
                if doc is not None:
                    yield h, doc

    def iter_rows(
        self, hashes: "Iterable[str] | None" = None
    ) -> "Iterator[RowView]":
        """Yield :class:`RowView` rows in global hash order (streaming)."""
        for h, doc in self.iter_row_docs(hashes):
            yield RowView(h, doc)

    def _stats(
        self, hashes: "Iterable[str] | None" = None
    ) -> "tuple[int, float]":
        """(completed row count, summed wall time) over the scope."""
        scope = self._scope(hashes)
        n = 0
        wall = 0.0
        if self.layout == "flat":
            for _, doc in self.iter_row_docs(scope):
                n += 1
                wall += float(doc.get("wall_time", 0.0))
            return n, wall
        for prefix, wanted in sorted(self._scope_by_prefix(scope).items()):
            walls: "dict[str, float]" = {}
            for bp in self._batch_paths(prefix):
                cols = self._batch_cols(bp)
                hs = cols["hash"]
                wt = cols["wall_time"]
                for i in range(len(hs)):
                    walls[hs[i].decode()] = float(wt[i])
            for h, doc in self._log_docs(prefix).items():
                walls[h] = float(doc.get("wall_time", 0.0))
            for h in wanted:
                if h in walls:
                    n += 1
                    wall += walls[h]
        return n, wall

    # -- aggregates ----------------------------------------------------
    def write_fleet(self, fleet: "FleetResult") -> pathlib.Path:
        path = self.root / _FLEET
        _atomic_write(path, fleet.to_json())
        return path

    def fleet_view(self) -> StoreFleetView:
        """Lazy :class:`StoreFleetView` over this store's rows.

        The O(batch)-memory way to report on a store: aggregates
        stream, nothing materializes until :meth:`StoreFleetView.materialize`.
        """
        return StoreFleetView(self)

    def fleet_result(self) -> "FleetResult":
        """Reassemble the typed :class:`~repro.runtime.fleet.FleetResult`.

        Prefers the final ``fleet.json`` aggregate; for an interrupted
        or merged sweep (no aggregate yet) the completed per-scenario
        rows are stitched together in manifest order, so partial stores
        are still fully analyzable.  The stitched fleet's ``wall_time``
        is the *sum* of the rows' wall times — the real cumulative
        compute the store holds — never a fabricated ``0.0`` (which
        would make ``scenarios_per_sec`` infinite and its JSON
        non-standard).  This is the eager path; see :meth:`fleet_view`
        for the streaming one.
        """
        from repro.runtime.fleet import FleetResult, ScenarioResult

        final = self.root / _FLEET
        if final.is_file():
            return FleetResult.from_json(final.read_text())
        order = self.manifest_hashes()
        by_hash = {
            h: ScenarioResult.from_json_dict(doc)
            for h, doc in self.iter_row_docs(order)
        }
        results = [by_hash[h] for h in order if h in by_hash]
        return FleetResult(
            results=tuple(results),
            wall_time=float(sum(r.wall_time for r in results)),
            executor="store",
            max_workers=0,
        )

    # -- merging -------------------------------------------------------
    def merge(self, *stores: "SweepStore | str | os.PathLike[str]") -> "SweepStore":
        """Combine shard stores into this one (rows, traces, manifest).

        The sharding workflow's recombine step: ``k`` hosts each run
        ``grid.shard(k, i)`` into their own store, then one host merges
        them — ``SweepStore(out).merge(shard0, shard1, ...)`` — and the
        merged store's :meth:`digest` is bit-identical to a single-host
        run of the whole grid (row digests are content-addressed and
        hash-ordered, so neither shard assignment nor merge order can
        leak into the certificate).

        Every shard's manifest entries are unioned in order (this
        store's own manifest first, when it has one; duplicate content
        hashes keep their first occurrence), completed rows and traces
        are copied in, and copied rows are re-pointed at this store's
        trace files so the merged store is self-contained.  Merging is
        idempotent and incremental — and on packed destinations
        O(changed): each source unit (one source shard prefix, or a
        whole flat source) is fingerprinted over its completed hashes
        plus trace markers, fingerprints of fully-merged units persist
        in ``merge_log.json`` (written only after the merged manifest,
        so a killed merge re-scans and completes idempotently), and a
        re-merge skips unchanged units without reading a row.
        """
        opened = [
            s if isinstance(s, SweepStore) else SweepStore(s, create=False)
            for s in stores
        ]
        if self.layout == "flat":
            return self._merge_flat(opened)

        scenarios: "list[dict[str, Any]]" = []
        seen: "set[str]" = set()
        if (self.root / _MANIFEST).is_file():
            scenarios = list(self.read_manifest()["scenarios"])
            seen = {s["hash"] for s in scenarios}
        merged_fps = self._read_merge_log()
        live_fps: "set[str]" = set()
        done = self.completed()
        for shard in opened:
            shard_manifest = shard.read_manifest()["scenarios"]
            for entry in shard_manifest:
                if entry["hash"] not in seen:
                    seen.add(entry["hash"])
                    scenarios.append(entry)
            manifest_set = {e["hash"] for e in shard_manifest}
            src_traced = (
                {p.stem for p in shard.traces_dir.glob("*.npz")}
                if shard.traces_dir.is_dir() else set()
            )
            for unit_prefix, fp, unit_hashes in shard._merge_units(manifest_set):
                live_fps.add(fp)
                if fp in merged_fps:
                    continue  # unchanged since a previous merge
                missing = unit_hashes - done
                if not missing:
                    continue
                # Fast path: a sealed source batch whose rows are all
                # missing here lands under the same shard prefix with
                # the same fingerprint name (both are pure functions of
                # the hash set), so the batch files transfer wholesale
                # — no row decode, no re-encode, no re-fingerprint.
                if shard.layout != "flat" and shard.prefix_len == self.prefix_len:
                    for bp in shard._batch_paths(unit_prefix):
                        bhashes = shard._batch_hashes(bp)
                        if not all(h in missing for h in bhashes):
                            continue  # partial/stray → row-by-row below
                        self._adopt_batch(shard, unit_prefix, bp, bhashes,
                                          src_traced)
                        done.update(bhashes)
                    missing = unit_hashes - done
                    if not missing:
                        continue
                docs = shard._unit_docs(unit_prefix, missing)
                adopted: "dict[str, dict[str, Any]]" = {}
                for h in missing:
                    doc = docs.get(h)
                    if doc is None:
                        continue
                    doc = dict(doc)
                    if shard.has_trace(h):
                        self.traces_dir.mkdir(parents=True, exist_ok=True)
                        _atomic_copy(shard.trace_path(h), self.trace_path(h))
                        doc["trace_path"] = str(self.trace_path(h))
                    adopted[h] = doc
                    done.add(h)
                by_prefix: "dict[str, dict[str, dict[str, Any]]]" = {}
                for h, doc in adopted.items():
                    by_prefix.setdefault(self._prefix(h), {})[h] = doc
                for prefix, prefix_docs in by_prefix.items():
                    self._append_batch(prefix, prefix_docs)
        self._write_manifest_entries(scenarios)
        # Any pre-merge fleet.json aggregates fewer scenarios than the
        # merged manifest describes; drop it so fleet_result() stitches
        # the full row set instead.
        (self.root / _FLEET).unlink(missing_ok=True)
        self._write_merge_log(merged_fps | live_fps)
        return self

    def _merge_flat(self, opened: "list[SweepStore]") -> "SweepStore":
        """Legacy row-by-row merge for flat destinations."""
        from repro.runtime.fleet import _adopt_row

        scenarios: "list[dict[str, Any]]" = []
        seen: "set[str]" = set()
        if (self.root / _MANIFEST).is_file():
            scenarios = list(self.read_manifest()["scenarios"])
            seen = {s["hash"] for s in scenarios}
        for shard in opened:
            for entry in shard.read_manifest()["scenarios"]:
                if entry["hash"] not in seen:
                    seen.add(entry["hash"])
                    scenarios.append(entry)
            done = self.completed()
            for h in shard.manifest_hashes():
                if h in done:
                    continue
                row = shard.load_result_by_hash(h)
                if row is not None:
                    _adopt_row(shard, self, row)
        self._write_manifest_entries(scenarios)
        (self.root / _FLEET).unlink(missing_ok=True)
        return self

    def _merge_units(
        self, manifest_set: "set[str]"
    ) -> "list[tuple[str, str, set[str]]]":
        """This store's mergeable units: ``(prefix, fingerprint, hashes)``.

        A unit is one shard prefix's completed-and-in-manifest hashes
        (the whole store, as prefix ``""``, for flat sources).  The
        fingerprint covers the hash set *and* per-hash trace presence,
        so a source that later gains rows — or traces for existing
        rows — fingerprints differently and gets re-merged.
        """
        present = self.completed() & manifest_set
        traced = (
            {p.stem for p in self.traces_dir.glob("*.npz")}
            if self.traces_dir.is_dir() else set()
        )
        if self.layout == "flat":
            groups = {"": sorted(present)} if present else {}
        else:
            groups = {}
            for h in present:
                groups.setdefault(self._prefix(h), []).append(h)
            for hs in groups.values():
                hs.sort()
        units = []
        for prefix in sorted(groups):
            hs = groups[prefix]
            body = ",".join(f"{h}:{int(h in traced)}" for h in hs)
            fp = hashlib.sha256(f"{prefix}|{body}".encode()).hexdigest()
            units.append((prefix, fp, set(hs)))
        return units

    def _adopt_batch(
        self,
        source: "SweepStore",
        prefix: str,
        bp: pathlib.Path,
        bhashes: "list[str]",
        src_traced: "set[str]",
    ) -> None:
        """Transfer one whole source batch into this store's shard.

        The sidecar lands first, then the npz — the same crash ordering
        as :meth:`_write_batch`.  Rows with persisted traces get their
        trace files copied and the sidecar re-pointed at this store's
        copies; traceless batches transfer as verbatim file copies.
        """
        d = self._shard_dir(prefix)
        d.mkdir(parents=True, exist_ok=True)
        dst = d / bp.name
        traced = [h for h in bhashes if h in src_traced]
        if traced:
            meta = [dict(m) for m in source._batch_meta(bp)]
            traced_set = set(traced)
            self.traces_dir.mkdir(parents=True, exist_ok=True)
            for i, h in enumerate(bhashes):
                if h in traced_set:
                    _atomic_copy(source.trace_path(h), self.trace_path(h))
                    meta[i]["trace_path"] = str(self.trace_path(h))
            _atomic_write(
                dst.with_suffix(".json"),
                json.dumps({"rows": meta}, allow_nan=False),
            )
        else:
            _atomic_copy(bp.with_suffix(".json"), dst.with_suffix(".json"))
        _atomic_copy(bp, dst)
        self._batch_cache.pop(dst, None)
        self._shard_maps.pop(prefix, None)
        if self._completed is not None:
            self._completed.update(bhashes)

    def _unit_docs(
        self, prefix: str, hashes: "set[str]"
    ) -> "dict[str, dict[str, Any]]":
        """Row documents backing one merge unit of this (source) store."""
        if self.layout == "flat":
            docs = {}
            for h in hashes:
                path = self.result_path(h)
                if path.is_file():
                    docs[h] = json.loads(path.read_text())
            return docs
        return self._shard_docs(prefix)

    def _read_merge_log(self) -> "set[str]":
        path = self.root / _MERGE_LOG
        if not path.is_file():
            return set()
        try:
            return set(json.loads(path.read_text()).get("merged", []))
        except json.JSONDecodeError:
            return set()

    def _write_merge_log(self, fps: "set[str]") -> None:
        _atomic_write(
            self.root / _MERGE_LOG,
            json.dumps({"format_version": 1, "merged": sorted(fps)}),
        )

    # -- migration -----------------------------------------------------
    def migrate(self) -> str:
        """Upgrade a flat legacy store to the packed layout in place.

        Packs every completed row into per-shard batches, re-shards the
        manifest, verifies the packed digest equals the flat one byte
        for byte, and only then removes the flat ``results/`` tree.  On
        any digest mismatch the packed files are rolled back and the
        store is left flat and untouched.  Returns the (unchanged)
        digest; already-packed stores return it immediately.
        """
        if self.layout == "packed":
            return self.digest()
        before = self.digest()
        manifest_path = self.root / _MANIFEST
        old_manifest = (
            manifest_path.read_text() if manifest_path.is_file() else None
        )
        entries = (
            list(self.read_manifest()["scenarios"])
            if old_manifest is not None else None
        )
        by_prefix: "dict[str, dict[str, dict[str, Any]]]" = {}
        for h in self.completed():
            doc = self._load_doc(h)
            if doc is not None:
                by_prefix.setdefault(self._prefix(h), {})[h] = doc
        self.layout = "packed"
        self.invalidate_caches()
        try:
            for prefix in sorted(by_prefix):
                self._append_batch(prefix, by_prefix[prefix])
            if entries is not None:
                self._write_manifest_entries(entries)
            else:
                self.shards_dir.mkdir(parents=True, exist_ok=True)
            self.invalidate_caches()
            after = self.digest()
            if after != before:
                raise RuntimeError(
                    f"store migration digest mismatch at {self.root}: "
                    f"flat {before} != packed {after}"
                )
        except BaseException:
            shutil.rmtree(self.shards_dir, ignore_errors=True)
            if old_manifest is not None:
                _atomic_write(manifest_path, old_manifest)
            self.layout = "flat"
            self.invalidate_caches()
            raise
        shutil.rmtree(self.results_dir, ignore_errors=True)
        self.invalidate_caches()
        return after

    # -- determinism ---------------------------------------------------
    #: Shared with FleetResult.digest (see module-level DIGEST_FIELDS).
    DIGEST_FIELDS = DIGEST_FIELDS

    def digest(self, hashes: "Iterable[str] | None" = None) -> str:
        """SHA-256 over the deterministic fields of completed rows.

        Two stores that ran the same scenarios — in one shot, or killed
        and resumed, serially or on any executor, flat or packed —
        produce the same digest; it is the cheap equality check the
        resume tests and the benchmark harness pin.  The default scope
        is the manifest's scenario list (falling back to every row on
        manifest-less stores), so rows left behind by a *different*
        grid that reused the directory don't pollute the certificate.
        The algorithm is :func:`digest_rows`, shared with
        :meth:`~repro.runtime.fleet.FleetResult.digest`; packed stores
        fold it streaming over batch digest columns (one shard at a
        time, no sidecar reads, no ScenarioResult objects).
        """
        if self.layout == "flat":
            if hashes is None:
                try:
                    hashes = self.manifest_hashes()
                except FileNotFoundError:
                    hashes = self.completed()
            rows = []
            for ch in hashes:
                row = self.load_result_by_hash(ch)
                if row is not None:
                    rows.append((ch, row))
            return digest_rows(rows)
        acc = hashlib.sha256()
        by_prefix = self._scope_by_prefix(self._scope(hashes))
        for prefix in sorted(by_prefix):
            blobs = self._shard_digest_blobs(prefix)
            for ch in by_prefix[prefix]:
                blob = blobs.get(ch)
                if blob is None:
                    continue
                acc.update(ch.encode())
                acc.update(blob)
        return acc.hexdigest()

    def _shard_digest_blobs(self, prefix: str) -> "dict[str, bytes]":
        """Per-row digest payload bytes for one shard (logs overlay
        batches).

        Batches carry the bytes precomputed in their ``digest_json``
        member, so the hot path reads exactly two npz members per batch
        (hash + blob) and touches neither the sidecar nor the value
        columns; batches written before the column existed fall back to
        re-serializing from the value columns.
        """
        blobs: "dict[str, bytes]" = {}
        for bp in self._batch_paths(prefix):
            entry = self._batch_cache.get(bp)
            if entry is not None and entry[0] is not None:
                cols = entry[0]
                hs = cols["hash"]
                dj = cols.get("digest_json")
            else:
                with np.load(bp) as z:
                    hs = z["hash"]
                    dj = z["digest_json"] if "digest_json" in z.files else None
            if dj is None:
                cols = self._batch_cols(bp)
                for i in range(len(hs)):
                    blobs[hs[i].decode()] = json.dumps(
                        self._payload_from_cols(cols, i),
                        sort_keys=True, allow_nan=False,
                    ).encode()
            else:
                for h, blob in zip(hs, dj):
                    blobs[h.decode()] = bytes(blob)
        for h, doc in self._log_docs(prefix).items():
            blobs[h] = json.dumps(
                _payload_from_doc(doc), sort_keys=True, allow_nan=False
            ).encode()
        return blobs

    @staticmethod
    def _payload_from_cols(
        cols: "dict[str, np.ndarray]", i: int
    ) -> "dict[str, Any]":
        """Digest payload of batch row ``i`` from its value columns."""
        from repro.runtime.fleet import _encode_nonfinite

        payload = {
            "iterations": int(cols["iterations"][i]),
            "converged": bool(cols["converged"][i]),
            "final_residual": _encode_nonfinite(
                float(cols["final_residual"][i])
            ),
        }
        for f in _OPTIONAL_FIELDS:
            payload[f] = (
                None if cols[f + "_none"][i]
                else _encode_nonfinite(float(cols[f][i]))
            )
        return payload
