"""Declarative scenario descriptions for the fleet runner.

A *scenario* is one complete asynchronous-iteration experiment —
problem × operator × (delay model × steering policy | simulated
machine) × seed — described entirely by registry names and plain
parameter dicts, so it can be pickled to worker processes, serialized
into sweep manifests, and reproduced bit-for-bit from its spec alone.

* :mod:`repro.scenarios.registry` — the name -> factory tables for
  problems, steering policies, delay models and machine archetypes;
* :mod:`repro.scenarios.spec` — :class:`ScenarioSpec` (one runnable
  scenario) and :class:`ScenarioGrid` (a declarative cartesian grid
  expanded into specs with independently spawned per-scenario seeds).

The executor that turns specs into results lives in
:mod:`repro.runtime.fleet`; aggregation lives in
:mod:`repro.analysis.fleet`; the CLI front end is
``python -m repro sweep``.
"""

from repro.scenarios.registry import (
    DELAY_FACTORIES,
    MACHINE_FACTORIES,
    PROBLEM_FACTORIES,
    REGISTRY,
    SCENARIO_AXES,
    STEERING_FACTORIES,
    Registry,
    RegistryEntry,
    available,
    describe_axes,
    entry,
    make_delays,
    make_machine,
    make_problem,
    make_steering,
    register,
)
from repro.scenarios.spec import ScenarioGrid, ScenarioSpec

__all__ = [
    "DELAY_FACTORIES",
    "MACHINE_FACTORIES",
    "PROBLEM_FACTORIES",
    "REGISTRY",
    "Registry",
    "RegistryEntry",
    "SCENARIO_AXES",
    "STEERING_FACTORIES",
    "ScenarioGrid",
    "ScenarioSpec",
    "available",
    "describe_axes",
    "entry",
    "make_delays",
    "make_machine",
    "make_problem",
    "make_steering",
    "register",
]
