"""The unified ingredient registry backing declarative scenario specs.

Every scenario ingredient — problems (operator factories), steering
policies, delay models, machine archetypes — registers into one
generic :class:`Registry` under a ``(kind, name)`` address via the
:meth:`Registry.register` decorator.  Entries are plain functions of
``(seed, **params)`` (problems) or ``(n, seed, **params)`` (steering,
delays, machines) returning fully constructed library objects; their
tunable parameters are declared keyword-only, so the registry can
introspect names and defaults from the signature alone.  That
introspection is the single source of truth rendered by
``python -m repro sweep --list-axes``, the Study layer's validation
errors, and the docs — there is no hand-maintained table to rot.

Scenario specs refer to entries by string name, which keeps them
picklable across process boundaries and stable across library
refactors.  Seeds arrive as :class:`numpy.random.SeedSequence`
children spawned per scenario by
:meth:`repro.scenarios.spec.ScenarioGrid.expand`, so two scenarios
never share a stream no matter how the fleet schedules them.

The execution-*backend* registry (``exact``/``vectorized``/...) lives
in :mod:`repro.runtime.backends`; :func:`describe_axes` merges both
views for the CLI.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Any, Callable, Iterable, Mapping

import numpy as np

from repro.delays.bounded import (
    ChaoticRelaxationDelay,
    ConstantDelay,
    UniformRandomDelay,
    ZeroDelay,
)
from repro.delays.outoforder import OutOfOrderDelay, ShuffledWindowDelay
from repro.delays.unbounded import BaudetSqrtDelay, LogGrowthDelay, PowerGrowthDelay
from repro.operators.gradient import GradientStepOperator
from repro.operators.linear import jacobi_operator
from repro.operators.prox_gradient import ForwardBackwardOperator
from repro.operators.proximal import L1Regularizer, ZeroRegularizer
from repro.problems.base import CompositeProblem
from repro.problems.datasets import make_classification, make_regression
from repro.problems.least_squares import batch_least_squares, make_lasso, make_ridge
from repro.problems.linear_system import (
    make_jacobi_batch,
    make_jacobi_instance,
    make_tridiagonal_batch,
    tridiagonal_system,
)
from repro.problems.logistic import batch_logistic, make_logistic
from repro.problems.markov import discounted_value_operator, random_markov_chain
from repro.problems.quadratic import random_quadratic
from repro.runtime.simulator import (
    ChannelSpec,
    ConstantTime,
    ProcessorSpec,
    UniformTime,
    uniform_cluster,
    wide_area_network,
)
from repro.runtime.simulator.faults import (
    ChaosFault,
    CrashRestart,
    Limplock,
    LossyChannel,
    ReorderingChannel,
    clique_topology,
    ring_topology,
    star_topology,
    two_tier_topology,
)
from repro.steering.policies import (
    AllComponents,
    BlockCyclic,
    CyclicSingle,
    EvenOddSweeps,
    PermutationSweeps,
    RandomSubset,
    WeightedRandom,
)
from repro.utils.naming import unknown_name_message
from repro.utils.rng import as_generator

__all__ = [
    "Registry",
    "RegistryEntry",
    "REGISTRY",
    "SCENARIO_AXES",
    "PROBLEM_FACTORIES",
    "STEERING_FACTORIES",
    "DELAY_FACTORIES",
    "MACHINE_FACTORIES",
    "FAULT_FACTORIES",
    "TOPOLOGY_FACTORIES",
    "available",
    "build_batch",
    "describe_axes",
    "entry",
    "has_batch_factory",
    "make_problem",
    "make_steering",
    "make_delays",
    "make_machine",
    "make_fault",
    "make_topology",
    "register",
    "register_batch",
]

SeedLike = "int | np.random.Generator | np.random.SeedSequence | None"

#: The scenario-grid axes, in the order the CLI prints them.
SCENARIO_AXES = ("problem", "steering", "delays", "machine", "fault", "topology")


# ----------------------------------------------------------------------
# The generic registry
# ----------------------------------------------------------------------

def _keyword_defaults(factory: Callable[..., Any]) -> dict[str, Any]:
    """Tunable parameters of a factory: its keyword-only arguments.

    Positional parameters (``seed``; ``n, seed``) are wiring supplied
    by the scenario layer, not user-tunable knobs, so only
    keyword-only parameters advertise as the entry's signature.
    """
    out: dict[str, Any] = {}
    for name, p in inspect.signature(factory).parameters.items():
        if p.kind is inspect.Parameter.KEYWORD_ONLY:
            out[name] = p.default
    return out


@dataclass(frozen=True)
class RegistryEntry:
    """One registered factory plus its introspected metadata."""

    kind: str
    name: str
    factory: Callable[..., Any]
    defaults: Mapping[str, Any] = field(default_factory=dict)
    summary: str = ""

    def describe(self) -> str:
        """``name(param=default, ...)`` — the ``--list-axes``/docs rendering."""
        params = ", ".join(f"{k}={v!r}" for k, v in self.defaults.items())
        return f"{self.name}({params})" if params else self.name

    def build(self, *args: Any, **params: Any) -> Any:
        """Invoke the factory (positional wiring first, tunables after)."""
        return self.factory(*args, **params)


class Registry:
    """Generic ``(kind, name) -> factory`` registry with introspection.

    Kinds are fixed at construction (an unknown kind is a programming
    error, loudly reported); names within a kind are open — plugins
    register at import time with the :meth:`register` decorator, and
    re-registering a name replaces the previous entry (latest wins) so
    plugins can shadow built-ins deliberately.
    """

    def __init__(self, kinds: Iterable[str]) -> None:
        self._tables: dict[str, dict[str, RegistryEntry]] = {k: {} for k in kinds}

    # -- registration --------------------------------------------------
    def register(
        self, kind: str, name: str, *, summary: str | None = None
    ) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
        """Decorator: register a factory under ``(kind, name)``.

        The entry's tunable signature is introspected from the
        factory's keyword-only parameters; ``summary`` defaults to the
        first line of the factory's docstring.
        """
        table = self._table(kind)

        def deco(factory: Callable[..., Any]) -> Callable[..., Any]:
            doc = summary
            if doc is None:
                # `or [""]` guards whitespace-only docstrings.
                doc = ((factory.__doc__ or "").strip().splitlines() or [""])[0]
            table[name] = RegistryEntry(
                kind=kind,
                name=name,
                factory=factory,
                defaults=MappingProxyType(_keyword_defaults(factory)),
                summary=doc,
            )
            return factory

        return deco

    # -- lookup --------------------------------------------------------
    def _table(self, kind: str) -> dict[str, RegistryEntry]:
        try:
            return self._tables[kind]
        except KeyError:
            raise KeyError(
                f"unknown axis {kind!r}; choose from {sorted(self._tables)}"
            ) from None

    def kinds(self) -> tuple[str, ...]:
        return tuple(self._tables)

    def names(self, kind: str) -> tuple[str, ...]:
        """Registered names for one kind, sorted."""
        return tuple(sorted(self._table(kind)))

    def entries(self, kind: str) -> tuple[RegistryEntry, ...]:
        """Registered entries for one kind, sorted by name."""
        table = self._table(kind)
        return tuple(table[n] for n in sorted(table))

    def get(self, kind: str, name: str) -> RegistryEntry:
        """The entry at ``(kind, name)``; KeyError with did-you-mean."""
        table = self._table(kind)
        try:
            return table[name]
        except KeyError:
            raise KeyError(unknown_name_message(kind, name, sorted(table))) from None

    def make(self, kind: str, name: str, *args: Any, **params: Any) -> Any:
        """Look up and invoke a factory in one step."""
        return self.get(kind, name).build(*args, **params)

    def factories(self, kind: str) -> "_FactoryView":
        """Live name -> factory mapping view of one kind's table."""
        return _FactoryView(self, kind)


class _FactoryView(Mapping):
    """Read-only live ``name -> factory`` view (backward compatibility).

    The historical ``PROBLEM_FACTORIES``-style module dicts are now
    views over the unified registry, so late plugin registrations show
    up without re-import.
    """

    def __init__(self, registry: Registry, kind: str) -> None:
        self._registry = registry
        self._kind = kind

    def __getitem__(self, name: str) -> Callable[..., Any]:
        return self._registry.get(self._kind, name).factory

    def __iter__(self):
        return iter(self._registry.names(self._kind))

    def __len__(self) -> int:
        return len(self._registry.names(self._kind))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FactoryView kind={self._kind!r} names={self._registry.names(self._kind)}>"


#: The process-wide scenario-ingredient registry.
REGISTRY = Registry(SCENARIO_AXES)

#: Module-level decorator: ``@register("problem", "mine")``.
register = REGISTRY.register


# ----------------------------------------------------------------------
# Problems: (seed, **params) -> FixedPointOperator
# ----------------------------------------------------------------------

@register("problem", "jacobi")
def _problem_jacobi(seed: Any, *, n: int = 24, dominance: float = 0.4) -> Any:
    """Diagonally dominant linear system under the Jacobi splitting."""
    return make_jacobi_instance(n, dominance, seed=seed)


@register("problem", "tridiagonal")
def _problem_tridiagonal(seed: Any, *, n: int = 24, off_diag: float = -1.0,
                         diag: float = 2.3) -> Any:
    """Tridiagonal (discrete-Laplacian-like) system, Jacobi splitting."""
    M, c = tridiagonal_system(n, off_diag=off_diag, diag=diag, seed=seed)
    return jacobi_operator(M, c)


@register("problem", "quadratic")
def _problem_quadratic(seed: Any, *, n: int = 24, condition: float = 8.0,
                       coupling: float = 0.6) -> Any:
    """Random strongly convex quadratic, maximal gradient step."""
    problem = random_quadratic(n, condition, coupling=coupling, seed=seed)
    gamma = 1.8 / (problem.mu + problem.lipschitz)
    return GradientStepOperator(problem, gamma)


@register("problem", "markov")
def _problem_markov(seed: Any, *, n: int = 24, beta: float = 0.85,
                    density: float = 0.4) -> Any:
    """Discounted Markov value-iteration operator."""
    rng = as_generator(seed)
    P = random_markov_chain(n, density=density, seed=rng)
    rewards = rng.uniform(0.0, 1.0, size=n)
    return discounted_value_operator(P, rewards, beta)


@register("problem", "lasso")
def _problem_lasso(seed: Any, *, n_samples: int = 120, n_features: int = 32,
                   sparsity: float = 0.5, l1: float = 0.05,
                   l2: float = 0.05) -> Any:
    """Lasso instance of problem (4): forward-backward prox-gradient operator."""
    data = make_regression(
        n_samples, n_features, sparsity=sparsity, seed=as_generator(seed)
    )
    problem = make_lasso(data, l1=l1, l2=l2)
    return ForwardBackwardOperator(problem, problem.smooth.max_step())


@register("problem", "ridge")
def _problem_ridge(seed: Any, *, n_samples: int = 120, n_features: int = 32,
                   l2: float = 0.1) -> Any:
    """Ridge regression: smooth strongly convex forward-backward operator."""
    data = make_regression(n_samples, n_features, seed=as_generator(seed))
    problem = make_ridge(data, l2=l2)
    return ForwardBackwardOperator(problem, problem.smooth.max_step())


@register("problem", "logistic")
def _problem_logistic(seed: Any, *, n_samples: int = 120, n_features: int = 24,
                      separation: float = 1.5, l2: float = 0.1) -> Any:
    """L2-regularized logistic regression on a synthetic classification task."""
    data = make_classification(
        n_samples, n_features, separation=separation, seed=as_generator(seed)
    )
    problem = make_logistic(data, l2=l2)
    return ForwardBackwardOperator(problem, problem.smooth.max_step())


# ----------------------------------------------------------------------
# Batched problem construction: (seeds, **params) -> list[operator]
# ----------------------------------------------------------------------

#: ``problem name -> (seeds, **params) -> list[operator]``; the batched
#: twins of the solo factories above, registered via :func:`register_batch`.
_BATCH_FACTORIES: dict[str, Callable[..., list]] = {}


def register_batch(name: str) -> Callable[[Callable[..., list]], Callable[..., list]]:
    """Decorator: register a batched twin for problem ``name``.

    The twin takes ``(seeds, **params)`` — a list of per-scenario seeds
    where the solo factory takes one — and must return operators
    bit-identical per scenario to ``[solo(seed, **params) for seed in
    seeds]``.  Registering a twin for an unknown problem is a
    programming error, reported loudly at import time.
    """
    REGISTRY.get("problem", name)

    def deco(factory: Callable[..., list]) -> Callable[..., list]:
        _BATCH_FACTORIES[name] = factory
        return factory

    return deco


def has_batch_factory(name: str) -> bool:
    """Whether problem ``name`` has a registered batched twin."""
    return name in _BATCH_FACTORIES


def build_batch(specs: "list[Any]", seeds: "list[Any] | None" = None) -> "list[Any] | None":
    """Batch-construct the operators of homogeneous scenario specs.

    ``specs`` must agree on problem name and parameters (they are one
    ``batch_key`` chunk); ``seeds`` overrides the per-spec problem
    streams — by default each scenario draws from the same
    ``SeedSequence(spec.seed)`` child :meth:`ScenarioSpec.build_problem`
    uses, so the results are bit-identical to N solo builds.  Returns
    ``None`` when the problem has no batched twin (callers fall back to
    the solo factory per spec), ``[]`` for an empty chunk.
    """
    specs = list(specs)
    if not specs:
        return []
    head = specs[0]
    params = dict(head.problem_params)
    for s in specs[1:]:
        if s.problem != head.problem or dict(s.problem_params) != params:
            raise ValueError(
                "build_batch requires homogeneous specs: "
                f"{s.problem}/{dict(s.problem_params)!r} differs from "
                f"{head.problem}/{params!r}"
            )
    factory = _BATCH_FACTORIES.get(head.problem)
    if factory is None:
        return None
    if seeds is None:
        # spawn(1)[0] is the spawn(5)[0] problem child (spawning is
        # prefix-stable), without materializing the unused streams.
        seeds = [np.random.SeedSequence(s.seed).spawn(1)[0] for s in specs]
    return factory(seeds, **params)


@register_batch("jacobi")
def _batch_jacobi(seeds: "list[Any]", *, n: int = 24, dominance: float = 0.4) -> list:
    """Stacked draws + one vectorized rescale + stacked analysis gufuncs."""
    return make_jacobi_batch(n, dominance, seeds=seeds)


@register_batch("tridiagonal")
def _batch_tridiagonal(seeds: "list[Any]", *, n: int = 24, off_diag: float = -1.0,
                       diag: float = 2.3) -> list:
    """Shared deterministic matrix, per-scenario right-hand sides."""
    return make_tridiagonal_batch(n, off_diag=off_diag, diag=diag, seeds=seeds)


@register_batch("lasso")
def _batch_lasso(seeds: "list[Any]", *, n_samples: int = 120, n_features: int = 32,
                 sparsity: float = 0.5, l1: float = 0.05, l2: float = 0.05) -> list:
    """Per-scenario datasets in solo draw order, one stacked Gram eigensolve."""
    datas = [
        make_regression(n_samples, n_features, sparsity=sparsity, seed=as_generator(s))
        for s in seeds
    ]
    smooths = batch_least_squares(datas, l2=l2)
    return [
        ForwardBackwardOperator(
            CompositeProblem(smooth, L1Regularizer(l1)), smooth.max_step()
        )
        for smooth in smooths
    ]


@register_batch("ridge")
def _batch_ridge(seeds: "list[Any]", *, n_samples: int = 120, n_features: int = 32,
                 l2: float = 0.1) -> list:
    """Per-scenario datasets in solo draw order, one stacked Gram eigensolve."""
    datas = [make_regression(n_samples, n_features, seed=as_generator(s)) for s in seeds]
    smooths = batch_least_squares(datas, l2=l2)
    return [
        ForwardBackwardOperator(
            CompositeProblem(smooth, ZeroRegularizer()), smooth.max_step()
        )
        for smooth in smooths
    ]


@register_batch("logistic")
def _batch_logistic(seeds: "list[Any]", *, n_samples: int = 120, n_features: int = 24,
                    separation: float = 1.5, l2: float = 0.1) -> list:
    """Per-scenario datasets in solo draw order, one stacked Gram eigensolve."""
    datas = [
        make_classification(n_samples, n_features, separation=separation, seed=as_generator(s))
        for s in seeds
    ]
    problems = batch_logistic(datas, l2=l2)
    return [
        ForwardBackwardOperator(p, p.smooth.max_step()) for p in problems
    ]


# ----------------------------------------------------------------------
# Steering policies: (n, seed, **params) -> SteeringPolicy
# ----------------------------------------------------------------------

@register("steering", "all")
def _steer_all(n: int, seed: Any) -> Any:
    """Every component every iteration (synchronous steering)."""
    return AllComponents(n)


@register("steering", "cyclic")
def _steer_cyclic(n: int, seed: Any) -> Any:
    """One component per iteration, round-robin."""
    return CyclicSingle(n)


@register("steering", "block-cyclic")
def _steer_block_cyclic(n: int, seed: Any, *, group_size: int = 4) -> Any:
    """Contiguous blocks, round-robin."""
    return BlockCyclic(n, min(group_size, n))


@register("steering", "even-odd")
def _steer_even_odd(n: int, seed: Any) -> Any:
    """Red-black sweeps: even-indexed components, then odd, alternating."""
    return EvenOddSweeps(n)


@register("steering", "random-subset")
def _steer_random_subset(n: int, seed: Any, *, p: float = 0.3) -> Any:
    """Independent Bernoulli(p) inclusion per component."""
    return RandomSubset(n, p, seed=as_generator(seed))


@register("steering", "weighted")
def _steer_weighted(n: int, seed: Any, *, spread: float = 4.0) -> Any:
    """Single component drawn from geometrically spread weights."""
    weights = np.geomspace(1.0, spread, n)
    return WeightedRandom(weights, seed=as_generator(seed))


@register("steering", "permutation-sweeps")
def _steer_sweeps(n: int, seed: Any) -> Any:
    """Shuffled single-component sweeps (every component once per sweep)."""
    return PermutationSweeps(n, seed=as_generator(seed))


# ----------------------------------------------------------------------
# Delay models: (n, seed, **params) -> DelayModel
# ----------------------------------------------------------------------

@register("delays", "zero")
def _delay_zero(n: int, seed: Any) -> Any:
    """No staleness (synchronous reads)."""
    return ZeroDelay(n)


@register("delays", "constant")
def _delay_constant(n: int, seed: Any, *, delay: int = 3) -> Any:
    """Every read exactly ``delay`` iterations stale."""
    return ConstantDelay(n, delay)


@register("delays", "uniform")
def _delay_uniform(n: int, seed: Any, *, bound: int = 6) -> Any:
    """IID uniform staleness in ``[0, bound]``."""
    return UniformRandomDelay(n, bound, seed=as_generator(seed))


@register("delays", "chaotic")
def _delay_chaotic(n: int, seed: Any, *, bound: int = 8) -> Any:
    """Chaotic-relaxation style bursty bounded delays."""
    return ChaoticRelaxationDelay(n, bound, seed=as_generator(seed))


@register("delays", "baudet-sqrt")
def _delay_baudet(n: int, seed: Any) -> Any:
    """Baudet's sqrt(j) unbounded delays on a random slow quarter."""
    rng = as_generator(seed)
    slow = sorted(int(i) for i in rng.choice(n, size=max(1, n // 4), replace=False))
    return BaudetSqrtDelay(n, slow)


@register("delays", "log-growth")
def _delay_log_growth(n: int, seed: Any, *, scale: float = 2.0) -> Any:
    """Unbounded delays growing like ``scale * log(j)``."""
    return LogGrowthDelay(n, scale=scale)


@register("delays", "power")
def _delay_power(n: int, seed: Any, *, alpha: float = 0.7) -> Any:
    """Unbounded delays growing like ``j**alpha``."""
    return PowerGrowthDelay(n, alpha=alpha)


@register("delays", "out-of-order")
def _delay_out_of_order(n: int, seed: Any, *, bound: int = 6) -> Any:
    """Uniform delays with message reordering."""
    rng = as_generator(seed)
    return OutOfOrderDelay(UniformRandomDelay(n, bound, seed=rng), seed=rng)


@register("delays", "shuffled-window")
def _delay_shuffled(n: int, seed: Any, *, window: int = 12) -> Any:
    """Reads shuffled within a sliding window."""
    return ShuffledWindowDelay(n, window, seed=as_generator(seed))


# ----------------------------------------------------------------------
# Machines: (n, seed, **params) -> (processors, channels)
# ----------------------------------------------------------------------

def _partition(n: int, n_processors: int) -> list[tuple[int, ...]]:
    """Contiguous near-even split of components over processors."""
    if not 1 <= n_processors <= n:
        raise ValueError(f"need 1 <= n_processors <= {n}, got {n_processors}")
    bounds = np.linspace(0, n, n_processors + 1).astype(int)
    return [tuple(range(bounds[p], bounds[p + 1])) for p in range(n_processors)]


@register("machine", "uniform")
def _machine_uniform(n: int, seed: Any, *, n_processors: int = 4,
                     latency: float = 0.05) -> Any:
    """Homogeneous cluster, uniform compute times, low latency."""
    procs = [
        ProcessorSpec(components=comps, compute_time=UniformTime(0.8, 1.2))
        for comps in _partition(n, n_processors)
    ]
    return procs, uniform_cluster(n_processors, latency=latency)


@register("machine", "heterogeneous")
def _machine_heterogeneous(n: int, seed: Any, *, n_processors: int = 4,
                           imbalance: float = 4.0, latency: float = 0.05) -> Any:
    """Geometrically imbalanced processor speeds (stragglers)."""
    scales = np.geomspace(1.0, imbalance, n_processors)
    procs = [
        ProcessorSpec(components=comps, compute_time=UniformTime(0.8 * s, 1.2 * s))
        for s, comps in zip(scales, _partition(n, n_processors))
    ]
    return procs, uniform_cluster(n_processors, latency=latency)


@register("machine", "flexible")
def _machine_flexible(n: int, seed: Any, *, n_processors: int = 4,
                      inner_steps: int = 3, latency: float = 0.2) -> Any:
    """Flexible communication: inner steps, partial publishes, refreshed reads."""
    procs = [
        ProcessorSpec(
            components=comps,
            compute_time=UniformTime(0.5, 1.5),
            inner_steps=inner_steps,
            publish_partials=True,
            refresh_reads=True,
        )
        for comps in _partition(n, n_processors)
    ]
    return procs, ChannelSpec(latency=ConstantTime(latency))


@register("machine", "wan")
def _machine_wan(n: int, seed: Any, *, n_processors: int = 4,
                 base_latency: float = 0.3, drop_prob: float = 0.02) -> Any:
    """Wide-area network: high heterogeneous latency, occasional drops."""
    procs = [
        ProcessorSpec(components=comps, compute_time=UniformTime(0.8, 1.2))
        for comps in _partition(n, n_processors)
    ]
    channels = wide_area_network(
        n_processors, base_latency=base_latency, drop_prob=drop_prob,
        seed=as_generator(seed),
    )
    return procs, channels


@register("machine", "lockstep")
def _machine_lockstep(n: int, seed: Any, *, n_processors: int = 4,
                      compute: float = 1.0, latency: float = 0.05) -> Any:
    """Deterministic lockstep rounds: constant compute, sub-round latency.

    Every processor takes exactly ``compute`` per phase and every
    channel delivers in exactly ``latency`` (``0 < latency < compute``),
    so the event schedule is value- and RNG-independent — the machine
    archetype the batched scenario engine executes whole populations of
    (see :mod:`repro.runtime.simulator.batched`).
    """
    if not 0.0 < latency < compute:
        raise ValueError(
            f"lockstep needs 0 < latency < compute, got latency={latency}, "
            f"compute={compute}"
        )
    procs = [
        ProcessorSpec(components=comps, compute_time=ConstantTime(compute))
        for comps in _partition(n, n_processors)
    ]
    return procs, uniform_cluster(n_processors, latency=latency)


@register("machine", "lockstep-tiered")
def _machine_lockstep_tiered(n: int, seed: Any, *, n_processors: int = 4,
                             compute: float = 1.0, tiers: int = 2,
                             latency: float = 0.05) -> Any:
    """Lockstep with integer-tiered processor speeds (compute x 1..tiers).

    Processor ``p`` takes exactly ``compute * (1 + p % tiers)`` per
    phase — constant per processor, all durations integer multiples of
    the common period ``compute`` — and channels deliver in a constant
    ``latency`` below the fastest phase.  The schedule stays value- and
    RNG-independent, so the batched engine's relaxed ``lockstep_plan``
    admits it (see :mod:`repro.runtime.simulator.batched`), yet slow
    tiers commit genuinely stale reads like a real straggler cluster.
    """
    if tiers < 1:
        raise ValueError(f"tiers must be >= 1, got {tiers}")
    if not 0.0 < latency < compute:
        raise ValueError(
            f"lockstep-tiered needs 0 < latency < compute, got latency={latency}, "
            f"compute={compute}"
        )
    procs = [
        ProcessorSpec(
            components=comps,
            compute_time=ConstantTime(compute * (1 + p % tiers)),
        )
        for p, comps in enumerate(_partition(n, n_processors))
    ]
    return procs, uniform_cluster(n_processors, latency=latency)


@register("machine", "lossy")
def _machine_lossy(n: int, seed: Any, *, n_processors: int = 4,
                   drop_prob: float = 0.05) -> Any:
    """Lossy reordering channels (out-of-order messages in simulation)."""
    procs = [
        ProcessorSpec(components=comps, compute_time=UniformTime(0.8, 1.2))
        for comps in _partition(n, n_processors)
    ]
    spec = ChannelSpec.lossy_reordering(UniformTime(0.01, 0.4), drop_prob=drop_prob)
    return procs, spec


# ----------------------------------------------------------------------
# Faults: (n_processors, seed, **params) -> FaultModel | None
# ----------------------------------------------------------------------
#
# Fault factories receive the machine's processor count (for validating
# processor-indexed parameters like `straggler`) and the scenario's
# dedicated fault seed child; "none" returns None so the simulators keep
# their fault-free fast path and bit-identical golden digests.

@register("fault", "none")
def _fault_none(n_processors: int, seed: Any) -> Any:
    """No injected faults (the default; keeps golden digests intact)."""
    return None


@register("fault", "crash-restart")
def _fault_crash_restart(n_processors: int, seed: Any, *, crash_rate: float = 0.02,
                         repair_mean: float = 5.0) -> Any:
    """Processors die mid-phase and rejoin after an exponential repair."""
    return CrashRestart(crash_rate=crash_rate, repair_mean=repair_mean, seed=seed)


@register("fault", "limplock")
def _fault_limplock(n_processors: int, seed: Any, *, straggler: int = 0,
                    factor: float = 8.0, episodic: bool = False,
                    episode_prob: float = 0.25) -> Any:
    """One degraded-but-alive straggler (permanent or episodic limping)."""
    if not 0 <= straggler < n_processors:
        raise ValueError(
            f"straggler must be in [0, {n_processors}), got {straggler}"
        )
    return Limplock(
        straggler=straggler, factor=factor, episodic=episodic,
        episode_prob=episode_prob, seed=seed,
    )


@register("fault", "lossy-channel")
def _fault_lossy_channel(n_processors: int, seed: Any, *,
                         drop_prob: float = 0.05) -> Any:
    """IID per-message drops layered on every channel."""
    return LossyChannel(drop_prob=drop_prob, seed=seed)


@register("fault", "reordering-channel")
def _fault_reordering_channel(n_processors: int, seed: Any, *,
                              delay_prob: float = 0.3,
                              extra_mean: float = 1.0) -> Any:
    """Random extra latency on a fraction of messages (reordering)."""
    return ReorderingChannel(delay_prob=delay_prob, extra_mean=extra_mean, seed=seed)


@register("fault", "chaos")
def _fault_chaos(n_processors: int, seed: Any, *, crash_rate: float = 0.01,
                 repair_mean: float = 4.0, straggler: int = 0,
                 limp_factor: float = 4.0, drop_prob: float = 0.05,
                 extra_mean: float = 0.5) -> Any:
    """Crashes + a limping straggler + lossy jittered channels at once."""
    if not 0 <= straggler < n_processors:
        raise ValueError(
            f"straggler must be in [0, {n_processors}), got {straggler}"
        )
    return ChaosFault(
        crash_rate=crash_rate, repair_mean=repair_mean, straggler=straggler,
        limp_factor=limp_factor, drop_prob=drop_prob, extra_mean=extra_mean,
        seed=seed,
    )


# ----------------------------------------------------------------------
# Topologies: (n_processors, seed, **params) -> channel map | None
# ----------------------------------------------------------------------
#
# Topology factories override the machine archetype's channels with an
# explicit (src, dst) -> ChannelSpec graph; "native" returns None,
# meaning keep whatever the machine archetype built.  The generators are
# deterministic — the seed argument is registry-signature wiring only.

@register("topology", "native")
def _topology_native(n_processors: int, seed: Any) -> Any:
    """Keep the machine archetype's own channels (the default)."""
    return None


@register("topology", "clique")
def _topology_clique(n_processors: int, seed: Any, *, latency: float = 0.05) -> Any:
    """Flat all-to-all at one constant latency."""
    return clique_topology(n_processors, latency=latency)


@register("topology", "star")
def _topology_star(n_processors: int, seed: Any, *, latency: float = 0.05,
                   hub: int = 0) -> Any:
    """Hub-and-spoke: hub links fast, spoke-spoke relayed (doubled latency)."""
    return star_topology(n_processors, latency=latency, hub=hub)


@register("topology", "ring")
def _topology_ring(n_processors: int, seed: Any, *, latency: float = 0.05) -> Any:
    """Ring: latency proportional to hop distance."""
    return ring_topology(n_processors, latency=latency)


@register("topology", "two-tier")
def _topology_two_tier(n_processors: int, seed: Any, *, rack_size: int = 2,
                       intra_latency: float = 0.02,
                       inter_latency: float = 0.5) -> Any:
    """Two-tier rack fabric: fast within a rack, slow across racks."""
    return two_tier_topology(
        n_processors, rack_size=rack_size, intra_latency=intra_latency,
        inter_latency=inter_latency,
    )


# ----------------------------------------------------------------------
# Backward-compatible module-level tables (live views)
# ----------------------------------------------------------------------

PROBLEM_FACTORIES = REGISTRY.factories("problem")
STEERING_FACTORIES = REGISTRY.factories("steering")
DELAY_FACTORIES = REGISTRY.factories("delays")
MACHINE_FACTORIES = REGISTRY.factories("machine")
FAULT_FACTORIES = REGISTRY.factories("fault")
TOPOLOGY_FACTORIES = REGISTRY.factories("topology")


# ----------------------------------------------------------------------
# Lookup helpers
# ----------------------------------------------------------------------

def available(axis: str) -> tuple[str, ...]:
    """Registered names for one axis (``problem``/``steering``/``delays``/``machine``/``fault``/``topology``)."""
    return REGISTRY.names(axis)


def entry(axis: str, name: str) -> RegistryEntry:
    """The registered entry (factory + introspected defaults) for a name."""
    return REGISTRY.get(axis, name)


def describe_axes() -> dict[str, tuple[RegistryEntry, ...]]:
    """Every scenario axis with its entries — the ``--list-axes`` source."""
    return {axis: REGISTRY.entries(axis) for axis in SCENARIO_AXES}


def make_problem(name: str, seed: SeedLike = 0, **params: Any) -> Any:
    """Instantiate a registered problem operator."""
    return REGISTRY.make("problem", name, seed, **params)


def make_steering(name: str, n: int, seed: SeedLike = 0, **params: Any) -> Any:
    """Instantiate a registered steering policy for ``n`` components."""
    return REGISTRY.make("steering", name, n, seed, **params)


def make_delays(name: str, n: int, seed: SeedLike = 0, **params: Any) -> Any:
    """Instantiate a registered delay model for ``n`` components."""
    return REGISTRY.make("delays", name, n, seed, **params)


def make_machine(name: str, n: int, seed: SeedLike = 0, **params: Any) -> Any:
    """Instantiate a registered machine: ``(processors, channels)``."""
    return REGISTRY.make("machine", name, n, seed, **params)


def make_fault(name: str, n_processors: int, seed: SeedLike = 0, **params: Any) -> Any:
    """Instantiate a registered fault model (``None`` for ``"none"``)."""
    return REGISTRY.make("fault", name, n_processors, seed, **params)


def make_topology(name: str, n_processors: int, seed: SeedLike = 0, **params: Any) -> Any:
    """Instantiate a registered topology channel map (``None`` for ``"native"``)."""
    return REGISTRY.make("topology", name, n_processors, seed, **params)
