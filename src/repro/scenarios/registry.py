"""Name -> factory registries backing declarative scenario specs.

Every entry is a plain function of ``(seed, **params)`` (problems) or
``(n, seed, **params)`` (steering, delays, machines) returning fully
constructed library objects.  Scenario specs refer to entries by
string name, which keeps them picklable across process boundaries and
stable across library refactors; ``python -m repro sweep --list-axes``
prints the tables.

Seeds arrive as :class:`numpy.random.SeedSequence` children spawned
per scenario by :meth:`repro.scenarios.spec.ScenarioGrid.expand`, so
two scenarios never share a stream no matter how the fleet schedules
them.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

import numpy as np

from repro.delays.bounded import (
    ChaoticRelaxationDelay,
    ConstantDelay,
    UniformRandomDelay,
    ZeroDelay,
)
from repro.delays.outoforder import OutOfOrderDelay, ShuffledWindowDelay
from repro.delays.unbounded import BaudetSqrtDelay, LogGrowthDelay, PowerGrowthDelay
from repro.operators.gradient import GradientStepOperator
from repro.operators.linear import jacobi_operator
from repro.problems.linear_system import make_jacobi_instance, tridiagonal_system
from repro.problems.markov import discounted_value_operator, random_markov_chain
from repro.problems.quadratic import random_quadratic
from repro.runtime.simulator import (
    ChannelSpec,
    ConstantTime,
    ProcessorSpec,
    UniformTime,
    uniform_cluster,
    wide_area_network,
)
from repro.steering.policies import (
    AllComponents,
    BlockCyclic,
    CyclicSingle,
    PermutationSweeps,
    RandomSubset,
    WeightedRandom,
)
from repro.utils.rng import as_generator

__all__ = [
    "PROBLEM_FACTORIES",
    "STEERING_FACTORIES",
    "DELAY_FACTORIES",
    "MACHINE_FACTORIES",
    "available",
    "make_problem",
    "make_steering",
    "make_delays",
    "make_machine",
]

SeedLike = "int | np.random.Generator | np.random.SeedSequence | None"


# ----------------------------------------------------------------------
# Problems: (seed, **params) -> FixedPointOperator
# ----------------------------------------------------------------------

def _problem_jacobi(seed: Any, *, n: int = 24, dominance: float = 0.4) -> Any:
    return make_jacobi_instance(n, dominance, seed=seed)


def _problem_tridiagonal(seed: Any, *, n: int = 24, off_diag: float = -1.0,
                         diag: float = 2.3) -> Any:
    M, c = tridiagonal_system(n, off_diag=off_diag, diag=diag, seed=seed)
    return jacobi_operator(M, c)


def _problem_quadratic(seed: Any, *, n: int = 24, condition: float = 8.0,
                       coupling: float = 0.6) -> Any:
    problem = random_quadratic(n, condition, coupling=coupling, seed=seed)
    gamma = 1.8 / (problem.mu + problem.lipschitz)
    return GradientStepOperator(problem, gamma)


def _problem_markov(seed: Any, *, n: int = 24, beta: float = 0.85,
                    density: float = 0.4) -> Any:
    rng = as_generator(seed)
    P = random_markov_chain(n, density=density, seed=rng)
    rewards = rng.uniform(0.0, 1.0, size=n)
    return discounted_value_operator(P, rewards, beta)


PROBLEM_FACTORIES: dict[str, Callable[..., Any]] = {
    "jacobi": _problem_jacobi,
    "tridiagonal": _problem_tridiagonal,
    "quadratic": _problem_quadratic,
    "markov": _problem_markov,
}


# ----------------------------------------------------------------------
# Steering policies: (n, seed, **params) -> SteeringPolicy
# ----------------------------------------------------------------------

def _steer_all(n: int, seed: Any) -> Any:
    return AllComponents(n)


def _steer_cyclic(n: int, seed: Any) -> Any:
    return CyclicSingle(n)


def _steer_block_cyclic(n: int, seed: Any, *, group_size: int = 4) -> Any:
    return BlockCyclic(n, min(group_size, n))


def _steer_random_subset(n: int, seed: Any, *, p: float = 0.3) -> Any:
    return RandomSubset(n, p, seed=as_generator(seed))


def _steer_weighted(n: int, seed: Any, *, spread: float = 4.0) -> Any:
    weights = np.geomspace(1.0, spread, n)
    return WeightedRandom(weights, seed=as_generator(seed))


def _steer_sweeps(n: int, seed: Any) -> Any:
    return PermutationSweeps(n, seed=as_generator(seed))


STEERING_FACTORIES: dict[str, Callable[..., Any]] = {
    "all": _steer_all,
    "cyclic": _steer_cyclic,
    "block-cyclic": _steer_block_cyclic,
    "random-subset": _steer_random_subset,
    "weighted": _steer_weighted,
    "permutation-sweeps": _steer_sweeps,
}


# ----------------------------------------------------------------------
# Delay models: (n, seed, **params) -> DelayModel
# ----------------------------------------------------------------------

def _delay_zero(n: int, seed: Any) -> Any:
    return ZeroDelay(n)


def _delay_constant(n: int, seed: Any, *, delay: int = 3) -> Any:
    return ConstantDelay(n, delay)


def _delay_uniform(n: int, seed: Any, *, bound: int = 6) -> Any:
    return UniformRandomDelay(n, bound, seed=as_generator(seed))


def _delay_chaotic(n: int, seed: Any, *, bound: int = 8) -> Any:
    return ChaoticRelaxationDelay(n, bound, seed=as_generator(seed))


def _delay_baudet(n: int, seed: Any) -> Any:
    rng = as_generator(seed)
    slow = sorted(int(i) for i in rng.choice(n, size=max(1, n // 4), replace=False))
    return BaudetSqrtDelay(n, slow)


def _delay_log_growth(n: int, seed: Any, *, scale: float = 2.0) -> Any:
    return LogGrowthDelay(n, scale=scale)


def _delay_power(n: int, seed: Any, *, alpha: float = 0.7) -> Any:
    return PowerGrowthDelay(n, alpha=alpha)


def _delay_out_of_order(n: int, seed: Any, *, bound: int = 6) -> Any:
    rng = as_generator(seed)
    return OutOfOrderDelay(UniformRandomDelay(n, bound, seed=rng), seed=rng)


def _delay_shuffled(n: int, seed: Any, *, window: int = 12) -> Any:
    return ShuffledWindowDelay(n, window, seed=as_generator(seed))


DELAY_FACTORIES: dict[str, Callable[..., Any]] = {
    "zero": _delay_zero,
    "constant": _delay_constant,
    "uniform": _delay_uniform,
    "chaotic": _delay_chaotic,
    "baudet-sqrt": _delay_baudet,
    "log-growth": _delay_log_growth,
    "power": _delay_power,
    "out-of-order": _delay_out_of_order,
    "shuffled-window": _delay_shuffled,
}


# ----------------------------------------------------------------------
# Machines: (n, seed, **params) -> (processors, channels)
# ----------------------------------------------------------------------

def _partition(n: int, n_processors: int) -> list[tuple[int, ...]]:
    """Contiguous near-even split of components over processors."""
    if not 1 <= n_processors <= n:
        raise ValueError(f"need 1 <= n_processors <= {n}, got {n_processors}")
    bounds = np.linspace(0, n, n_processors + 1).astype(int)
    return [tuple(range(bounds[p], bounds[p + 1])) for p in range(n_processors)]


def _machine_uniform(n: int, seed: Any, *, n_processors: int = 4,
                     latency: float = 0.05) -> Any:
    procs = [
        ProcessorSpec(components=comps, compute_time=UniformTime(0.8, 1.2))
        for comps in _partition(n, n_processors)
    ]
    return procs, uniform_cluster(n_processors, latency=latency)


def _machine_heterogeneous(n: int, seed: Any, *, n_processors: int = 4,
                           imbalance: float = 4.0, latency: float = 0.05) -> Any:
    scales = np.geomspace(1.0, imbalance, n_processors)
    procs = [
        ProcessorSpec(components=comps, compute_time=UniformTime(0.8 * s, 1.2 * s))
        for s, comps in zip(scales, _partition(n, n_processors))
    ]
    return procs, uniform_cluster(n_processors, latency=latency)


def _machine_flexible(n: int, seed: Any, *, n_processors: int = 4,
                      inner_steps: int = 3, latency: float = 0.2) -> Any:
    procs = [
        ProcessorSpec(
            components=comps,
            compute_time=UniformTime(0.5, 1.5),
            inner_steps=inner_steps,
            publish_partials=True,
            refresh_reads=True,
        )
        for comps in _partition(n, n_processors)
    ]
    return procs, ChannelSpec(latency=ConstantTime(latency))


def _machine_wan(n: int, seed: Any, *, n_processors: int = 4,
                 base_latency: float = 0.3, drop_prob: float = 0.02) -> Any:
    procs = [
        ProcessorSpec(components=comps, compute_time=UniformTime(0.8, 1.2))
        for comps in _partition(n, n_processors)
    ]
    channels = wide_area_network(
        n_processors, base_latency=base_latency, drop_prob=drop_prob,
        seed=as_generator(seed),
    )
    return procs, channels


def _machine_lossy(n: int, seed: Any, *, n_processors: int = 4,
                   drop_prob: float = 0.05) -> Any:
    procs = [
        ProcessorSpec(components=comps, compute_time=UniformTime(0.8, 1.2))
        for comps in _partition(n, n_processors)
    ]
    spec = ChannelSpec.lossy_reordering(UniformTime(0.01, 0.4), drop_prob=drop_prob)
    return procs, spec


MACHINE_FACTORIES: dict[str, Callable[..., Any]] = {
    "uniform": _machine_uniform,
    "heterogeneous": _machine_heterogeneous,
    "flexible": _machine_flexible,
    "wan": _machine_wan,
    "lossy": _machine_lossy,
}


# ----------------------------------------------------------------------
# Lookup helpers
# ----------------------------------------------------------------------

_TABLES: dict[str, Mapping[str, Callable[..., Any]]] = {
    "problem": PROBLEM_FACTORIES,
    "steering": STEERING_FACTORIES,
    "delays": DELAY_FACTORIES,
    "machine": MACHINE_FACTORIES,
}


def available(axis: str) -> tuple[str, ...]:
    """Registered names for one axis (``problem``/``steering``/``delays``/``machine``)."""
    try:
        return tuple(sorted(_TABLES[axis]))
    except KeyError:
        raise KeyError(f"unknown axis {axis!r}; choose from {sorted(_TABLES)}") from None


def _lookup(axis: str, name: str) -> Callable[..., Any]:
    table = _TABLES[axis]
    if name not in table:
        raise KeyError(
            f"unknown {axis} {name!r}; registered: {', '.join(sorted(table))}"
        )
    return table[name]


def make_problem(name: str, seed: SeedLike = 0, **params: Any) -> Any:
    """Instantiate a registered problem operator."""
    return _lookup("problem", name)(seed, **params)


def make_steering(name: str, n: int, seed: SeedLike = 0, **params: Any) -> Any:
    """Instantiate a registered steering policy for ``n`` components."""
    return _lookup("steering", name)(n, seed, **params)


def make_delays(name: str, n: int, seed: SeedLike = 0, **params: Any) -> Any:
    """Instantiate a registered delay model for ``n`` components."""
    return _lookup("delays", name)(n, seed, **params)


def make_machine(name: str, n: int, seed: SeedLike = 0, **params: Any) -> Any:
    """Instantiate a registered machine: ``(processors, channels)``."""
    return _lookup("machine", name)(n, seed, **params)
