"""Scenario specs and declarative scenario grids.

A :class:`ScenarioSpec` pins down one experiment completely: the
registry names and parameters of its ingredients, the execution kind
(pure-math engine vs. hardware simulator), the engine backend, the
iteration budget, and a concrete integer seed.  Specs contain only
plain data, so they pickle across process pools and serialize into
sweep manifests; running one is the fleet's job
(:func:`repro.runtime.fleet.run_scenario`).

A :class:`ScenarioGrid` is the cartesian product the paper's
statistical claims need — problem × (delay model × steering policy |
machine) × seed replicates — expanded into specs whose seeds are
independently spawned from one master :class:`numpy.random.SeedSequence`,
so results do not depend on executor scheduling.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

import numpy as np

from repro.scenarios import registry

__all__ = ["ScenarioSpec", "ScenarioGrid"]

_KINDS = ("engine", "simulator")
#: Scenario kind -> execution-backend kind in the runtime registry.
_KIND_TO_BACKEND_KIND = {"engine": "model", "simulator": "machine"}

AxisItem = "str | tuple[str, Mapping[str, Any]]"


def _canon(obj: Any) -> Any:
    """Canonical plain-JSON form of a params value, loud on the rest.

    Every value must *participate* in the content hash — silently
    dropping one would make distinct scenarios collide in a sweep
    store.  Arrays of any size canonicalize as their nested lists, so
    a spec that round-tripped through JSON (array -> list) hashes
    identically to the live original; values that cannot be
    canonicalized deterministically (callables, arbitrary objects)
    raise.
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, (np.bool_, np.integer, np.floating)):
        return obj.item()
    if isinstance(obj, np.ndarray):
        return _canon(obj.tolist())
    if isinstance(obj, (list, tuple)):
        return [_canon(v) for v in obj]
    if isinstance(obj, dict):
        return {
            str(k): _canon(v)
            for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))
        }
    raise TypeError(
        f"scenario params must be plain data; cannot canonicalize {type(obj).__name__}"
    )


def _check_backend(backend: str | None, kind: str) -> str:
    """Resolve/validate a backend name against the runtime registry.

    ``None`` resolves to the kind's default backend (``exact`` for
    engine scenarios, ``vectorized`` for simulator scenarios).  The
    registry import is deferred: :mod:`repro.runtime.backends` imports
    the engines, which this declarative layer must not drag in at
    import time (and must not cycle through ``repro.runtime``).
    """
    from repro.runtime import backends as _backends
    from repro.utils.naming import unknown_name_message

    want = _KIND_TO_BACKEND_KIND[kind]
    if backend is None:
        return _backends.default_backend(want)
    try:
        got = _backends.backend_kind(backend)
    except KeyError:
        raise ValueError(
            unknown_name_message("backend", backend, _backends.available_backends())
            + f"; kind={kind!r} scenarios take: "
            f"{', '.join(_backends.available_backends(want))}"
        ) from None
    if got != want:
        raise ValueError(
            f"backend {backend!r} has kind {got!r}, but {kind!r} scenarios need "
            f"a {want!r} backend ({', '.join(_backends.available_backends(want))})"
        )
    return backend


def _normalize_axis(items: Iterable[Any], axis: str) -> tuple[tuple[str, dict[str, Any]], ...]:
    """Accept ``"name"`` or ``("name", {params})`` items, validated."""
    out: list[tuple[str, dict[str, Any]]] = []
    for item in items:
        if isinstance(item, str):
            name, params = item, {}
        else:
            name, params = item
            params = dict(params)
        registry.entry(axis, name)  # KeyError with did-you-mean on typos
        out.append((name, params))
    if not out:
        raise ValueError(f"grid axis {axis!r} must not be empty")
    return tuple(out)


@dataclass(frozen=True)
class ScenarioSpec:
    """One fully determined scenario (plain data, picklable).

    Attributes
    ----------
    kind:
        ``"engine"`` runs the mathematical
        :class:`~repro.core.async_iteration.AsyncIterationEngine` with
        a delay model and steering policy; ``"simulator"`` runs the
        discrete-event machine with a machine archetype.
    problem, problem_params:
        Registry name and overrides for the operator factory.
    steering, steering_params / delays, delay_params:
        Engine-kind ingredients (ignored for simulators).
    machine, machine_params:
        Simulator-kind ingredient (ignored for engines).
    fault, fault_params:
        Simulator-kind fault model injected into the machine run
        (``"none"`` — the default — injects nothing and keeps the run
        bit-identical to a pre-fault scenario).  Engine scenarios must
        keep the default: faults are machine-level events.
    topology, topology_params:
        Simulator-kind channel-graph override (``"native"`` — the
        default — keeps the machine archetype's own channels).
    backend:
        Execution-backend name from the
        :mod:`repro.runtime.backends` registry.  Engine scenarios take
        ``model``-kind backends (``exact``, ``flexible``); simulator
        scenarios take ``machine``-kind backends (``vectorized``,
        ``reference``, ``shared-memory``).  ``None`` resolves to the
        kind's default (``exact`` / ``vectorized``).
    seed:
        Integer entropy for this scenario; :meth:`spawn_seeds` derives
        the independent per-ingredient streams from it.
    max_iterations, tol:
        Budget and stopping tolerance shared by both kinds.
    """

    problem: str
    kind: str = "engine"
    problem_params: dict[str, Any] = field(default_factory=dict)
    steering: str = "cyclic"
    steering_params: dict[str, Any] = field(default_factory=dict)
    delays: str = "zero"
    delay_params: dict[str, Any] = field(default_factory=dict)
    machine: str = "uniform"
    machine_params: dict[str, Any] = field(default_factory=dict)
    fault: str = "none"
    fault_params: dict[str, Any] = field(default_factory=dict)
    topology: str = "native"
    topology_params: dict[str, Any] = field(default_factory=dict)
    backend: str | None = None
    seed: int = 0
    max_iterations: int = 2000
    tol: float = 1e-8

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"kind must be one of {_KINDS}, got {self.kind!r}")
        object.__setattr__(self, "backend", _check_backend(self.backend, self.kind))
        if self.fault == "none" and self.fault_params:
            raise ValueError(
                f"fault='none' takes no params, got {dict(self.fault_params)!r}"
            )
        if self.topology == "native" and self.topology_params:
            raise ValueError(
                f"topology='native' takes no params, got {dict(self.topology_params)!r}"
            )
        if self.kind == "engine" and (self.fault != "none" or self.topology != "native"):
            raise ValueError(
                "fault/topology apply only to kind='simulator' scenarios; "
                f"got fault={self.fault!r}, topology={self.topology!r} on an engine spec"
            )
        if self.max_iterations < 1:
            raise ValueError(f"max_iterations must be >= 1, got {self.max_iterations}")
        if self.tol < 0:
            raise ValueError(f"tol must be >= 0, got {self.tol}")

    @property
    def key(self) -> str:
        """Human-readable identity, e.g. ``jacobi/uniform×cyclic/seed=7``."""
        if self.kind == "engine":
            mid = f"{self.delays}×{self.steering}"
            if self.backend != "exact":
                mid += f"[{self.backend}]"
        else:
            mid = f"{self.machine}[{self.backend}]"
            if self.fault != "none":
                mid += f"+fault={self.fault}"
            if self.topology != "native":
                mid += f"+topo={self.topology}"
        return f"{self.problem}/{mid}/seed={self.seed}"

    def canonical(self) -> dict[str, Any]:
        """Plain-JSON dict that fully determines this scenario.

        Every field — and every params entry — participates (the
        backend name is already resolved by ``__post_init__``, so
        ``backend=None`` and its explicit default hash identically);
        params that cannot be canonicalized deterministically raise
        ``TypeError`` rather than silently dropping out of the hash.
        This is the document :attr:`content_hash` digests and sweep
        manifests persist.

        The fault/topology fields participate only away from their
        ``"none"``/``"native"`` defaults, so every pre-fault scenario
        keeps its historical content hash (and therefore its sweep-store
        row key and digest) bit for bit.
        """
        doc = {
            "problem": self.problem,
            "kind": self.kind,
            "problem_params": _canon(self.problem_params),
            "steering": self.steering,
            "steering_params": _canon(self.steering_params),
            "delays": self.delays,
            "delay_params": _canon(self.delay_params),
            "machine": self.machine,
            "machine_params": _canon(self.machine_params),
            "backend": self.backend,
            "seed": int(self.seed),
            "max_iterations": int(self.max_iterations),
            "tol": float(self.tol),
        }
        if self.fault != "none":
            doc["fault"] = self.fault
            doc["fault_params"] = _canon(self.fault_params)
        if self.topology != "native":
            doc["topology"] = self.topology
            doc["topology_params"] = _canon(self.topology_params)
        return doc

    @property
    def content_hash(self) -> str:
        """Canonical content address of this scenario (16 hex chars).

        SHA-256 over the sorted-key JSON of :meth:`canonical` —
        identical specs hash identically across processes and sessions,
        so a :class:`~repro.runtime.sweep_store.SweepStore` can key
        per-scenario results by it and a resumed sweep recognizes
        completed work regardless of grid enumeration order.
        """
        doc = json.dumps(self.canonical(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(doc.encode()).hexdigest()[:16]

    @property
    def batch_key(self) -> str:
        """Homogeneity key for batched lockstep execution.

        The canonical identity minus the seed: two specs with equal
        batch keys share problem family and parameters (hence shape),
        ingredient models, backend, budget and tolerance — differing
        only in their RNG streams — and may therefore advance through
        one shared iteration clock (see
        :mod:`repro.runtime.simulator.batched`).
        """
        doc = self.canonical()
        del doc["seed"]
        return json.dumps(doc, sort_keys=True, separators=(",", ":"))

    def spawn_seeds(self) -> list[np.random.SeedSequence]:
        """Seven independent child streams, one per ingredient.

        In order: problem, steering, delays, machine, backend, fault,
        topology.  Stream 4 feeds backend-internal randomness (e.g. the
        flexible engine's default partial-update model) so no backend
        ever shares a stream with an ingredient factory.  Spawning is
        prefix-stable, so adding the fault/topology children never
        perturbed the first five streams — pre-fault scenarios replay
        bit-identically.
        """
        return np.random.SeedSequence(self.seed).spawn(7)

    def build_problem(self) -> Any:
        return registry.make_problem(
            self.problem, self.spawn_seeds()[0], **self.problem_params
        )


@dataclass(frozen=True)
class ScenarioGrid:
    """Declarative cartesian grid of scenarios.

    ``problems``/``steerings``/``delays``/``machines``/``faults``/
    ``topologies`` accept registry names or ``(name, params)`` pairs;
    ``n_seeds`` replicates every combination with independent seeds
    spawned from ``master_seed``.  Engine grids sweep problems × delays
    × steerings; simulator grids sweep problems × machines × faults ×
    topologies (the fault/topology axes must stay at their
    ``"none"``/``"native"`` defaults on engine grids).  ``backends`` is
    a fully fledged grid axis over execution-backend names (a single
    name or ``None`` — the kind's default — is normalized to a
    one-element axis), so cross-backend populations come out of one
    expansion.
    """

    problems: tuple[Any, ...]
    kind: str = "engine"
    steerings: tuple[Any, ...] = ("cyclic",)
    delays: tuple[Any, ...] = ("zero",)
    machines: tuple[Any, ...] = ("uniform",)
    faults: tuple[Any, ...] = ("none",)
    topologies: tuple[Any, ...] = ("native",)
    n_seeds: int = 1
    master_seed: int = 0
    backends: tuple[str, ...] | str | None = None
    max_iterations: int = 2000
    tol: float = 1e-8

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"kind must be one of {_KINDS}, got {self.kind!r}")
        if self.n_seeds < 1:
            raise ValueError(f"n_seeds must be >= 1, got {self.n_seeds}")
        axis = self.backends
        if axis is None or isinstance(axis, str):
            axis = (axis,)
        if not axis:
            raise ValueError("grid axis 'backends' must not be empty")
        axis = tuple(_check_backend(b, self.kind) for b in axis)
        if len(set(axis)) != len(axis):
            raise ValueError(f"duplicate backends in grid axis: {axis}")
        object.__setattr__(self, "backends", axis)
        object.__setattr__(self, "problems", _normalize_axis(self.problems, "problem"))
        if self.kind == "engine":
            object.__setattr__(self, "steerings", _normalize_axis(self.steerings, "steering"))
            object.__setattr__(self, "delays", _normalize_axis(self.delays, "delays"))
            # Accept the defaults in either spelling — bare names or
            # normalized (name, params) pairs (the StudyConfig layer
            # always hands over pairs) — and reject anything else.
            faults = _normalize_axis(self.faults, "fault")
            topologies = _normalize_axis(self.topologies, "topology")
            if faults != (("none", {}),) or topologies != (("native", {}),):
                raise ValueError(
                    "faults/topologies axes apply only to kind='simulator' grids; "
                    f"got faults={tuple(self.faults)!r}, "
                    f"topologies={tuple(self.topologies)!r}"
                )
            object.__setattr__(self, "faults", faults)
            object.__setattr__(self, "topologies", topologies)
        else:
            object.__setattr__(self, "machines", _normalize_axis(self.machines, "machine"))
            object.__setattr__(self, "faults", _normalize_axis(self.faults, "fault"))
            object.__setattr__(self, "topologies", _normalize_axis(self.topologies, "topology"))

    @property
    def size(self) -> int:
        """Number of scenarios :meth:`expand` produces."""
        if self.kind == "engine":
            base = len(self.problems) * len(self.delays) * len(self.steerings)
        else:
            base = (
                len(self.problems) * len(self.machines)
                * len(self.faults) * len(self.topologies)
            )
        return base * len(self.backends) * self.n_seeds

    def expand(self) -> tuple[ScenarioSpec, ...]:
        """Materialize the grid, spawning one independent seed per scenario.

        Seeds derive from ``SeedSequence(master_seed)`` spawned in
        grid-enumeration order, so the expansion is deterministic and
        the fleet's results cannot depend on executor scheduling.
        Scenarios that differ *only* in backend share one seed — the
        backend axis varies the engine, not the experiment — so
        cross-backend comparisons are like-for-like.
        """
        children = np.random.SeedSequence(self.master_seed).spawn(
            self.size // len(self.backends)
        )
        # Keep each child's full 128-bit entropy (a single 32-bit word
        # would birthday-collide in large sweeps); stays a plain int.
        seeds = [
            int.from_bytes(c.generate_state(4, np.uint32).tobytes(), "little")
            for c in children
        ]
        specs: list[ScenarioSpec] = []
        if self.kind == "engine":
            combos: Iterable[tuple[Any, ...]] = itertools.product(
                self.problems, self.delays, self.steerings, range(self.n_seeds)
            )
            for i, ((prob, pp), (dl, dp), (st, sp), _) in enumerate(combos):
                for backend in self.backends:
                    specs.append(
                        ScenarioSpec(
                            problem=prob,
                            problem_params=pp,
                            kind="engine",
                            steering=st,
                            steering_params=sp,
                            delays=dl,
                            delay_params=dp,
                            backend=backend,
                            seed=seeds[i],
                            max_iterations=self.max_iterations,
                            tol=self.tol,
                        )
                    )
        else:
            # Fault/topology sit between machines and seeds so a default
            # grid (both axes singleton) enumerates — and therefore
            # seeds — exactly as it did before those axes existed.
            for i, ((prob, pp), (mach, mp), (flt, fp), (topo, tp), _) in enumerate(
                itertools.product(
                    self.problems, self.machines, self.faults, self.topologies,
                    range(self.n_seeds),
                )
            ):
                for backend in self.backends:
                    specs.append(
                        ScenarioSpec(
                            problem=prob,
                            problem_params=pp,
                            kind="simulator",
                            machine=mach,
                            machine_params=mp,
                            fault=flt,
                            fault_params=fp,
                            topology=topo,
                            topology_params=tp,
                            backend=backend,
                            seed=seeds[i],
                            max_iterations=self.max_iterations,
                            tol=self.tol,
                        )
                    )
        return tuple(specs)

    def shard(self, num_shards: int, index: int) -> tuple[ScenarioSpec, ...]:
        """Shard ``index`` (0-based) of this grid split ``num_shards`` ways.

        The split is *content-hash-stable*: the full grid is expanded
        first (so every spec keeps exactly the seed it would have in a
        single-host run — sharding can never perturb results), then
        specs are ranked by content hash and dealt round-robin to
        shards.  Assignment therefore depends only on the set of
        scenario identities — not on axis declaration order, not on
        enumeration order, not on ``num_shards``-independent state —
        and shard sizes differ by at most one even when one axis value
        dominates the grid.

        ``k`` hosts each running ``grid.shard(k, i)`` into their own
        :class:`~repro.runtime.sweep_store.SweepStore` cover the grid
        exactly once; merging the stores
        (:meth:`~repro.runtime.sweep_store.SweepStore.merge`)
        reproduces the single-host store's digest bit for bit.
        """
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        if not 0 <= index < num_shards:
            raise ValueError(
                f"shard index must be in [0, {num_shards}), got {index}"
            )
        specs = self.expand()
        ranked = sorted(specs, key=lambda s: s.content_hash)
        mine = {s.content_hash for s in ranked[index::num_shards]}
        # Keep submission (enumeration) order within the shard so the
        # shard's manifest reads like a contiguous slice of the study.
        return tuple(s for s in specs if s.content_hash in mine)
