"""End-to-end solvers: the paper's methods and their comparators.

* Synchronous baselines (gradient descent, ISTA, FISTA, Jacobi/GS);
* :class:`AsyncSolver` — totally asynchronous proximal gradient
  (Definition 1);
* :class:`FlexibleAsyncSolver` — flexible communication (Definitions
  3/4, Theorem 1);
* :class:`ARockSolver` [32] and :class:`DAvePGSolver` [30] — modern
  asynchronous comparators;
* Bellman–Ford (sync + totally async, the Arpanet algorithm);
* :class:`NetworkFlowRelaxationSolver` ([6], [8]);
* :class:`AsyncNewtonSolver` ([25]).
"""

from repro.solvers.arock import ARockSolver
from repro.solvers.asynchronous import AsyncSolver
from repro.solvers.base import SolveResult, Solver
from repro.solvers.bellman_ford import (
    async_bellman_ford,
    sync_bellman_ford,
    weights_from_graph,
)
from repro.solvers.dave_pg import DAvePGSolver, shard_gradients
from repro.solvers.flexible import FlexibleAsyncSolver
from repro.solvers.newton import AsyncNewtonSolver
from repro.solvers.relaxation import NetworkFlowRelaxationSolver
from repro.solvers.simulated import SimulatedMachineSolver
from repro.solvers.synchronous import (
    FISTASolver,
    GradientDescentSolver,
    ISTASolver,
    gauss_seidel_solve,
    jacobi_solve,
)

__all__ = [
    "ARockSolver",
    "AsyncNewtonSolver",
    "AsyncSolver",
    "DAvePGSolver",
    "FISTASolver",
    "FlexibleAsyncSolver",
    "GradientDescentSolver",
    "ISTASolver",
    "NetworkFlowRelaxationSolver",
    "SimulatedMachineSolver",
    "SolveResult",
    "Solver",
    "async_bellman_ford",
    "gauss_seidel_solve",
    "jacobi_solve",
    "shard_gradients",
    "sync_bellman_ford",
    "weights_from_graph",
]
