"""ARock [32]: asynchronous parallel coordinate updates of a nonexpansive map.

Peng, Xu, Yan & Yin's framework applies, at each step, a *correction*
along one randomly chosen coordinate of the Krasnosel'skii–Mann
residual evaluated at a delayed read:

    ``x_{k+1} = x_k - eta * ( x̂_k - T(x̂_k) )_{i_k} e_{i_k}``

where ``x̂_k`` is an inconsistent/delayed snapshot of ``x``.  Unlike
Definition 1 (which *overwrites* a component with the delayed
computation), ARock adds a damped correction to the *current* state —
the modern comparator the MODERN experiment pits against the paper's
framework.  Convergence requires the step ``eta`` to shrink with the
delay bound; we expose it directly.

The update loop is packaged as the ``algorithm``-kind execution
backend ``"arock"`` (registered on import), so the comparator runs
through the same :mod:`repro.runtime.backends` registry as the paper's
own engines; :class:`ARockSolver` is the thin composite-problem
front-end over it.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.operators.prox_gradient import ForwardBackwardOperator
from repro.problems.base import CompositeProblem
from repro.runtime.backends import (
    BackendRunResult,
    ExecutionBackend,
    ExecutionRequest,
    register_backend,
)
from repro.solvers.base import SolveResult, Solver
from repro.utils.rng import as_generator

__all__ = ["ARockBackend", "ARockSolver"]


@register_backend
class ARockBackend(ExecutionBackend):
    """KM coordinate corrections with bounded-delay snapshot reads.

    Options: ``problem`` (required, the
    :class:`~repro.problems.base.CompositeProblem` whose prox-gradient
    residual is the stopping measure), ``gamma`` (step of the
    underlying map), ``eta`` (KM step), ``max_delay`` (snapshot
    staleness bound).  ``request.operator`` is the forward-backward
    map ``T``.
    """

    name = "arock"
    kind = "algorithm"
    requires = ("operator",)
    required_options = ("problem", "gamma")

    def execute(self, request: ExecutionRequest) -> BackendRunResult:
        self.validate(request)
        opts = request.options
        problem: CompositeProblem = opts["problem"]
        gamma = float(opts["gamma"])
        eta = float(opts.get("eta", 0.9))
        max_delay = int(opts.get("max_delay", 5))
        op = request.operator
        rng = as_generator(request.seed)
        n = problem.dim
        x = request.x0.copy()
        history: deque[np.ndarray] = deque(maxlen=max_delay + 1)
        history.append(x.copy())
        converged = False
        it = 0
        check_every = max(1, n)
        for it in range(1, request.max_iterations + 1):
            stale = int(rng.integers(0, len(history)))
            x_hat = history[-1 - stale]
            i = int(rng.integers(0, n))
            # KM residual of the forward-backward map along coordinate i.
            ti = op.apply(x_hat)[i]
            x[i] -= eta * (x_hat[i] - ti)
            history.append(x.copy())
            if it % check_every == 0:
                if problem.prox_gradient_residual(x, gamma) < request.tol:
                    converged = True
                    break
        return BackendRunResult(
            x=x,
            trace=None,
            converged=converged,
            iterations=it,
            final_residual=problem.prox_gradient_residual(x, gamma),
            final_time=None,
            stats={"eta": eta, "max_delay": max_delay},
        )


class ARockSolver(Solver):
    """Asynchronous KM coordinate updates with bounded-delay reads.

    Parameters
    ----------
    eta:
        KM step size in ``(0, 1]``; smaller tolerates larger delays.
    max_delay:
        Snapshot staleness bound: reads come uniformly from the last
        ``max_delay + 1`` states (0 = always current, the serial case).
    gamma:
        Step of the underlying forward-backward map ``T`` (default
        ``1/L``, ARock's standard choice for nonexpansiveness).
    seed:
        RNG seed for coordinate choice and snapshot staleness.
    """

    def __init__(
        self,
        *,
        eta: float = 0.9,
        max_delay: int = 5,
        gamma: float | None = None,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        if not 0.0 < eta <= 1.0:
            raise ValueError(f"eta must lie in (0, 1], got {eta}")
        if max_delay < 0:
            raise ValueError(f"max_delay must be >= 0, got {max_delay}")
        self.eta = float(eta)
        self.max_delay = int(max_delay)
        self.gamma = gamma
        self.seed = seed

    def solve(
        self,
        problem: CompositeProblem,
        *,
        x0: np.ndarray | None = None,
        tol: float = 1e-8,
        max_iterations: int = 200_000,
    ) -> SolveResult:
        gamma = self.gamma if self.gamma is not None else 1.0 / problem.smooth.lipschitz
        request = ExecutionRequest(
            operator=ForwardBackwardOperator(problem, gamma),
            x0=self._initial_point(problem, x0),
            max_iterations=max_iterations,
            tol=tol,
            seed=self.seed,
            options={
                "problem": problem,
                "gamma": gamma,
                "eta": self.eta,
                "max_delay": self.max_delay,
            },
        )
        res = self._execute("arock", request, kind="algorithm")
        return SolveResult(
            x=res.x,
            converged=res.converged,
            iterations=res.iterations,
            final_residual=res.final_residual,
            objective=problem.objective(res.x),
            info={"eta": self.eta, "gamma": gamma, "max_delay": self.max_delay},
        )
