"""Totally asynchronous solver (Definition 1 front-end).

Builds the forward-backward operator for a composite problem, wires a
steering policy and a delay model (defaults: random single-component
steering, bounded random delays) and delegates to a ``model``-kind
execution backend (default: the exact Definition 1 engine).  Accepts
any admissible delay model — including unbounded and out-of-order ones
— which is precisely the "totally asynchronous" regime of the paper.
"""

from __future__ import annotations

import numpy as np

from repro.delays.base import DelayModel
from repro.delays.bounded import UniformRandomDelay
from repro.operators.prox_gradient import ForwardBackwardOperator
from repro.problems.base import CompositeProblem
from repro.runtime.backends import ExecutionRequest
from repro.solvers.base import SolveResult, Solver
from repro.steering.base import SteeringPolicy
from repro.steering.policies import PermutationSweeps
from repro.utils.norms import BlockSpec
from repro.utils.rng import as_generator

__all__ = ["AsyncSolver"]


class AsyncSolver(Solver):
    """Asynchronous proximal-gradient solver with pluggable ``S`` and ``L``.

    Parameters
    ----------
    steering:
        Steering policy factory or instance; defaults to shuffled
        single-component sweeps.
    delays:
        Delay model; defaults to ``UniformRandomDelay(bound=5)``.
    gamma:
        Fixed step; defaults to the paper's maximal ``2/(mu+L)``.
    n_blocks:
        Optional uniform block decomposition (defaults to scalar).
    seed:
        Seed for the default steering/delay models.
    backend:
        ``model``-kind execution backend that runs the iteration
        (default ``"exact"``, the Definition 1 engine).
    """

    def __init__(
        self,
        *,
        steering: SteeringPolicy | None = None,
        delays: DelayModel | None = None,
        gamma: float | None = None,
        n_blocks: int | None = None,
        seed: int | np.random.Generator | None = 0,
        backend: str = "exact",
    ) -> None:
        self.steering = steering
        self.delays = delays
        self.gamma = gamma
        self.n_blocks = n_blocks
        self.seed = seed
        self.backend = backend

    def solve(
        self,
        problem: CompositeProblem,
        *,
        x0: np.ndarray | None = None,
        tol: float = 1e-8,
        max_iterations: int = 100_000,
    ) -> SolveResult:
        rng = as_generator(self.seed)
        gamma = self.gamma if self.gamma is not None else problem.smooth.max_step()
        spec = (
            BlockSpec.uniform(problem.dim, self.n_blocks)
            if self.n_blocks is not None
            else None
        )
        op = ForwardBackwardOperator(problem, gamma, spec)
        n = op.n_components
        steering = (
            self.steering
            if self.steering is not None
            else PermutationSweeps(n, seed=rng)
        )
        delays = (
            self.delays if self.delays is not None else UniformRandomDelay(n, 5, seed=rng)
        )
        request = ExecutionRequest(
            operator=op,
            x0=self._initial_point(problem, x0),
            max_iterations=max_iterations,
            tol=tol * gamma,  # engine residual is in iterate units
            steering=steering,
            delays=delays,
            seed=rng,
        )
        result = self._execute(self.backend, request, kind="model")
        x = result.x
        return SolveResult(
            x=x,
            converged=result.converged,
            iterations=result.iterations,
            final_residual=problem.prox_gradient_residual(x, gamma),
            objective=problem.objective(x),
            trace=result.trace,
            info={
                "gamma": gamma,
                "backend": self.backend,
                "engine_residual": result.final_residual,
                **result.stats,
            },
        )
