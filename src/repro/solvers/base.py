"""Solver interfaces and the common result type.

Solvers are thin, opinionated front-ends over the execution backends:
they build the right operator for a
:class:`~repro.problems.base.CompositeProblem` (or accept a raw
:class:`~repro.operators.base.FixedPointOperator`), choose
steering/delay/partial models or a machine, then delegate the actual
iteration to a registered
:class:`~repro.runtime.backends.ExecutionBackend` via
:meth:`Solver._execute` and return a :class:`SolveResult` with the
realized trace attached for analysis.  One solver definition, every
engine: swapping the ``backend`` name reruns the same mathematical
problem on a different substrate.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.trace import IterationTrace
from repro.problems.base import CompositeProblem

__all__ = ["SolveResult", "Solver"]


@dataclass(frozen=True)
class SolveResult:
    """Uniform outcome of every solver in :mod:`repro.solvers`.

    Attributes
    ----------
    x:
        Final iterate (for prox-gradient solvers: the *minimizer*
        estimate, post-prox when the operator iterates in the
        transformed space).
    converged:
        Whether the stopping tolerance was met within budget.
    iterations:
        Global iterations (or sweeps, for synchronous methods).
    final_residual:
        Solver-specific optimality measure at ``x`` (fixed-point
        residual or prox-gradient mapping norm).
    objective:
        Final objective value when the solver knows a problem
        (``nan`` for raw fixed-point solves).
    trace:
        Realized iteration trace when the solver records one.
    simulated_time:
        Simulated wall-clock when a simulator backend produced the
        run (``nan`` otherwise).
    info:
        Solver-specific extras (constraint audits, detector reports...).
    """

    x: np.ndarray
    converged: bool
    iterations: int
    final_residual: float
    objective: float = float("nan")
    trace: IterationTrace | None = None
    simulated_time: float = float("nan")
    info: dict[str, Any] = field(default_factory=dict)

    def error_to(self, reference: np.ndarray) -> float:
        """Max-norm distance of the final iterate to a reference point."""
        return float(np.max(np.abs(self.x - np.asarray(reference, dtype=np.float64))))


class Solver(abc.ABC):
    """Base class for composite-problem solvers."""

    @abc.abstractmethod
    def solve(
        self,
        problem: CompositeProblem,
        *,
        x0: np.ndarray | None = None,
        tol: float = 1e-8,
        max_iterations: int = 100_000,
    ) -> SolveResult:
        """Minimize ``f + g`` to the requested tolerance."""

    @staticmethod
    def _execute(backend: str, request: Any, *, kind: str | None = None) -> Any:
        """Dispatch an :class:`~repro.runtime.backends.ExecutionRequest`.

        Looks the backend up in the runtime registry, optionally
        enforcing its kind (a solver wired for prescribed ``(S, L)``
        models cannot run on a machine backend and vice versa), and
        executes the request.  Imported lazily so the solver layer
        stays importable without the runtime substrates.
        """
        from repro.runtime import backends as _backends

        chosen = _backends.get_backend(backend)
        if kind is not None and chosen.kind != kind:
            raise ValueError(
                f"backend {backend!r} has kind {chosen.kind!r}, need {kind!r} "
                f"(choose from {', '.join(_backends.available_backends(kind))})"
            )
        return chosen.execute(request)

    @staticmethod
    def _initial_point(problem: CompositeProblem, x0: np.ndarray | None) -> np.ndarray:
        if x0 is None:
            return np.zeros(problem.dim)
        x0 = np.asarray(x0, dtype=np.float64)
        if x0.shape != (problem.dim,):
            raise ValueError(f"x0 must have shape ({problem.dim},), got {x0.shape}")
        return x0.copy()
