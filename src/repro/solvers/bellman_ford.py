"""Distributed asynchronous Bellman–Ford (the Arpanet algorithm).

Section II of the paper recalls that the first routing algorithm on
the Arpanet (1969) was a distributed asynchronous Bellman–Ford — a
monotone fixed-point iteration that converges totally asynchronously
for nonnegative arc weights.  This module wraps the min-plus operator
in synchronous and asynchronous solvers and accepts ``networkx``
digraphs directly.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.core.async_iteration import AsyncIterationEngine
from repro.delays.base import DelayModel
from repro.delays.bounded import UniformRandomDelay
from repro.operators.monotone import MinPlusBellmanFordOperator
from repro.solvers.base import SolveResult
from repro.solvers.synchronous import jacobi_solve
from repro.steering.base import SteeringPolicy
from repro.steering.policies import PermutationSweeps
from repro.utils.rng import as_generator

__all__ = ["weights_from_graph", "sync_bellman_ford", "async_bellman_ford"]


def weights_from_graph(graph: nx.DiGraph, weight: str = "weight") -> np.ndarray:
    """Dense arc-weight matrix of a digraph (``inf`` = no arc).

    Node labels must be ``0..N-1``; the entry ``[i, j]`` is the length
    of arc ``i -> j``.
    """
    n = graph.number_of_nodes()
    if sorted(graph.nodes) != list(range(n)):
        raise ValueError("graph nodes must be labelled 0..N-1")
    W = np.full((n, n), np.inf)
    for u, v, data in graph.edges(data=True):
        w = float(data.get(weight, 1.0))
        if w < 0:
            raise ValueError(f"arc ({u}, {v}) has negative weight {w}")
        W[u, v] = w
    return W


def sync_bellman_ford(
    weights: np.ndarray,
    destination: int = 0,
    *,
    tol: float = 0.0,
    max_sweeps: int | None = None,
) -> SolveResult:
    """Synchronous Bellman–Ford sweeps to the exact distances.

    With ``tol = 0`` the solve stops at the first stationary sweep
    (exact distances, at most ``N`` sweeps for nonnegative weights).
    """
    op = MinPlusBellmanFordOperator(weights, destination)
    sweeps = max_sweeps if max_sweeps is not None else op.dim + 1
    return jacobi_solve(op, op.initial_vector(), tol=max(tol, 1e-300), max_sweeps=sweeps)


def async_bellman_ford(
    weights: np.ndarray,
    destination: int = 0,
    *,
    steering: SteeringPolicy | None = None,
    delays: DelayModel | None = None,
    tol: float = 1e-12,
    max_iterations: int = 200_000,
    seed: int | np.random.Generator | None = 0,
) -> SolveResult:
    """Totally asynchronous Bellman–Ford with arbitrary admissible delays.

    Nodes update their distance estimates from (possibly stale,
    possibly reordered) neighbour estimates; monotonicity from the
    all-large initialization guarantees convergence to the same fixed
    point the synchronous sweeps find.
    """
    rng = as_generator(seed)
    op = MinPlusBellmanFordOperator(weights, destination)
    n = op.n_components
    steering = steering if steering is not None else PermutationSweeps(n, seed=rng)
    delays = delays if delays is not None else UniformRandomDelay(n, 4, seed=rng)
    engine = AsyncIterationEngine(op, steering, delays)
    result = engine.run(op.initial_vector(), max_iterations=max_iterations, tol=tol)
    return SolveResult(
        x=result.x,
        converged=result.converged,
        iterations=result.iterations,
        final_residual=result.final_residual,
        trace=result.trace,
        info={"destination": destination},
    )
