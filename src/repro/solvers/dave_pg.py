"""DAve-PG [30]: distributed delay-tolerant proximal gradient.

Mishchenko, Iutzeler & Malick's algorithm splits ``f = sum_m alpha_m f_m``
across ``M`` workers.  The master maintains the *delayed average*
``z = sum_m alpha_m z_m`` of the workers' last contributions; the
active worker reads the master point, computes

    ``z_m^+ = x̂ - gamma * grad f_m(x̂)``   with ``x̂ = prox_{gamma g}(z)``

and the master replaces that worker's slot: ``z <- z + alpha_m (z_m^+ - z_m)``.
Epochs (each machine at least two updates) drive its analysis — the
construct the paper compares against macro-iterations.

Data sharding: least-squares and logistic problems are split by rows
so the ``f_m`` are genuinely heterogeneous; other smooth problems fall
back to the uniform split ``f_m = f / M`` (documented substitution —
the delay dynamics, which is what the experiment measures, are
identical).

The master/worker loop is packaged as the ``algorithm``-kind execution
backend ``"dave-pg"`` (registered on import), so the comparator runs
through the same :mod:`repro.runtime.backends` registry as the paper's
own engines; :class:`DAvePGSolver` is the thin composite-problem
front-end over it.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.trace import TraceBuilder
from repro.problems.base import CompositeProblem
from repro.problems.least_squares import LeastSquaresProblem
from repro.problems.logistic import LogisticProblem
from repro.runtime.backends import (
    BackendRunResult,
    ExecutionBackend,
    ExecutionRequest,
    register_backend,
)
from repro.solvers.base import SolveResult, Solver
from repro.utils.rng import as_generator

__all__ = ["DAvePGBackend", "DAvePGSolver", "shard_gradients"]


def shard_gradients(
    problem: CompositeProblem, n_workers: int
) -> list[Callable[[np.ndarray], np.ndarray]]:
    """Per-worker gradient oracles with ``sum_m alpha_m grad f_m = grad f``.

    Row-shards least-squares and logistic smooth parts (weights
    ``alpha_m`` proportional to shard sizes are folded in so the
    returned oracles satisfy ``mean`` aggregation with uniform
    ``alpha_m = 1/M``); falls back to ``grad f`` itself (uniform split)
    for other problems.
    """
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    smooth = problem.smooth
    if isinstance(smooth, LeastSquaresProblem):
        Y, z, l2 = smooth.features, smooth.targets, smooth.l2
        m = Y.shape[0]
        idx = np.array_split(np.arange(m), n_workers)
        oracles = []
        for rows in idx:
            Ys, zs = Y[rows], z[rows]
            # Scale so that the average of the oracles equals grad f.
            scale = float(n_workers) / m

            def oracle(x: np.ndarray, Ys=Ys, zs=zs, scale=scale, l2=l2) -> np.ndarray:
                return scale * (Ys.T @ (Ys @ x - zs)) + l2 * x

            oracles.append(oracle)
        return oracles
    if isinstance(smooth, LogisticProblem):
        A = smooth._A
        m = A.shape[0]
        l2 = smooth.l2
        idx = np.array_split(np.arange(m), n_workers)
        oracles = []
        for rows in idx:
            As = A[rows]
            scale = float(n_workers) / m

            def oracle(x: np.ndarray, As=As, scale=scale, l2=l2) -> np.ndarray:
                margins = As @ x
                s = np.where(
                    margins >= 0,
                    np.exp(-np.clip(margins, 0, 700)) / (1.0 + np.exp(-np.clip(margins, 0, 700))),
                    1.0 / (1.0 + np.exp(np.clip(margins, -700, 0))),
                )
                return -scale * (As.T @ s) + l2 * x

            oracles.append(oracle)
        return oracles
    # Uniform fallback: every worker sees the full gradient.
    return [smooth.gradient for _ in range(n_workers)]


@register_backend
class DAvePGBackend(ExecutionBackend):
    """Delayed-average proximal gradient with a master point ``z``.

    Options: ``problem`` (required), ``gamma`` (step), ``n_workers``,
    ``worker_rates`` (normalized activation probabilities, one per
    worker).  No fixed-point operator is involved — the backend works
    directly on the composite problem — so ``request.operator`` is
    unused and may be ``None``.
    """

    name = "dave-pg"
    kind = "algorithm"
    requires = ()
    required_options = ("problem", "gamma")

    def execute(self, request: ExecutionRequest) -> BackendRunResult:
        self.validate(request)
        opts = request.options
        problem: CompositeProblem = opts["problem"]
        gamma = float(opts["gamma"])
        n_workers = int(opts.get("n_workers", 4))
        worker_rates = opts.get("worker_rates")
        if worker_rates is None:
            worker_rates = np.full(n_workers, 1.0 / n_workers)
        rng = as_generator(request.seed)
        oracles = shard_gradients(problem, n_workers)
        alpha = np.full(n_workers, 1.0 / n_workers)

        # Initialize every worker's contribution from the common start.
        contributions = []
        x_hat0 = problem.reg.prox(request.x0, gamma)
        for m in range(n_workers):
            contributions.append(x_hat0 - gamma * oracles[m](x_hat0))
        z = np.zeros(problem.dim)
        for m in range(n_workers):
            z += alpha[m] * contributions[m]

        builder = TraceBuilder(n_workers)
        builder.record_initial(residual=problem.prox_gradient_residual(x_hat0, gamma))
        converged = False
        it = 0
        last_res = float("inf")
        check_every = max(1, n_workers)
        for it in range(1, request.max_iterations + 1):
            m = int(rng.choice(n_workers, p=worker_rates))
            x_hat = problem.reg.prox(z, gamma)
            new_contrib = x_hat - gamma * oracles[m](x_hat)
            z = z + alpha[m] * (new_contrib - contributions[m])
            contributions[m] = new_contrib
            if it % check_every == 0:
                x_cur = problem.reg.prox(z, gamma)
                last_res = problem.prox_gradient_residual(x_cur, gamma)
            builder.record(
                (m,), np.full(n_workers, it - 1, dtype=np.int64), residual=last_res
            )
            if last_res < request.tol:
                converged = True
                break
        x = problem.reg.prox(z, gamma)
        return BackendRunResult(
            x=x,
            trace=builder.build(),
            converged=converged,
            iterations=it,
            final_residual=problem.prox_gradient_residual(x, gamma),
            final_time=None,
            stats={"n_workers": n_workers},
        )


class DAvePGSolver(Solver):
    """Simulated DAve-PG with heterogeneous worker activation rates.

    Parameters
    ----------
    n_workers:
        Number of machines ``M``.
    worker_rates:
        Relative activation rates (default all equal); a worker with
        half the rate contributes twice-as-stale gradients — the delay
        regime [30] analyzes with epochs.
    gamma:
        Step size (default ``2/(mu+L)``, the paper-compatible choice).
    seed:
        RNG seed for the activation sequence.
    """

    def __init__(
        self,
        n_workers: int = 4,
        *,
        worker_rates: np.ndarray | None = None,
        gamma: float | None = None,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.n_workers = int(n_workers)
        if worker_rates is not None:
            rates = np.asarray(worker_rates, dtype=np.float64)
            if rates.shape != (self.n_workers,) or np.any(rates <= 0):
                raise ValueError("worker_rates must be positive with one entry per worker")
            self.worker_rates = rates / rates.sum()
        else:
            self.worker_rates = np.full(self.n_workers, 1.0 / self.n_workers)
        self.gamma = gamma
        self.seed = seed

    def solve(
        self,
        problem: CompositeProblem,
        *,
        x0: np.ndarray | None = None,
        tol: float = 1e-8,
        max_iterations: int = 200_000,
    ) -> SolveResult:
        gamma = self.gamma if self.gamma is not None else problem.smooth.max_step()
        request = ExecutionRequest(
            operator=None,
            x0=self._initial_point(problem, x0),
            max_iterations=max_iterations,
            tol=tol,
            seed=self.seed,
            options={
                "problem": problem,
                "gamma": gamma,
                "n_workers": self.n_workers,
                "worker_rates": self.worker_rates,
            },
        )
        res = self._execute("dave-pg", request, kind="algorithm")
        return SolveResult(
            x=res.x,
            converged=res.converged,
            iterations=res.iterations,
            final_residual=res.final_residual,
            objective=problem.objective(res.x),
            trace=res.trace,
            info={"gamma": gamma, "n_workers": self.n_workers},
        )
