"""DAve-PG [30]: distributed delay-tolerant proximal gradient.

Mishchenko, Iutzeler & Malick's algorithm splits ``f = sum_m alpha_m f_m``
across ``M`` workers.  The master maintains the *delayed average*
``z = sum_m alpha_m z_m`` of the workers' last contributions; the
active worker reads the master point, computes

    ``z_m^+ = x̂ - gamma * grad f_m(x̂)``   with ``x̂ = prox_{gamma g}(z)``

and the master replaces that worker's slot: ``z <- z + alpha_m (z_m^+ - z_m)``.
Epochs (each machine at least two updates) drive its analysis — the
construct the paper compares against macro-iterations.

Data sharding: least-squares and logistic problems are split by rows
so the ``f_m`` are genuinely heterogeneous; other smooth problems fall
back to the uniform split ``f_m = f / M`` (documented substitution —
the delay dynamics, which is what the experiment measures, are
identical).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.trace import TraceBuilder
from repro.problems.base import CompositeProblem
from repro.problems.least_squares import LeastSquaresProblem
from repro.problems.logistic import LogisticProblem
from repro.solvers.base import SolveResult, Solver
from repro.utils.rng import as_generator

__all__ = ["DAvePGSolver", "shard_gradients"]


def shard_gradients(
    problem: CompositeProblem, n_workers: int
) -> list[Callable[[np.ndarray], np.ndarray]]:
    """Per-worker gradient oracles with ``sum_m alpha_m grad f_m = grad f``.

    Row-shards least-squares and logistic smooth parts (weights
    ``alpha_m`` proportional to shard sizes are folded in so the
    returned oracles satisfy ``mean`` aggregation with uniform
    ``alpha_m = 1/M``); falls back to ``grad f`` itself (uniform split)
    for other problems.
    """
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    smooth = problem.smooth
    if isinstance(smooth, LeastSquaresProblem):
        Y, z, l2 = smooth.features, smooth.targets, smooth.l2
        m = Y.shape[0]
        idx = np.array_split(np.arange(m), n_workers)
        oracles = []
        for rows in idx:
            Ys, zs = Y[rows], z[rows]
            # Scale so that the average of the oracles equals grad f.
            scale = float(n_workers) / m

            def oracle(x: np.ndarray, Ys=Ys, zs=zs, scale=scale, l2=l2) -> np.ndarray:
                return scale * (Ys.T @ (Ys @ x - zs)) + l2 * x

            oracles.append(oracle)
        return oracles
    if isinstance(smooth, LogisticProblem):
        A = smooth._A
        m = A.shape[0]
        l2 = smooth.l2
        idx = np.array_split(np.arange(m), n_workers)
        oracles = []
        for rows in idx:
            As = A[rows]
            scale = float(n_workers) / m

            def oracle(x: np.ndarray, As=As, scale=scale, l2=l2) -> np.ndarray:
                margins = As @ x
                s = np.where(
                    margins >= 0,
                    np.exp(-np.clip(margins, 0, 700)) / (1.0 + np.exp(-np.clip(margins, 0, 700))),
                    1.0 / (1.0 + np.exp(np.clip(margins, -700, 0))),
                )
                return -scale * (As.T @ s) + l2 * x

            oracles.append(oracle)
        return oracles
    # Uniform fallback: every worker sees the full gradient.
    return [smooth.gradient for _ in range(n_workers)]


class DAvePGSolver(Solver):
    """Simulated DAve-PG with heterogeneous worker activation rates.

    Parameters
    ----------
    n_workers:
        Number of machines ``M``.
    worker_rates:
        Relative activation rates (default all equal); a worker with
        half the rate contributes twice-as-stale gradients — the delay
        regime [30] analyzes with epochs.
    gamma:
        Step size (default ``2/(mu+L)``, the paper-compatible choice).
    seed:
        RNG seed for the activation sequence.
    """

    def __init__(
        self,
        n_workers: int = 4,
        *,
        worker_rates: np.ndarray | None = None,
        gamma: float | None = None,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.n_workers = int(n_workers)
        if worker_rates is not None:
            rates = np.asarray(worker_rates, dtype=np.float64)
            if rates.shape != (self.n_workers,) or np.any(rates <= 0):
                raise ValueError("worker_rates must be positive with one entry per worker")
            self.worker_rates = rates / rates.sum()
        else:
            self.worker_rates = np.full(self.n_workers, 1.0 / self.n_workers)
        self.gamma = gamma
        self.seed = seed

    def solve(
        self,
        problem: CompositeProblem,
        *,
        x0: np.ndarray | None = None,
        tol: float = 1e-8,
        max_iterations: int = 200_000,
    ) -> SolveResult:
        rng = as_generator(self.seed)
        gamma = self.gamma if self.gamma is not None else problem.smooth.max_step()
        oracles = shard_gradients(problem, self.n_workers)
        alpha = np.full(self.n_workers, 1.0 / self.n_workers)
        x_start = self._initial_point(problem, x0)

        # Initialize every worker's contribution from the common start.
        contributions = []
        x_hat0 = problem.reg.prox(x_start, gamma)
        for m in range(self.n_workers):
            contributions.append(x_hat0 - gamma * oracles[m](x_hat0))
        z = np.zeros(problem.dim)
        for m in range(self.n_workers):
            z += alpha[m] * contributions[m]

        builder = TraceBuilder(self.n_workers)
        builder.record_initial(residual=problem.prox_gradient_residual(x_hat0, gamma))
        converged = False
        it = 0
        last_res = float("inf")
        check_every = max(1, self.n_workers)
        for it in range(1, max_iterations + 1):
            m = int(rng.choice(self.n_workers, p=self.worker_rates))
            x_hat = problem.reg.prox(z, gamma)
            new_contrib = x_hat - gamma * oracles[m](x_hat)
            z = z + alpha[m] * (new_contrib - contributions[m])
            contributions[m] = new_contrib
            if it % check_every == 0:
                x_cur = problem.reg.prox(z, gamma)
                last_res = problem.prox_gradient_residual(x_cur, gamma)
            builder.record(
                (m,), np.full(self.n_workers, it - 1, dtype=np.int64), residual=last_res
            )
            if last_res < tol:
                converged = True
                break
        x = problem.reg.prox(z, gamma)
        return SolveResult(
            x=x,
            converged=converged,
            iterations=it,
            final_residual=problem.prox_gradient_residual(x, gamma),
            objective=problem.objective(x),
            trace=builder.build(),
            info={"gamma": gamma, "n_workers": self.n_workers},
        )
